// Overestimation study: quantify the "tragedy of the commons" the paper
// motivates — users padding their memory requests hurt everyone under a
// static policy, while dynamic provisioning absorbs the padding.
//
// Sweeps the overestimation factor on a fixed underprovisioned system and
// reports throughput, median response time and wasted (allocated-but-unused)
// memory for both disaggregated policies.
//
//   ./overestimation_study [num_jobs]
#include <cstdlib>
#include <iostream>

#include "core/dmsim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;

  const std::size_t num_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 512;
  const int nodes = 256;

  harness::SystemConfig sys;
  sys.total_nodes = nodes;
  sys.pct_large_nodes = 0.25;  // underprovisioned for a 50% large-job mix

  util::TextTable table("overestimation sweep, 50% large jobs, 25% large nodes");
  table.set_header({"overest", "policy", "throughput(jobs/s)", "median resp(s)",
                    "avg allocated(GiB)", "avg used(GiB)", "waste%"});

  for (const double over : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    workload::SyntheticWorkloadConfig wl;
    wl.cirne.num_jobs = num_jobs;
    wl.cirne.system_nodes = nodes;
    wl.cirne.max_job_nodes = 32;
    wl.cirne.target_load = 0.85;
    wl.pct_large_jobs = 0.5;
    wl.overestimation = over;
    wl.seed = 3;
    const auto w = workload::generate_synthetic(wl);

    for (const auto kind : {policy::PolicyKind::Static,
                            policy::PolicyKind::Dynamic}) {
      SimulationConfig cfg;
      cfg.system = sys;
      cfg.policy = kind;
      cfg.sched.sample_interval = 600.0;
      Simulator sim(cfg, w.jobs, &w.apps);
      const SimulationResult r = sim.run();
      if (!r.valid) {
        table.add_row({"+" + util::fmt(over * 100, 0) + "%",
                       std::string(policy::to_string(kind)), "-", "-", "-", "-",
                       "-"});
        continue;
      }
      // Time-weighted allocated vs ground-truth used memory from samples.
      double used_sum = 0.0;
      for (const auto& s : r.samples) used_sum += static_cast<double>(s.used);
      const double avg_used =
          r.samples.empty() ? 0.0 : used_sum / static_cast<double>(r.samples.size());
      const util::Ecdf ecdf(r.summary.response_times);
      const double waste =
          r.avg_allocated_mib > 0 ? 1.0 - avg_used / r.avg_allocated_mib : 0.0;
      table.add_row({
          "+" + util::fmt(over * 100, 0) + "%",
          std::string(policy::to_string(kind)),
          util::fmt_sci(r.summary.throughput, 3),
          util::fmt(ecdf.quantile(0.5), 0),
          util::fmt(to_gib(static_cast<MiB>(r.avg_allocated_mib)), 0),
          util::fmt(to_gib(static_cast<MiB>(avg_used)), 0),
          util::fmt_pct(waste, 1),
      });
    }
  }
  table.print(std::cout);
  std::cout << "\nUnder the static policy the waste column grows with the "
               "overestimation factor\n(allocation = request, forever); the "
               "dynamic policy tracks actual usage, so its\nwaste stays "
               "nearly flat and its throughput barely degrades.\n";
  return 0;
}
