// Quickstart: generate a small synthetic workload, run it under all three
// memory-allocation policies on an underprovisioned disaggregated system,
// and compare throughput and response time.
//
//   ./quickstart [num_jobs] [overestimation]
#include <cstdlib>
#include <iostream>

#include "core/dmsim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;

  const std::size_t num_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 400;
  const double overestimation = argc > 2 ? std::atof(argv[2]) : 0.6;

  // A 256-node system, half large nodes (128 GiB), half normal (64 GiB).
  harness::SystemConfig system;
  system.total_nodes = 256;
  system.pct_large_nodes = 0.5;

  // Workload: 50% large-memory jobs, users overestimate their peak demand.
  workload::SyntheticWorkloadConfig wl;
  wl.cirne.num_jobs = num_jobs;
  wl.cirne.system_nodes = system.total_nodes;
  wl.cirne.target_load = 0.8;
  wl.pct_large_jobs = 0.5;
  wl.overestimation = overestimation;
  wl.seed = 1;
  const workload::SyntheticWorkload workload = workload::generate_synthetic(wl);

  std::cout << "Workload: " << workload.jobs.size() << " jobs over "
            << workload.horizon / 86400.0 << " simulated days, offered load "
            << workload.offered_load << ", overestimation +"
            << overestimation * 100 << "%\n\n";

  util::TextTable table("policy comparison, underprovisioned system");
  table.set_header({"policy", "valid", "completed", "throughput(jobs/s)",
                    "median resp(s)", "oom jobs", "avg busy nodes"});

  for (const auto kind : {policy::PolicyKind::Baseline,
                          policy::PolicyKind::Static,
                          policy::PolicyKind::Dynamic}) {
    SimulationConfig cfg;
    cfg.system = system;
    cfg.policy = kind;
    Simulator sim(cfg, workload.jobs, &workload.apps);
    const SimulationResult result = sim.run();
    if (!result.valid) {
      table.add_row({std::string(policy::to_string(kind)), "no", "-", "-", "-",
                     "-", "-"});
      continue;
    }
    const util::Ecdf ecdf(result.summary.response_times);
    table.add_row({
        std::string(policy::to_string(kind)),
        "yes",
        std::to_string(result.summary.completed),
        util::fmt_sci(result.summary.throughput, 3),
        util::fmt(ecdf.quantile(0.5), 0),
        std::to_string(result.summary.jobs_with_oom),
        util::fmt(result.avg_busy_nodes, 1),
    });
  }
  table.print(std::cout);
  std::cout << "\nWith overestimated demands the baseline cannot start some "
               "jobs at all,\nand the dynamic policy reclaims idle allocation "
               "so jobs wait less.\n";
  return 0;
}
