// Capacity planning: an operator sizing a new disaggregated-memory system.
//
// Given an expected job mix and a user population that overestimates its
// memory demands, sweep the memory-provisioning ladder and report, for each
// allocation policy, the throughput, cost, and throughput-per-dollar — the
// Fig. 7/Fig. 9 style analysis an operator would run before buying memory.
//
//   ./capacity_planning [pct_large_jobs] [overestimation]
#include <cstdlib>
#include <iostream>

#include "core/dmsim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;

  const double pct_large = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double overestimation = argc > 2 ? std::atof(argv[2]) : 0.6;
  const int nodes = 256;

  workload::SyntheticWorkloadConfig wl;
  wl.cirne.num_jobs = 512;
  wl.cirne.system_nodes = nodes;
  wl.cirne.max_job_nodes = 32;
  wl.cirne.target_load = 0.85;
  wl.pct_large_jobs = pct_large;
  wl.overestimation = overestimation;
  wl.seed = 7;
  const auto w = workload::generate_synthetic(wl);

  std::cout << "Sizing a " << nodes << "-node system for "
            << util::fmt_pct(pct_large, 0) << " large-memory jobs, users "
            << "overestimating by +" << util::fmt(overestimation * 100, 0)
            << "%\n\n";

  const metrics::CostModel cost;
  util::TextTable table("provisioning ladder (normalized to 100% = all 128 GiB nodes)");
  table.set_header({"mem%", "capex($)", "policy", "throughput(jobs/s)",
                    "thr/$ (x1e-9)", "note"});

  for (const auto& sys : harness::memory_ladder(nodes)) {
    if (sys.memory_fraction() < 0.37) continue;
    const double capex = cost.system_cost(
        static_cast<std::size_t>(sys.total_nodes), sys.total_memory());
    for (const auto kind : {policy::PolicyKind::Static,
                            policy::PolicyKind::Dynamic}) {
      harness::CellConfig cell;
      cell.system = sys;
      cell.policy = kind;
      const auto r = harness::run_cell(cell, w.jobs, w.apps);
      std::string note;
      if (!r.valid) {
        note = "cannot run mix";
      } else if (r.summary.oom_events > 0) {
        note = std::to_string(r.summary.oom_events) + " OOM restarts";
      }
      table.add_row({
          std::to_string(static_cast<int>(sys.memory_fraction() * 100 + 0.5)),
          util::fmt(capex, 0),
          std::string(policy::to_string(kind)),
          r.valid ? util::fmt_sci(r.throughput(), 3) : "-",
          r.valid ? util::fmt(r.throughput_per_dollar() * 1e9, 2) : "-",
          note,
      });
    }
  }
  table.print(std::cout);
  std::cout << "\nReading the table: with dynamic provisioning the cheap "
               "(low-memory) systems hold their\nthroughput, so the best "
               "throughput-per-dollar shifts toward leaner configurations — "
               "the\npaper's argument for reclaiming overallocated memory "
               "instead of buying more of it.\n";
  return 0;
}
