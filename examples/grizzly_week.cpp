// Grizzly week replay: the paper's real-trace workflow end to end.
//
// Synthesizes the LANL-Grizzly-style dataset, characterizes its one-week
// periods (Fig. 2), picks a representative high-utilization week, and
// replays it on a disaggregated system under all three policies at a chosen
// overestimation factor.
//
//   ./grizzly_week [overestimation] [pct_large_nodes]
#include <cstdlib>
#include <iostream>

#include "core/dmsim.hpp"
#include "metrics/timeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;

  const double overestimation = argc > 1 ? std::atof(argv[1]) : 0.6;
  const double pct_large_nodes = argc > 2 ? std::atof(argv[2]) : 0.25;

  workload::GrizzlyConfig gcfg;
  gcfg.weeks = 12;
  gcfg.system_nodes = 256;  // scaled-down Grizzly (1490 nodes in the paper)
  gcfg.max_job_nodes = 48;
  gcfg.sample_weeks = 3;
  gcfg.overestimation = overestimation;
  const workload::GrizzlyTrace trace = workload::generate_grizzly(gcfg);

  // Fig. 2: pick the first selected representative week.
  int week = -1;
  for (const auto& w : trace.weeks) {
    if (w.selected) {
      week = w.index;
      break;
    }
  }
  if (week < 0) {
    std::cerr << "no week above the utilization floor; lower the floor\n";
    return 1;
  }
  const auto& wk = trace.weeks[static_cast<std::size_t>(week)];
  std::cout << "Replaying week " << week << ": "
            << util::fmt_pct(wk.cpu_utilization, 1) << " CPU utilization, "
            << wk.job_count << " jobs, peak job memory "
            << util::fmt(to_gib(wk.max_job_memory), 0) << " GiB/node, users "
            << "overestimating by +" << util::fmt(overestimation * 100, 0)
            << "%\n\n";

  const trace::Workload jobs = materialize_grizzly_week(gcfg, trace, week);

  util::TextTable table("policy comparison on the replayed week");
  table.set_header({"policy", "valid", "throughput(jobs/s)", "median resp(s)",
                    "avg alloc%", "avg used%", "waste%"});
  for (const auto kind : {policy::PolicyKind::Baseline,
                          policy::PolicyKind::Static,
                          policy::PolicyKind::Dynamic}) {
    SimulationConfig cfg;
    cfg.system.total_nodes = gcfg.system_nodes;
    cfg.system.pct_large_nodes = pct_large_nodes;
    cfg.policy = kind;
    cfg.sched.sample_interval = 900.0;
    Simulator sim(cfg, jobs, &trace.apps);
    const SimulationResult r = sim.run();
    if (!r.valid) {
      table.add_row({std::string(policy::to_string(kind)), "no", "-", "-", "-",
                     "-", "-"});
      continue;
    }
    const util::Ecdf ecdf(r.summary.response_times);
    const auto util_report = metrics::utilization_report(
        r.samples, r.provisioned_memory, cfg.system.total_nodes);
    table.add_row({
        std::string(policy::to_string(kind)),
        "yes",
        util::fmt_sci(r.summary.throughput, 3),
        util::fmt(ecdf.empty() ? 0.0 : ecdf.quantile(0.5), 0),
        util::fmt_pct(util_report.avg_allocated_fraction, 1),
        util::fmt_pct(util_report.avg_used_fraction, 1),
        util::fmt_pct(util_report.avg_waste_fraction, 1),
    });
  }
  table.print(std::cout);
  std::cout << "\nGrizzly-style workloads are memory-underutilized (Panwar et "
               "al.: ~18% average node\nmemory use), so the dynamic policy's "
               "waste column collapses while static carries the\nfull "
               "overestimated requests.\n";
  return 0;
}
