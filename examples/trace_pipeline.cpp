// Trace pipeline walk-through: the paper's Fig. 3 methodology step by step.
//
// Builds a synthetic HPC workload from its ingredients — CIRNE skeleton,
// app-pool matching, class-conditional memory peaks, Google-style usage
// shapes, RDP compression — then round-trips the result through the
// Standard Workload Format and prints what each stage produced.
//
//   ./trace_pipeline [num_jobs] [output.swf]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/dmsim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;

  const std::size_t num_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  const std::string swf_path = argc > 2 ? argv[2] : "/tmp/dmsim_pipeline.swf";

  // Step 1: CIRNE skeleton.
  workload::CirneConfig cirne;
  cirne.num_jobs = num_jobs;
  cirne.system_nodes = 128;
  cirne.max_job_nodes = 32;
  cirne.target_load = 0.8;
  cirne.seed = 99;
  const workload::CirneTrace skeleton = workload::generate_cirne(cirne);
  std::cout << "step 1 (CIRNE): " << skeleton.jobs.size() << " jobs over "
            << util::fmt(skeleton.horizon / 86400.0, 2)
            << " days, offered load " << util::fmt(skeleton.offered_load, 2)
            << "\n";

  // Step 2: pools of profiled applications and usage shapes.
  const auto apps =
      slowdown::AppPool::synthetic(util::Rng(99).child("apps"), 32);
  const auto shapes =
      workload::GoogleUsageLibrary::synthetic(util::Rng(99).child("usage"), 128);
  std::cout << "step 2 (pools): " << apps.size() << " profiled apps, "
            << shapes.size() << " usage shapes\n";

  // Steps 3-6 for a few jobs, with the intermediate matches shown.
  util::TextTable table("steps 3-6 | per-job matching (first 8 jobs)");
  table.set_header({"job", "nodes", "runtime(h)", "app", "peak(MiB)",
                    "shape pts", "compressed", "avg/peak"});
  util::Rng mem_rng = util::Rng(99).child("mem");
  trace::Workload jobs;
  for (std::size_t i = 0; i < skeleton.jobs.size(); ++i) {
    const auto& cj = skeleton.jobs[i];
    trace::JobSpec job;
    job.id = JobId{static_cast<std::uint32_t>(i + 1)};
    job.submit_time = cj.arrival;
    job.num_nodes = cj.nodes;
    job.duration = cj.runtime;
    job.walltime = cj.walltime;
    job.app_profile = apps.match(cj.nodes, cj.runtime);
    const MiB peak = workload::sample_normal_class_peak(mem_rng, gib(64));
    const std::size_t shape = shapes.match(cj.nodes, cj.runtime, peak);
    const trace::UsageTrace raw = shapes.instantiate(shape, peak, 0.0);
    job.usage = shapes.instantiate(shape, peak, 0.02);
    job.requested_mem = job.peak_usage();
    if (i < 8) {
      table.add_row({
          std::to_string(job.id.get()),
          std::to_string(job.num_nodes),
          util::fmt(job.duration / 3600.0, 1),
          apps.app(job.app_profile).name,
          std::to_string(peak),
          std::to_string(raw.size()),
          std::to_string(job.usage.size()),
          util::fmt(job.usage.average() / static_cast<double>(peak), 2),
      });
    }
    jobs.push_back(std::move(job));
  }
  table.print(std::cout);

  // Steps 8-9: write the simulator inputs (SWF) and read them back.
  trace::write_swf_file(swf_path, trace::to_swf(jobs, 32));
  const trace::Workload reread =
      trace::from_swf(trace::read_swf_file(swf_path), 32);
  std::cout << "\nsteps 8-9 (SWF): wrote " << jobs.size() << " jobs to "
            << swf_path << ", re-read " << reread.size() << " jobs\n";

  // Sanity: run the generated trace through the simulator.
  harness::SystemConfig sys;
  sys.total_nodes = 128;
  sys.pct_large_nodes = 0.5;
  harness::CellConfig cell;
  cell.system = sys;
  cell.policy = policy::PolicyKind::Dynamic;
  const auto result = harness::run_cell(cell, jobs, apps);
  std::cout << "simulation check: " << result.summary.completed << "/"
            << jobs.size() << " jobs completed, throughput "
            << util::fmt_sci(result.throughput(), 3) << " jobs/s\n";
  return 0;
}
