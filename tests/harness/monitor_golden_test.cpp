// Golden oracle-path identity: a run configured with Monitor=oracle (the
// default) must be indistinguishable — byte for byte — from a run built
// before the monitor subsystem existed. This pins the subsystem's
// load-bearing design rule: every monitor-aware code path is either gated
// on a non-oracle kind (runtime-OOM checks, the monitor.* instruments) or
// algebraically inert for the oracle (effective_slowdown multiplies by
// exactly 1.0; next_interval echoes the configured update interval; the
// zeroth-window plan only grows when the truth already exceeds the
// request, which the oracle decides with the same max_in call the old
// update path used). Three surfaces are compared:
//   * the full simulation JSON document (fig5/ablation-style export),
//   * the NDJSON event trace,
//   * the telemetry registry export,
// plus a fig5-style run_cells grid whose per-cell JSON must match, and a
// non-vacuity check that sampled/adaptive monitors DO diverge.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "harness/sweep.hpp"
#include "metrics/json_export.hpp"
#include "obs/counters.hpp"
#include "obs/trace_sink.hpp"
#include "util/rng.hpp"

namespace dmsim {
namespace {

trace::Workload monitor_golden_workload(const slowdown::AppPool& apps) {
  util::Rng rng(20260808);
  trace::Workload jobs;
  Seconds submit = 0.0;
  for (std::uint32_t i = 1; i <= 64; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    submit += rng.uniform() * 50.0;
    j.submit_time = submit;
    j.num_nodes = 1 + static_cast<int>(rng() % 6);
    j.duration = 120.0 + rng.uniform() * 800.0;
    j.walltime = j.duration * 2.0;
    const MiB peak = gib(6) + static_cast<MiB>(rng() % gib(100));
    j.usage = trace::UsageTrace(std::vector<trace::UsagePoint>{
        {0.0, peak / 3}, {0.3, (peak * 2) / 3}, {0.65, peak}});
    // Under-requests keep the grow/shrink machinery (where monitor demand
    // estimates actually land) live through the whole run.
    j.requested_mem = rng.uniform() < 0.35 ? (peak * 3) / 4 : peak;
    j.app_profile = apps.match(j.num_nodes, j.duration);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

struct RunArtifacts {
  std::string json;
  std::string ndjson;
  std::string telemetry;
};

RunArtifacts run_once(const SimulationConfig& cfg, const trace::Workload& jobs,
                      const slowdown::AppPool& apps) {
  std::ostringstream trace_out;
  obs::NdjsonSink sink(trace_out);
  obs::Counters counters;
  Simulator sim(cfg, jobs, &apps, &sink, &counters);
  const SimulationResult result = sim.run();
  EXPECT_TRUE(result.valid);
  RunArtifacts out;
  out.json = metrics::to_json(result);
  out.ndjson = trace_out.str();
  out.telemetry = metrics::telemetry_to_json(counters.snapshot());
  return out;
}

SimulationConfig base_config() {
  SimulationConfig cfg;
  cfg.system.total_nodes = 48;
  cfg.system.pct_large_nodes = 0.25;
  cfg.policy = policy::PolicyKind::Dynamic;
  cfg.sched.backfill_mode = sched::BackfillMode::Easy;
  cfg.sched.sample_interval = 200.0;
  cfg.sched.update_interval = 150.0;
  return cfg;
}

TEST(MonitorGolden, ExplicitOracleIsByteIdenticalToDefault) {
  const slowdown::AppPool apps =
      slowdown::AppPool::synthetic(util::Rng(17), 16);
  const trace::Workload jobs = monitor_golden_workload(apps);

  const SimulationConfig implicit = base_config();
  const RunArtifacts ref = run_once(implicit, jobs, apps);
  ASSERT_FALSE(ref.ndjson.empty());

  // The oracle spelled out, with every non-oracle knob set to noisy values:
  // none of them may leak into an oracle run.
  SimulationConfig spelled = base_config();
  spelled.sched.monitor.kind = monitor::MonitorKind::Oracle;
  spelled.sched.monitor.relative_error = 0.9;
  spelled.sched.monitor.staleness = 1e6;
  spelled.sched.monitor.min_interval = 1.0;
  spelled.sched.monitor.max_interval = 2.0;
  spelled.sched.monitor.error_bound = 1e-6;
  spelled.sched.monitor.overhead_us_per_region = 1e9;
  spelled.sched.monitor.seed = 999;
  const RunArtifacts oracle = run_once(spelled, jobs, apps);
  EXPECT_EQ(oracle.json, ref.json);
  EXPECT_EQ(oracle.ndjson, ref.ndjson);
  EXPECT_EQ(oracle.telemetry, ref.telemetry);
}

TEST(MonitorGolden, NonOracleMonitorsActuallyDiverge) {
  // Sanity check on the golden above: the comparison is not vacuous — both
  // imperfect monitors change the simulation, and differently.
  const slowdown::AppPool apps =
      slowdown::AppPool::synthetic(util::Rng(17), 16);
  const trace::Workload jobs = monitor_golden_workload(apps);

  const RunArtifacts ref = run_once(base_config(), jobs, apps);

  SimulationConfig sampled_cfg = base_config();
  sampled_cfg.sched.monitor.kind = monitor::MonitorKind::Sampled;
  sampled_cfg.sched.monitor.relative_error = 0.2;
  sampled_cfg.sched.monitor.staleness = 60.0;
  const RunArtifacts sampled = run_once(sampled_cfg, jobs, apps);
  EXPECT_NE(sampled.json, ref.json);

  SimulationConfig adaptive_cfg = base_config();
  adaptive_cfg.sched.monitor.kind = monitor::MonitorKind::Adaptive;
  adaptive_cfg.sched.monitor.min_interval = 30.0;
  adaptive_cfg.sched.monitor.max_interval = 300.0;
  adaptive_cfg.sched.monitor.error_bound = 0.05;
  const RunArtifacts adaptive = run_once(adaptive_cfg, jobs, apps);
  EXPECT_NE(adaptive.json, ref.json);
  EXPECT_NE(adaptive.json, sampled.json);

  // The monitor.* instruments exist only on non-oracle runs: invisible in
  // the oracle telemetry, present in the sampled/adaptive telemetry.
  EXPECT_EQ(ref.telemetry.find("monitor."), std::string::npos);
  EXPECT_NE(sampled.telemetry.find("monitor.estimate_error_mib"),
            std::string::npos);
  EXPECT_NE(adaptive.telemetry.find("monitor.regions"), std::string::npos);
}

TEST(MonitorGolden, Fig5StyleCellGridMatchesPerCell) {
  // The same identity through the bench plumbing (run_cells + the per-cell
  // JSON serializer the figure goldens compare): default grid vs
  // explicit-oracle grid, every cell byte-equal.
  const slowdown::AppPool apps =
      slowdown::AppPool::synthetic(util::Rng(17), 16);
  const trace::Workload jobs = monitor_golden_workload(apps);

  std::vector<harness::CellConfig> default_cells;
  std::vector<harness::CellConfig> oracle_cells;
  for (const double mix : {0.25, 0.75}) {
    for (const auto policy :
         {policy::PolicyKind::Static, policy::PolicyKind::Dynamic}) {
      harness::CellConfig cell;
      cell.system.total_nodes = 32;
      cell.system.pct_large_nodes = mix;
      cell.policy = policy;
      cell.collect_telemetry = true;
      default_cells.push_back(cell);
      cell.sched.monitor.kind = monitor::MonitorKind::Oracle;
      cell.sched.monitor.seed = 4242;  // ignored by the oracle
      oracle_cells.push_back(cell);
    }
  }
  const auto default_results = harness::run_cells(default_cells, jobs, apps, 2);
  const auto oracle_results = harness::run_cells(oracle_cells, jobs, apps, 2);
  ASSERT_EQ(default_results.size(), oracle_results.size());
  for (std::size_t i = 0; i < default_results.size(); ++i) {
    EXPECT_EQ(harness::cell_result_to_json(oracle_results[i]),
              harness::cell_result_to_json(default_results[i]))
        << "cell " << i;
    EXPECT_EQ(metrics::telemetry_to_json(oracle_results[i].telemetry),
              metrics::telemetry_to_json(default_results[i].telemetry))
        << "cell " << i;
  }
}

}  // namespace
}  // namespace dmsim
