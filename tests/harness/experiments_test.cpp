#include "harness/experiments.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace dmsim::harness {
namespace {

struct Fixture : ::testing::Test {
  Fixture() {
    workload::SyntheticWorkloadConfig cfg;
    cfg.cirne.num_jobs = 150;
    cfg.cirne.system_nodes = 48;
    cfg.cirne.max_job_nodes = 8;
    cfg.cirne.target_load = 0.85;
    cfg.pct_large_jobs = 0.5;
    cfg.overestimation = 0.6;
    cfg.seed = 19;
    generated = workload::generate_synthetic(cfg);
    systems = {make_system(0.0), make_system(0.25), make_system(0.5),
               make_system(1.0)};
  }

  static SystemConfig make_system(double pct_large) {
    SystemConfig sys;
    sys.total_nodes = 48;
    sys.pct_large_nodes = pct_large;
    return sys;
  }

  workload::SyntheticWorkload generated;
  std::vector<SystemConfig> systems;
};

using ExperimentsTest = Fixture;

TEST_F(ExperimentsTest, ReferenceThroughputPositive) {
  // The +60% workload cannot run under Baseline; the reference convention
  // uses the +0% workload, so build one here.
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 150;
  cfg.cirne.system_nodes = 48;
  cfg.cirne.max_job_nodes = 8;
  cfg.pct_large_jobs = 0.5;
  cfg.seed = 19;
  const auto exact = workload::generate_synthetic(cfg);
  EXPECT_GT(reference_throughput(exact.jobs, exact.apps, 48), 0.0);
}

TEST_F(ExperimentsTest, SweepCoversEverySystem) {
  const auto points = throughput_vs_memory(generated.jobs, generated.apps,
                                           systems, 0.0);
  ASSERT_EQ(points.size(), systems.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].memory_fraction,
                     systems[i].memory_fraction());
    // +60% overestimation: baseline bars must be missing, disaggregated
    // policies present.
    EXPECT_FALSE(points[i].baseline.has_value());
    ASSERT_TRUE(points[i].static_policy.has_value());
    ASSERT_TRUE(points[i].dynamic_policy.has_value());
    EXPECT_GT(*points[i].static_policy, 0.0);
    EXPECT_GE(*points[i].dynamic_policy, *points[i].static_policy * 0.95);
  }
}

TEST_F(ExperimentsTest, NormalizationDividesByReference) {
  const auto raw = throughput_vs_memory(generated.jobs, generated.apps,
                                        {systems.back()}, 0.0);
  const double reference = *raw[0].dynamic_policy;
  const auto normalized = throughput_vs_memory(
      generated.jobs, generated.apps, {systems.back()}, reference);
  EXPECT_NEAR(*normalized[0].dynamic_policy, 1.0, 1e-9);
}

TEST_F(ExperimentsTest, MinMemorySearchFindsSmallestQualifying) {
  const auto raw = throughput_vs_memory(generated.jobs, generated.apps,
                                        systems, 0.0);
  const double reference = *raw.back().dynamic_policy;
  const auto dyn = min_memory_for_threshold(generated.jobs, generated.apps,
                                            systems,
                                            policy::PolicyKind::Dynamic,
                                            reference, {}, 0.95);
  ASSERT_TRUE(dyn.has_value());
  const auto stat = min_memory_for_threshold(generated.jobs, generated.apps,
                                             systems,
                                             policy::PolicyKind::Static,
                                             reference, {}, 0.95);
  if (stat.has_value()) {
    EXPECT_LE(*dyn, *stat);  // dynamic never needs more memory than static
  }
}

TEST_F(ExperimentsTest, ImpossibleThresholdReturnsNothing) {
  const auto result = min_memory_for_threshold(
      generated.jobs, generated.apps, systems, policy::PolicyKind::Static,
      /*reference=*/1.0, {}, /*threshold=*/0.95);  // absurd reference
  EXPECT_FALSE(result.has_value());
}

TEST_F(ExperimentsTest, MinMemoryHonorsSchedulerConfig) {
  // The caller's scheduler configuration must reach every cell of the
  // search: the answer under config X has to match a hand-rolled search
  // running each ladder point with the same X.
  sched::SchedulerConfig config;
  config.update_interval = 3600.0;  // starve the dynamic policy of updates
  const double reference = 1e-6;    // low bar: every valid cell qualifies
  const auto got = min_memory_for_threshold(
      generated.jobs, generated.apps, systems, policy::PolicyKind::Dynamic,
      reference, config, 0.95);
  std::optional<double> expected;
  for (const SystemConfig& system : systems) {
    CellConfig cell;
    cell.system = system;
    cell.policy = policy::PolicyKind::Dynamic;
    cell.sched = config;
    const CellResult result = run_cell(cell, generated.jobs, generated.apps);
    if (result.valid && result.throughput() / reference >= 0.95) {
      expected = system.memory_fraction();
      break;
    }
  }
  ASSERT_EQ(got.has_value(), expected.has_value());
  if (got.has_value()) EXPECT_DOUBLE_EQ(*got, *expected);
}

TEST_F(ExperimentsTest, ThreadCountDoesNotChangeResults) {
  obs::ThroughputReport serial_tally;
  obs::ThroughputReport parallel_tally;
  const auto serial =
      throughput_vs_memory(generated.jobs, generated.apps, systems, 0.0, {},
                           /*threads=*/1, &serial_tally);
  const auto parallel =
      throughput_vs_memory(generated.jobs, generated.apps, systems, 0.0, {},
                           /*threads=*/4, &parallel_tally);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].static_policy, parallel[i].static_policy);
    EXPECT_EQ(serial[i].dynamic_policy, parallel[i].dynamic_policy);
    EXPECT_EQ(serial[i].baseline, parallel[i].baseline);
    EXPECT_DOUBLE_EQ(serial[i].dynamic_oom_job_fraction,
                     parallel[i].dynamic_oom_job_fraction);
  }
  // The deterministic tally fields must agree too (wall time may not).
  EXPECT_EQ(serial_tally.engine_events, parallel_tally.engine_events);
  EXPECT_DOUBLE_EQ(serial_tally.sim_seconds, parallel_tally.sim_seconds);
}

}  // namespace
}  // namespace dmsim::harness
