#include "harness/experiments.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace dmsim::harness {
namespace {

struct Fixture : ::testing::Test {
  Fixture() {
    workload::SyntheticWorkloadConfig cfg;
    cfg.cirne.num_jobs = 150;
    cfg.cirne.system_nodes = 48;
    cfg.cirne.max_job_nodes = 8;
    cfg.cirne.target_load = 0.85;
    cfg.pct_large_jobs = 0.5;
    cfg.overestimation = 0.6;
    cfg.seed = 19;
    generated = workload::generate_synthetic(cfg);
    systems = {make_system(0.0), make_system(0.25), make_system(0.5),
               make_system(1.0)};
  }

  static SystemConfig make_system(double pct_large) {
    SystemConfig sys;
    sys.total_nodes = 48;
    sys.pct_large_nodes = pct_large;
    return sys;
  }

  workload::SyntheticWorkload generated;
  std::vector<SystemConfig> systems;
};

using ExperimentsTest = Fixture;

TEST_F(ExperimentsTest, ReferenceThroughputPositive) {
  // The +60% workload cannot run under Baseline; the reference convention
  // uses the +0% workload, so build one here.
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 150;
  cfg.cirne.system_nodes = 48;
  cfg.cirne.max_job_nodes = 8;
  cfg.pct_large_jobs = 0.5;
  cfg.seed = 19;
  const auto exact = workload::generate_synthetic(cfg);
  EXPECT_GT(reference_throughput(exact.jobs, exact.apps, 48), 0.0);
}

TEST_F(ExperimentsTest, SweepCoversEverySystem) {
  const auto points = throughput_vs_memory(generated.jobs, generated.apps,
                                           systems, 0.0);
  ASSERT_EQ(points.size(), systems.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].memory_fraction,
                     systems[i].memory_fraction());
    // +60% overestimation: baseline bars must be missing, disaggregated
    // policies present.
    EXPECT_FALSE(points[i].baseline.has_value());
    ASSERT_TRUE(points[i].static_policy.has_value());
    ASSERT_TRUE(points[i].dynamic_policy.has_value());
    EXPECT_GT(*points[i].static_policy, 0.0);
    EXPECT_GE(*points[i].dynamic_policy, *points[i].static_policy * 0.95);
  }
}

TEST_F(ExperimentsTest, NormalizationDividesByReference) {
  const auto raw = throughput_vs_memory(generated.jobs, generated.apps,
                                        {systems.back()}, 0.0);
  const double reference = *raw[0].dynamic_policy;
  const auto normalized = throughput_vs_memory(
      generated.jobs, generated.apps, {systems.back()}, reference);
  EXPECT_NEAR(*normalized[0].dynamic_policy, 1.0, 1e-9);
}

TEST_F(ExperimentsTest, MinMemorySearchFindsSmallestQualifying) {
  const auto raw = throughput_vs_memory(generated.jobs, generated.apps,
                                        systems, 0.0);
  const double reference = *raw.back().dynamic_policy;
  const auto dyn = min_memory_for_threshold(generated.jobs, generated.apps,
                                            systems,
                                            policy::PolicyKind::Dynamic,
                                            reference, 0.95);
  ASSERT_TRUE(dyn.has_value());
  const auto stat = min_memory_for_threshold(generated.jobs, generated.apps,
                                             systems,
                                             policy::PolicyKind::Static,
                                             reference, 0.95);
  if (stat.has_value()) {
    EXPECT_LE(*dyn, *stat);  // dynamic never needs more memory than static
  }
}

TEST_F(ExperimentsTest, ImpossibleThresholdReturnsNothing) {
  const auto result = min_memory_for_threshold(
      generated.jobs, generated.apps, systems, policy::PolicyKind::Static,
      /*reference=*/1.0, /*threshold=*/0.95);  // absurd reference
  EXPECT_FALSE(result.has_value());
}

}  // namespace
}  // namespace dmsim::harness
