// Thread-pool sweep execution details.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace dmsim::harness {
namespace {

workload::SyntheticWorkload tiny_workload() {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 40;
  cfg.cirne.system_nodes = 16;
  cfg.cirne.max_job_nodes = 4;
  cfg.pct_large_jobs = 0.25;
  cfg.seed = 2;
  return workload::generate_synthetic(cfg);
}

std::vector<CellConfig> cell_matrix(int n) {
  std::vector<CellConfig> cells;
  for (int i = 0; i < n; ++i) {
    CellConfig cell;
    cell.system.total_nodes = 16;
    cell.system.pct_large_nodes = (i % 4) * 0.25;
    cell.policy = (i % 2 == 0) ? policy::PolicyKind::Static
                               : policy::PolicyKind::Dynamic;
    cells.push_back(cell);
  }
  return cells;
}

TEST(RunCells, MoreThreadsThanCells) {
  const auto w = tiny_workload();
  const auto cells = cell_matrix(3);
  const auto results = run_cells(cells, w.jobs, w.apps, 8);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.summary.completed + r.summary.abandoned +
                  static_cast<std::size_t>(!r.valid) * w.jobs.size(),
              w.jobs.size());
  }
}

TEST(RunCells, SingleThreadMatchesMultiThread) {
  const auto w = tiny_workload();
  const auto cells = cell_matrix(6);
  const auto serial = run_cells(cells, w.jobs, w.apps, 1);
  const auto parallel = run_cells(cells, w.jobs, w.apps, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].valid, parallel[i].valid);
    EXPECT_DOUBLE_EQ(serial[i].summary.throughput,
                     parallel[i].summary.throughput);
    EXPECT_EQ(serial[i].totals.update_events, parallel[i].totals.update_events);
  }
}

TEST(RunCells, EmptyCellListIsFine) {
  const auto w = tiny_workload();
  EXPECT_TRUE(run_cells({}, w.jobs, w.apps, 2).empty());
}

}  // namespace
}  // namespace dmsim::harness
