// Golden flat-path identity: a degenerate one-tier topology must be
// indistinguishable — byte for byte — from the implicit flat pool every
// figure bench runs. This pins the tiered refactor's load-bearing design
// rule: every tier-aware code path is gated on tiered() (> 1 tier), so a
// single-tier table, at the reference point or not, executes exactly the
// pre-refactor instruction stream. Three surfaces are compared:
//   * the full simulation JSON document (fig5/ablation-style export),
//   * the NDJSON event trace,
//   * the telemetry registry export,
// plus a fig5-style run_cells grid whose per-cell JSON must match.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "harness/sweep.hpp"
#include "metrics/json_export.hpp"
#include "obs/counters.hpp"
#include "obs/trace_sink.hpp"
#include "util/rng.hpp"

namespace dmsim {
namespace {

trace::Workload tier_golden_workload(const slowdown::AppPool& apps) {
  util::Rng rng(20260808);
  trace::Workload jobs;
  Seconds submit = 0.0;
  for (std::uint32_t i = 1; i <= 64; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    submit += rng.uniform() * 50.0;
    j.submit_time = submit;
    j.num_nodes = 1 + static_cast<int>(rng() % 6);
    j.duration = 120.0 + rng.uniform() * 800.0;
    j.walltime = j.duration * 2.0;
    const MiB peak = gib(6) + static_cast<MiB>(rng() % gib(100));
    j.usage = trace::UsageTrace(std::vector<trace::UsagePoint>{
        {0.0, peak / 3}, {0.3, (peak * 2) / 3}, {0.65, peak}});
    // Under-requests force remote growth, so borrow edges (the surface the
    // tier refactor touched most) are live through the whole run.
    j.requested_mem = rng.uniform() < 0.35 ? (peak * 3) / 4 : peak;
    j.app_profile = apps.match(j.num_nodes, j.duration);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

struct RunArtifacts {
  std::string json;
  std::string ndjson;
  std::string telemetry;
};

RunArtifacts run_once(const SimulationConfig& cfg, const trace::Workload& jobs,
                      const slowdown::AppPool& apps) {
  std::ostringstream trace_out;
  obs::NdjsonSink sink(trace_out);
  obs::Counters counters;
  Simulator sim(cfg, jobs, &apps, &sink, &counters);
  const SimulationResult result = sim.run();
  EXPECT_TRUE(result.valid);
  RunArtifacts out;
  out.json = metrics::to_json(result);
  out.ndjson = trace_out.str();
  out.telemetry = metrics::telemetry_to_json(counters.snapshot());
  return out;
}

TEST(TierGolden, SingleTierTopologyIsByteIdenticalToFlat) {
  const slowdown::AppPool apps =
      slowdown::AppPool::synthetic(util::Rng(17), 16);
  const trace::Workload jobs = tier_golden_workload(apps);

  SimulationConfig flat;
  flat.system.total_nodes = 48;
  flat.system.pct_large_nodes = 0.25;
  flat.policy = policy::PolicyKind::Dynamic;
  flat.sched.backfill_mode = sched::BackfillMode::Easy;
  flat.sched.sample_interval = 200.0;
  flat.sched.update_interval = 150.0;

  const RunArtifacts ref = run_once(flat, jobs, apps);
  ASSERT_FALSE(ref.ndjson.empty());

  // An explicit one-tier table at the reference point — the flat pool
  // spelled out.
  SimulationConfig one_tier = flat;
  one_tier.system.tiers = {cluster::default_memory_tier()};
  one_tier.system.tier_fractions = {1.0};
  const RunArtifacts spelled = run_once(one_tier, jobs, apps);
  EXPECT_EQ(spelled.json, ref.json);
  EXPECT_EQ(spelled.ndjson, ref.ndjson);
  EXPECT_EQ(spelled.telemetry, ref.telemetry);

  // A one-tier table NOT at the reference point: still byte-identical,
  // because tiered() gates every tier-aware branch off — a single tier has
  // no "other tier" to be slower than.
  SimulationConfig odd_tier = flat;
  odd_tier.system.tiers = {
      cluster::MemoryTier{"odd", 900.0, 25.0, cluster::TierScope::CrossRack}};
  odd_tier.system.tier_fractions = {1.0};
  const RunArtifacts odd = run_once(odd_tier, jobs, apps);
  EXPECT_EQ(odd.json, ref.json);
  EXPECT_EQ(odd.ndjson, ref.ndjson);
  EXPECT_EQ(odd.telemetry, ref.telemetry);
}

TEST(TierGolden, MultiTierTopologyActuallyDiverges) {
  // Sanity check on the golden above: the comparison is not vacuous — a
  // real two-tier topology DOES change the simulation.
  const slowdown::AppPool apps =
      slowdown::AppPool::synthetic(util::Rng(17), 16);
  const trace::Workload jobs = tier_golden_workload(apps);

  SimulationConfig flat;
  flat.system.total_nodes = 48;
  flat.system.pct_large_nodes = 0.25;
  flat.policy = policy::PolicyKind::Dynamic;
  flat.sched.sample_interval = 200.0;
  flat.sched.update_interval = 150.0;
  const RunArtifacts ref = run_once(flat, jobs, apps);

  SimulationConfig tiered = flat;
  tiered.system.tiers = {
      cluster::MemoryTier{"local", 150.0, 90.0, cluster::TierScope::Local},
      cluster::MemoryTier{"far", 1200.0, 40.0, cluster::TierScope::CrossRack}};
  tiered.system.tier_fractions = {0.5, 0.5};
  const RunArtifacts two = run_once(tiered, jobs, apps);
  EXPECT_NE(two.json, ref.json);
}

TEST(TierGolden, Fig5StyleCellGridMatchesPerCell) {
  // The same identity through the bench plumbing (run_cells + the per-cell
  // JSON serializer the figure goldens compare): flat grid vs single-tier
  // grid, every cell byte-equal.
  const slowdown::AppPool apps =
      slowdown::AppPool::synthetic(util::Rng(17), 16);
  const trace::Workload jobs = tier_golden_workload(apps);

  std::vector<harness::CellConfig> flat_cells;
  std::vector<harness::CellConfig> tiered_cells;
  for (const double mix : {0.25, 0.75}) {
    for (const auto policy :
         {policy::PolicyKind::Static, policy::PolicyKind::Dynamic}) {
      harness::CellConfig cell;
      cell.system.total_nodes = 32;
      cell.system.pct_large_nodes = mix;
      cell.policy = policy;
      cell.collect_telemetry = true;
      flat_cells.push_back(cell);
      cell.system.tiers = {cluster::default_memory_tier()};
      cell.system.tier_fractions = {1.0};
      tiered_cells.push_back(cell);
    }
  }
  const auto flat_results = harness::run_cells(flat_cells, jobs, apps, 2);
  const auto tiered_results = harness::run_cells(tiered_cells, jobs, apps, 2);
  ASSERT_EQ(flat_results.size(), tiered_results.size());
  for (std::size_t i = 0; i < flat_results.size(); ++i) {
    EXPECT_EQ(harness::cell_result_to_json(tiered_results[i]),
              harness::cell_result_to_json(flat_results[i]))
        << "cell " << i;
    EXPECT_EQ(metrics::telemetry_to_json(tiered_results[i].telemetry),
              metrics::telemetry_to_json(flat_results[i].telemetry))
        << "cell " << i;
  }
}

}  // namespace
}  // namespace dmsim
