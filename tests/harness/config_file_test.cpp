#include "harness/config_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace dmsim::harness {
namespace {

TEST(ParseMemory, UnitsAndDefaults) {
  EXPECT_EQ(parse_memory("1024"), 1024);       // bare MiB
  EXPECT_EQ(parse_memory("64G"), 64 * 1024);
  EXPECT_EQ(parse_memory("64 GB"), 64 * 1024);
  EXPECT_EQ(parse_memory("2GiB"), 2048);
  EXPECT_EQ(parse_memory("1T"), 1024 * 1024);
  EXPECT_EQ(parse_memory("512M"), 512);
  EXPECT_EQ(parse_memory("2048K"), 2);
  EXPECT_EQ(parse_memory("1.5G"), 1536);
}

TEST(ParseMemory, Rejections) {
  EXPECT_THROW(parse_memory("abc"), ConfigError);
  EXPECT_THROW(parse_memory("64X"), ConfigError);
  EXPECT_THROW(parse_memory("-5G"), ConfigError);
}

TEST(ParseDuration, UnitsAndDefaults) {
  EXPECT_DOUBLE_EQ(parse_duration("300"), 300.0);  // bare seconds
  EXPECT_DOUBLE_EQ(parse_duration("30s"), 30.0);
  EXPECT_DOUBLE_EQ(parse_duration("5min"), 300.0);
  EXPECT_DOUBLE_EQ(parse_duration("5 m"), 300.0);
  EXPECT_DOUBLE_EQ(parse_duration("2h"), 7200.0);
  EXPECT_DOUBLE_EQ(parse_duration("1d"), 86400.0);
  EXPECT_DOUBLE_EQ(parse_duration("0.5h"), 1800.0);
}

TEST(ParseDuration, Rejections) {
  EXPECT_THROW(parse_duration("soon"), ConfigError);
  EXPECT_THROW(parse_duration("5 fortnights"), ConfigError);
  EXPECT_THROW(parse_duration("-3s"), ConfigError);
}

TEST(ParseBool, Variants) {
  EXPECT_TRUE(parse_bool("yes"));
  EXPECT_TRUE(parse_bool("TRUE"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("on"));
  EXPECT_FALSE(parse_bool("no"));
  EXPECT_FALSE(parse_bool("False"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_FALSE(parse_bool("off"));
  EXPECT_THROW(parse_bool("maybe"), ConfigError);
}

TEST(ParseEnums, PolicyNames) {
  EXPECT_EQ(parse_policy("baseline"), policy::PolicyKind::Baseline);
  EXPECT_EQ(parse_policy("Static"), policy::PolicyKind::Static);
  EXPECT_EQ(parse_policy("DYNAMIC"), policy::PolicyKind::Dynamic);
  EXPECT_THROW(parse_policy("magic"), ConfigError);
}

TEST(ParseEnums, LenderAndOom) {
  EXPECT_EQ(parse_lender_policy("memory_nodes_first"),
            cluster::LenderPolicy::MemoryNodesFirst);
  EXPECT_EQ(parse_lender_policy("most_free"), cluster::LenderPolicy::MostFree);
  EXPECT_EQ(parse_lender_policy("LEAST_FREE"), cluster::LenderPolicy::LeastFree);
  EXPECT_THROW(parse_lender_policy("greedy"), ConfigError);
  EXPECT_EQ(parse_oom_handling("fail_restart"), sched::OomHandling::FailRestart);
  EXPECT_EQ(parse_oom_handling("C/R"), sched::OomHandling::CheckpointRestart);
  EXPECT_THROW(parse_oom_handling("panic"), ConfigError);
}

TEST(ParseConfig, FullExample) {
  std::istringstream in(R"(
# system
Nodes = 512
PctLargeNodes = 0.25
NormalCapacity = 64G
LargeCapacity = 128G
CoresPerNode = 36
LenderPolicy = most_free

AllocationPolicy = dynamic
SchedulerInterval = 30s
QueueDepth = 50
BackfillDepth = 80
EnableBackfill = yes
UpdateInterval = 5min
OomHandling = checkpoint_restart
GuaranteedAfterFailures = 2
PriorityBoostPerFailure = 1
MaxRestarts = 20
EnforceWalltime = no
SampleInterval = 10min

Jobs = 777            # inline comment
TargetLoad = 0.9
PctLargeJobs = 0.4
Overestimation = 0.6
MaxJobNodes = 64
Seed = 1234
)");
  const FileConfig cfg = parse_config(in);
  EXPECT_EQ(cfg.simulation.system.total_nodes, 512);
  EXPECT_DOUBLE_EQ(cfg.simulation.system.pct_large_nodes, 0.25);
  EXPECT_EQ(cfg.simulation.system.normal_capacity, 64 * 1024);
  EXPECT_EQ(cfg.simulation.system.large_capacity, 128 * 1024);
  EXPECT_EQ(cfg.simulation.system.cores_per_node, 36);
  EXPECT_EQ(cfg.simulation.system.lender_policy,
            cluster::LenderPolicy::MostFree);
  EXPECT_EQ(cfg.simulation.policy, policy::PolicyKind::Dynamic);
  EXPECT_DOUBLE_EQ(cfg.simulation.sched.sched_interval, 30.0);
  EXPECT_EQ(cfg.simulation.sched.queue_depth, 50);
  EXPECT_EQ(cfg.simulation.sched.backfill_depth, 80);
  EXPECT_TRUE(cfg.simulation.sched.enable_backfill);
  EXPECT_DOUBLE_EQ(cfg.simulation.sched.update_interval, 300.0);
  EXPECT_EQ(cfg.simulation.sched.oom_handling,
            sched::OomHandling::CheckpointRestart);
  EXPECT_EQ(cfg.simulation.sched.guaranteed_after_failures, 2);
  EXPECT_EQ(cfg.simulation.sched.priority_boost_per_failure, 1);
  EXPECT_EQ(cfg.simulation.sched.max_restarts, 20);
  EXPECT_FALSE(cfg.simulation.sched.enforce_walltime);
  EXPECT_DOUBLE_EQ(cfg.simulation.sched.sample_interval, 600.0);
  EXPECT_TRUE(cfg.has_workload);
  EXPECT_EQ(cfg.workload.cirne.num_jobs, 777u);
  EXPECT_DOUBLE_EQ(cfg.workload.cirne.target_load, 0.9);
  EXPECT_DOUBLE_EQ(cfg.workload.pct_large_jobs, 0.4);
  EXPECT_DOUBLE_EQ(cfg.workload.overestimation, 0.6);
  EXPECT_EQ(cfg.workload.cirne.max_job_nodes, 64);
  EXPECT_EQ(cfg.workload.seed, 1234u);
  // Workload classes inherit the system's node sizes.
  EXPECT_EQ(cfg.workload.normal_capacity, 64 * 1024);
  EXPECT_EQ(cfg.workload.large_capacity, 128 * 1024);
  // Workload system size follows Nodes.
  EXPECT_EQ(cfg.workload.cirne.system_nodes, 512);
}

TEST(ParseConfig, BackfillAndUpdateModes) {
  std::istringstream in(
      "BackfillMode = conservative\n"
      "UpdateMode = global_batch\n");
  const FileConfig cfg = parse_config(in);
  EXPECT_EQ(cfg.simulation.sched.backfill_mode,
            sched::BackfillMode::Conservative);
  EXPECT_EQ(cfg.simulation.sched.update_mode, sched::UpdateMode::GlobalBatch);

  std::istringstream in2("BackfillMode = off\nUpdateMode = staggered\n");
  const FileConfig cfg2 = parse_config(in2);
  EXPECT_EQ(cfg2.simulation.sched.backfill_mode, sched::BackfillMode::Off);
  EXPECT_EQ(cfg2.simulation.sched.update_mode,
            sched::UpdateMode::PerJobStaggered);

  std::istringstream bad("BackfillMode = eager\n");
  EXPECT_THROW(parse_config(bad), ConfigError);
  std::istringstream bad2("UpdateMode = psychic\n");
  EXPECT_THROW(parse_config(bad2), ConfigError);
}

TEST(ParseConfig, DefaultsWhenEmpty) {
  std::istringstream in("");
  const FileConfig cfg = parse_config(in);
  EXPECT_FALSE(cfg.has_workload);
  EXPECT_EQ(cfg.simulation.policy, policy::PolicyKind::Dynamic);
  EXPECT_EQ(cfg.simulation.sched.queue_depth, 100);
}

TEST(ParseConfig, KeysAreCaseInsensitive) {
  std::istringstream in("NODES=16\nallocationPOLICY=static\n");
  const FileConfig cfg = parse_config(in);
  EXPECT_EQ(cfg.simulation.system.total_nodes, 16);
  EXPECT_EQ(cfg.simulation.policy, policy::PolicyKind::Static);
}

TEST(ParseConfig, UnknownKeyRejected) {
  std::istringstream in("Nodse = 16\n");
  EXPECT_THROW(parse_config(in), ConfigError);
}

TEST(ParseConfig, MissingEqualsRejected) {
  std::istringstream in("Nodes 16\n");
  EXPECT_THROW(parse_config(in), ConfigError);
}

TEST(ParseConfig, EmptyValueRejected) {
  std::istringstream in("Nodes =\n");
  EXPECT_THROW(parse_config(in), ConfigError);
}

TEST(ParseConfig, MemoryTiersParse) {
  std::istringstream in(
      "Nodes = 16\n"
      "MemoryTiers = local:150:90:0.6:local, rack-cxl:450:64:0.4\n");
  const FileConfig cfg = parse_config(in);
  const auto& sys = cfg.simulation.system;
  ASSERT_EQ(sys.tiers.size(), 2u);
  EXPECT_EQ(sys.tiers[0].name, "local");
  EXPECT_DOUBLE_EQ(sys.tiers[0].latency_ns, 150.0);
  EXPECT_DOUBLE_EQ(sys.tiers[0].bandwidth_gbs, 90.0);
  EXPECT_EQ(sys.tiers[0].scope, cluster::TierScope::Local);
  EXPECT_EQ(sys.tiers[1].name, "rack-cxl");
  EXPECT_EQ(sys.tiers[1].scope, cluster::TierScope::Rack);  // default
  ASSERT_EQ(sys.tier_fractions.size(), 2u);
  EXPECT_DOUBLE_EQ(sys.tier_fractions[0], 0.6);
  // The derived cluster config assigns contiguous id blocks: 0.6 * 16 ≈ 10
  // nodes in tier 0, the rest in tier 1 (rack mirrors tier).
  const cluster::ClusterConfig cc = sys.to_cluster_config();
  ASSERT_EQ(cc.tiers.size(), 2u);
  EXPECT_EQ(cc.nodes[0].tier, 0);
  EXPECT_EQ(cc.nodes[9].tier, 0);
  EXPECT_EQ(cc.nodes[10].tier, 1);
  EXPECT_EQ(cc.nodes[15].tier, 1);
  EXPECT_EQ(cc.nodes[15].rack, 1);
}

TEST(ParseConfig, MemoryTiersRejections) {
  {  // fractions must sum to 1
    std::istringstream in("MemoryTiers = a:100:50:0.5, b:200:25:0.4\n");
    EXPECT_THROW(parse_config(in), ConfigError);
  }
  {  // too few fields
    std::istringstream in("MemoryTiers = a:100:50\n");
    EXPECT_THROW(parse_config(in), ConfigError);
  }
  {  // non-positive latency
    std::istringstream in("MemoryTiers = a:0:50:1.0\n");
    EXPECT_THROW(parse_config(in), ConfigError);
  }
  {  // unknown scope
    std::istringstream in("MemoryTiers = a:100:50:1.0:continental\n");
    EXPECT_THROW(parse_config(in), ConfigError);
  }
}

TEST(ParseConfig, MissingFileThrows) {
  EXPECT_THROW(parse_config_file("/nonexistent/cluster.conf"), ConfigError);
}

TEST(ParseConfig, ParsedConfigRunsEndToEnd) {
  std::istringstream in(R"(
Nodes = 32
PctLargeNodes = 0.5
AllocationPolicy = dynamic
Jobs = 60
TargetLoad = 0.7
PctLargeJobs = 0.3
MaxJobNodes = 8
Seed = 5
)");
  const FileConfig cfg = parse_config(in);
  auto generated = workload::generate_synthetic(cfg.workload);
  Simulator sim(cfg.simulation, generated.jobs, &generated.apps);
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.summary.completed, 60u);
}

}  // namespace
}  // namespace dmsim::harness
