#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace dmsim::harness {
namespace {

struct SweepFixture : ::testing::Test {
  SweepFixture() {
    workload::SyntheticWorkloadConfig small;
    small.cirne.num_jobs = 120;
    small.cirne.system_nodes = 48;
    small.cirne.max_job_nodes = 8;
    small.pct_large_jobs = 0.5;
    small.overestimation = 0.6;
    small.seed = 7;
    workload_a = workload::generate_synthetic(small);

    workload::SyntheticWorkloadConfig other = small;
    other.pct_large_jobs = 0.25;
    other.seed = 11;
    workload_b = workload::generate_synthetic(other);
  }

  // A fig5-style grid: memory ladder x policy, spanning BOTH workloads —
  // the heterogeneous case run_cells() cannot express.
  static void enqueue_grid(SweepRunner& runner,
                           const workload::SyntheticWorkload& wa,
                           const workload::SyntheticWorkload& wb) {
    for (const double pct_large : {0.25, 0.5, 1.0}) {
      for (const auto kind :
           {policy::PolicyKind::Baseline, policy::PolicyKind::Static,
            policy::PolicyKind::Dynamic}) {
        CellConfig cell;
        cell.system.total_nodes = 48;
        cell.system.pct_large_nodes = pct_large;
        cell.policy = kind;
        (void)runner.add(cell, wa.jobs, wa.apps);
        (void)runner.add(cell, wb.jobs, wb.apps);
      }
    }
  }

  workload::SyntheticWorkload workload_a;
  workload::SyntheticWorkload workload_b;
};

TEST_F(SweepFixture, ResultsLandInSubmissionOrder) {
  SweepRunner runner(4);
  std::vector<std::size_t> handles;
  for (const double pct_large : {0.25, 0.5, 1.0}) {
    CellConfig cell;
    cell.system.total_nodes = 48;
    cell.system.pct_large_nodes = pct_large;
    cell.policy = policy::PolicyKind::Dynamic;
    handles.push_back(runner.add(cell, workload_a.jobs, workload_a.apps));
  }
  runner.run_all();
  ASSERT_EQ(runner.results().size(), 3u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i], i);
    // Each handle's result must be the cell submitted under it: check a
    // config-determined field (memory fraction rises along the ladder).
    EXPECT_TRUE(runner.result(handles[i]).cell.valid);
  }
  EXPECT_LT(runner.result(0).cell.provisioned_memory,
            runner.result(2).cell.provisioned_memory);
}

TEST_F(SweepFixture, SerialAndParallelJsonAreByteIdentical) {
  SweepRunner serial(1);
  SweepRunner parallel(8);
  enqueue_grid(serial, workload_a, workload_b);
  enqueue_grid(parallel, workload_a, workload_b);
  ASSERT_EQ(serial.size(), parallel.size());
  serial.run_all();
  parallel.run_all();
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(cell_result_to_json(serial.result(i).cell),
              cell_result_to_json(parallel.result(i).cell))
        << "cell " << i;
  }
  // The deterministic halves of the throughput tally must agree too.
  EXPECT_EQ(serial.report().engine_events, parallel.report().engine_events);
  EXPECT_DOUBLE_EQ(serial.report().sim_seconds, parallel.report().sim_seconds);
}

TEST_F(SweepFixture, IncrementalRoundsKeepEarlierResults) {
  SweepRunner runner(2);
  CellConfig cell;
  cell.system.total_nodes = 48;
  cell.system.pct_large_nodes = 1.0;
  cell.policy = policy::PolicyKind::Dynamic;
  const std::size_t first = runner.add(cell, workload_a.jobs, workload_a.apps);
  runner.run_all();
  const std::string round1 = cell_result_to_json(runner.result(first).cell);

  cell.policy = policy::PolicyKind::Static;
  const std::size_t second = runner.add(cell, workload_b.jobs, workload_b.apps);
  runner.run_all();
  EXPECT_EQ(cell_result_to_json(runner.result(first).cell), round1);
  EXPECT_TRUE(runner.result(second).cell.valid);
  EXPECT_EQ(runner.results().size(), 2u);
}

TEST_F(SweepFixture, ReportAccumulatesEventsAndWallTime) {
  SweepRunner runner(2);
  CellConfig cell;
  cell.system.total_nodes = 48;
  cell.system.pct_large_nodes = 1.0;
  cell.policy = policy::PolicyKind::Dynamic;
  (void)runner.add(cell, workload_a.jobs, workload_a.apps);
  runner.run_all();
  const obs::ThroughputReport report = runner.report();
  EXPECT_GT(report.engine_events, 0u);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_EQ(report.engine_events, runner.result(0).cell.engine_events);
}

TEST_F(SweepFixture, ThreadsZeroMeansHardwareConcurrency) {
  SweepRunner runner(0);
  EXPECT_GE(runner.threads(), 1u);
}

TEST_F(SweepFixture, JsonContainsDeterministicFieldsOnly) {
  SweepRunner runner(1);
  CellConfig cell;
  cell.system.total_nodes = 48;
  cell.system.pct_large_nodes = 1.0;
  cell.policy = policy::PolicyKind::Dynamic;
  (void)runner.add(cell, workload_a.jobs, workload_a.apps);
  runner.run_all();
  const std::string json = cell_result_to_json(runner.result(0).cell);
  EXPECT_NE(json.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\""), std::string::npos);
  EXPECT_NE(json.find("\"engine_events\""), std::string::npos);
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);  // no wall clock
}

}  // namespace
}  // namespace dmsim::harness
