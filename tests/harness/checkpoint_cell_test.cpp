// Per-cell checkpointing through the sweep harness: a cell that carries a
// CheckpointSpec writes snapshots while it runs, and a re-run with
// resume=true restores from the file and still lands on the identical
// deterministic result.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace dmsim::harness {
namespace {

TEST(CheckpointCell, ResumedCellMatchesUninterruptedCell) {
  workload::SyntheticWorkloadConfig wcfg;
  wcfg.cirne.num_jobs = 60;
  wcfg.cirne.system_nodes = 32;
  wcfg.cirne.max_job_nodes = 8;
  wcfg.seed = 5150;
  const workload::SyntheticWorkload generated =
      workload::generate_synthetic(wcfg);

  CellConfig cell;
  cell.system.total_nodes = 32;
  cell.system.pct_large_nodes = 0.5;
  cell.policy = policy::PolicyKind::Dynamic;
  cell.sched.sample_interval = 500.0;
  cell.label = "checkpointed";

  const CellResult reference =
      run_cell(cell, generated.jobs, generated.apps);
  ASSERT_TRUE(reference.valid);
  EXPECT_EQ(reference.checkpoint.saves, 0U);
  const std::string ref_json = cell_result_to_json(reference);

  const std::string path = (std::filesystem::path(::testing::TempDir()) /
                            "dmsim_cell_checkpoint.snap")
                               .string();
  std::remove(path.c_str());

  // First leg: checkpoint periodically; the result must be unperturbed and
  // the snapshot file must exist afterwards.
  CheckpointSpec spec;
  spec.path = path;
  spec.every = reference.summary.last_end / 7.0;
  cell.checkpoint = spec;
  const CellResult saved = run_cell(cell, generated.jobs, generated.apps);
  EXPECT_EQ(cell_result_to_json(saved), ref_json);
  EXPECT_GT(saved.checkpoint.saves, 0U);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Second leg: resume from the file (as after an interrupted sweep); the
  // restored run must reproduce the same result.
  cell.checkpoint->resume = true;
  const CellResult resumed = run_cell(cell, generated.jobs, generated.apps);
  EXPECT_EQ(resumed.checkpoint.restores, 1U);
  EXPECT_EQ(cell_result_to_json(resumed), ref_json);

  // The sweep runner threads cells with specs through unchanged.
  cell.checkpoint->resume = true;
  SweepRunner runner(2);
  const std::size_t handle = runner.add(cell, generated.jobs, generated.apps);
  runner.run_all();
  EXPECT_EQ(cell_result_to_json(runner.result(handle).cell), ref_json);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace dmsim::harness
