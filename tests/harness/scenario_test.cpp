#include "harness/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dmsim::harness {
namespace {

TEST(SystemConfig, CountsSplitByFraction) {
  SystemConfig sys;
  sys.total_nodes = 100;
  sys.pct_large_nodes = 0.25;
  EXPECT_EQ(sys.large_count(), 25);
  EXPECT_EQ(sys.normal_count(), 75);
}

TEST(SystemConfig, TotalMemory) {
  SystemConfig sys;
  sys.total_nodes = 4;
  sys.pct_large_nodes = 0.5;
  sys.normal_capacity = gib(64);
  sys.large_capacity = gib(128);
  EXPECT_EQ(sys.total_memory(), 2 * gib(64) + 2 * gib(128));
}

TEST(SystemConfig, MemoryFractionNormalizedToLargeReference) {
  SystemConfig sys;
  sys.total_nodes = 10;
  sys.pct_large_nodes = 1.0;
  EXPECT_DOUBLE_EQ(sys.memory_fraction(), 1.0);
  sys.pct_large_nodes = 0.0;
  EXPECT_DOUBLE_EQ(sys.memory_fraction(), 0.5);  // 64 GiB nodes vs 128 ref
}

TEST(SystemConfig, ToClusterConfigRoundTrips) {
  SystemConfig sys;
  sys.total_nodes = 8;
  sys.pct_large_nodes = 0.25;
  const cluster::Cluster c(sys.to_cluster_config());
  EXPECT_EQ(c.node_count(), 8u);
  EXPECT_EQ(c.total_capacity(), sys.total_memory());
  int large = 0;
  for (const auto& n : c.nodes()) {
    if (n.large) ++large;
  }
  EXPECT_EQ(large, 2);
}

TEST(MemoryLadder, ReproducesPaperAxisPoints) {
  const auto ladder = memory_ladder(1024);
  std::vector<int> pcts;
  for (const auto& sys : ladder) {
    pcts.push_back(static_cast<int>(std::round(sys.memory_fraction() * 100)));
  }
  // Table 4 families yield {25,29,31,38,44,50,57,63,75,88,100} (the paper's
  // axis labels truncate: 37, 43, 62, 87); the figures plot from ~37% up.
  const std::vector<int> expected = {25, 29, 31, 38, 44, 50, 58, 63, 75, 88, 100};
  EXPECT_EQ(pcts, expected);
}

TEST(MemoryLadder, FractionsStrictlyIncreasing) {
  const auto ladder = memory_ladder(512);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].memory_fraction(), ladder[i - 1].memory_fraction());
  }
}

class CellFixture : public ::testing::Test {
 protected:
  CellFixture() {
    workload::SyntheticWorkloadConfig cfg;
    cfg.cirne.num_jobs = 120;
    cfg.cirne.system_nodes = 32;
    cfg.cirne.max_job_nodes = 8;
    cfg.cirne.target_load = 0.7;
    cfg.pct_large_jobs = 0.3;
    cfg.seed = 3;
    generated_ = workload::generate_synthetic(cfg);
    system_.total_nodes = 32;
    system_.pct_large_nodes = 0.5;
  }

  workload::SyntheticWorkload generated_;
  SystemConfig system_;
};

TEST_F(CellFixture, RunCellCompletesWorkload) {
  CellConfig cell;
  cell.system = system_;
  cell.policy = policy::PolicyKind::Dynamic;
  const CellResult r = run_cell(cell, generated_.jobs, generated_.apps);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.summary.completed, generated_.jobs.size());
  EXPECT_GT(r.throughput(), 0.0);
  EXPECT_GT(r.system_cost_usd, 0.0);
  EXPECT_GT(r.throughput_per_dollar(), 0.0);
  EXPECT_EQ(r.provisioned_memory, system_.total_memory());
}

TEST_F(CellFixture, InvalidCellWhenJobsCannotFit) {
  CellConfig cell;
  cell.system = system_;
  cell.system.pct_large_nodes = 0.0;  // no large nodes
  cell.policy = policy::PolicyKind::Baseline;
  // 30% large-memory jobs cannot run on 64 GiB nodes under Baseline.
  const CellResult r = run_cell(cell, generated_.jobs, generated_.apps);
  EXPECT_FALSE(r.valid);
  EXPECT_GT(r.infeasible_jobs, 0u);
  EXPECT_EQ(r.summary.completed, 0u);
}

TEST_F(CellFixture, DisaggregatedValidWhereBaselineIsNot) {
  CellConfig cell;
  cell.system = system_;
  cell.system.pct_large_nodes = 0.0;
  cell.policy = policy::PolicyKind::Static;
  const CellResult r = run_cell(cell, generated_.jobs, generated_.apps);
  EXPECT_TRUE(r.valid);  // borrowing covers the large jobs
  EXPECT_EQ(r.summary.completed, generated_.jobs.size());
}

TEST_F(CellFixture, RunCellsMatchesSequentialRuns) {
  std::vector<CellConfig> cells;
  for (const auto kind :
       {policy::PolicyKind::Static, policy::PolicyKind::Dynamic}) {
    CellConfig cell;
    cell.system = system_;
    cell.policy = kind;
    cells.push_back(cell);
  }
  const auto parallel = run_cells(cells, generated_.jobs, generated_.apps, 2);
  ASSERT_EQ(parallel.size(), 2u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult solo = run_cell(cells[i], generated_.jobs, generated_.apps);
    EXPECT_EQ(parallel[i].summary.completed, solo.summary.completed);
    EXPECT_DOUBLE_EQ(parallel[i].summary.throughput, solo.summary.throughput);
    EXPECT_DOUBLE_EQ(parallel[i].avg_busy_nodes, solo.avg_busy_nodes);
  }
}

TEST_F(CellFixture, CostDependsOnProvisioning) {
  CellConfig big;
  big.system = system_;
  big.system.pct_large_nodes = 1.0;
  CellConfig small = big;
  small.system.pct_large_nodes = 0.0;
  const CellResult rb = run_cell(big, generated_.jobs, generated_.apps);
  const CellResult rs = run_cell(small, generated_.jobs, generated_.apps);
  EXPECT_GT(rb.system_cost_usd, rs.system_cost_usd);
}

}  // namespace
}  // namespace dmsim::harness
