#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace dmsim::util {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  // Several iterations throw concurrently; the guarantee is deterministic:
  // the exception from the LOWEST failing index wins, regardless of which
  // worker finished first. Run many rounds to give racy implementations a
  // chance to fail.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::string caught;
    try {
      pool.parallel_for(64, [](std::size_t i) {
        if (i == 11 || i == 12 || i == 60) {
          throw std::runtime_error("idx-" + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "idx-11") << "round " << round;
  }
}

TEST(ThreadPool, ParallelForRunsEveryIterationDespiteThrow) {
  // A throwing iteration must not short-circuit the rest of the range.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  EXPECT_THROW(pool.parallel_for(hits.size(),
                                 [&](std::size_t i) {
                                   hits[i]++;
                                   if (i == 0) throw std::logic_error("x");
                                 }),
               std::logic_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit([&total, i] { total += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), 500L * 501 / 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] { done++; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, SingleWorkerIsSequentiallyConsistent) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace dmsim::util
