#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dmsim::util {
namespace {

TEST(OnlineStats, EmptyState) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  Rng rng(1);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(10.0, 3.0);
  OnlineStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
  EXPECT_NEAR(s.sum(), sum, 1e-6);
}

TEST(OnlineStats, MergeEqualsCombined) {
  Rng rng(2);
  OnlineStats a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 100);
    (i % 3 == 0 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Quartiles, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const Quartiles q = quartiles(v);
  EXPECT_DOUBLE_EQ(q.min, 1.0);
  EXPECT_DOUBLE_EQ(q.q1, 26.0);
  EXPECT_DOUBLE_EQ(q.median, 51.0);
  EXPECT_DOUBLE_EQ(q.q3, 76.0);
  EXPECT_DOUBLE_EQ(q.max, 101.0);
}

TEST(EcdfTest, StepsThroughSample) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
}

TEST(EcdfTest, QuantileInverse) {
  Ecdf e({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.51), 30.0);
}

TEST(EcdfTest, KsDistanceIdenticalIsZero) {
  Ecdf a({1.0, 2.0, 3.0});
  Ecdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(Ecdf::ks_distance(a, b), 0.0);
}

TEST(EcdfTest, KsDistanceDisjointIsOne) {
  Ecdf a({1.0, 2.0});
  Ecdf b({10.0, 20.0});
  EXPECT_DOUBLE_EQ(Ecdf::ks_distance(a, b), 1.0);
}

TEST(EcdfTest, KsDistanceSymmetric) {
  Ecdf a({1.0, 5.0, 9.0});
  Ecdf b({2.0, 5.0, 7.0, 11.0});
  EXPECT_DOUBLE_EQ(Ecdf::ks_distance(a, b), Ecdf::ks_distance(b, a));
}

TEST(HistogramTest, BucketsAndFlows) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  h.add(-1.0);         // underflow
  h.add(0.0);          // bucket 0 (right-open)
  h.add(9.999);        // bucket 0
  h.add(10.0);         // bucket 1
  h.add(25.0);         // bucket 2
  h.add(30.0);         // overflow (at the last edge)
  h.add(100.0);        // overflow
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 7.0);
  EXPECT_NEAR(h.fraction(0), 2.0 / 7.0, 1e-12);
}

TEST(HistogramTest, WeightedAdds) {
  Histogram h({0.0, 1.0, 2.0});
  h.add(0.5, 3.5);
  h.add(1.5, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 3.5);
  EXPECT_DOUBLE_EQ(h.count(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(HistogramTest, EmptyFractionIsZero) {
  Histogram h({0.0, 1.0});
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

// Property: ECDF quantile and at() are (weak) inverses on random samples.
class EcdfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfPropertyTest, QuantileAtRoundTrip) {
  Rng rng(GetParam());
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.uniform(0, 1000);
  const Ecdf e(xs);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double v = e.quantile(p);
    EXPECT_GE(e.at(v), p - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dmsim::util
