#include "util/small_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

namespace dmsim::util {
namespace {

TEST(SmallFunction, DefaultConstructedIsEmpty) {
  SmallFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
}

TEST(SmallFunction, InvokesLambdaWithCapture) {
  int hits = 0;
  SmallFunction<void()> f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, ReturnsValueAndForwardsArguments) {
  SmallFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(SmallFunction, SmallCaptureStaysInline) {
  struct Small {
    std::array<char, 32> payload;
    void operator()() const {}
  };
  EXPECT_TRUE((SmallFunction<void()>::stores_inline<Small>));
}

TEST(SmallFunction, OversizedCaptureIsBoxedAndStillWorks) {
  struct Big {
    std::array<char, 128> payload{};
    int operator()() const { return payload[0] + 7; }
  };
  EXPECT_FALSE((SmallFunction<int()>::stores_inline<Big>));
  SmallFunction<int()> f = Big{};
  EXPECT_EQ(f(), 7);
}

TEST(SmallFunction, MoveTransfersOwnership) {
  int hits = 0;
  SmallFunction<void()> a = [&hits] { ++hits; };
  SmallFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFunction, MoveAssignDestroysPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  SmallFunction<void()> a = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  a = SmallFunction<void()>([] {});
  EXPECT_EQ(counter.use_count(), 1);  // old capture destroyed
}

TEST(SmallFunction, HoldsMoveOnlyCapture) {
  auto owned = std::make_unique<int>(41);
  SmallFunction<int()> f = [p = std::move(owned)] { return *p + 1; };
  EXPECT_EQ(f(), 42);
  SmallFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(SmallFunction, ResetReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  SmallFunction<void()> f = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  f.reset();
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SmallFunction, NullptrAssignmentClears) {
  SmallFunction<void()> f = [] {};
  f = nullptr;
  EXPECT_TRUE(f == nullptr);
}

TEST(SmallFunction, BoxedMoveIsPointerSteal) {
  // The boxed path relocates by stealing the heap box; the capture itself
  // must not be moved or copied when the wrapper moves.
  struct Payload {
    std::array<char, 128> big{};
    std::string tag = "alive";
    std::string operator()() const { return tag; }
  };
  SmallFunction<std::string()> a = Payload{};
  SmallFunction<std::string()> b = std::move(a);
  SmallFunction<std::string()> c;
  c = std::move(b);
  EXPECT_EQ(c(), "alive");
}

}  // namespace
}  // namespace dmsim::util
