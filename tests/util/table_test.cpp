#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dmsim::util {
namespace {

TEST(TextTable, PrintsHeaderRuleAndRows) {
  TextTable t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, CsvHasCommasNoPadding) {
  TextTable t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TextTable, RowCount) {
  TextTable t;
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, ColumnsAlignAcrossRows) {
  TextTable t;
  t.set_header({"col", "v"});
  t.add_row({"short", "1"});
  t.add_row({"much-longer-cell", "2"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header_line, rule, row1, row2;
  std::getline(is, header_line);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.125, 1), "12.5%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(fmt_sci(0.000123, 2), "1.23e-04");
}

}  // namespace
}  // namespace dmsim::util
