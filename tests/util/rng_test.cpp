#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace dmsim::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChildIsIndependentOfParentDraws) {
  Rng a(42);
  Rng b(42);
  // Drawing from the parent must not perturb child streams.
  for (int i = 0; i < 17; ++i) (void)b();
  Rng ca = a.child("stream");
  Rng cb = b.child("stream");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, ChildrenWithDifferentNamesDiffer) {
  Rng parent(7);
  Rng a = parent.child("alpha");
  Rng b = parent.child("beta");
  EXPECT_NE(a(), b());
}

TEST(Rng, ChildrenWithDifferentIndicesDiffer) {
  Rng parent(7);
  Rng a = parent.child("x", 0);
  Rng b = parent.child("x", 1);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(10);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(15);
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.lognormal(2.0, 0.8);
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], std::exp(2.0), std::exp(2.0) * 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(16);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.weibull(1.0, 2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, GammaMean) {
  Rng rng(18);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(sum / kN, 6.0, 0.15);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gamma(0.5, 1.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.05);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(20);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(22);
  const std::array<double, 3> weights = {1.0, 2.0, 7.0};
  std::array<int, 3> counts = {0, 0, 0};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    counts[rng.discrete(weights)]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.01);
}

TEST(Rng, DiscreteZeroWeightNeverPicked) {
  Rng rng(23);
  const std::array<double, 3> weights = {1.0, 0.0, 1.0};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(rng.discrete(weights), 1u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(24);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, Splitmix64KnownStability) {
  // Lock the seeding path: changing it would silently change every trace.
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
}

TEST(Rng, Fnv1aKnownValue) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Rng, StateRoundTripResumesStream) {
  Rng rng(987654321);
  for (int i = 0; i < 37; ++i) (void)rng();  // advance mid-stream

  const Rng::State saved = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(rng());

  Rng resumed(1);  // different seed/state, fully overwritten by restore
  resumed.restore_state(saved);
  EXPECT_EQ(resumed.state(), saved);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(resumed(), expected[static_cast<std::size_t>(i)]);

  // Derived draws (not just raw words) continue identically too.
  Rng a(55), b(55);
  for (int i = 0; i < 11; ++i) (void)a.uniform();
  for (int i = 0; i < 11; ++i) (void)b.uniform();
  b.restore_state(a.state());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.gamma(2.0, 1.5), b.gamma(2.0, 1.5));
}

// Distribution positivity sweep across many (shape, scale) pairs.
class GammaParamTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaParamTest, AlwaysPositiveAndMeanMatches) {
  const auto [shape, scale] = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape * 1000 + scale));
  double sum = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gamma(shape, scale);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  const double expected = shape * scale;
  EXPECT_NEAR(sum / kN, expected, expected * 0.08);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaParamTest,
                         ::testing::Values(std::pair{0.3, 1.0},
                                           std::pair{0.9, 2.0},
                                           std::pair{1.0, 0.5},
                                           std::pair{2.5, 3.0},
                                           std::pair{10.0, 0.1}));

}  // namespace
}  // namespace dmsim::util
