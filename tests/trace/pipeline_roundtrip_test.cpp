// End-to-end artifact round-trip: a generated workload exported to SWF plus
// a usage-trace file (the simulator's on-disk inputs, Fig. 3 steps 8-9) and
// re-imported must simulate identically to the in-memory original.
#include <gtest/gtest.h>

#include <sstream>

#include "core/dmsim.hpp"
#include "trace/usage_io.hpp"

namespace dmsim {
namespace {

TEST(PipelineRoundTrip, SwfPlusUsageReproducesSimulation) {
  workload::SyntheticWorkloadConfig wl;
  wl.cirne.num_jobs = 120;
  wl.cirne.system_nodes = 32;
  wl.cirne.max_job_nodes = 8;
  wl.pct_large_jobs = 0.4;
  wl.overestimation = 0.6;
  wl.seed = 21;
  auto generated = workload::generate_synthetic(wl);
  const int cores = 32;

  // Export (steps 8-9): SWF job trace + usage-trace file.
  std::stringstream swf_stream;
  trace::write_swf(swf_stream, trace::to_swf(generated.jobs, cores));
  std::stringstream usage_stream;
  trace::write_usage_traces(usage_stream,
                            trace::collect_usage_traces(generated.jobs));

  // Import and reattach.
  trace::Workload reread = trace::from_swf(trace::read_swf(swf_stream), cores);
  const auto usage = trace::read_usage_traces(usage_stream);
  ASSERT_EQ(trace::attach_usage_traces(reread, usage), reread.size());
  // SWF does not carry app profiles; rematch them as the CLI does.
  for (auto& j : reread) {
    j.app_profile = generated.apps.match(j.num_nodes, j.duration);
  }

  // Requested memory survives SWF only up to KB-per-processor rounding.
  ASSERT_EQ(reread.size(), generated.jobs.size());
  for (std::size_t i = 0; i < reread.size(); ++i) {
    EXPECT_EQ(reread[i].id, generated.jobs[i].id);
    EXPECT_EQ(reread[i].num_nodes, generated.jobs[i].num_nodes);
    EXPECT_NEAR(static_cast<double>(reread[i].requested_mem),
                static_cast<double>(generated.jobs[i].requested_mem), 1.0);
    EXPECT_EQ(reread[i].peak_usage(), generated.jobs[i].peak_usage());
  }

  // Same simulation results (up to the <=1 MiB request rounding, which does
  // not change scheduling decisions at GiB scale).
  SimulationConfig cfg;
  cfg.system.total_nodes = 32;
  cfg.system.pct_large_nodes = 0.5;
  cfg.policy = policy::PolicyKind::Dynamic;

  Simulator sim_a(cfg, generated.jobs, &generated.apps);
  Simulator sim_b(cfg, reread, &generated.apps);
  const SimulationResult a = sim_a.run();
  const SimulationResult b = sim_b.run();
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_NEAR(a.records[i].first_start, b.records[i].first_start, 1e-6)
        << "job " << a.records[i].id.get();
    EXPECT_NEAR(a.records[i].end_time, b.records[i].end_time, 1e-6);
  }
}

}  // namespace
}  // namespace dmsim
