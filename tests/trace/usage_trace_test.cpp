#include "trace/usage_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dmsim::trace {
namespace {

UsageTrace steps() {
  return UsageTrace({{0.0, 100}, {0.25, 300}, {0.5, 50}, {0.75, 200}});
}

TEST(UsageTrace, ConstantEverywhere) {
  const auto t = UsageTrace::constant(512);
  EXPECT_EQ(t.at(0.0), 512);
  EXPECT_EQ(t.at(0.5), 512);
  EXPECT_EQ(t.at(1.0), 512);
  EXPECT_EQ(t.peak(), 512);
  EXPECT_DOUBLE_EQ(t.average(), 512.0);
}

TEST(UsageTrace, EmptyTraceIsZero) {
  const UsageTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.at(0.5), 0);
  EXPECT_EQ(t.peak(), 0);
  EXPECT_EQ(t.max_in(0.0, 1.0), 0);
}

TEST(UsageTrace, PiecewiseConstantLookup) {
  const auto t = steps();
  EXPECT_EQ(t.at(0.0), 100);
  EXPECT_EQ(t.at(0.1), 100);
  EXPECT_EQ(t.at(0.25), 300);
  EXPECT_EQ(t.at(0.49), 300);
  EXPECT_EQ(t.at(0.5), 50);
  EXPECT_EQ(t.at(0.9), 200);
  EXPECT_EQ(t.at(1.0), 200);
}

TEST(UsageTrace, LookupClampsOutOfRange) {
  const auto t = steps();
  EXPECT_EQ(t.at(-0.5), 100);
  EXPECT_EQ(t.at(1.5), 200);
}

TEST(UsageTrace, MaxInWindow) {
  const auto t = steps();
  EXPECT_EQ(t.max_in(0.0, 0.2), 100);
  EXPECT_EQ(t.max_in(0.0, 0.3), 300);
  EXPECT_EQ(t.max_in(0.3, 0.6), 300);  // value at 0.3 is 300
  EXPECT_EQ(t.max_in(0.5, 0.6), 50);
  EXPECT_EQ(t.max_in(0.5, 1.0), 200);
  EXPECT_EQ(t.max_in(0.0, 1.0), 300);
}

TEST(UsageTrace, MaxInSwapsReversedBounds) {
  const auto t = steps();
  EXPECT_EQ(t.max_in(0.6, 0.3), t.max_in(0.3, 0.6));
}

TEST(UsageTrace, MaxInPointWindow) {
  const auto t = steps();
  EXPECT_EQ(t.max_in(0.1, 0.1), 100);
  EXPECT_EQ(t.max_in(0.25, 0.25), 300);
}

TEST(UsageTrace, PeakAndAverage) {
  const auto t = steps();
  EXPECT_EQ(t.peak(), 300);
  // 100*0.25 + 300*0.25 + 50*0.25 + 200*0.25 = 162.5
  EXPECT_DOUBLE_EQ(t.average(), 162.5);
}

TEST(UsageTrace, AverageBelowPeakForMultiPhase) {
  const auto t = steps();
  EXPECT_LT(t.average(), static_cast<double>(t.peak()));
}

TEST(UsageTrace, ScaledMultipliesMemory) {
  const auto t = steps().scaled(2.0);
  EXPECT_EQ(t.at(0.0), 200);
  EXPECT_EQ(t.peak(), 600);
}

TEST(UsageTrace, ScaledZeroGivesZero) {
  const auto t = steps().scaled(0.0);
  EXPECT_EQ(t.peak(), 0);
}

TEST(UsageTrace, CompressedKeepsEndpointsAndPeakWithinEpsilon) {
  std::vector<UsagePoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({i / 100.0, 1000 + (i % 3)});  // tiny wobble
  }
  pts[50].mem = 5000;  // one spike
  const UsageTrace t(std::move(pts));
  const UsageTrace c = t.compressed(10.0);
  EXPECT_LT(c.size(), t.size());
  EXPECT_EQ(c.points().front().progress, 0.0);
  EXPECT_EQ(c.peak(), 5000);  // the spike survives compression
}

TEST(UsageTrace, CompressedTwoPointsUnchanged) {
  const UsageTrace t({{0.0, 10}, {1.0, 20}});
  const UsageTrace c = t.compressed(100.0);
  EXPECT_EQ(c.size(), 2u);
}

TEST(Rdp, KeepsFirstAndLast) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  const std::vector<double> ys = {0, 0, 0, 0, 0};
  const auto keep = rdp_keep_indices(xs, ys, 0.1);
  EXPECT_EQ(keep, (std::vector<std::size_t>{0, 4}));
}

TEST(Rdp, KeepsSharpCorner) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  const std::vector<double> ys = {0, 0, 10, 0, 0};
  const auto keep = rdp_keep_indices(xs, ys, 1.0);
  EXPECT_NE(std::find(keep.begin(), keep.end(), 2u), keep.end());
}

TEST(Rdp, ZeroEpsilonKeepsAllNonCollinear) {
  const std::vector<double> xs = {0, 1, 2, 3};
  const std::vector<double> ys = {0, 5, -3, 2};
  const auto keep = rdp_keep_indices(xs, ys, 0.0);
  EXPECT_EQ(keep.size(), 4u);
}

TEST(Rdp, EmptyAndTinyInputs) {
  EXPECT_TRUE(rdp_keep_indices({}, {}, 1.0).empty());
  const std::vector<double> one = {0.0};
  EXPECT_EQ(rdp_keep_indices(one, one, 1.0).size(), 1u);
}

// Property: for random traces, the compressed polyline's pointwise error
// never exceeds epsilon (the RDP guarantee for vertical deviation).
class RdpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RdpPropertyTest, CompressionErrorBounded) {
  util::Rng rng(GetParam());
  std::vector<UsagePoint> pts;
  const int n = 200;
  MiB level = 1000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.1)) {
      level = static_cast<MiB>(rng.uniform_int(100, 10000));
    }
    pts.push_back({static_cast<double>(i) / n,
                   level + rng.uniform_int(-20, 20)});
  }
  const UsageTrace t(std::move(pts));
  const double epsilon = 100.0;
  const UsageTrace c = t.compressed(epsilon);
  ASSERT_LE(c.size(), t.size());
  // Compare the compressed *polyline interpolation* against every original
  // sample (this is the quantity RDP bounds).
  const auto& cp = c.points();
  for (const auto& p : t.points()) {
    // Find the bracketing compressed points.
    std::size_t hi = 0;
    while (hi < cp.size() && cp[hi].progress < p.progress) ++hi;
    double interp;
    if (hi == 0) {
      interp = static_cast<double>(cp.front().mem);
    } else if (hi == cp.size()) {
      interp = static_cast<double>(cp.back().mem);
    } else {
      const auto& a = cp[hi - 1];
      const auto& b = cp[hi];
      const double tt = (p.progress - a.progress) / (b.progress - a.progress);
      interp = static_cast<double>(a.mem) +
               tt * static_cast<double>(b.mem - a.mem);
    }
    EXPECT_LE(std::abs(interp - static_cast<double>(p.mem)), epsilon + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RdpPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace dmsim::trace
