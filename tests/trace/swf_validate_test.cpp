#include "trace/swf_validate.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace dmsim::trace {
namespace {

SwfRecord good(std::int64_t job, double submit) {
  SwfRecord r;
  r.job_number = job;
  r.submit_time = submit;
  r.run_time = 100;
  r.requested_time = 150;
  r.allocated_procs = 32;
  r.requested_procs = 32;
  r.status = 1;
  return r;
}

TEST(SwfValidate, CleanTraceHasNoIssues) {
  SwfTrace t;
  t.records = {good(1, 0), good(2, 10), good(3, 20)};
  const auto issues = validate_swf(t);
  EXPECT_TRUE(issues.empty());
  EXPECT_TRUE(swf_simulatable(issues));
}

TEST(SwfValidate, DuplicateJobNumbersFlagged) {
  SwfTrace t;
  t.records = {good(1, 0), good(1, 10)};
  const auto issues = validate_swf(t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, SwfIssueKind::DuplicateJobNumber);
  EXPECT_EQ(issues[0].record_index, 1u);
  EXPECT_FALSE(swf_simulatable(issues));
}

TEST(SwfValidate, NonMonotonicSubmitIsWarningOnly) {
  SwfTrace t;
  t.records = {good(1, 100), good(2, 50)};
  const auto issues = validate_swf(t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, SwfIssueKind::NonMonotonicSubmit);
  EXPECT_TRUE(swf_simulatable(issues));  // sortable, still usable
}

TEST(SwfValidate, MissingRuntimeBlocksSimulation) {
  SwfRecord r = good(1, 0);
  r.run_time = -1;
  r.requested_time = -1;
  SwfTrace t;
  t.records = {r};
  const auto issues = validate_swf(t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, SwfIssueKind::MissingRuntime);
  EXPECT_FALSE(swf_simulatable(issues));
}

TEST(SwfValidate, MissingProcsBlocksSimulation) {
  SwfRecord r = good(1, 0);
  r.allocated_procs = -1;
  r.requested_procs = -1;
  SwfTrace t;
  t.records = {r};
  const auto issues = validate_swf(t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, SwfIssueKind::MissingProcs);
  EXPECT_FALSE(swf_simulatable(issues));
}

TEST(SwfValidate, NegativeFieldFlagged) {
  SwfRecord r = good(1, 0);
  r.used_memory_kb = -42;  // not the -1 sentinel
  SwfTrace t;
  t.records = {r};
  const auto issues = validate_swf(t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, SwfIssueKind::NegativeField);
  EXPECT_TRUE(swf_simulatable(issues));
}

TEST(SwfValidate, WalltimeBelowRuntimeFlagged) {
  SwfRecord r = good(1, 0);
  r.requested_time = 50;  // < run_time 100
  SwfTrace t;
  t.records = {r};
  const auto issues = validate_swf(t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, SwfIssueKind::WalltimeBelowRuntime);
}

TEST(SwfValidate, IssueKindsHaveNames) {
  for (const auto kind :
       {SwfIssueKind::DuplicateJobNumber, SwfIssueKind::NonMonotonicSubmit,
        SwfIssueKind::MissingRuntime, SwfIssueKind::MissingProcs,
        SwfIssueKind::NegativeField, SwfIssueKind::WalltimeBelowRuntime}) {
    EXPECT_FALSE(to_string(kind).empty());
    EXPECT_NE(to_string(kind), "unknown");
  }
}

// Property: every generated synthetic workload exports to a clean SWF.
class SwfExportValidationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwfExportValidationTest, GeneratedWorkloadsExportClean) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 150;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.6;
  cfg.seed = GetParam();
  const auto w = workload::generate_synthetic(cfg);
  const SwfTrace t = to_swf(w.jobs, 32);
  const auto issues = validate_swf(t);
  EXPECT_TRUE(issues.empty()) << issues.size() << " issues, first: "
                              << (issues.empty() ? "" : issues[0].message);
  EXPECT_TRUE(swf_simulatable(issues));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwfExportValidationTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace dmsim::trace
