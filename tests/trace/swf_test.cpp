#include "trace/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace dmsim::trace {
namespace {

SwfRecord sample_record() {
  SwfRecord r;
  r.job_number = 17;
  r.submit_time = 120.5;
  r.wait_time = 30;
  r.run_time = 3600;
  r.allocated_procs = 64;
  r.used_memory_kb = 2048;
  r.requested_procs = 64;
  r.requested_time = 7200;
  r.requested_memory_kb = 4096;
  r.status = 1;
  r.user_id = 3;
  return r;
}

TEST(Swf, WriteReadRoundTrip) {
  SwfTrace trace;
  trace.header_comments = {"Computer: dmsim test", "MaxJobs: 2"};
  trace.records.push_back(sample_record());
  SwfRecord r2 = sample_record();
  r2.job_number = 18;
  trace.records.push_back(r2);

  std::stringstream ss;
  write_swf(ss, trace);
  const SwfTrace back = read_swf(ss);
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0], trace.records[0]);
  EXPECT_EQ(back.records[1], trace.records[1]);
  ASSERT_EQ(back.header_comments.size(), 2u);
  EXPECT_EQ(back.header_comments[0], "Computer: dmsim test");
}

TEST(Swf, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "; UnixStartTime: 0\n"
      "\n"
      "  ; indented comment\n"
      "1 0 0 100 4 -1 -1 4 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace t = read_swf(in);
  EXPECT_EQ(t.header_comments.size(), 2u);
  ASSERT_EQ(t.records.size(), 1u);
  EXPECT_EQ(t.records[0].job_number, 1);
  EXPECT_EQ(t.records[0].run_time, 100);
  EXPECT_EQ(t.records[0].requested_time, 200);
}

TEST(Swf, UnknownFieldsAreMinusOne) {
  std::istringstream in(
      "5 10 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace t = read_swf(in);
  ASSERT_EQ(t.records.size(), 1u);
  EXPECT_EQ(t.records[0].run_time, -1);
  EXPECT_EQ(t.records[0].requested_memory_kb, -1);
}

TEST(Swf, ThrowsOnShortLine) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), TraceError);
}

TEST(Swf, ThrowsOnMissingFile) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), TraceError);
}

TEST(Swf, ToSwfConvertsNodesToProcs) {
  Workload jobs;
  JobSpec j;
  j.id = JobId{42};
  j.submit_time = 100.0;
  j.num_nodes = 4;
  j.requested_mem = 2048;  // MiB per node
  j.duration = 500.0;
  j.walltime = 600.0;
  j.usage = UsageTrace::constant(1024);
  jobs.push_back(j);

  const SwfTrace t = to_swf(jobs, 32);
  ASSERT_EQ(t.records.size(), 1u);
  const SwfRecord& r = t.records[0];
  EXPECT_EQ(r.job_number, 42);
  EXPECT_EQ(r.allocated_procs, 4 * 32);
  EXPECT_EQ(r.requested_time, 600.0);
  // 2048 MiB -> KB per processor: 2048*1024/32.
  EXPECT_EQ(r.requested_memory_kb, 2048 * 1024 / 32);
  EXPECT_EQ(r.used_memory_kb, 1024 * 1024 / 32);
}

TEST(Swf, FromSwfReconstructsJob) {
  SwfTrace t;
  SwfRecord r = sample_record();
  r.requested_procs = 96;  // 3 nodes at 32 cores
  r.requested_memory_kb = 1024;
  t.records.push_back(r);
  const Workload jobs = from_swf(t, 32);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id.get(), 17u);
  EXPECT_EQ(jobs[0].num_nodes, 3);
  EXPECT_EQ(jobs[0].duration, 3600.0);
  // 1024 KB/proc * 32 procs/node / 1024 = 32 MiB per node.
  EXPECT_EQ(jobs[0].requested_mem, 32);
  EXPECT_EQ(jobs[0].usage.peak(), 32);
}

TEST(Swf, FromSwfRoundsNodesUp) {
  SwfTrace t;
  SwfRecord r = sample_record();
  r.requested_procs = 33;  // 33 procs at 32 cores -> 2 nodes
  t.records.push_back(r);
  const Workload jobs = from_swf(t, 32);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].num_nodes, 2);
}

TEST(Swf, RoundTripThroughJobSpecs) {
  Workload jobs;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    JobSpec j;
    j.id = JobId{i};
    j.submit_time = i * 10.0;
    j.num_nodes = static_cast<int>(i);
    j.requested_mem = static_cast<MiB>(i) * 1024;
    j.duration = i * 100.0;
    j.walltime = i * 150.0;
    j.usage = UsageTrace::constant(j.requested_mem);
    jobs.push_back(j);
  }
  const Workload back = from_swf(to_swf(jobs, 32), 32);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(back[i].id, jobs[i].id);
    EXPECT_EQ(back[i].num_nodes, jobs[i].num_nodes);
    EXPECT_DOUBLE_EQ(back[i].submit_time, jobs[i].submit_time);
    EXPECT_DOUBLE_EQ(back[i].duration, jobs[i].duration);
    EXPECT_EQ(back[i].requested_mem, jobs[i].requested_mem);
  }
}

}  // namespace
}  // namespace dmsim::trace
