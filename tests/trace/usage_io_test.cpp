#include "trace/usage_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/google_usage.hpp"

namespace dmsim::trace {
namespace {

UsageTraceMap sample_map() {
  UsageTraceMap m;
  m.emplace(1, JobUsage{UsageTrace({{0.0, 100}, {0.5, 200}, {0.9, 50}}), {}});
  m.emplace(7, JobUsage{UsageTrace::constant(4096), {1.0, 0.75, 0.5}});
  m.emplace(3, JobUsage{UsageTrace({{0.0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}}), {}});
  return m;
}

TEST(UsageIo, WriteReadRoundTrip) {
  const UsageTraceMap original = sample_map();
  std::stringstream ss;
  write_usage_traces(ss, original);
  const UsageTraceMap back = read_usage_traces(ss);
  ASSERT_EQ(back.size(), original.size());
  for (const auto& [id, u] : original) {
    ASSERT_TRUE(back.contains(id)) << id;
    const JobUsage& b = back.at(id);
    ASSERT_EQ(b.trace.size(), u.trace.size());
    for (std::size_t i = 0; i < u.trace.size(); ++i) {
      EXPECT_DOUBLE_EQ(b.trace.points()[i].progress, u.trace.points()[i].progress);
      EXPECT_EQ(b.trace.points()[i].mem, u.trace.points()[i].mem);
    }
    EXPECT_EQ(b.node_scales, u.node_scales);
  }
}

TEST(UsageIo, OutputIsCanonicallyOrdered) {
  std::stringstream ss;
  write_usage_traces(ss, sample_map());
  const std::string text = ss.str();
  EXPECT_LT(text.find("job 1 "), text.find("job 3 "));
  EXPECT_LT(text.find("job 3 "), text.find("job 7 "));
}

TEST(UsageIo, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "job 5 2\n"
      "0 100\n"
      "# interleaved comment\n"
      "0.5 200\n");
  const UsageTraceMap m = read_usage_traces(in);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(5).trace.at(0.75), 200);
}

TEST(UsageIo, ThrowsOnTruncatedBlock) {
  std::istringstream in("job 1 3\n0 100\n0.5 200\n");
  EXPECT_THROW(read_usage_traces(in), TraceError);
}

TEST(UsageIo, ThrowsOnDuplicateJob) {
  std::istringstream in("job 1 1\n0 100\njob 1 1\n0 200\n");
  EXPECT_THROW(read_usage_traces(in), TraceError);
}

TEST(UsageIo, ThrowsOnPointOutsideBlock) {
  std::istringstream in("0.5 200\n");
  EXPECT_THROW(read_usage_traces(in), TraceError);
}

TEST(UsageIo, ThrowsOnMalformedHeader) {
  std::istringstream in("job x 2\n");
  EXPECT_THROW(read_usage_traces(in), TraceError);
}

TEST(UsageIo, ThrowsOnMissingFile) {
  EXPECT_THROW(read_usage_traces_file("/nonexistent/usage.txt"), TraceError);
}

TEST(UsageIo, CollectAndAttachRoundTrip) {
  Workload jobs;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    JobSpec j;
    j.id = JobId{i};
    j.usage = UsageTrace({{0.0, static_cast<MiB>(i * 100)},
                          {0.5, static_cast<MiB>(i * 50)}});
    if (i % 2 == 0) j.node_usage_scale = {1.0, 0.6};
    jobs.push_back(std::move(j));
  }
  const UsageTraceMap collected = collect_usage_traces(jobs);
  EXPECT_EQ(collected.size(), 4u);

  // Blank the workload, then re-attach.
  Workload blank = jobs;
  for (auto& j : blank) {
    j.usage = UsageTrace::constant(1);
    j.node_usage_scale.clear();
  }
  EXPECT_EQ(attach_usage_traces(blank, collected), 4u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(blank[i].usage.peak(), jobs[i].usage.peak());
    EXPECT_EQ(blank[i].node_usage_scale, jobs[i].node_usage_scale);
  }
}

TEST(UsageIo, AttachSkipsUnknownJobs) {
  Workload jobs;
  JobSpec j;
  j.id = JobId{99};
  j.usage = UsageTrace::constant(7);
  jobs.push_back(std::move(j));
  const UsageTraceMap traces = sample_map();  // no job 99
  EXPECT_EQ(attach_usage_traces(jobs, traces), 0u);
  EXPECT_EQ(jobs[0].usage.peak(), 7);
}

TEST(UsageIo, RoundTripsGeneratedLibraryShapes) {
  // Property: shapes from the Google-style generator survive serialization.
  const auto lib =
      workload::GoogleUsageLibrary::synthetic(util::Rng(77), 16);
  UsageTraceMap m;
  for (std::size_t i = 0; i < lib.size(); ++i) {
    m.emplace(static_cast<std::uint32_t>(i + 1),
              JobUsage{lib.instantiate(i, 12345), {}});
  }
  std::stringstream ss;
  write_usage_traces(ss, m);
  const UsageTraceMap back = read_usage_traces(ss);
  ASSERT_EQ(back.size(), m.size());
  for (const auto& [id, u] : m) {
    EXPECT_EQ(back.at(id).trace.peak(), u.trace.peak());
    EXPECT_DOUBLE_EQ(back.at(id).trace.average(), u.trace.average());
  }
}

TEST(UsageIo, ScalesRoundTrip) {
  UsageTraceMap m;
  m.emplace(11, JobUsage{UsageTrace::constant(100), {1.0, 0.8, 0.55}});
  std::stringstream ss;
  write_usage_traces(ss, m);
  const UsageTraceMap back = read_usage_traces(ss);
  ASSERT_EQ(back.at(11).node_scales,
            (std::vector<double>{1.0, 0.8, 0.55}));
}

TEST(UsageIo, RejectsScalesOutOfRange) {
  std::istringstream in("job 1 1\nscales 2 1.0 1.5\n0 100\n");
  EXPECT_THROW(read_usage_traces(in), TraceError);
}

TEST(UsageIo, RejectsScalesAfterDataPoints) {
  std::istringstream in("job 1 2\n0 100\nscales 1 0.5\n0.5 50\n");
  EXPECT_THROW(read_usage_traces(in), TraceError);
}

}  // namespace
}  // namespace dmsim::trace
