#include "policy/policy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmsim::policy {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec make_job(std::uint32_t id, int nodes, MiB request) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.num_nodes = nodes;
  j.requested_mem = request;
  j.duration = 100.0;
  j.walltime = 200.0;
  j.usage = trace::UsageTrace::constant(request);
  return j;
}

cluster::Cluster mixed_cluster() {
  // Nodes 0-2: 64 GiB normal; node 3: 128 GiB large.
  return cluster::Cluster(
      cluster::make_cluster_config(3, 64 * kGiB, 1, 128 * kGiB));
}

TEST(ToString, PolicyNames) {
  EXPECT_EQ(to_string(PolicyKind::Baseline), "baseline");
  EXPECT_EQ(to_string(PolicyKind::Static), "static");
  EXPECT_EQ(to_string(PolicyKind::Dynamic), "dynamic");
}

TEST(MakePolicy, ConstructsMatchingKind) {
  for (const auto kind : {PolicyKind::Baseline, PolicyKind::Static,
                          PolicyKind::Dynamic}) {
    const auto p = make_policy(kind);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), kind);
  }
  EXPECT_FALSE(make_policy(PolicyKind::Baseline)->dynamic_updates());
  EXPECT_FALSE(make_policy(PolicyKind::Static)->dynamic_updates());
  EXPECT_TRUE(make_policy(PolicyKind::Dynamic)->dynamic_updates());
}

// --------------------------------------------------------------------------
// Baseline
// --------------------------------------------------------------------------

TEST(Baseline, StartsJobThatFitsLocally) {
  auto c = mixed_cluster();
  BaselinePolicy p;
  const auto job = make_job(1, 2, 32 * kGiB);
  EXPECT_TRUE(p.try_start(job, c));
  EXPECT_EQ(c.job_slots(job.id).size(), 2u);
  for (const auto* slot : c.job_slots(job.id)) {
    EXPECT_EQ(slot->local, 32 * kGiB);
    EXPECT_EQ(slot->remote_total(), 0);
  }
  c.check_invariants();
}

TEST(Baseline, PrefersSmallestSufficientNode) {
  auto c = mixed_cluster();
  BaselinePolicy p;
  const auto job = make_job(1, 1, 10 * kGiB);
  EXPECT_TRUE(p.try_start(job, c));
  // Best fit: a 64 GiB node, not the 128 GiB one.
  EXPECT_FALSE(c.node(NodeId{3}).running_job.valid());
}

TEST(Baseline, LargeRequestNeedsLargeNode) {
  auto c = mixed_cluster();
  BaselinePolicy p;
  const auto job = make_job(1, 1, 100 * kGiB);
  EXPECT_TRUE(p.try_start(job, c));
  EXPECT_EQ(c.node(NodeId{3}).running_job, job.id);
}

TEST(Baseline, FailsWhenRequestExceedsEveryNode) {
  auto c = mixed_cluster();
  BaselinePolicy p;
  const auto job = make_job(1, 1, 200 * kGiB);
  EXPECT_FALSE(p.try_start(job, c));
  EXPECT_FALSE(p.feasible(job, c));
  EXPECT_EQ(c.total_allocated(), 0);
}

TEST(Baseline, FailsWhenNotEnoughFittingNodes) {
  auto c = mixed_cluster();
  BaselinePolicy p;
  const auto job = make_job(1, 2, 100 * kGiB);  // only one 128 GiB node
  EXPECT_FALSE(p.try_start(job, c));
  EXPECT_FALSE(p.feasible(job, c));
}

TEST(Baseline, NoMemorySharingBetweenNodes) {
  auto c = mixed_cluster();
  BaselinePolicy p;
  // Three normal jobs occupy the normal nodes, one large job the large node.
  EXPECT_TRUE(p.try_start(make_job(1, 3, 64 * kGiB), c));
  EXPECT_TRUE(p.try_start(make_job(2, 1, 128 * kGiB), c));
  // Nothing left even for a tiny job.
  EXPECT_FALSE(p.try_start(make_job(3, 1, 1 * kGiB), c));
  c.check_invariants();
}

// --------------------------------------------------------------------------
// Static
// --------------------------------------------------------------------------

TEST(Static, StartsWithLocalAllocationWhenItFits) {
  auto c = mixed_cluster();
  StaticPolicy p;
  const auto job = make_job(1, 1, 32 * kGiB);
  EXPECT_TRUE(p.try_start(job, c));
  const auto* slot = c.job_slots(job.id)[0];
  EXPECT_EQ(slot->local, 32 * kGiB);
  EXPECT_EQ(slot->remote_total(), 0);
}

TEST(Static, BorrowsWhenRequestExceedsHostCapacity) {
  auto c = mixed_cluster();
  StaticPolicy p;
  const auto job = make_job(1, 1, 150 * kGiB);
  EXPECT_TRUE(p.try_start(job, c));
  const auto* slot = c.job_slots(job.id)[0];
  EXPECT_EQ(slot->total(), 150 * kGiB);
  EXPECT_GT(slot->remote_total(), 0);
  // Host should be the node with the most free memory (the large node).
  EXPECT_EQ(slot->host, NodeId{3});
  c.check_invariants();
}

TEST(Static, TightestFitAmongSufficientNodes) {
  auto c = mixed_cluster();
  StaticPolicy p;
  const auto job = make_job(1, 1, 10 * kGiB);
  EXPECT_TRUE(p.try_start(job, c));
  // A 64 GiB node is a tighter fit than the 128 GiB node.
  EXPECT_NE(c.job_slots(job.id)[0]->host, NodeId{3});
}

TEST(Static, FailsWhenTotalFreeMemoryInsufficient) {
  auto c = mixed_cluster();
  StaticPolicy p;
  // 2 nodes x 200 GiB = 400 GiB > 320 GiB system capacity.
  const auto job = make_job(1, 2, 200 * kGiB);
  EXPECT_FALSE(p.try_start(job, c));
  EXPECT_FALSE(p.feasible(job, c));
  EXPECT_EQ(c.total_allocated(), 0);
}

TEST(Static, FeasibleWhenSystemCanEverHoldIt) {
  auto c = mixed_cluster();
  StaticPolicy p;
  // 310 GiB total across 2 nodes fits the 320 GiB system via borrowing.
  EXPECT_TRUE(p.feasible(make_job(1, 2, 155 * kGiB), c));
  // Too many nodes is infeasible regardless of memory.
  EXPECT_FALSE(p.feasible(make_job(2, 5, 1 * kGiB), c));
}

TEST(Static, MemoryNodeCannotHost) {
  auto c = mixed_cluster();
  StaticPolicy p;
  // One job that borrows nearly everything turns other nodes into memory
  // nodes.
  const auto big = make_job(1, 1, 280 * kGiB);
  EXPECT_TRUE(p.try_start(big, c));
  int hostable = 0;
  for (const auto& n : c.nodes()) {
    if (c.can_host(n.id)) ++hostable;
  }
  // Another job must fail for lack of hostable nodes or memory.
  const auto next = make_job(2, 3, 1 * kGiB);
  EXPECT_FALSE(p.try_start(next, c));
  EXPECT_LT(hostable, 3);
  c.check_invariants();
}

TEST(Static, RollbackLeavesClusterUntouched) {
  auto c = mixed_cluster();
  StaticPolicy p;
  // First job consumes most of the pool.
  EXPECT_TRUE(p.try_start(make_job(1, 1, 250 * kGiB), c));
  const MiB allocated_before = c.total_allocated();
  // Second wants more than remains; try_start must fail cleanly.
  const auto job = make_job(2, 1, 100 * kGiB);
  EXPECT_FALSE(p.try_start(job, c));
  EXPECT_EQ(c.total_allocated(), allocated_before);
  EXPECT_TRUE(c.job_slots(job.id).empty());
  c.check_invariants();
}

TEST(Static, MultiNodeJobAllocatesEveryHost) {
  auto c = mixed_cluster();
  StaticPolicy p;
  const auto job = make_job(1, 3, 60 * kGiB);
  EXPECT_TRUE(p.try_start(job, c));
  const auto slots = c.job_slots(job.id);
  ASSERT_EQ(slots.size(), 3u);
  for (const auto* slot : slots) EXPECT_EQ(slot->total(), 60 * kGiB);
}

// --------------------------------------------------------------------------
// resize_to_demand (the Dynamic Actuator)
// --------------------------------------------------------------------------

class ResizeFixture : public ::testing::Test {
 protected:
  ResizeFixture() : c_(cluster::make_cluster_config(3, 64 * kGiB, 0, 0)) {
    c_.assign_job(job_, std::vector<NodeId>{NodeId{0}});
    (void)c_.grow_local(job_, NodeId{0}, 50 * kGiB);
    (void)c_.grow_remote(job_, NodeId{0}, 30 * kGiB);
  }
  cluster::Cluster c_;
  const JobId job_{1};
};

TEST_F(ResizeFixture, ShrinkReleasesRemoteFirst) {
  // 80 GiB allocated (50 local + 30 remote); demand 60 -> drop 20 remote.
  const auto out = resize_to_demand(c_, job_, NodeId{0}, 60 * kGiB);
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.released, 20 * kGiB);
  const auto& slot = c_.slot(job_, NodeId{0});
  EXPECT_EQ(slot.local, 50 * kGiB);
  EXPECT_EQ(slot.remote_total(), 10 * kGiB);
  c_.check_invariants();
}

TEST_F(ResizeFixture, ShrinkPastRemoteTakesLocal) {
  // Demand 30 -> all 30 remote released plus 20 local.
  const auto out = resize_to_demand(c_, job_, NodeId{0}, 30 * kGiB);
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.released, 50 * kGiB);
  const auto& slot = c_.slot(job_, NodeId{0});
  EXPECT_EQ(slot.remote_total(), 0);
  EXPECT_EQ(slot.local, 30 * kGiB);
  c_.check_invariants();
}

TEST_F(ResizeFixture, GrowPrefersLocal) {
  // Host has 14 GiB free locally; demand 90 -> +10 local then remote.
  const auto out = resize_to_demand(c_, job_, NodeId{0}, 90 * kGiB);
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.acquired, 10 * kGiB);
  const auto& slot = c_.slot(job_, NodeId{0});
  EXPECT_EQ(slot.local, 60 * kGiB);
  EXPECT_EQ(slot.remote_total(), 30 * kGiB);
  c_.check_invariants();
}

TEST_F(ResizeFixture, GrowSpillsToRemote) {
  const auto out = resize_to_demand(c_, job_, NodeId{0}, 120 * kGiB);
  EXPECT_TRUE(out.satisfied);
  const auto& slot = c_.slot(job_, NodeId{0});
  EXPECT_EQ(slot.local, 64 * kGiB);  // host full
  EXPECT_EQ(slot.remote_total(), 56 * kGiB);
  c_.check_invariants();
}

TEST_F(ResizeFixture, GrowFailsWhenPoolExhausted) {
  // System: 192 GiB total; demand 200 GiB cannot be satisfied.
  const auto out = resize_to_demand(c_, job_, NodeId{0}, 200 * kGiB);
  EXPECT_FALSE(out.satisfied);
  EXPECT_EQ(out.allocated, c_.total_capacity());  // kept what it got
  c_.check_invariants();
}

TEST_F(ResizeFixture, NoopWhenDemandEqualsAllocation) {
  const auto out = resize_to_demand(c_, job_, NodeId{0}, 80 * kGiB);
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.released, 0);
  EXPECT_EQ(out.acquired, 0);
  EXPECT_EQ(out.allocated, 80 * kGiB);
}

TEST_F(ResizeFixture, ShrinkToZero) {
  const auto out = resize_to_demand(c_, job_, NodeId{0}, 0);
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.allocated, 0);
  EXPECT_EQ(c_.total_allocated(), 0);
  c_.check_invariants();
}

}  // namespace
}  // namespace dmsim::policy
