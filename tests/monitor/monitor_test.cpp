// MemoryMonitor unit contracts: the window guard, oracle exactness, the
// sampled monitor's deterministic noise/staleness model, and the adaptive
// monitor's split/merge + period adaptation — including the region cap and
// byte-identical state round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "monitor/monitor.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/job_spec.hpp"

namespace dmsim {
namespace {

using monitor::MonitorConfig;
using monitor::MonitorKind;
using monitor::Reading;

/// A job with a pronounced mid-life spike: flat 1000 MiB, a 4000 MiB spike
/// over [0.45, 0.55), then 1500 MiB. Coarse monitors blur the spike.
trace::JobSpec spiky_job(JobId id = JobId{7}) {
  trace::JobSpec spec;
  spec.id = id;
  spec.num_nodes = 1;
  spec.requested_mem = 2000;
  spec.duration = 3600.0;
  spec.walltime = 7200.0;
  spec.usage = trace::UsageTrace({{0.0, 1000},
                                  {0.45, 4000},
                                  {0.55, 1500}});
  return spec;
}

TEST(DemandWindowEnd, GuardsDegenerateInputs) {
  // Normal case: 600 s of look-ahead on a 3600 s job at slowdown 1 covers
  // one sixth of the progress axis.
  EXPECT_DOUBLE_EQ(monitor::demand_window_end(0.25, 600.0, 3600.0, 1.0),
                   0.25 + 600.0 / 3600.0);
  // Zero / negative duration: the window must degrade to "rest of the job",
  // never divide by zero.
  EXPECT_DOUBLE_EQ(monitor::demand_window_end(0.25, 600.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(monitor::demand_window_end(0.25, 600.0, -5.0, 1.0), 1.0);
  // Non-positive look-ahead.
  EXPECT_DOUBLE_EQ(monitor::demand_window_end(0.25, 0.0, 3600.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(monitor::demand_window_end(0.25, -60.0, 3600.0, 1.0), 1.0);
  // Poisoned slowdown: NaN and zero both collapse to the full window rather
  // than handing max_in an inverted or NaN bound.
  EXPECT_DOUBLE_EQ(monitor::demand_window_end(
                       0.25, 600.0, 3600.0,
                       std::numeric_limits<double>::quiet_NaN()),
                   1.0);
  EXPECT_DOUBLE_EQ(monitor::demand_window_end(0.25, 600.0, 3600.0, 0.0), 1.0);
  // Huge look-ahead (e.g. an absurd update interval): saturates at 1.0-ish
  // finite values, never infinity.
  const double end = monitor::demand_window_end(
      0.1, std::numeric_limits<double>::max(), 1.0, 1.0);
  EXPECT_TRUE(std::isfinite(end));
  EXPECT_GE(end, 0.1);
}

TEST(OracleMonitor, ReturnsExactWindowMaximum) {
  auto mon = monitor::make_monitor(MonitorConfig{});
  ASSERT_EQ(mon->kind(), MonitorKind::Oracle);
  EXPECT_FALSE(mon->models_runtime_oom());

  const trace::JobSpec spec = spiky_job();
  // Window [0.4, 0.5667) covers the spike start: demand is the true peak.
  const Reading r = mon->update(spec.id, spec, 0.4, 1.0, 600.0, false);
  EXPECT_EQ(r.demand, spec.usage.max_in(0.4, 0.4 + 600.0 / 3600.0));
  EXPECT_EQ(r.demand, 4000);
  EXPECT_DOUBLE_EQ(r.next_interval, 600.0);
  EXPECT_DOUBLE_EQ(r.overhead_factor, 1.0);
  EXPECT_EQ(r.abs_error, 0);
  EXPECT_EQ(r.overhead_us, 0);

  // plan_initial covers the stretched zeroth window the same way.
  EXPECT_EQ(mon->plan_initial(spec.id, spec, 0.0, 1.0, 3600.0 * 0.5), 4000);
  EXPECT_EQ(mon->plan_initial(spec.id, spec, 0.0, 1.0, 600.0), 1000);
}

TEST(SampledMonitor, NoiseIsDeterministicAndBounded) {
  MonitorConfig cfg;
  cfg.kind = MonitorKind::Sampled;
  cfg.relative_error = 0.2;
  const trace::JobSpec spec = spiky_job();

  auto a = monitor::make_monitor(cfg);
  auto b = monitor::make_monitor(cfg);
  EXPECT_TRUE(a->models_runtime_oom());
  for (int i = 0; i < 32; ++i) {
    const double p = i / 40.0;
    const Reading ra = a->update(spec.id, spec, p, 1.0, 300.0, false);
    const Reading rb = b->update(spec.id, spec, p, 1.0, 300.0, false);
    // Identical config => identical noise sequence => identical readings.
    EXPECT_EQ(ra.demand, rb.demand) << "update " << i;
    // Headroom provisioning: demand is estimate * (1 + err), and the raw
    // estimate is observed * [1 - err, 1 + err].
    const MiB observed =
        spec.usage.max_in(p, monitor::demand_window_end(p, 300.0,
                                                        spec.duration, 1.0));
    const auto lo = static_cast<double>(observed) * (1.0 - cfg.relative_error) *
                    (1.0 + cfg.relative_error);
    const auto hi = static_cast<double>(observed) * (1.0 + cfg.relative_error) *
                    (1.0 + cfg.relative_error);
    EXPECT_GE(static_cast<double>(ra.demand), std::floor(lo)) << "update " << i;
    EXPECT_LE(static_cast<double>(ra.demand), std::ceil(hi)) << "update " << i;
  }

  // A different seed produces a different sequence somewhere.
  MonitorConfig other = cfg;
  other.seed = 12345;
  auto c = monitor::make_monitor(other);
  bool diverged = false;
  for (int i = 0; i < 32 && !diverged; ++i) {
    const double p = i / 40.0;
    diverged = c->update(spec.id, spec, p, 1.0, 300.0, false).demand !=
               a->update(spec.id, spec, p, 1.0, 300.0, false).demand;
  }
  EXPECT_TRUE(diverged);
}

TEST(SampledMonitor, StalenessObservesThePast) {
  // With zero noise the estimate is exactly the observed window max, so
  // staleness is directly visible: at the spike the stale monitor still
  // reports the pre-spike plateau.
  MonitorConfig cfg;
  cfg.kind = MonitorKind::Sampled;
  cfg.relative_error = 0.0;
  cfg.staleness = 720.0;  // 0.2 of progress at slowdown 1
  const trace::JobSpec spec = spiky_job();
  auto mon = monitor::make_monitor(cfg);

  // Fresh window [0.45, 0.5333) sits on the spike; the stale view describes
  // [0.25, 0.3333), still on the 1000 MiB plateau.
  const Reading r = mon->update(spec.id, spec, 0.45, 1.0, 300.0, false);
  EXPECT_EQ(r.demand, 1000);
  // And the reported error is the full spike height.
  EXPECT_EQ(r.abs_error, 3000);
}

TEST(SampledMonitor, StateRoundTripsAndStopsReset) {
  MonitorConfig cfg;
  cfg.kind = MonitorKind::Sampled;
  cfg.relative_error = 0.15;
  const trace::JobSpec spec = spiky_job();

  auto mon = monitor::make_monitor(cfg);
  (void)mon->update(spec.id, spec, 0.1, 1.0, 300.0, false);
  (void)mon->update(spec.id, spec, 0.2, 1.0, 300.0, false);

  // Save, keep updating, then restore a twin and replay: readings match.
  snapshot::Writer w;
  mon->save_state(w);
  const Reading expected = mon->update(spec.id, spec, 0.3, 1.0, 300.0, false);

  auto twin = monitor::make_monitor(cfg);
  snapshot::Reader r(w.buffer());
  twin->restore_state(r);
  EXPECT_TRUE(r.at_end());
  const Reading got = twin->update(spec.id, spec, 0.3, 1.0, 300.0, false);
  EXPECT_EQ(got.demand, expected.demand);

  // Re-save is byte-identical.
  snapshot::Writer w2;
  twin->save_state(w2);
  snapshot::Writer w3;
  mon->save_state(w3);
  // mon advanced one update past the cut; the twin replayed the same update.
  EXPECT_EQ(w2.buffer(), w3.buffer());

  // on_job_stop drops the counter: the noise sequence starts over.
  mon->on_job_stop(spec.id);
  auto fresh = monitor::make_monitor(cfg);
  EXPECT_EQ(mon->update(spec.id, spec, 0.1, 1.0, 300.0, false).demand,
            fresh->update(spec.id, spec, 0.1, 1.0, 300.0, false).demand);
}

TEST(AdaptiveMonitor, SplitsOnMissAndMergesOnAgreement) {
  MonitorConfig cfg;
  cfg.kind = MonitorKind::Adaptive;
  cfg.min_interval = 60.0;
  cfg.max_interval = 600.0;
  cfg.error_bound = 0.1;
  const trace::JobSpec spec = spiky_job();

  monitor::AdaptiveMonitor mon(cfg);
  EXPECT_TRUE(mon.models_runtime_oom());
  EXPECT_EQ(mon.region_count(spec.id), 0U);

  // Window [0.40, 0.4833) straddles the spike onset at 0.45: the single
  // [0,1] region's probe at the overlap midpoint (~0.44) sees the plateau
  // while the window truth is the spike — a miss, so the region splits and
  // the period halves.
  const Reading r1 = mon.update(spec.id, spec, 0.40, 1.0, 300.0, false);
  EXPECT_EQ(mon.region_count(spec.id), 2U);
  EXPECT_GT(r1.abs_error, 0);
  EXPECT_LT(r1.next_interval, 300.0);
  EXPECT_GE(r1.next_interval, cfg.min_interval);
  EXPECT_GT(r1.overhead_factor, 1.0);
  EXPECT_EQ(r1.regions, 2);

  // Drive updates across the whole job: regions never exceed the cap and
  // the period stays inside [min, max].
  std::size_t peak_regions = 0;
  for (int i = 1; i < 200; ++i) {
    const double p = i / 200.0;
    const Reading r = mon.update(spec.id, spec, p, 1.0, 300.0, false);
    peak_regions = std::max(peak_regions, mon.region_count(spec.id));
    ASSERT_LE(mon.region_count(spec.id), monitor::kMaxRegionsPerJob);
    ASSERT_GE(r.next_interval, cfg.min_interval);
    ASSERT_LE(r.next_interval, cfg.max_interval);
  }
  // The spike forced real splitting...
  EXPECT_GT(peak_regions, 2U);
  // ...and agreement on the flat tail merged some of it back.
  EXPECT_LT(mon.region_count(spec.id), peak_regions);

  mon.on_job_stop(spec.id);
  EXPECT_EQ(mon.region_count(spec.id), 0U);
}

TEST(AdaptiveMonitor, IntervalLockPinsThePeriod) {
  MonitorConfig cfg;
  cfg.kind = MonitorKind::Adaptive;
  cfg.min_interval = 60.0;
  cfg.max_interval = 600.0;
  const trace::JobSpec spec = spiky_job();
  monitor::AdaptiveMonitor mon(cfg);

  // GlobalBatch mode: a single timer drives every job, so next_interval
  // must echo the base interval even while the estimate adapts.
  for (int i = 0; i < 20; ++i) {
    const Reading r = mon.update(spec.id, spec, i / 20.0, 1.0, 300.0, true);
    ASSERT_DOUBLE_EQ(r.next_interval, 300.0);
  }
}

TEST(AdaptiveMonitor, StateRoundTripIsByteIdentical) {
  MonitorConfig cfg;
  cfg.kind = MonitorKind::Adaptive;
  cfg.min_interval = 60.0;
  cfg.max_interval = 600.0;
  cfg.error_bound = 0.05;
  const trace::JobSpec spec = spiky_job();
  const trace::JobSpec spec2 = spiky_job(JobId{11});

  monitor::AdaptiveMonitor mon(cfg);
  for (int i = 0; i < 40; ++i) {
    (void)mon.update(spec.id, spec, i / 40.0, 1.0, 300.0, false);
    (void)mon.update(spec2.id, spec2, i / 50.0, 1.3, 300.0, false);
  }

  snapshot::Writer w;
  mon.save_state(w);

  monitor::AdaptiveMonitor twin(cfg);
  snapshot::Reader r(w.buffer());
  twin.restore_state(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(twin.region_count(spec.id), mon.region_count(spec.id));
  EXPECT_EQ(twin.region_count(spec2.id), mon.region_count(spec2.id));

  snapshot::Writer w2;
  twin.save_state(w2);
  EXPECT_EQ(w.buffer(), w2.buffer());

  // And the restored monitor continues identically.
  for (int i = 40; i < 60; ++i) {
    const Reading a = mon.update(spec.id, spec, i / 60.0, 1.0, 300.0, false);
    const Reading b = twin.update(spec.id, spec, i / 60.0, 1.0, 300.0, false);
    ASSERT_EQ(a.demand, b.demand);
    ASSERT_DOUBLE_EQ(a.next_interval, b.next_interval);
    ASSERT_EQ(a.regions, b.regions);
  }
}

TEST(MakeMonitor, DispatchesOnKind) {
  MonitorConfig cfg;
  EXPECT_EQ(monitor::make_monitor(cfg)->kind(), MonitorKind::Oracle);
  cfg.kind = MonitorKind::Sampled;
  EXPECT_EQ(monitor::make_monitor(cfg)->kind(), MonitorKind::Sampled);
  cfg.kind = MonitorKind::Adaptive;
  EXPECT_EQ(monitor::make_monitor(cfg)->kind(), MonitorKind::Adaptive);
  EXPECT_STREQ(monitor::to_string(MonitorKind::Oracle), "oracle");
  EXPECT_STREQ(monitor::to_string(MonitorKind::Sampled), "sampled");
  EXPECT_STREQ(monitor::to_string(MonitorKind::Adaptive), "adaptive");
}

}  // namespace
}  // namespace dmsim
