#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace dmsim::workload {
namespace {

SyntheticWorkloadConfig base_config() {
  SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 600;
  cfg.cirne.system_nodes = 128;
  cfg.cirne.max_job_nodes = 64;
  cfg.pct_large_jobs = 0.5;
  cfg.seed = 17;
  return cfg;
}

TEST(Generator, ProducesAllJobsWithUniqueIds) {
  const SyntheticWorkload w = generate_synthetic(base_config());
  EXPECT_EQ(w.jobs.size(), 600u);
  std::set<std::uint32_t> ids;
  for (const auto& j : w.jobs) {
    EXPECT_TRUE(j.id.valid());
    ids.insert(j.id.get());
  }
  EXPECT_EQ(ids.size(), w.jobs.size());
}

TEST(Generator, JobsSortedBySubmitTime) {
  const SyntheticWorkload w = generate_synthetic(base_config());
  EXPECT_TRUE(std::is_sorted(w.jobs.begin(), w.jobs.end(),
                             [](const auto& a, const auto& b) {
                               return a.submit_time < b.submit_time;
                             }));
}

TEST(Generator, LargeJobFractionNearTarget) {
  for (const double target : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    SyntheticWorkloadConfig cfg = base_config();
    cfg.pct_large_jobs = target;
    const SyntheticWorkload w = generate_synthetic(cfg);
    std::size_t large = 0;
    for (const auto& j : w.jobs) {
      if (is_large_memory_job(j, cfg.normal_capacity)) ++large;
    }
    const double frac = static_cast<double>(large) / w.jobs.size();
    EXPECT_NEAR(frac, target, 0.06) << "target " << target;
  }
}

TEST(Generator, LargeJobsNeedLargeNodes) {
  const SyntheticWorkloadConfig cfg = base_config();
  const SyntheticWorkload w = generate_synthetic(cfg);
  for (const auto& j : w.jobs) {
    if (is_large_memory_job(j, cfg.normal_capacity)) {
      EXPECT_GT(j.peak_usage(), cfg.normal_capacity);
      EXPECT_LE(j.peak_usage(), cfg.large_capacity);
    } else {
      EXPECT_LE(j.peak_usage(), cfg.normal_capacity);
    }
  }
}

TEST(Generator, ZeroOverestimationMeansRequestEqualsPeak) {
  const SyntheticWorkload w = generate_synthetic(base_config());
  for (const auto& j : w.jobs) {
    EXPECT_EQ(j.requested_mem, j.peak_usage());
  }
}

TEST(Generator, OverestimationInflatesRequestOnly) {
  SyntheticWorkloadConfig cfg = base_config();
  const SyntheticWorkload exact = generate_synthetic(cfg);
  cfg.overestimation = 0.6;
  const SyntheticWorkload inflated = generate_synthetic(cfg);
  ASSERT_EQ(exact.jobs.size(), inflated.jobs.size());
  for (std::size_t i = 0; i < exact.jobs.size(); ++i) {
    EXPECT_EQ(exact.jobs[i].peak_usage(), inflated.jobs[i].peak_usage());
    EXPECT_EQ(inflated.jobs[i].requested_mem,
              static_cast<MiB>(std::llround(
                  static_cast<double>(exact.jobs[i].peak_usage()) * 1.6)));
  }
}

TEST(Generator, AppProfilesResolveIntoPool) {
  const SyntheticWorkload w = generate_synthetic(base_config());
  for (const auto& j : w.jobs) {
    ASSERT_GE(j.app_profile, 0);
    ASSERT_LT(static_cast<std::size_t>(j.app_profile), w.apps.size());
  }
}

TEST(Generator, UsageTracesAreMultiPhase) {
  const SyntheticWorkload w = generate_synthetic(base_config());
  std::size_t multi = 0;
  for (const auto& j : w.jobs) {
    ASSERT_FALSE(j.usage.empty());
    if (j.usage.size() > 2) ++multi;
    EXPECT_LE(j.usage.average(), static_cast<double>(j.peak_usage()));
  }
  EXPECT_GT(multi, w.jobs.size() / 2);
}

TEST(Generator, Deterministic) {
  const SyntheticWorkload a = generate_synthetic(base_config());
  const SyntheticWorkload b = generate_synthetic(base_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_EQ(a.jobs[i].requested_mem, b.jobs[i].requested_mem);
    EXPECT_EQ(a.jobs[i].usage.size(), b.jobs[i].usage.size());
  }
}

TEST(Generator, SeedChangesWorkload) {
  SyntheticWorkloadConfig cfg = base_config();
  const SyntheticWorkload a = generate_synthetic(cfg);
  cfg.seed = 18;
  const SyntheticWorkload b = generate_synthetic(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size() && !differs; ++i) {
    differs = a.jobs[i].requested_mem != b.jobs[i].requested_mem;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, AverageUsageLeavesReclaimableGap) {
  // The paper's premise: average usage is much lower than the maximum,
  // which is what dynamic provisioning reclaims.
  const SyntheticWorkload w = generate_synthetic(base_config());
  double avg_sum = 0.0;
  double peak_sum = 0.0;
  for (const auto& j : w.jobs) {
    avg_sum += j.usage.average();
    peak_sum += static_cast<double>(j.peak_usage());
  }
  EXPECT_LT(avg_sum / peak_sum, 0.75);
}

}  // namespace
}  // namespace dmsim::workload
