#include "workload/google_usage.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dmsim::workload {
namespace {

GoogleUsageLibrary library(std::size_t n = 64) {
  return GoogleUsageLibrary::synthetic(util::Rng(31), n);
}

TEST(GoogleUsage, SyntheticLibrarySize) {
  EXPECT_EQ(library(10).size(), 10u);
  EXPECT_TRUE(GoogleUsageLibrary().empty());
}

TEST(GoogleUsage, Deterministic) {
  const auto a = library();
  const auto b = library();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.shape(i).avg_peak_ratio, b.shape(i).avg_peak_ratio);
    EXPECT_EQ(a.shape(i).shape.size(), b.shape(i).shape.size());
  }
}

TEST(GoogleUsage, EveryShapePeaksExactlyAtScale) {
  const auto lib = library();
  for (std::size_t i = 0; i < lib.size(); ++i) {
    EXPECT_EQ(lib.shape(i).shape.peak(), GoogleUsageLibrary::kShapeScale);
  }
}

TEST(GoogleUsage, AverageWellBelowPeak) {
  // The reclaimable-gap property (Table 3/Fig. 4): on average, usage sits
  // well below the maximum.
  const auto lib = library(128);
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const double r = lib.shape(i).avg_peak_ratio;
    EXPECT_GT(r, 0.0);
    EXPECT_LE(r, 1.0);
    ratio_sum += r;
  }
  EXPECT_LT(ratio_sum / static_cast<double>(lib.size()), 0.65);
}

TEST(GoogleUsage, ShapesStartAtProgressZero) {
  const auto lib = library();
  for (std::size_t i = 0; i < lib.size(); ++i) {
    EXPECT_EQ(lib.shape(i).shape.points().front().progress, 0.0);
  }
}

TEST(GoogleUsage, MatchPrefersSimilarJobs) {
  const auto lib = library(256);
  const std::size_t small = lib.match(1, 600.0, 512);
  const UsageShape& s = lib.shape(small);
  // The matched shape should be in the neighbourhood of the query.
  EXPECT_LT(s.typical_runtime_s, 4.0 * 3600.0);
  const std::size_t big = lib.match(128, 100000.0, 100000);
  EXPECT_NE(small, big);
}

TEST(GoogleUsage, InstantiateScalesToPeak) {
  const auto lib = library();
  const trace::UsageTrace t = lib.instantiate(0, 4096, 0.0);
  EXPECT_EQ(t.peak(), 4096);
}

TEST(GoogleUsage, InstantiateCompressesWithRdp) {
  const auto lib = library();
  // Pick the largest shape so compression has room to bite.
  std::size_t big = 0;
  for (std::size_t i = 0; i < lib.size(); ++i) {
    if (lib.shape(i).shape.size() > lib.shape(big).shape.size()) big = i;
  }
  const trace::UsageTrace raw = lib.instantiate(big, 100000, 0.0);
  const trace::UsageTrace compressed = lib.instantiate(big, 100000, 0.05);
  EXPECT_LT(compressed.size(), raw.size());
  // Peak error bounded by epsilon.
  EXPECT_NEAR(static_cast<double>(compressed.peak()),
              static_cast<double>(raw.peak()), 0.05 * 100000 + 1.0);
}

TEST(GoogleUsage, InstantiatePreservesAveragePeakGap) {
  const auto lib = library();
  for (std::size_t i = 0; i < 16; ++i) {
    const trace::UsageTrace t = lib.instantiate(i, 50000);
    EXPECT_LE(t.average(), static_cast<double>(t.peak()));
  }
}

// Window granularity property: shapes use 5-minute-style windows, so the
// number of points before compression equals the window count.
class ShapeWindowTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShapeWindowTest, PointCountMatchesWindows) {
  const auto lib = library(64);
  const UsageShape& s = lib.shape(GetParam());
  // typical_runtime_s was set to windows * 300.
  const auto windows =
      static_cast<std::size_t>(s.typical_runtime_s / 300.0 + 0.5);
  EXPECT_EQ(s.shape.size(), windows);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeWindowTest,
                         ::testing::Values(0u, 7u, 15u, 31u, 63u));

}  // namespace
}  // namespace dmsim::workload
