#include "workload/stats.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace dmsim::workload {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec job(std::uint32_t id, Seconds submit, int nodes, MiB peak,
                   Seconds duration, double overest = 0.0) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.duration = duration;
  j.walltime = duration;
  j.usage = trace::UsageTrace::constant(peak);
  j.requested_mem = static_cast<MiB>(
      static_cast<double>(peak) * (1.0 + overest));
  return j;
}

TEST(WorkloadStats, EmptyWorkload) {
  const WorkloadStats s = characterize({}, 64 * kGiB);
  EXPECT_EQ(s.total_jobs, 0u);
  EXPECT_EQ(s.offered_load(100), 0.0);
  EXPECT_EQ(s.large_fraction(), 0.0);
}

TEST(WorkloadStats, BasicAggregates) {
  const trace::Workload jobs = {
      job(1, 0.0, 2, 10 * kGiB, 100.0),
      job(2, 50.0, 4, 80 * kGiB, 200.0),
      job(3, 150.0, 1, 20 * kGiB, 400.0),
  };
  const WorkloadStats s = characterize(jobs, 64 * kGiB);
  EXPECT_EQ(s.total_jobs, 3u);
  EXPECT_DOUBLE_EQ(s.first_submit, 0.0);
  EXPECT_DOUBLE_EQ(s.last_submit, 150.0);
  EXPECT_DOUBLE_EQ(s.total_node_seconds, 2 * 100.0 + 4 * 200.0 + 400.0);
  EXPECT_DOUBLE_EQ(s.nodes.mean(), (2 + 4 + 1) / 3.0);
  EXPECT_EQ(s.large_memory_jobs, 1u);
  EXPECT_NEAR(s.large_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.normal.jobs, 2u);
  EXPECT_EQ(s.large.jobs, 1u);
  // Interarrivals: 50, 100.
  EXPECT_DOUBLE_EQ(s.interarrival.mean(), 75.0);
}

TEST(WorkloadStats, OfferedLoadAgainstSystem) {
  const trace::Workload jobs = {
      job(1, 0.0, 10, 1 * kGiB, 100.0),
      job(2, 100.0, 10, 1 * kGiB, 100.0),
  };
  const WorkloadStats s = characterize(jobs, 64 * kGiB);
  // 2000 node-seconds over a 100 s window on 20 nodes => load 1.0.
  EXPECT_DOUBLE_EQ(s.offered_load(20), 1.0);
  EXPECT_DOUBLE_EQ(s.offered_load(40), 0.5);
}

TEST(WorkloadStats, RequestRatioReflectsOverestimation) {
  const trace::Workload jobs = {
      job(1, 0.0, 1, 10 * kGiB, 100.0, 0.6),
      job(2, 1.0, 1, 20 * kGiB, 100.0, 0.6),
  };
  const WorkloadStats s = characterize(jobs, 64 * kGiB);
  EXPECT_NEAR(s.request_ratio.mean(), 1.6, 1e-9);
}

TEST(WorkloadStats, QuartilesPerClass) {
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 9; ++i) {
    jobs.push_back(job(i, i, 1, static_cast<MiB>(i) * kGiB, 100.0));
  }
  const WorkloadStats s = characterize(jobs, 5 * kGiB);
  EXPECT_EQ(s.normal.jobs, 5u);  // 1..5 GiB
  EXPECT_EQ(s.large.jobs, 4u);   // 6..9 GiB
  EXPECT_DOUBLE_EQ(s.normal.peak_memory_mib.median, 3.0 * kGiB);
  EXPECT_DOUBLE_EQ(s.large.peak_memory_mib.min, 6.0 * kGiB);
  EXPECT_DOUBLE_EQ(s.large.peak_memory_mib.max, 9.0 * kGiB);
}

TEST(WorkloadStats, MatchesGeneratorTargets) {
  SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 800;
  cfg.cirne.system_nodes = 128;
  cfg.cirne.max_job_nodes = 32;
  cfg.cirne.target_load = 0.8;
  cfg.pct_large_jobs = 0.4;
  cfg.overestimation = 0.5;
  cfg.seed = 8;
  const SyntheticWorkload w = generate_synthetic(cfg);
  const WorkloadStats s = characterize(w.jobs, cfg.normal_capacity);
  EXPECT_NEAR(s.large_fraction(), 0.4, 0.05);
  EXPECT_NEAR(s.request_ratio.mean(), 1.5, 0.01);
  // Submission window approximates the CIRNE horizon, so the offered load
  // lands near the target.
  EXPECT_NEAR(s.offered_load(cfg.cirne.system_nodes), 0.8, 0.15);
  // Class medians hit the Table 3 calibration.
  EXPECT_NEAR(s.normal.peak_memory_mib.median, 8089.0, 2000.0);
  EXPECT_NEAR(s.large.peak_memory_mib.median, 86961.0, 8000.0);
  // The reclaimable gap holds within both classes.
  EXPECT_LT(s.normal.avg_peak_ratio.mean(), 0.7);
  EXPECT_LT(s.large.avg_peak_ratio.mean(), 0.7);
}

}  // namespace
}  // namespace dmsim::workload
