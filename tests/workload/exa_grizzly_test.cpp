// exa-Grizzly scaling: deterministic topology + workload at any node count,
// the paper's node-mix ratio preserved, and sweep output over the scaled
// systems byte-identical at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "workload/exa_grizzly.hpp"

namespace dmsim::workload {
namespace {

TEST(ExaGrizzly, DeterministicAcrossCalls) {
  const ExaGrizzlyScale a = exa_grizzly(3000);
  const ExaGrizzlyScale b = exa_grizzly(3000);

  ASSERT_EQ(a.topology.nodes.size(), b.topology.nodes.size());
  for (std::size_t i = 0; i < a.topology.nodes.size(); ++i) {
    EXPECT_EQ(a.topology.nodes[i].capacity, b.topology.nodes[i].capacity);
    EXPECT_EQ(a.topology.nodes[i].cores, b.topology.nodes[i].cores);
    EXPECT_EQ(a.topology.nodes[i].large, b.topology.nodes[i].large);
  }
  ASSERT_EQ(a.week_jobs.size(), b.week_jobs.size());
  for (std::size_t i = 0; i < a.week_jobs.size(); ++i) {
    const trace::JobSpec& x = a.week_jobs[i];
    const trace::JobSpec& y = b.week_jobs[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.submit_time, y.submit_time);
    EXPECT_EQ(x.num_nodes, y.num_nodes);
    EXPECT_EQ(x.duration, y.duration);
    EXPECT_EQ(x.walltime, y.walltime);
    EXPECT_EQ(x.requested_mem, y.requested_mem);
    EXPECT_EQ(x.app_profile, y.app_profile);
    EXPECT_EQ(x.peak_usage(), y.peak_usage());
  }
}

TEST(ExaGrizzly, JobIdsAreDenseAndArrivalSorted) {
  const ExaGrizzlyScale s = exa_grizzly(3000);
  ASSERT_FALSE(s.week_jobs.empty());
  for (std::size_t i = 0; i < s.week_jobs.size(); ++i) {
    EXPECT_EQ(s.week_jobs[i].id.get(), i + 1);
    if (i > 0) {
      EXPECT_GE(s.week_jobs[i].submit_time, s.week_jobs[i - 1].submit_time);
    }
  }
  EXPECT_EQ(s.replicas, 3);  // ceil(3000 / 1490)
}

TEST(ExaGrizzly, NodeMixRatioPreservedAtScale) {
  // The paper's simulated SC system is 1024 normal : 466 large. At every
  // target the large share must round to 466/1490 of the total, and the
  // topology must put normal nodes first (the harness SystemConfig layout).
  for (const int target : {1490, 10'000, 100'000}) {
    const ExaGrizzlyScale s = exa_grizzly(target);
    const int expected_large = static_cast<int>(
        std::llround(static_cast<double>(target) * 466.0 / 1490.0));
    EXPECT_EQ(s.large_nodes, expected_large) << target;
    EXPECT_EQ(s.normal_nodes + s.large_nodes, target) << target;
    ASSERT_EQ(s.topology.nodes.size(), static_cast<std::size_t>(target));
    for (int i = 0; i < target; ++i) {
      const cluster::NodeConfig& n =
          s.topology.nodes[static_cast<std::size_t>(i)];
      const bool should_be_large = i >= s.normal_nodes;
      EXPECT_EQ(n.large, should_be_large) << "node " << i << " at " << target;
      EXPECT_EQ(n.capacity, should_be_large ? gib(128) : gib(64));
    }
  }
}

TEST(ExaGrizzly, LoadScalesWithNodeCount) {
  // K replicas of the same arrival process: job count should scale roughly
  // linearly with the target (each replica is an independent week, so the
  // ratio is not exact — utilization draws differ per replica).
  const ExaGrizzlyScale small = exa_grizzly(1490);
  const ExaGrizzlyScale big = exa_grizzly(14'900);
  const double ratio = static_cast<double>(big.week_jobs.size()) /
                       static_cast<double>(small.week_jobs.size());
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 20.0);
  EXPECT_EQ(big.replicas, 10);
}

TEST(ExaGrizzly, SweepOverScaledSystemsIsThreadCountInvariant) {
  // The scale_sweep golden property: simulating the scaled weeks through
  // the sweep runner yields byte-identical per-cell JSON at 1 and 8
  // threads. Small targets keep this fast.
  std::vector<ExaGrizzlyScale> scales;
  scales.push_back(exa_grizzly(192));
  scales.push_back(exa_grizzly(320));

  const auto run = [&](std::size_t threads) {
    harness::SweepRunner sweep(threads);
    std::vector<std::size_t> handles;
    for (const ExaGrizzlyScale& s : scales) {
      harness::CellConfig cell;
      cell.system.total_nodes = static_cast<int>(s.topology.nodes.size());
      cell.system.pct_large_nodes =
          static_cast<double>(s.large_nodes) /
          static_cast<double>(s.normal_nodes + s.large_nodes);
      cell.system.normal_capacity = gib(64);
      cell.system.large_capacity = gib(128);
      cell.system.cores_per_node = 36;
      cell.policy = policy::PolicyKind::Dynamic;
      handles.push_back(sweep.add(std::move(cell), s.week_jobs, s.apps));
    }
    sweep.run_all();
    std::string out;
    for (const std::size_t h : handles) {
      out += harness::cell_result_to_json(sweep.result(h).cell);
      out += '\n';
    }
    return out;
  };

  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"completed\""), std::string::npos);
}

}  // namespace
}  // namespace dmsim::workload
