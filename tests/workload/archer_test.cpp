#include "workload/archer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dmsim::workload {
namespace {

TEST(ArcherTable, PercentagesRoughlySumToHundred) {
  for (const auto family : {TraceFamily::Synthetic, TraceFamily::Grizzly}) {
    for (const auto size_class :
         {SizeClass::All, SizeClass::Small, SizeClass::Large}) {
      const auto w = memory_bucket_percentages(family, size_class);
      const double total = std::accumulate(w.begin(), w.end(), 0.0);
      EXPECT_NEAR(total, 100.0, 0.5) << "family/class sums off";
    }
  }
}

TEST(ArcherTable, ColumnsAreDistinct) {
  const auto synth = memory_bucket_percentages(TraceFamily::Synthetic, SizeClass::All);
  const auto griz = memory_bucket_percentages(TraceFamily::Grizzly, SizeClass::All);
  EXPECT_NE(synth[0], griz[0]);
}

// Sampling must reproduce the Table 2 bucket frequencies.
class ArcherSampleTest
    : public ::testing::TestWithParam<std::pair<TraceFamily, SizeClass>> {};

TEST_P(ArcherSampleTest, EmpiricalBucketFrequenciesMatchTable) {
  const auto [family, size_class] = GetParam();
  util::Rng rng(99);
  util::Histogram hist({0.0, 12.0 * 1024, 24.0 * 1024, 48.0 * 1024,
                        96.0 * 1024, 128.0 * 1024});
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const MiB m = sample_peak_memory(rng, family, size_class);
    ASSERT_GT(m, 0);
    ASSERT_LE(m, 128 * 1024);
    hist.add(static_cast<double>(m));
  }
  const auto expected = memory_bucket_percentages(family, size_class);
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_NEAR(hist.fraction(b) * 100.0, expected[b], 1.0)
        << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Columns, ArcherSampleTest,
    ::testing::Values(std::pair{TraceFamily::Synthetic, SizeClass::All},
                      std::pair{TraceFamily::Synthetic, SizeClass::Small},
                      std::pair{TraceFamily::Synthetic, SizeClass::Large},
                      std::pair{TraceFamily::Grizzly, SizeClass::All},
                      std::pair{TraceFamily::Grizzly, SizeClass::Small},
                      std::pair{TraceFamily::Grizzly, SizeClass::Large}));

TEST(ArcherSample, CapClampsValues) {
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(sample_peak_memory(rng, TraceFamily::Grizzly, SizeClass::All,
                                 32 * 1024),
              32 * 1024);
  }
}

TEST(Table3Samplers, NormalClassWithinBounds) {
  util::Rng rng(6);
  const MiB normal_cap = 64 * 1024;
  util::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const MiB m = sample_normal_class_peak(rng, normal_cap);
    ASSERT_GE(m, 64);
    ASSERT_LE(m, normal_cap);
    stats.add(static_cast<double>(m));
  }
  // Median target from Table 3 is ~8 GiB; mean of the clipped lognormal
  // lands somewhat above it.
  EXPECT_GT(stats.mean(), 4000.0);
  EXPECT_LT(stats.mean(), 20000.0);
}

TEST(Table3Samplers, NormalClassMedianNearPaper) {
  util::Rng rng(7);
  std::vector<double> xs(20001);
  for (auto& x : xs) {
    x = static_cast<double>(sample_normal_class_peak(rng, 64 * 1024));
  }
  const double median = util::quantile(xs, 0.5);
  EXPECT_NEAR(median, 8089.0, 1500.0);  // Table 3: median 8089 MB
}

TEST(Table3Samplers, LargeClassStrictlyAboveNormalCapacity) {
  util::Rng rng(8);
  const MiB normal_cap = 64 * 1024;
  const MiB large_cap = 128 * 1024;
  for (int i = 0; i < 20000; ++i) {
    const MiB m = sample_large_class_peak(rng, normal_cap, large_cap);
    ASSERT_GT(m, normal_cap);
    ASSERT_LE(m, large_cap);
  }
}

TEST(Table3Samplers, LargeClassMedianNearPaper) {
  util::Rng rng(9);
  std::vector<double> xs(20001);
  for (auto& x : xs) {
    x = static_cast<double>(
        sample_large_class_peak(rng, 64 * 1024, 128 * 1024));
  }
  const double median = util::quantile(xs, 0.5);
  EXPECT_NEAR(median, 86961.0, 6000.0);  // Table 3: median 86961 MB
}

TEST(Table3Samplers, LargeClassWorksForSmallNodeFamily) {
  util::Rng rng(10);
  // 32/64 GiB family: the lognormal fit mostly misses, exercising the
  // log-uniform fallback.
  for (int i = 0; i < 5000; ++i) {
    const MiB m = sample_large_class_peak(rng, 32 * 1024, 64 * 1024);
    ASSERT_GT(m, 32 * 1024);
    ASSERT_LE(m, 64 * 1024);
  }
}

}  // namespace
}  // namespace dmsim::workload
