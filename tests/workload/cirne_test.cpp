#include "workload/cirne.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace dmsim::workload {
namespace {

CirneConfig base_config() {
  CirneConfig cfg;
  cfg.num_jobs = 2000;
  cfg.system_nodes = 256;
  cfg.max_job_nodes = 128;
  cfg.target_load = 0.8;
  cfg.seed = 21;
  return cfg;
}

TEST(Cirne, GeneratesRequestedJobCount) {
  const CirneTrace t = generate_cirne(base_config());
  EXPECT_EQ(t.jobs.size(), 2000u);
}

TEST(Cirne, ArrivalsSortedWithinHorizon) {
  const CirneTrace t = generate_cirne(base_config());
  EXPECT_TRUE(std::is_sorted(t.jobs.begin(), t.jobs.end(),
                             [](const CirneJob& a, const CirneJob& b) {
                               return a.arrival < b.arrival;
                             }));
  for (const auto& j : t.jobs) {
    EXPECT_GE(j.arrival, 0.0);
    EXPECT_LT(j.arrival, t.horizon);
  }
}

TEST(Cirne, RealizedLoadMatchesTarget) {
  const CirneTrace t = generate_cirne(base_config());
  EXPECT_NEAR(t.offered_load, 0.8, 1e-9);
  double node_seconds = 0.0;
  for (const auto& j : t.jobs) {
    node_seconds += static_cast<double>(j.nodes) * j.runtime;
  }
  EXPECT_NEAR(node_seconds / (256.0 * t.horizon), 0.8, 1e-9);
}

TEST(Cirne, SizesWithinBounds) {
  const CirneTrace t = generate_cirne(base_config());
  int serial = 0;
  for (const auto& j : t.jobs) {
    EXPECT_GE(j.nodes, 1);
    EXPECT_LE(j.nodes, 128);
    if (j.nodes == 1) ++serial;
  }
  // Serial fraction ~ configured 24% plus 1-node draws from other paths.
  EXPECT_GT(serial, 300);
  EXPECT_LT(serial, 1100);
}

TEST(Cirne, PowerOfTwoBias) {
  const CirneTrace t = generate_cirne(base_config());
  int pow2 = 0;
  int parallel = 0;
  for (const auto& j : t.jobs) {
    if (j.nodes == 1) continue;
    ++parallel;
    if ((j.nodes & (j.nodes - 1)) == 0) ++pow2;
  }
  EXPECT_GT(static_cast<double>(pow2) / parallel, 0.6);
}

TEST(Cirne, RuntimesClippedToValidRange) {
  const CirneTrace t = generate_cirne(base_config());
  for (const auto& j : t.jobs) {
    EXPECT_GE(j.runtime, 60.0);
    EXPECT_LE(j.runtime, 7.0 * 86400.0);
  }
}

TEST(Cirne, WalltimePadsRuntime) {
  const CirneTrace t = generate_cirne(base_config());
  for (const auto& j : t.jobs) {
    EXPECT_GE(j.walltime, j.runtime * 1.1 - 1e-6);
    EXPECT_LE(j.walltime, j.runtime * 2.5 + 1e-6);
  }
}

TEST(Cirne, DeterministicForSameSeed) {
  const CirneTrace a = generate_cirne(base_config());
  const CirneTrace b = generate_cirne(base_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes);
    EXPECT_EQ(a.jobs[i].runtime, b.jobs[i].runtime);
  }
}

TEST(Cirne, DifferentSeedsDiffer) {
  CirneConfig cfg = base_config();
  const CirneTrace a = generate_cirne(cfg);
  cfg.seed = 22;
  const CirneTrace b = generate_cirne(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].runtime != b.jobs[i].runtime) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Cirne, HigherLoadShrinksHorizon) {
  CirneConfig cfg = base_config();
  cfg.target_load = 0.4;
  const Seconds horizon_low = generate_cirne(cfg).horizon;
  cfg.target_load = 0.8;
  const Seconds horizon_high = generate_cirne(cfg).horizon;
  EXPECT_NEAR(horizon_low / horizon_high, 2.0, 1e-9);
}

TEST(Cirne, DailyCycleConcentratesDaytimeArrivals) {
  CirneConfig cfg = base_config();
  cfg.num_jobs = 20000;
  const CirneTrace t = generate_cirne(cfg);
  int day = 0;
  int night = 0;
  for (const auto& j : t.jobs) {
    const double hour = std::fmod(j.arrival, 86400.0) / 3600.0;
    if (hour >= 8.0 && hour < 20.0) {
      ++day;
    } else {
      ++night;
    }
  }
  EXPECT_GT(day, night);
}

}  // namespace
}  // namespace dmsim::workload
