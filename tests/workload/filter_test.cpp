#include "workload/filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/generator.hpp"

namespace dmsim::workload {
namespace {

constexpr MiB kGiB = 1024;

trace::Workload mixed_workload(std::size_t normal_count,
                               std::size_t large_count) {
  trace::Workload jobs;
  std::uint32_t id = 1;
  for (std::size_t i = 0; i < normal_count + large_count; ++i) {
    trace::JobSpec j;
    j.id = JobId{id++};
    j.submit_time = static_cast<double>(i) * 10.0;
    j.num_nodes = 1;
    j.duration = 100.0;
    j.walltime = 100.0;
    const MiB peak = (i < normal_count) ? 8 * kGiB : 100 * kGiB;
    j.usage = trace::UsageTrace::constant(peak);
    j.requested_mem = peak;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

TEST(FilterJobs, PredicateSelectsSubset) {
  const auto jobs = mixed_workload(6, 4);
  const auto large = filter_jobs(jobs, [](const trace::JobSpec& j) {
    return is_large_memory_job(j, 64 * kGiB);
  });
  EXPECT_EQ(large.size(), 4u);
  for (const auto& j : large) EXPECT_GT(j.peak_usage(), 64 * kGiB);
}

TEST(ResampleMix, HitsTargetFractionExactly) {
  const auto jobs = mixed_workload(60, 40);
  util::Rng rng(4);
  const auto half = resample_mix(jobs, 0.5, 64 * kGiB, rng);
  std::size_t large = 0;
  for (const auto& j : half) {
    if (is_large_memory_job(j, 64 * kGiB)) ++large;
  }
  // Budget: min(40/0.5, 60/0.5) = 80 jobs -> 40 large + 40 normal.
  EXPECT_EQ(half.size(), 80u);
  EXPECT_EQ(large, 40u);
}

TEST(ResampleMix, ZeroAndOneSelectSingleClass) {
  const auto jobs = mixed_workload(6, 4);
  util::Rng rng(5);
  const auto none = resample_mix(jobs, 0.0, 64 * kGiB, rng);
  EXPECT_EQ(none.size(), 6u);
  for (const auto& j : none) EXPECT_FALSE(is_large_memory_job(j, 64 * kGiB));
  const auto all = resample_mix(jobs, 1.0, 64 * kGiB, rng);
  EXPECT_EQ(all.size(), 4u);
  for (const auto& j : all) EXPECT_TRUE(is_large_memory_job(j, 64 * kGiB));
}

TEST(ResampleMix, PreservesArrivalOrder) {
  const auto jobs = mixed_workload(20, 20);
  util::Rng rng(6);
  const auto out = resample_mix(jobs, 0.4, 64 * kGiB, rng);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const auto& a, const auto& b) {
                               return a.submit_time < b.submit_time;
                             }));
}

TEST(ResampleMix, DeterministicInRng) {
  const auto jobs = mixed_workload(30, 30);
  util::Rng a(7);
  util::Rng b(7);
  const auto ra = resample_mix(jobs, 0.3, 64 * kGiB, a);
  const auto rb = resample_mix(jobs, 0.3, 64 * kGiB, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
  }
}

TEST(RescaleArrivals, ShiftsToZeroAndStretches) {
  auto jobs = mixed_workload(3, 0);
  jobs[0].submit_time = 100.0;
  jobs[1].submit_time = 150.0;
  jobs[2].submit_time = 300.0;
  const auto out = rescale_arrivals(jobs, 2.0);
  EXPECT_DOUBLE_EQ(out[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(out[1].submit_time, 100.0);
  EXPECT_DOUBLE_EQ(out[2].submit_time, 400.0);
  // Durations untouched.
  EXPECT_DOUBLE_EQ(out[0].duration, 100.0);
}

TEST(RescaleArrivals, EmptyWorkloadOk) {
  EXPECT_TRUE(rescale_arrivals({}, 2.0).empty());
}

TEST(WithOverestimation, RewritesRequestsOnly) {
  const auto jobs = mixed_workload(2, 2);
  const auto out = with_overestimation(jobs, 0.6);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(out[i].peak_usage(), jobs[i].peak_usage());
    EXPECT_EQ(out[i].requested_mem,
              static_cast<MiB>(std::llround(
                  static_cast<double>(jobs[i].peak_usage()) * 1.6)));
  }
}

TEST(WithOverestimation, ZeroResetsToPeak) {
  auto jobs = mixed_workload(1, 0);
  jobs[0].requested_mem = 999999;
  const auto out = with_overestimation(jobs, 0.0);
  EXPECT_EQ(out[0].requested_mem, out[0].peak_usage());
}

}  // namespace
}  // namespace dmsim::workload
