#include "workload/grizzly.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/generator.hpp"

namespace dmsim::workload {
namespace {

GrizzlyConfig small_config() {
  GrizzlyConfig cfg;
  cfg.weeks = 12;
  cfg.system_nodes = 64;  // scaled down for test speed
  cfg.sample_weeks = 3;
  cfg.seed = 5;
  return cfg;
}

TEST(Grizzly, GeneratesRequestedWeeks) {
  const GrizzlyTrace t = generate_grizzly(small_config());
  EXPECT_EQ(t.weeks.size(), 12u);
  for (const auto& w : t.weeks) {
    EXPECT_GT(w.job_count, 0u);
    EXPECT_GT(w.cpu_utilization, 0.0);
    EXPECT_GT(w.max_job_node_hours, 0.0);
    EXPECT_GT(w.max_job_memory, 0);
  }
}

TEST(Grizzly, SelectedWeeksMeetUtilizationFloor) {
  const GrizzlyConfig cfg = small_config();
  const GrizzlyTrace t = generate_grizzly(cfg);
  int selected = 0;
  for (const auto& w : t.weeks) {
    if (w.selected) {
      ++selected;
      EXPECT_GE(w.cpu_utilization, cfg.utilization_floor);
    }
  }
  EXPECT_GT(selected, 0);
  EXPECT_LE(selected, cfg.sample_weeks);
}

TEST(Grizzly, RealizedUtilizationNearTarget) {
  const GrizzlyTrace t = generate_grizzly(small_config());
  for (const auto& w : t.weeks) {
    // Generation overshoots the target by at most one job's node-seconds.
    EXPECT_GE(w.cpu_utilization, w.target_utilization);
    EXPECT_LT(w.cpu_utilization, w.target_utilization + 0.4);
  }
}

TEST(Grizzly, MaterializeIsDeterministic) {
  const GrizzlyConfig cfg = small_config();
  const GrizzlyTrace t = generate_grizzly(cfg);
  const trace::Workload a = materialize_grizzly_week(cfg, t, 2);
  const trace::Workload b = materialize_grizzly_week(cfg, t, 2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), t.weeks[2].job_count);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].requested_mem, b[i].requested_mem);
    EXPECT_EQ(a[i].duration, b[i].duration);
  }
}

TEST(Grizzly, MaterializedJobsRespectNodeCapacity) {
  const GrizzlyConfig cfg = small_config();
  const GrizzlyTrace t = generate_grizzly(cfg);
  const trace::Workload jobs = materialize_grizzly_week(cfg, t, 0);
  for (const auto& j : jobs) {
    EXPECT_GT(j.num_nodes, 0);
    EXPECT_LE(j.num_nodes, cfg.system_nodes);
    EXPECT_GT(j.peak_usage(), 0);
    EXPECT_LE(j.peak_usage(), cfg.node_capacity);
    EXPECT_GE(j.requested_mem, j.peak_usage());
    EXPECT_GT(j.duration, 0.0);
    EXPECT_GE(j.walltime, j.duration);
    EXPECT_TRUE(j.id.valid());
    EXPECT_GE(j.app_profile, 0);
  }
}

TEST(Grizzly, OverestimationInflatesRequests) {
  GrizzlyConfig cfg = small_config();
  const GrizzlyTrace t = generate_grizzly(cfg);
  cfg.overestimation = 0.6;
  const trace::Workload inflated = materialize_grizzly_week(cfg, t, 0);
  cfg.overestimation = 0.0;
  const trace::Workload exact = materialize_grizzly_week(cfg, t, 0);
  ASSERT_EQ(inflated.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(inflated[i].requested_mem,
              static_cast<MiB>(std::llround(
                  static_cast<double>(exact[i].peak_usage()) * 1.6)));
  }
}

TEST(Grizzly, MostJobsAreSmallMemory) {
  // Table 2 Grizzly column: ~73% of jobs below 12 GB/node; the system is
  // heavily memory-underutilized.
  const GrizzlyConfig cfg = small_config();
  const GrizzlyTrace t = generate_grizzly(cfg);
  std::size_t below_12gb = 0;
  std::size_t total = 0;
  for (int w = 0; w < cfg.weeks; ++w) {
    const trace::Workload jobs = materialize_grizzly_week(cfg, t, w);
    for (const auto& j : jobs) {
      ++total;
      if (j.peak_usage() < 12 * 1024) ++below_12gb;
    }
  }
  const double frac = static_cast<double>(below_12gb) / total;
  EXPECT_GT(frac, 0.6);
  EXPECT_LT(frac, 0.85);
}

TEST(Grizzly, WeeksVaryInUtilization) {
  const GrizzlyTrace t = generate_grizzly(small_config());
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& w : t.weeks) {
    lo = std::min(lo, w.cpu_utilization);
    hi = std::max(hi, w.cpu_utilization);
  }
  EXPECT_GT(hi - lo, 0.1);  // the Fig. 2 scatter has spread
}

}  // namespace
}  // namespace dmsim::workload
