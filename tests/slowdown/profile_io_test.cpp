#include "slowdown/profile_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dmsim::slowdown {
namespace {

TEST(ProfileIo, RoundTripsSyntheticPool) {
  const AppPool original = AppPool::synthetic(util::Rng(13), 24);
  std::stringstream ss;
  write_app_pool(ss, original);
  const AppPool back = read_app_pool(ss);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const AppProfile& a = original.app(static_cast<int>(i));
    const AppProfile& b = back.app(static_cast<int>(i));
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.bw_demand_gbs, b.bw_demand_gbs);
    EXPECT_DOUBLE_EQ(a.remote_penalty, b.remote_penalty);
    EXPECT_DOUBLE_EQ(a.typical_nodes, b.typical_nodes);
    EXPECT_DOUBLE_EQ(a.typical_runtime_s, b.typical_runtime_s);
    EXPECT_EQ(a.typical_mem, b.typical_mem);
    ASSERT_EQ(a.sensitivity.knots().size(), b.sensitivity.knots().size());
    for (double p = 0.0; p <= 100.0; p += 7.0) {
      EXPECT_DOUBLE_EQ(a.sensitivity.at(p), b.sensitivity.at(p));
    }
  }
}

TEST(ProfileIo, CommentsAndBlanksIgnored) {
  std::istringstream in(
      "# pool\n"
      "\n"
      "app demo\n"
      "# interleaved\n"
      "bw_demand 5.5\n"
      "remote_penalty 0.2\n"
      "features 8 3600 4096\n"
      "curve 2 0 1 20 1.8\n");
  const AppPool pool = read_app_pool(in);
  ASSERT_EQ(pool.size(), 1u);
  const AppProfile& app = pool.app(0);
  EXPECT_EQ(app.name, "demo");
  EXPECT_DOUBLE_EQ(app.bw_demand_gbs, 5.5);
  EXPECT_DOUBLE_EQ(app.sensitivity.at(10.0), 1.4);
}

TEST(ProfileIo, DefaultsWhenFieldsOmitted) {
  std::istringstream in("app bare\n");
  const AppPool pool = read_app_pool(in);
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_DOUBLE_EQ(pool.app(0).sensitivity.at(100.0), 1.0);  // flat default
}

TEST(ProfileIo, RejectsFieldOutsideApp) {
  std::istringstream in("bw_demand 3\n");
  EXPECT_THROW(read_app_pool(in), TraceError);
}

TEST(ProfileIo, RejectsUnknownField) {
  std::istringstream in("app x\nmystery 1\n");
  EXPECT_THROW(read_app_pool(in), TraceError);
}

TEST(ProfileIo, RejectsShortCurve) {
  std::istringstream in("app x\ncurve 3 0 1 5 1.5\n");
  EXPECT_THROW(read_app_pool(in), TraceError);
}

TEST(ProfileIo, RejectsDuplicateAppNames) {
  // A repeated `app` block would silently shadow the first on export; the
  // parser must reject it and name the offending line.
  std::istringstream in(
      "app demo\n"
      "bw_demand 5.5\n"
      "app other\n"
      "app demo\n");
  try {
    (void)read_app_pool(in);
    FAIL() << "duplicate app accepted";
  } catch (const TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate app 'demo'"), std::string::npos) << what;
  }
}

TEST(ProfileIo, RejectsMissingFile) {
  EXPECT_THROW(read_app_pool_file("/nonexistent/apps.profile"), TraceError);
}

TEST(ProfileIo, EmptyStreamGivesEmptyPool) {
  std::istringstream in("# nothing here\n");
  EXPECT_TRUE(read_app_pool(in).empty());
}

}  // namespace
}  // namespace dmsim::slowdown
