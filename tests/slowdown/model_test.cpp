#include "slowdown/model.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/rng.hpp"

namespace dmsim::slowdown {
namespace {

constexpr MiB kGiB = 1024;

TEST(SensitivityCurve, FlatIsAlwaysOne) {
  const auto c = SensitivityCurve::flat();
  EXPECT_DOUBLE_EQ(c.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(1000.0), 1.0);
}

TEST(SensitivityCurve, InterpolatesLinearly) {
  const SensitivityCurve c({{0.0, 1.0}, {10.0, 2.0}});
  EXPECT_DOUBLE_EQ(c.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(5.0), 1.5);
  EXPECT_DOUBLE_EQ(c.at(10.0), 2.0);
}

TEST(SensitivityCurve, ClampsAboveLastKnot) {
  const SensitivityCurve c({{0.0, 1.0}, {10.0, 2.0}});
  EXPECT_DOUBLE_EQ(c.at(100.0), 2.0);
}

TEST(SensitivityCurve, MultiSegment) {
  const SensitivityCurve c({{0.0, 1.0}, {10.0, 1.2}, {30.0, 2.0}});
  EXPECT_DOUBLE_EQ(c.at(20.0), 1.6);
}

TEST(SensitivityCurve, MonotoneNonDecreasingProperty) {
  util::Rng rng(3);
  const AppPool pool = AppPool::synthetic(rng, 32);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto& curve = pool.app(static_cast<int>(i)).sensitivity;
    double prev = 0.0;
    for (double p = 0.0; p <= 80.0; p += 0.5) {
      const double s = curve.at(p);
      EXPECT_GE(s, 1.0);
      EXPECT_GE(s, prev);
      prev = s;
    }
  }
}

TEST(AppPool, SyntheticIsDeterministic) {
  util::Rng rng(7);
  const AppPool a = AppPool::synthetic(rng, 16);
  const AppPool b = AppPool::synthetic(rng, 16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.app(static_cast<int>(i)).bw_demand_gbs,
              b.app(static_cast<int>(i)).bw_demand_gbs);
    EXPECT_EQ(a.app(static_cast<int>(i)).typical_mem,
              b.app(static_cast<int>(i)).typical_mem);
  }
}

TEST(AppPool, SyntheticRangesArePlausible) {
  util::Rng rng(11);
  const AppPool pool = AppPool::synthetic(rng, 64);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const AppProfile& app = pool.app(static_cast<int>(i));
    EXPECT_GE(app.bw_demand_gbs, 0.5);
    EXPECT_LE(app.bw_demand_gbs, 20.0);
    EXPECT_GE(app.remote_penalty, 0.05);
    EXPECT_LE(app.remote_penalty, 0.6);
    const double ceiling = app.sensitivity.at(1e9);
    EXPECT_GE(ceiling, 1.1);
    EXPECT_LE(ceiling, 2.5);
  }
}

TEST(AppPool, MatchFindsExactFeatureMatch) {
  std::vector<AppProfile> apps(3);
  apps[0].typical_nodes = 1;
  apps[0].typical_runtime_s = 100;
  apps[1].typical_nodes = 64;
  apps[1].typical_runtime_s = 100000;
  apps[2].typical_nodes = 8;
  apps[2].typical_runtime_s = 3600;
  const AppPool pool(std::move(apps));
  EXPECT_EQ(pool.match(8, 3600), 2);
  EXPECT_EQ(pool.match(1, 90), 0);
  EXPECT_EQ(pool.match(70, 90000), 1);
}

TEST(AppPool, MatchWithMemoryBreaksTies) {
  std::vector<AppProfile> apps(2);
  apps[0].typical_nodes = 4;
  apps[0].typical_runtime_s = 1000;
  apps[0].typical_mem = 1024;
  apps[1].typical_nodes = 4;
  apps[1].typical_runtime_s = 1000;
  apps[1].typical_mem = 64 * kGiB;
  const AppPool pool(std::move(apps));
  EXPECT_EQ(pool.match(4, 1000, 2048), 0);
  EXPECT_EQ(pool.match(4, 1000, 50 * kGiB), 1);
}

TEST(AppPool, MatchOnEmptyPoolReturnsMinusOne) {
  const AppPool pool;
  EXPECT_EQ(pool.match(4, 100), -1);
}

class ContentionFixture : public ::testing::Test {
 protected:
  ContentionFixture()
      : cluster_(cluster::make_cluster_config(4, 64 * kGiB, 0, 128 * kGiB)) {
    std::vector<AppProfile> apps(1);
    apps[0].name = "hungry";
    apps[0].bw_demand_gbs = 10.0;
    apps[0].remote_penalty = 0.5;
    apps[0].sensitivity = SensitivityCurve({{0.0, 1.0}, {20.0, 2.0}});
    pool_ = AppPool(std::move(apps));
  }

  cluster::Cluster cluster_;
  AppPool pool_;
};

TEST_F(ContentionFixture, AllLocalJobHasNoSlowdown) {
  const JobId job{1};
  cluster_.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)cluster_.grow_local(job, NodeId{0}, 10 * kGiB);
  const ContentionModel model(&pool_);
  EXPECT_DOUBLE_EQ(model.evaluate_one(cluster_, job, 0), 1.0);
}

TEST_F(ContentionFixture, RemoteMemoryCausesSlowdown) {
  const JobId job{1};
  cluster_.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)cluster_.grow_local(job, NodeId{0}, 10 * kGiB);
  (void)cluster_.grow_remote(job, NodeId{0}, 10 * kGiB);
  const ContentionModel model(&pool_);
  const double s = model.evaluate_one(cluster_, job, 0);
  EXPECT_GT(s, 1.0);
  // remote fraction 0.5, own pressure 10*0.5=5 GB/s -> sens 1.25;
  // latency term 1 + 0.5*0.5 = 1.25 -> 1.5625.
  EXPECT_NEAR(s, 1.25 * 1.25, 1e-9);
}

TEST_F(ContentionFixture, SharedLenderRaisesBothSlowdowns) {
  // Three nodes: jobs on 0 and 1, so node 2 is the only possible lender.
  cluster::Cluster c(cluster::make_cluster_config(3, 64 * kGiB, 0, 128 * kGiB));
  const JobId a{1};
  const JobId b{2};
  c.assign_job(a, std::vector<NodeId>{NodeId{0}});
  c.assign_job(b, std::vector<NodeId>{NodeId{1}});
  // Fill both hosts completely so neither can lend to the other.
  (void)c.grow_local(a, NodeId{0}, 64 * kGiB);
  (void)c.grow_local(b, NodeId{1}, 64 * kGiB);
  (void)c.grow_remote(a, NodeId{0}, 10 * kGiB);
  (void)c.grow_remote(b, NodeId{1}, 10 * kGiB);
  ASSERT_EQ(c.node(NodeId{2}).lent, 20 * kGiB);

  const ContentionModel model(&pool_);
  const std::vector<ContentionModel::JobInput> solo = {{a, 0}};
  const std::vector<ContentionModel::JobInput> both = {{a, 0}, {b, 0}};
  const double s_solo = model.evaluate(c, solo)[0];
  const double s_both = model.evaluate(c, both)[0];
  EXPECT_GT(s_both, s_solo);  // contention from b's traffic
}

TEST_F(ContentionFixture, NullPoolMeansInsensitive) {
  const JobId job{1};
  cluster_.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)cluster_.grow_remote(job, NodeId{0}, 10 * kGiB);
  const ContentionModel model(nullptr);
  EXPECT_DOUBLE_EQ(model.evaluate_one(cluster_, job, 0), 1.0);
}

TEST_F(ContentionFixture, UnknownProfileIndexMeansInsensitive) {
  const JobId job{1};
  cluster_.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)cluster_.grow_remote(job, NodeId{0}, 10 * kGiB);
  const ContentionModel model(&pool_);
  EXPECT_DOUBLE_EQ(model.evaluate_one(cluster_, job, -1), 1.0);
}

TEST_F(ContentionFixture, MultiNodeJobTakesWorstSlot) {
  const JobId job{1};
  cluster_.assign_job(job, std::vector<NodeId>{NodeId{0}, NodeId{1}});
  (void)cluster_.grow_local(job, NodeId{0}, 10 * kGiB);   // all local slot
  (void)cluster_.grow_local(job, NodeId{1}, 5 * kGiB);
  (void)cluster_.grow_remote(job, NodeId{1}, 5 * kGiB);   // remote slot
  const ContentionModel model(&pool_);
  const double s = model.evaluate_one(cluster_, job, 0);
  EXPECT_GT(s, 1.0);  // the remote slot dominates
}

TEST_F(ContentionFixture, MoreRemoteFractionMoreSlowdown) {
  const ContentionModel model(&pool_);
  double prev = 0.0;
  for (const MiB remote : {0, 4, 8, 16}) {
    cluster::Cluster c(cluster::make_cluster_config(4, 64 * kGiB, 0, 0));
    const JobId job{1};
    c.assign_job(job, std::vector<NodeId>{NodeId{0}});
    (void)c.grow_local(job, NodeId{0}, 16 * kGiB);
    if (remote > 0) (void)c.grow_remote(job, NodeId{0}, remote * kGiB);
    const double s = model.evaluate_one(c, job, 0);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

// The incremental refresher must be bit-identical to a full evaluate() after
// every ledger mutation — not merely close: the scheduler's grant/deny
// decisions downstream of projected end times are FP-sensitive, and the
// whole point of the canonical summation order is reproducibility across
// the full-rebuild and per-lender recompute paths.
TEST_F(ContentionFixture, IncrementalRefreshMatchesFullEvaluateBitwise) {
  cluster::Cluster c(cluster::make_cluster_config(5, 64 * kGiB, 1, 128 * kGiB));
  const ContentionModel model(&pool_);
  IncrementalSlowdowns inc(&model);
  util::Rng rng(2026);

  std::map<std::uint32_t, double> current;  // job -> last applied slowdown
  std::uint32_t next_id = 1;
  std::vector<std::uint32_t> ids;
  std::vector<IncrementalSlowdowns::Update> updates;
  const auto app_of = [&](JobId id) {
    return current.contains(id.get()) ? 0
                                      : IncrementalSlowdowns::kNotRunning;
  };

  for (int step = 0; step < 300; ++step) {
    // Random mutation: start (host on a random idle node), resize a random
    // job's slot in either direction, or finish a random job.
    const int op = static_cast<int>(rng.uniform_int(0, 4));
    if (op == 0 || current.empty()) {
      std::vector<NodeId> idle;
      for (const auto& n : c.nodes()) {
        if (n.idle() && !n.memory_node() && n.free() > 0) idle.push_back(n.id);
      }
      if (!idle.empty()) {
        const JobId job{next_id++};
        const NodeId host =
            idle[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(idle.size()) - 1))];
        c.assign_job(job, std::vector<NodeId>{host});
        (void)c.grow_local(job, host,
                           rng.uniform_int(1, 48) * kGiB);
        if (rng.uniform(0.0, 1.0) < 0.7) {
          (void)c.grow_remote(job, host, rng.uniform_int(1, 32) * kGiB);
        }
        current.emplace(job.get(), 1.0);
      }
    } else {
      auto it = current.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(current.size()) - 1)));
      const JobId job{it->first};
      const NodeId host = c.hosts_of(job)[0];
      switch (op) {
        case 1:
          (void)c.grow_remote(job, host, rng.uniform_int(1, 16) * kGiB);
          break;
        case 2:
          (void)c.shrink_remote(job, host, rng.uniform_int(1, 24) * kGiB);
          break;
        case 3:
          (void)c.grow_local(job, host, rng.uniform_int(1, 8) * kGiB);
          break;
        default:
          c.finish_job(job);
          current.erase(it);
          break;
      }
    }

    // Mirror the scheduler's refresh protocol.
    if (current.empty() || c.total_lent() == 0) {
      inc.reset();
      c.clear_contention_dirty();
      for (auto& [id, s] : current) s = 1.0;
    } else {
      ids.clear();
      for (const auto& [id, s] : current) ids.push_back(id);
      updates.clear();
      inc.refresh(c, ids, app_of, updates);
      c.clear_contention_dirty();
      for (const auto& u : updates) current.at(u.job.get()) = u.slowdown;
    }

    // Full evaluation in the same canonical (ascending id) order.
    std::vector<ContentionModel::JobInput> inputs;
    for (const auto& [id, s] : current) {
      inputs.push_back(ContentionModel::JobInput{JobId{id}, 0});
    }
    const std::vector<double> full = model.evaluate(c, inputs);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      ASSERT_EQ(current.at(inputs[i].job.get()), full[i])
          << "step " << step << " job " << inputs[i].job.get();
    }
  }
}

}  // namespace
}  // namespace dmsim::slowdown
