#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace dmsim {
namespace {

constexpr MiB kGiB = 1024;

TEST(Counters, FindOrCreateReturnsStableHandles) {
  obs::Counters reg;
  std::uint64_t& a = reg.counter("alpha");
  std::uint64_t& b = reg.counter("beta");
  a += 3;
  // Creating many more entries must not invalidate earlier handles.
  for (int i = 0; i < 200; ++i) {
    (void)reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("alpha"), &a);
  EXPECT_EQ(&reg.counter("beta"), &b);
  EXPECT_EQ(reg.counter("alpha"), 3u);
  EXPECT_EQ(reg.size(), 202u);
}

TEST(Counters, GaugeTracksHighWater) {
  obs::Counters reg;
  obs::Gauge& g = reg.gauge("depth");
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value, 3);
  EXPECT_EQ(g.high_water, 12);
  reg.set("depth", -1);
  EXPECT_EQ(g.value, -1);
  EXPECT_EQ(g.high_water, 12);
}

TEST(Counters, SnapshotIsNameSorted) {
  obs::Counters reg;
  reg.add("zeta", 1);
  reg.add("alpha", 2);
  reg.add("mid", 3);
  reg.set("z.gauge", 9);
  reg.set("a.gauge", 7);
  const obs::CountersSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
  EXPECT_EQ(snap.counters[0].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].name, "a.gauge");
  EXPECT_EQ(snap.gauges[1].name, "z.gauge");
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(obs::CountersSnapshot{}.empty());
}

trace::Workload oom_prone_workload() {
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 12; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    j.submit_time = i * 10.0;
    j.num_nodes = (i % 3 == 0) ? 2 : 1;
    j.requested_mem = 8 * kGiB;
    j.duration = 200.0;
    j.walltime = 500.0;
    // Usage ramps past the request for every other job so the dynamic
    // policy's monitor sees real demand growth (and possible OOM kills).
    j.usage = (i % 2 == 0)
                  ? trace::UsageTrace({{0.0, 4 * kGiB}, {1.0, 12 * kGiB}})
                  : trace::UsageTrace::constant(6 * kGiB);
    jobs.push_back(j);
  }
  return jobs;
}

// The registry is the export surface; SchedulerTotals is the source of
// truth. The published sched.* counters must agree exactly.
TEST(Counters, MatchSchedulerTotalsAfterSimulation) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 4;
  cfg.system.pct_large_nodes = 0.25;
  cfg.policy = policy::PolicyKind::Dynamic;
  cfg.sched.update_interval = 50.0;

  obs::Counters counters;
  Simulator sim(cfg, oom_prone_workload(), nullptr, nullptr, &counters);
  const SimulationResult r = sim.run();
  ASSERT_TRUE(r.valid);

  const auto& t = r.totals;
  EXPECT_EQ(counters.counter("sched.completed"), t.completed);
  EXPECT_EQ(counters.counter("sched.oom_events"), t.oom_events);
  EXPECT_EQ(counters.counter("sched.requeues"), t.requeues);
  EXPECT_EQ(counters.counter("sched.fcfs_starts"), t.fcfs_starts);
  EXPECT_EQ(counters.counter("sched.backfill_starts"), t.backfill_starts);
  EXPECT_EQ(counters.counter("sched.guaranteed_starts"), t.guaranteed_starts);
  EXPECT_EQ(counters.counter("sched.update_events"), t.update_events);
  EXPECT_EQ(counters.counter("sched.scheduling_passes"), t.scheduling_passes);
  EXPECT_EQ(counters.counter("sched.abandoned"), t.abandoned);
  EXPECT_EQ(counters.counter("sched.walltime_kills"), t.walltime_kills);

  // Live-counted extras are consistent with the run.
  EXPECT_EQ(counters.counter("sched.submits"), 12u);
  EXPECT_EQ(counters.counter("policy.grants"),
            t.fcfs_starts + t.backfill_starts + t.guaranteed_starts);
  EXPECT_GT(counters.counter("engine.fired"), 0u);
  EXPECT_EQ(counters.counter("engine.fired"), r.engine_events);
  EXPECT_LE(counters.counter("engine.fired"),
            counters.counter("engine.scheduled"));

  // The snapshot travels on the result document too.
  EXPECT_FALSE(r.counters.empty());
  bool found = false;
  for (const auto& c : r.counters.counters) {
    if (c.name == "sched.completed") {
      found = true;
      EXPECT_EQ(c.value, t.completed);
    }
  }
  EXPECT_TRUE(found);
}

// The queue-depth gauge must be republished on every dequeue — FCFS pops
// and backfill erases — not just on enqueue. The old enqueue-only update
// left the gauge frozen at the last submission's queue length forever.
TEST(Counters, QueueDepthGaugeDrainsOnDequeue) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 2;
  cfg.policy = policy::PolicyKind::Static;

  // Six whole-cluster jobs submitted back-to-back: the queue ramps to five
  // entries, then drains one job at a time as each predecessor completes.
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    j.submit_time = static_cast<Seconds>(i);
    j.num_nodes = 2;
    j.requested_mem = 8 * kGiB;
    j.duration = 100.0;
    j.walltime = 200.0;
    j.usage = trace::UsageTrace::constant(8 * kGiB);
    jobs.push_back(j);
  }

  obs::Counters counters;
  Simulator sim(cfg, jobs, nullptr, nullptr, &counters);
  const SimulationResult r = sim.run();
  ASSERT_TRUE(r.valid);
  const obs::Gauge& g = counters.gauge("sched.queue_depth");
  EXPECT_GE(g.high_water, 4);
  EXPECT_EQ(g.value, 0);  // drained queue must read empty, not the last peak
}

// Without a registry or sink the result document carries no counters.
TEST(Counters, AbsentWhenNotWired) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 4;
  cfg.policy = policy::PolicyKind::Baseline;
  Simulator sim(cfg, oom_prone_workload(), nullptr);
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.counters.empty());
  EXPECT_GT(r.engine_events, 0u);
}

}  // namespace
}  // namespace dmsim
