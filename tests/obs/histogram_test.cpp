#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "metrics/json_export.hpp"
#include "obs/counters.hpp"
#include "workload/generator.hpp"

namespace dmsim {
namespace {

// ---------------------------------------------------------------------------
// Bucket math

TEST(Histogram, UnitBucketsAreExact) {
  for (std::int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::Histogram::bucket_index(v), static_cast<std::uint32_t>(v));
    EXPECT_EQ(obs::Histogram::bucket_lower_bound(static_cast<std::uint32_t>(v)),
              v);
  }
  EXPECT_EQ(obs::Histogram::bucket_index(-5), 0u);  // negatives clamp to 0
}

TEST(Histogram, LowerBoundsAreMonotoneAndConsistent) {
  std::int64_t prev = -1;
  for (std::uint32_t b = 0; b < obs::Histogram::kBuckets; ++b) {
    const std::int64_t lower = obs::Histogram::bucket_lower_bound(b);
    EXPECT_GT(lower, prev) << "bucket " << b;
    // The lower bound itself maps back into its own bucket.
    EXPECT_EQ(obs::Histogram::bucket_index(lower), b);
    prev = lower;
  }
}

TEST(Histogram, RelativeBucketErrorIsBounded) {
  // Above the unit range, consecutive lower bounds differ by at most 12.5%.
  for (const std::int64_t v : std::vector<std::int64_t>{
           100, 1000, 123456, 99999999, 1'000'000'000'000}) {
    const std::uint32_t b = obs::Histogram::bucket_index(v);
    const std::int64_t lower = obs::Histogram::bucket_lower_bound(b);
    EXPECT_LE(lower, v);
    EXPECT_GE(lower, v - v / 8) << v;
  }
  // int64 max still lands inside the table.
  EXPECT_LT(obs::Histogram::bucket_index(std::numeric_limits<std::int64_t>::max()),
            obs::Histogram::kBuckets);
}

TEST(Histogram, QuantilesAreExactForSmallValuesAndClamped) {
  obs::Histogram h;
  for (std::int64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 55);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_EQ(h.quantile(0.0), 1);
  EXPECT_EQ(h.quantile(0.5), 5);
  EXPECT_EQ(h.quantile(1.0), 10);
  // A single large sample: every quantile clamps into [min, max].
  obs::Histogram one;
  one.record(1'000'000);
  EXPECT_EQ(one.quantile(0.5), 1'000'000);
  EXPECT_EQ(one.quantile(0.99), 1'000'000);
}

// ---------------------------------------------------------------------------
// Time series

TEST(TimeSeries, FoldsRecordsIntoWindows) {
  obs::TimeSeries s(10.0);
  s.record(0.0, 5);
  s.record(3.0, 7);
  s.record(12.0, 1);
  s.record(19.9, 3);
  s.record(40.0, 2);
  const auto& points = s.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].window, 0);
  EXPECT_EQ(points[0].count, 2u);
  EXPECT_EQ(points[0].sum, 12);
  EXPECT_EQ(points[0].min, 5);
  EXPECT_EQ(points[0].max, 7);
  EXPECT_EQ(points[1].window, 1);
  EXPECT_EQ(points[1].count, 2u);
  EXPECT_EQ(points[2].window, 4);
  EXPECT_EQ(points[2].sum, 2);
}

// ---------------------------------------------------------------------------
// Registry round-trips

TEST(Counters, HistogramAndSeriesSurviveSnapshotRestore) {
  obs::Counters a;
  obs::Histogram& h = a.histogram("lat.us");
  for (std::int64_t v : {3, 17, 17, 250, 9001}) h.record(v);
  obs::TimeSeries& s = a.series("rate", 5.0);
  s.record(1.0, 2);
  s.record(9.0, 4);
  a.counter("ops") = 7;
  a.gauge("depth").set(3);

  const obs::CountersSnapshot snap = a.snapshot();
  obs::Counters b;
  // Pre-pollute the target: restore must replace, not merge.
  b.histogram("lat.us").record(1);
  b.histogram("stale").record(99);
  b.series("rate").record(100.0, 1);
  b.restore(snap);

  EXPECT_EQ(metrics::telemetry_to_json(b.snapshot()),
            metrics::telemetry_to_json(snap));
  EXPECT_EQ(b.histogram("lat.us").count(), 5u);
  EXPECT_EQ(b.histogram("stale").count(), 0u);  // zeroed by restore
  EXPECT_EQ(b.series("rate").points().size(), 2u);
}

TEST(Counters, SnapshotSortsAllFamiliesByName) {
  obs::Counters c;
  c.histogram("zeta").record(1);
  c.histogram("alpha").record(1);
  c.series("mid").record(0.0, 1);
  c.series("aaa").record(0.0, 1);
  const obs::CountersSnapshot snap = c.snapshot();
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "alpha");
  EXPECT_EQ(snap.histograms[1].name, "zeta");
  ASSERT_EQ(snap.series.size(), 2u);
  EXPECT_EQ(snap.series[0].name, "aaa");
  EXPECT_EQ(snap.series[1].name, "mid");
}

// ---------------------------------------------------------------------------
// End-to-end determinism: telemetry is a pure function of the cell config,
// independent of sweep thread count.

TEST(Telemetry, ByteIdenticalAcrossSweepThreadCounts) {
  workload::SyntheticWorkloadConfig wcfg;
  wcfg.cirne.num_jobs = 64;
  wcfg.cirne.system_nodes = 16;
  wcfg.cirne.max_job_nodes = 4;
  wcfg.pct_large_jobs = 0.4;
  wcfg.overestimation = 0.5;
  wcfg.seed = 23;
  const auto generated = workload::generate_synthetic(wcfg);

  // Baseline is left out: without memory borrowing this mix is infeasible,
  // and an infeasible cell legitimately exports no histograms.
  std::vector<harness::CellConfig> cells;
  for (const policy::PolicyKind kind :
       {policy::PolicyKind::Static, policy::PolicyKind::Dynamic}) {
    for (const std::size_t nodes : {16u, 32u}) {
      harness::CellConfig cell;
      cell.system.total_nodes = nodes;
      cell.system.pct_large_nodes = 0.25;
      cell.policy = kind;
      cell.collect_telemetry = true;
      cells.push_back(cell);
    }
  }

  const auto serial = harness::run_cells(cells, generated.jobs, generated.apps, 1);
  const auto parallel =
      harness::run_cells(cells, generated.jobs, generated.apps, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].valid) << i;
    EXPECT_FALSE(serial[i].telemetry.empty());
    EXPECT_FALSE(serial[i].telemetry.histograms.empty());
    EXPECT_EQ(metrics::telemetry_to_json(serial[i].telemetry),
              metrics::telemetry_to_json(parallel[i].telemetry))
        << cells[i].label;
  }
}

}  // namespace
}  // namespace dmsim
