#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/simulator.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"

namespace dmsim {
namespace {

constexpr MiB kGiB = 1024;

// ---------------------------------------------------------------------------
// Single-event serialization (golden strings)

TEST(NdjsonSink, GoldenEventLines) {
  std::ostringstream out;
  obs::NdjsonSink sink(out);

  obs::Event start{obs::EventKind::JobStart, 120.0};
  start.job = 7;
  start.node = 3;
  sink.emit(start.with("nodes", 2).with("mib", 4096));

  obs::Event deny{obs::EventKind::PolicyDeny, 120.5};
  deny.job = 8;
  deny.detail = "lenders_dry";
  sink.emit(deny);

  obs::Event sched{obs::EventKind::EngineSchedule, 0.0};
  sched.when = 11253.691490279203;
  sink.emit(sched.with("id", 1));

  sink.close();
  EXPECT_EQ(out.str(),
            "{\"t\":120,\"ev\":\"job_start\",\"job\":7,\"node\":3,"
            "\"nodes\":2,\"mib\":4096}\n"
            "{\"t\":120.5,\"ev\":\"policy_deny\",\"job\":8,"
            "\"detail\":\"lenders_dry\"}\n"
            "{\"t\":0,\"ev\":\"engine_schedule\","
            "\"when\":11253.691490279203,\"id\":1}\n");
}

TEST(Event, FieldCapacityIsBounded) {
  obs::Event e{obs::EventKind::JobStart, 1.0};
  e.with("a", 1).with("b", 2).with("c", 3).with("d", 4).with("e", 5);
  EXPECT_EQ(e.num_fields, 4u);  // fifth field dropped, no overflow
  EXPECT_STREQ(e.fields[3].key, "d");
}

TEST(TraceFormat, ParseAndReject) {
  EXPECT_EQ(obs::parse_trace_format("ndjson"), obs::TraceFormat::Ndjson);
  EXPECT_EQ(obs::parse_trace_format("chrome"), obs::TraceFormat::Chrome);
  EXPECT_THROW((void)obs::parse_trace_format("xml"), ConfigError);
}

// ---------------------------------------------------------------------------
// Whole-simulation traces

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.system.total_nodes = 16;
  cfg.system.pct_large_nodes = 0.25;
  cfg.policy = policy::PolicyKind::Dynamic;
  return cfg;
}

trace::Workload small_workload() {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 48;
  cfg.cirne.system_nodes = 16;
  cfg.cirne.max_job_nodes = 4;
  cfg.pct_large_jobs = 0.4;
  cfg.overestimation = 0.5;
  cfg.seed = 11;
  return workload::generate_synthetic(cfg).jobs;
}

std::string run_traced(obs::TraceFormat format) {
  std::ostringstream out;
  const auto sink = obs::make_sink(format, out);
  Simulator sim(small_config(), small_workload(), nullptr, sink.get());
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.valid);
  sink->close();
  return out.str();
}

// Same config + seed must produce a byte-identical stream; diffable traces
// are the whole point (golden files, policy-divergence debugging).
TEST(NdjsonSink, DeterministicAcrossRuns) {
  const std::string a = run_traced(obs::TraceFormat::Ndjson);
  const std::string b = run_traced(obs::TraceFormat::Ndjson);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(NdjsonSink, EveryLineIsAnObjectWithTimeAndKind) {
  std::istringstream lines(run_traced(obs::TraceFormat::Ndjson));
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.substr(0, 5), "{\"t\":") << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"ev\":\""), std::string::npos) << line;
    ++count;
  }
  EXPECT_GT(count, 100u);  // 48 jobs produce far more than this
}

// Minimal structural JSON validation: brace/bracket balance outside of
// strings, plus the trace-event envelope and paired async begin/end spans.
void check_balanced_json(const std::string& doc) {
  int depth_obj = 0;
  int depth_arr = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : doc) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTraceSink, WellFormedDocument) {
  const std::string doc = run_traced(obs::TraceFormat::Chrome);
  ASSERT_EQ(doc.substr(0, 16), "{\"traceEvents\":[");
  check_balanced_json(doc);
  // Every job that starts ends exactly once: async begin/end pairs line up.
  const std::size_t begins = count_occurrences(doc, "\"ph\":\"b\"");
  const std::size_t ends = count_occurrences(doc, "\"ph\":\"e\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_GT(count_occurrences(doc, "\"ph\":\"i\""), 0u);
  EXPECT_GT(count_occurrences(doc, "\"ph\":\"C\""), 0u);
}

TEST(ChromeTraceSink, DeterministicAcrossRuns) {
  EXPECT_EQ(run_traced(obs::TraceFormat::Chrome),
            run_traced(obs::TraceFormat::Chrome));
}

// ---------------------------------------------------------------------------
// File sinks and edge cases

TEST(FileSink, WritesAndCloses) {
  const std::string path = "trace_sink_test_out.ndjson";
  {
    const auto sink = obs::make_file_sink(obs::TraceFormat::Ndjson, path);
    obs::Event e{obs::EventKind::JobComplete, 9.0};
    e.job = 1;
    sink->emit(e);
    sink->close();
    sink->close();  // idempotent
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"t\":9,\"ev\":\"job_complete\",\"job\":1}");
  in.close();
  std::remove(path.c_str());
}

TEST(FileSink, ThrowsWhenUnopenable) {
  EXPECT_THROW(
      (void)obs::make_file_sink(obs::TraceFormat::Ndjson,
                                "no/such/dir/trace.ndjson"),
      ConfigError);
}

TEST(NullSink, SwallowsEverything) {
  obs::NullSink sink;
  obs::Event e{obs::EventKind::MemLend, 1.0};
  sink.emit(e.with("mib", 4 * kGiB));
  sink.close();  // nothing to verify beyond "does not crash"
}

}  // namespace
}  // namespace dmsim
