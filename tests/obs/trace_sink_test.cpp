#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/simulator.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"

namespace dmsim {
namespace {

constexpr MiB kGiB = 1024;

// ---------------------------------------------------------------------------
// Single-event serialization (golden strings)

TEST(NdjsonSink, GoldenEventLines) {
  std::ostringstream out;
  obs::NdjsonSink sink(out);

  obs::Event start{obs::EventKind::JobStart, 120.0};
  start.job = 7;
  start.node = 3;
  sink.emit(start.with("nodes", 2).with("mib", 4096));

  obs::Event deny{obs::EventKind::PolicyDeny, 120.5};
  deny.job = 8;
  deny.detail = "lenders_dry";
  sink.emit(deny);

  obs::Event sched{obs::EventKind::EngineSchedule, 0.0};
  sched.when = 11253.691490279203;
  sink.emit(sched.with("id", 1));

  sink.close();
  EXPECT_EQ(out.str(),
            "{\"t\":120,\"ev\":\"job_start\",\"job\":7,\"node\":3,"
            "\"nodes\":2,\"mib\":4096}\n"
            "{\"t\":120.5,\"ev\":\"policy_deny\",\"job\":8,"
            "\"detail\":\"lenders_dry\"}\n"
            "{\"t\":0,\"ev\":\"engine_schedule\","
            "\"when\":11253.691490279203,\"id\":1}\n");
}

TEST(NdjsonSink, SpanAndParentSerializeBetweenNodeAndWhen) {
  std::ostringstream out;
  obs::NdjsonSink sink(out);

  obs::Event submit{obs::EventKind::JobSubmit, 1.0};
  submit.job = 3;
  submit.span = obs::span_id(3, 0, obs::SpanPhase::Queued);
  sink.emit(submit);

  obs::Event start{obs::EventKind::JobStart, 2.5};
  start.job = 3;
  start.node = 1;
  sink.emit(start.in_span(obs::span_id(3, 0, obs::SpanPhase::Running),
                          obs::span_id(3, 0, obs::SpanPhase::Queued)));

  sink.close();
  EXPECT_EQ(out.str(),
            "{\"t\":1,\"ev\":\"job_submit\",\"job\":3,\"span\":12288}\n"
            "{\"t\":2.5,\"ev\":\"job_start\",\"job\":3,\"node\":1,"
            "\"span\":12289,\"parent\":12288}\n");
}

TEST(SpanId, DistinctAcrossJobsIncarnationsAndPhases) {
  using obs::SpanPhase;
  using obs::span_id;
  EXPECT_NE(span_id(1, 0, SpanPhase::Queued), span_id(1, 0, SpanPhase::Running));
  EXPECT_NE(span_id(1, 0, SpanPhase::Queued), span_id(1, 1, SpanPhase::Queued));
  EXPECT_NE(span_id(1, 0, SpanPhase::Queued), span_id(2, 0, SpanPhase::Queued));
  // Deterministic arithmetic, not a counter: reconstructible offline.
  EXPECT_EQ(span_id(7, 2, SpanPhase::Running), 7 * 4096 + 2 * 2 + 1);
}

TEST(Event, FieldCapacityIsBounded) {
  obs::Event e{obs::EventKind::JobStart, 1.0};
  e.with("a", 1).with("b", 2).with("c", 3).with("d", 4).with("e", 5);
  EXPECT_EQ(e.num_fields, 4u);  // fifth field dropped, no overflow
  EXPECT_STREQ(e.fields[3].key, "d");
}

TEST(TraceFormat, ParseAndReject) {
  EXPECT_EQ(obs::parse_trace_format("ndjson"), obs::TraceFormat::Ndjson);
  EXPECT_EQ(obs::parse_trace_format("chrome"), obs::TraceFormat::Chrome);
  EXPECT_THROW((void)obs::parse_trace_format("xml"), ConfigError);
}

// ---------------------------------------------------------------------------
// Whole-simulation traces

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.system.total_nodes = 16;
  cfg.system.pct_large_nodes = 0.25;
  cfg.policy = policy::PolicyKind::Dynamic;
  return cfg;
}

trace::Workload small_workload() {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 48;
  cfg.cirne.system_nodes = 16;
  cfg.cirne.max_job_nodes = 4;
  cfg.pct_large_jobs = 0.4;
  cfg.overestimation = 0.5;
  cfg.seed = 11;
  return workload::generate_synthetic(cfg).jobs;
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::string run_traced(obs::TraceFormat format, std::size_t flush_every = 0) {
  std::ostringstream out;
  const auto sink = obs::make_sink(format, out, flush_every);
  Simulator sim(small_config(), small_workload(), nullptr, sink.get());
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.valid);
  sink->close();
  return out.str();
}

// Same config + seed must produce a byte-identical stream; diffable traces
// are the whole point (golden files, policy-divergence debugging).
TEST(NdjsonSink, DeterministicAcrossRuns) {
  const std::string a = run_traced(obs::TraceFormat::Ndjson);
  const std::string b = run_traced(obs::TraceFormat::Ndjson);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// Periodic flushing changes syscall timing, never bytes: the golden-trace
// contract holds with flushing on.
TEST(NdjsonSink, FlushEveryNEventsKeepsBytesIdentical) {
  const std::string buffered = run_traced(obs::TraceFormat::Ndjson, 0);
  const std::string eager = run_traced(obs::TraceFormat::Ndjson, 1);
  const std::string chunked = run_traced(obs::TraceFormat::Ndjson, 64);
  EXPECT_EQ(buffered, eager);
  EXPECT_EQ(buffered, chunked);
}

// Causal spans: every queue span begun at submit/requeue is closed by a
// start naming it as parent, and every start's run span meets a terminal.
TEST(NdjsonSink, QueueSpansPairWithStarts) {
  const std::string trace = run_traced(obs::TraceFormat::Ndjson);
  const std::size_t submits = count_occurrences(trace, "\"ev\":\"job_submit\"");
  const std::size_t requeues = count_occurrences(trace, "\"ev\":\"job_requeue\"");
  const std::size_t starts = count_occurrences(trace, "\"ev\":\"job_start\"") +
                             count_occurrences(trace, "\"ev\":\"backfill_start\"");
  const std::size_t terminals =
      count_occurrences(trace, "\"ev\":\"job_complete\"") +
      count_occurrences(trace, "\"ev\":\"job_oom_kill\"") +
      count_occurrences(trace, "\"ev\":\"job_walltime_kill\"");
  EXPECT_GT(submits, 0u);
  // Every (re)queued incarnation starts, and every start terminates.
  EXPECT_EQ(submits + requeues, starts);
  EXPECT_EQ(starts, terminals);
  // Span ids ride on the events (submit carries the queued span, starts and
  // terminals the running span with its queued parent).
  EXPECT_GE(count_occurrences(trace, "\"span\":"), submits + starts);
  EXPECT_GE(count_occurrences(trace, "\"parent\":"), starts);
}

TEST(NdjsonSink, EveryLineIsAnObjectWithTimeAndKind) {
  std::istringstream lines(run_traced(obs::TraceFormat::Ndjson));
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.substr(0, 5), "{\"t\":") << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"ev\":\""), std::string::npos) << line;
    ++count;
  }
  EXPECT_GT(count, 100u);  // 48 jobs produce far more than this
}

// Minimal structural JSON validation: brace/bracket balance outside of
// strings, plus the trace-event envelope and paired async begin/end spans.
void check_balanced_json(const std::string& doc) {
  int depth_obj = 0;
  int depth_arr = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : doc) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST(ChromeTraceSink, WellFormedDocument) {
  const std::string doc = run_traced(obs::TraceFormat::Chrome);
  ASSERT_EQ(doc.substr(0, 16), "{\"traceEvents\":[");
  check_balanced_json(doc);
  // Every job that starts ends exactly once: async begin/end pairs line up.
  const std::size_t begins = count_occurrences(doc, "\"ph\":\"b\"");
  const std::size_t ends = count_occurrences(doc, "\"ph\":\"e\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_GT(count_occurrences(doc, "\"ph\":\"i\""), 0u);
  EXPECT_GT(count_occurrences(doc, "\"ph\":\"C\""), 0u);
}

TEST(ChromeTraceSink, DeterministicAcrossRuns) {
  EXPECT_EQ(run_traced(obs::TraceFormat::Chrome),
            run_traced(obs::TraceFormat::Chrome));
}

// ---------------------------------------------------------------------------
// File sinks and edge cases

TEST(FileSink, WritesAndCloses) {
  const std::string path = "trace_sink_test_out.ndjson";
  {
    const auto sink = obs::make_file_sink(obs::TraceFormat::Ndjson, path);
    obs::Event e{obs::EventKind::JobComplete, 9.0};
    e.job = 1;
    sink->emit(e);
    sink->close();
    sink->close();  // idempotent
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"t\":9,\"ev\":\"job_complete\",\"job\":1}");
  in.close();
  std::remove(path.c_str());
}

// A sink whose stream has failed must surface the error exactly once:
// close() throws, and a second close() (or the destructor) stays silent.
TEST(ChromeTraceSink, CloseThrowsOnceAfterWriteFailure) {
  std::ostringstream out;
  obs::ChromeTraceSink sink(out);
  obs::Event e{obs::EventKind::JobStart, 1.0};
  e.job = 1;
  sink.emit(e);
  out.setstate(std::ios::badbit);  // simulate a full/failed device
  EXPECT_THROW(sink.close(), Error);
  EXPECT_NO_THROW(sink.close());  // idempotent even after failure
}

TEST(NdjsonSink, CloseThrowsOnceAfterWriteFailure) {
  std::ostringstream out;
  obs::NdjsonSink sink(out);
  obs::Event e{obs::EventKind::JobComplete, 2.0};
  e.job = 4;
  sink.emit(e);
  out.setstate(std::ios::badbit);
  EXPECT_THROW(sink.close(), Error);
  EXPECT_NO_THROW(sink.close());
}

TEST(FileSink, ThrowsWhenUnopenable) {
  EXPECT_THROW(
      (void)obs::make_file_sink(obs::TraceFormat::Ndjson,
                                "no/such/dir/trace.ndjson"),
      ConfigError);
}

TEST(NullSink, SwallowsEverything) {
  obs::NullSink sink;
  obs::Event e{obs::EventKind::MemLend, 1.0};
  sink.emit(e.with("mib", 4 * kGiB));
  sink.close();  // nothing to verify beyond "does not crash"
}

}  // namespace
}  // namespace dmsim
