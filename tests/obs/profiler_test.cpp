#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dmsim {
namespace {

TEST(Profiler, PhasesAccumulateInOrder) {
  obs::Profiler prof;
  prof.begin_phase("load");
  prof.begin_phase("simulate");  // implicitly ends "load"
  prof.end_phase();
  prof.end_phase();  // no-op: nothing open

  ASSERT_EQ(prof.phases().size(), 2u);
  EXPECT_EQ(prof.phases()[0].name, "load");
  EXPECT_EQ(prof.phases()[1].name, "simulate");
  EXPECT_GE(prof.phases()[0].wall_seconds, 0.0);
  EXPECT_GE(prof.total_seconds(), prof.phases()[0].wall_seconds);
}

TEST(Profiler, ReenteredPhaseSumsInPhaseSeconds) {
  obs::Profiler prof;
  prof.begin_phase("sim");
  prof.end_phase();
  prof.begin_phase("sim");
  prof.end_phase();
  EXPECT_EQ(prof.phases().size(), 2u);  // entries stay separate...
  EXPECT_GE(prof.phase_seconds("sim"),   // ...but the lookup aggregates
            prof.phases()[0].wall_seconds);
  EXPECT_EQ(prof.phase_seconds("missing"), 0.0);
}

TEST(Profiler, PhaseScopeBrackets) {
  obs::Profiler prof;
  {
    obs::PhaseScope scope(prof, "scoped");
  }
  ASSERT_EQ(prof.phases().size(), 1u);
  EXPECT_EQ(prof.phases()[0].name, "scoped");
}

TEST(ThroughputReport, Ratios) {
  obs::ThroughputReport r{10000, 5000.0, 2.0};
  EXPECT_DOUBLE_EQ(r.events_per_second(), 5000.0);
  EXPECT_DOUBLE_EQ(r.sim_seconds_per_wall_second(), 2500.0);

  const obs::ThroughputReport zero{};  // no wall time: no division by zero
  EXPECT_DOUBLE_EQ(zero.events_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(zero.sim_seconds_per_wall_second(), 0.0);
}

TEST(ThroughputReport, PrintedFormIsOneLine) {
  std::ostringstream out;
  obs::print_throughput(out, obs::ThroughputReport{87654, 350000.0, 0.07});
  const std::string s = out.str();
  EXPECT_NE(s.find("events/s"), std::string::npos);
  EXPECT_NE(s.find("sim-s/wall-s"), std::string::npos);
  EXPECT_NE(s.find("87654 events"), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
  EXPECT_EQ(s.find('\n'), s.size() - 1);
}

}  // namespace
}  // namespace dmsim
