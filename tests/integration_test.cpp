// Integration tests: scaled-down versions of the paper's headline claims.
// These run the full pipeline (trace generation -> scheduler -> metrics) and
// assert the *shape* of the results, not absolute numbers.
#include <gtest/gtest.h>

#include "core/dmsim.hpp"

namespace dmsim {
namespace {

struct Scenario {
  workload::SyntheticWorkload workload;
  harness::SystemConfig system;
};

Scenario make_scenario(double pct_large, double overestimation, int nodes = 96,
                 double pct_large_nodes = 0.5, std::uint64_t seed = 11) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 260;
  cfg.cirne.system_nodes = nodes;
  cfg.cirne.max_job_nodes = 16;
  cfg.cirne.target_load = 0.85;
  cfg.pct_large_jobs = pct_large;
  cfg.overestimation = overestimation;
  cfg.seed = seed;
  Scenario s{workload::generate_synthetic(cfg), {}};
  s.system.total_nodes = nodes;
  s.system.pct_large_nodes = pct_large_nodes;
  return s;
}

harness::CellResult run(const Scenario& s, policy::PolicyKind kind) {
  harness::CellConfig cell;
  cell.system = s.system;
  cell.policy = kind;
  return harness::run_cell(cell, s.workload.jobs, s.workload.apps);
}

TEST(Integration, BaselineInfeasibleUnderOverestimation) {
  // Fig. 5 bottom row: with +60% overestimation some jobs request more than
  // the largest node, so the baseline has no bar while disaggregated
  // policies still run the mix.
  const Scenario s = make_scenario(0.5, 0.6);
  EXPECT_FALSE(run(s, policy::PolicyKind::Baseline).valid);
  EXPECT_TRUE(run(s, policy::PolicyKind::Static).valid);
  EXPECT_TRUE(run(s, policy::PolicyKind::Dynamic).valid);
}

TEST(Integration, AllPoliciesCloseWhenWellProvisioned) {
  // Fig. 5 top row, high provisioning: little difference between policies.
  const Scenario s = make_scenario(0.25, 0.0, 96, 1.0);  // all large nodes
  const auto base = run(s, policy::PolicyKind::Baseline);
  const auto stat = run(s, policy::PolicyKind::Static);
  const auto dyn = run(s, policy::PolicyKind::Dynamic);
  ASSERT_TRUE(base.valid && stat.valid && dyn.valid);
  EXPECT_EQ(base.summary.completed, s.workload.jobs.size());
  EXPECT_NEAR(stat.throughput() / base.throughput(), 1.0, 0.15);
  EXPECT_NEAR(dyn.throughput() / base.throughput(), 1.0, 0.15);
}

TEST(Integration, DynamicBeatsStaticWhenUnderprovisionedAndOverestimated) {
  // The headline: underprovisioned system + overestimated demands -> the
  // dynamic policy reclaims the padding and wins on throughput.
  const Scenario s = make_scenario(0.75, 0.6, 96, 0.25);
  const auto stat = run(s, policy::PolicyKind::Static);
  const auto dyn = run(s, policy::PolicyKind::Dynamic);
  ASSERT_TRUE(stat.valid && dyn.valid);
  EXPECT_GT(dyn.throughput(), stat.throughput() * 1.02);
}

TEST(Integration, DynamicReducesMedianResponseTime) {
  // Fig. 6 bottom-right: on a matching/underprovisioned system with
  // overestimation, dynamic reallocation lets jobs start sooner.
  const Scenario s = make_scenario(0.75, 0.6, 96, 0.25);
  const auto stat = run(s, policy::PolicyKind::Static);
  const auto dyn = run(s, policy::PolicyKind::Dynamic);
  ASSERT_TRUE(stat.valid && dyn.valid);
  const util::Ecdf es(stat.summary.response_times);
  const util::Ecdf ed(dyn.summary.response_times);
  EXPECT_LT(ed.quantile(0.5), es.quantile(0.5));
}

TEST(Integration, DynamicImprovesThroughputPerDollar) {
  // Fig. 7 bottom row: with overestimation the static policy's
  // throughput/$ falls off much faster on lean systems.
  const Scenario s = make_scenario(0.75, 0.6, 96, 0.25);
  const auto stat = run(s, policy::PolicyKind::Static);
  const auto dyn = run(s, policy::PolicyKind::Dynamic);
  ASSERT_TRUE(stat.valid && dyn.valid);
  EXPECT_GT(dyn.throughput_per_dollar(), stat.throughput_per_dollar());
}

TEST(Integration, OomFailuresAreRare) {
  // §2.2: even in an extreme scenario fewer than ~1% of jobs OOM-fail. At
  // this scale we assert a loose bound.
  const Scenario s = make_scenario(1.0, 1.0, 96, 0.5);
  const auto dyn = run(s, policy::PolicyKind::Dynamic);
  ASSERT_TRUE(dyn.valid);
  EXPECT_LT(dyn.summary.oom_job_fraction(), 0.05);
  EXPECT_EQ(dyn.summary.completed + dyn.summary.abandoned,
            s.workload.jobs.size());
  EXPECT_EQ(dyn.summary.abandoned, 0u);
}

TEST(Integration, DynamicInsensitiveToOverestimation) {
  // Fig. 8: the dynamic policy's throughput barely moves as overestimation
  // grows, while the static policy degrades.
  const Scenario s0 = make_scenario(0.5, 0.0, 96, 0.25);
  const Scenario s100 = make_scenario(0.5, 1.0, 96, 0.25);
  const double dyn0 = run(s0, policy::PolicyKind::Dynamic).throughput();
  const double dyn100 = run(s100, policy::PolicyKind::Dynamic).throughput();
  const double stat0 = run(s0, policy::PolicyKind::Static).throughput();
  const double stat100 = run(s100, policy::PolicyKind::Static).throughput();
  const double dyn_drop = (dyn0 - dyn100) / dyn0;
  const double stat_drop = (stat0 - stat100) / stat0;
  EXPECT_LT(dyn_drop, stat_drop);
  EXPECT_LT(dyn_drop, 0.15);
}

TEST(Integration, DisaggregationRunsMixesBaselineCannot) {
  // Fig. 5: on a system with no large nodes, the baseline cannot run large
  // jobs at all while both disaggregated policies can.
  const Scenario s = make_scenario(0.5, 0.0, 96, 0.0);
  EXPECT_FALSE(run(s, policy::PolicyKind::Baseline).valid);
  const auto stat = run(s, policy::PolicyKind::Static);
  const auto dyn = run(s, policy::PolicyKind::Dynamic);
  ASSERT_TRUE(stat.valid && dyn.valid);
  EXPECT_EQ(stat.summary.completed, s.workload.jobs.size());
  EXPECT_EQ(dyn.summary.completed, s.workload.jobs.size());
}

TEST(Integration, GrizzlyWeekRunsUnderAllDisaggregatedPolicies) {
  workload::GrizzlyConfig gcfg;
  gcfg.weeks = 4;
  gcfg.system_nodes = 64;
  gcfg.max_job_nodes = 16;  // keep worst-case request below system capacity
  gcfg.sample_weeks = 1;
  gcfg.overestimation = 0.6;
  const workload::GrizzlyTrace trace = workload::generate_grizzly(gcfg);
  const trace::Workload jobs = materialize_grizzly_week(gcfg, trace, 0);
  harness::SystemConfig sys;
  sys.total_nodes = 64;
  sys.pct_large_nodes = 0.5;
  for (const auto kind :
       {policy::PolicyKind::Static, policy::PolicyKind::Dynamic}) {
    harness::CellConfig cell;
    cell.system = sys;
    cell.policy = kind;
    const auto r = harness::run_cell(cell, jobs, trace.apps);
    ASSERT_TRUE(r.valid) << policy::to_string(kind);
    EXPECT_EQ(r.summary.completed + r.summary.abandoned, jobs.size());
  }
}

TEST(Integration, ContentionSlowsJobsDown) {
  // With the app pool wired in, heavy borrowing must stretch makespans
  // relative to an insensitive run.
  const Scenario s = make_scenario(0.75, 0.0, 64, 0.25, 13);
  harness::CellConfig cell;
  cell.system = s.system;
  cell.policy = policy::PolicyKind::Static;
  const auto with_model =
      harness::run_cell(cell, s.workload.jobs, s.workload.apps);
  const auto without_model =
      harness::run_cell(cell, s.workload.jobs, slowdown::AppPool{});
  ASSERT_TRUE(with_model.valid && without_model.valid);
  EXPECT_LE(with_model.throughput(), without_model.throughput() * 1.001);
}

}  // namespace
}  // namespace dmsim
