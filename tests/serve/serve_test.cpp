// The what-if serving subsystem: JSON protocol parsing, the warm-image LRU
// cache, and the Server's core determinism contract — the same query against
// the same image yields a byte-identical reply at any thread count. The
// ServeConcurrency suite doubles as the TSan target for the shared-image
// model: many threads fork one refcounted snapshot::Image while the cache
// evicts underneath them.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "serve/image_cache.hpp"
#include "serve/json.hpp"
#include "serve/query.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/generator.hpp"

namespace dmsim {
namespace {

// ---------------------------------------------------------------- ServeJson

TEST(ServeJson, ParsesTheFullValueGrammar) {
  const serve::JsonValue v = serve::json_parse(
      R"({"op":"submit","n":-2.5e2,"ok":true,"none":null,)"
      R"("jobs":[{"id":1},{"id":2}],"text":"a\"b\\c\n\u0041"})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.str_or("op", ""), "submit");
  EXPECT_EQ(v.num_or("n", 0.0), -250.0);
  EXPECT_TRUE(v.bool_or("ok", false));
  ASSERT_NE(v.find("none"), nullptr);
  EXPECT_EQ(v.find("none")->kind, serve::JsonValue::Kind::Null);
  const serve::JsonValue* jobs = v.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_TRUE(jobs->is_array());
  ASSERT_EQ(jobs->array.size(), 2U);
  EXPECT_EQ(jobs->array[1].int_or("id", 0), 2);
  EXPECT_EQ(v.str_or("text", ""), "a\"b\\c\nA");
  // Keys keep insertion order (deterministic re-serialization).
  EXPECT_EQ(v.object.front().first, "op");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW((void)serve::json_parse(""), serve::ServeError);
  EXPECT_THROW((void)serve::json_parse("{\"a\":1} trailing"),
               serve::ServeError);
  EXPECT_THROW((void)serve::json_parse("{\"a\":}"), serve::ServeError);
  EXPECT_THROW((void)serve::json_parse("{\"a\" 1}"), serve::ServeError);
  EXPECT_THROW((void)serve::json_parse("\"unterminated"), serve::ServeError);
  EXPECT_THROW((void)serve::json_parse("\"bad \\x escape\""),
               serve::ServeError);
  EXPECT_THROW((void)serve::json_parse("[1,]"), serve::ServeError);
  // Typed accessor on the wrong kind throws; absent key falls back.
  const serve::JsonValue v = serve::json_parse("{\"s\":\"x\"}");
  EXPECT_THROW((void)v.num_or("s", 0.0), serve::ServeError);
  EXPECT_EQ(v.num_or("missing", 7.0), 7.0);
}

TEST(ServeJson, EscapesRoundTrip) {
  const std::string raw = "line\none \"two\" \\three\t";
  const std::string quoted = "\"" + serve::json_escape(raw) + "\"";
  EXPECT_EQ(serve::json_parse(quoted).string, raw);
}

// --------------------------------------------------------------- ServeQuery

TEST(ServeQuery, SubmitDefaultsAndValidation) {
  const sched::SchedulerConfig base;
  const serve::Query q = serve::parse_query(
      R"({"op":"submit","id":"q1","jobs":[)"
      R"({"id":9001,"num_nodes":2,"mem_mib":4096,"duration":600}]})",
      base);
  EXPECT_EQ(q.op, serve::QueryOp::Submit);
  EXPECT_EQ(q.id, "q1");
  ASSERT_EQ(q.extra_jobs.size(), 1U);
  const trace::JobSpec& job = q.extra_jobs.front();
  EXPECT_EQ(job.id.get(), 9001U);
  EXPECT_EQ(job.num_nodes, 2);
  EXPECT_EQ(job.requested_mem, 4096);
  EXPECT_EQ(job.duration, 600.0);
  EXPECT_EQ(job.walltime, 1200.0);       // defaults to 2x duration
  EXPECT_EQ(job.peak_usage(), 4096);     // used_mib defaults to mem_mib
  EXPECT_FALSE(q.sched.has_value());

  // Required/ranged fields.
  EXPECT_THROW((void)serve::parse_query(R"({"op":"submit"})", base),
               serve::ServeError);
  EXPECT_THROW((void)serve::parse_query(R"({"op":"submit","jobs":[]})", base),
               serve::ServeError);
  EXPECT_THROW(
      (void)serve::parse_query(
          R"({"op":"submit","jobs":[{"num_nodes":1,"mem_mib":1,"duration":1}]})",
          base),
      serve::ServeError);  // id required
  EXPECT_THROW(
      (void)serve::parse_query(
          R"({"op":"submit","jobs":[{"id":1,"mem_mib":0,"duration":1}]})",
          base),
      serve::ServeError);  // mem_mib > 0
  EXPECT_THROW(
      (void)serve::parse_query(
          R"({"op":"submit","jobs":[{"id":1,"mem_mib":8,"used_mib":9,"duration":1}]})",
          base),
      serve::ServeError);  // used <= mem
  EXPECT_THROW(
      (void)serve::parse_query(
          R"({"op":"submit","jobs":[{"id":1,"mem_mib":8,"duration":10,"walltime":5}]})",
          base),
      serve::ServeError);  // walltime >= duration
}

TEST(ServeQuery, PolicyTopologyAndSchedSwap) {
  const sched::SchedulerConfig base;
  const serve::Query race = serve::parse_query(
      R"({"op":"policy","policies":["baseline","static","dynamic"]})", base);
  ASSERT_EQ(race.policies.size(), 3U);
  EXPECT_EQ(race.policies[0], policy::PolicyKind::Baseline);
  EXPECT_EQ(race.policies[1], policy::PolicyKind::Static);
  EXPECT_EQ(race.policies[2], policy::PolicyKind::Dynamic);
  EXPECT_THROW((void)serve::parse_query(R"({"op":"policy","policies":[]})",
                                        base),
               serve::ServeError);
  EXPECT_THROW((void)serve::parse_query(
                   R"({"op":"policy","policies":["bogus"]})", base),
               serve::ServeError);

  const serve::Query topo = serve::parse_query(
      R"({"op":"topology","add_nodes":4,"capacity_mib":65536,"cores":48})",
      base);
  ASSERT_EQ(topo.extra_nodes.size(), 4U);
  EXPECT_EQ(topo.extra_nodes[0].capacity, 65536);
  EXPECT_EQ(topo.extra_nodes[0].cores, 48);
  EXPECT_TRUE(topo.extra_nodes[0].large);  // default classification
  EXPECT_THROW((void)serve::parse_query(
                   R"({"op":"topology","add_nodes":0,"capacity_mib":1})",
                   base),
               serve::ServeError);

  // The sched swap copies the daemon's base config and applies only the
  // named overrides.
  const serve::Query swap = serve::parse_query(
      R"({"op":"baseline","sched":{"sched_interval":60,"queue_depth":7}})",
      base);
  ASSERT_TRUE(swap.sched.has_value());
  EXPECT_EQ(swap.sched->sched_interval, 60.0);
  EXPECT_EQ(swap.sched->queue_depth, 7);
  EXPECT_EQ(swap.sched->update_interval, base.update_interval);
  EXPECT_EQ(swap.sched->backfill_depth, base.backfill_depth);

  EXPECT_THROW((void)serve::parse_query(R"({"op":"reboot"})", base),
               serve::ServeError);
  EXPECT_THROW((void)serve::parse_query("not json", base), serve::ServeError);
}

// -------------------------------------------------------- scenario plumbing

struct ServeFixture {
  workload::SyntheticWorkload generated;
  harness::CellConfig cell;
  std::string snap_path;

  static ServeFixture make(const char* file_tag, int total_nodes = 32) {
    ServeFixture f;
    workload::SyntheticWorkloadConfig wcfg;
    wcfg.cirne.num_jobs = 60;
    wcfg.cirne.system_nodes = 32;
    wcfg.cirne.max_job_nodes = 8;
    wcfg.seed = 5150;
    f.generated = workload::generate_synthetic(wcfg);
    f.cell.system.total_nodes = total_nodes;
    f.cell.system.pct_large_nodes = 0.5;
    f.cell.policy = policy::PolicyKind::Dynamic;
    f.snap_path =
        (std::filesystem::path(::testing::TempDir()) / file_tag).string();
    std::remove(f.snap_path.c_str());

    const harness::CellResult reference =
        harness::run_cell(f.cell, f.generated.jobs, f.generated.apps);
    EXPECT_TRUE(reference.valid);
    harness::CellConfig saver = f.cell;
    saver.checkpoint = harness::CheckpointSpec{
        f.snap_path, 0.0, {reference.summary.last_end / 3.0}, false};
    (void)harness::run_cell(saver, f.generated.jobs, f.generated.apps);
    EXPECT_TRUE(std::filesystem::exists(f.snap_path));
    return f;
  }

  [[nodiscard]] serve::ServeScenario scenario() const {
    serve::ServeScenario s;
    s.system = cell.system;
    s.policy = cell.policy;
    s.sched = cell.sched;
    s.jobs = generated.jobs;
    s.apps = &generated.apps;
    s.snapshot_path = snap_path;
    return s;
  }
};

// --------------------------------------------------------------- ServeCache

TEST(ServeCache, LruEvictionKeepsInFlightImagesAlive) {
  const ServeFixture f = ServeFixture::make("serve_cache.snap");
  const std::string a = f.snap_path + ".a";
  const std::string b = f.snap_path + ".b";
  const std::string c = f.snap_path + ".c";
  for (const std::string& copy : {a, b, c}) {
    std::filesystem::copy_file(f.snap_path, copy,
                               std::filesystem::copy_options::overwrite_existing);
  }

  serve::ImageCache cache(2);
  const auto image_a = cache.get(a);
  EXPECT_EQ(cache.misses(), 1U);
  (void)cache.get(a);
  EXPECT_EQ(cache.hits(), 1U);
  (void)cache.get(b);
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.evictions(), 0U);

  // Third path evicts the LRU entry (a — b is more recent).
  (void)cache.get(c);
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.evictions(), 1U);

  // The evicted image stays fully usable through the held reference.
  EXPECT_FALSE(image_a->payload().empty());
  EXPECT_EQ(image_a->fingerprint(), cache.get(b)->fingerprint());

  // Re-querying the evicted path is a miss (re-open), not an error.
  const std::uint64_t misses_before = cache.misses();
  (void)cache.get(a);
  EXPECT_EQ(cache.misses(), misses_before + 1);

  EXPECT_THROW((void)cache.get(f.snap_path + ".missing"),
               snapshot::SnapshotError);
  for (const std::string& p : {f.snap_path, a, b, c}) std::remove(p.c_str());
}

// -------------------------------------------------------------- ServeServer

TEST(ServeServer, AnswersQueriesAndRefusesBadOnes) {
  const ServeFixture f = ServeFixture::make("serve_server.snap");
  serve::ServerOptions opts;
  opts.threads = 2;
  serve::Server server(f.scenario(), opts);

  const std::string info = server.handle_line(R"({"op":"info"})");
  EXPECT_NE(info.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(info.find("\"base_fingerprint\""), std::string::npos);
  EXPECT_EQ(server.handle_line(R"({"op":"info"})"), info);

  const std::string baseline =
      server.handle_line(R"({"op":"baseline","id":"b0"})");
  EXPECT_NE(baseline.find("\"id\":\"b0\""), std::string::npos);
  EXPECT_NE(baseline.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(baseline.find("\"completed\""), std::string::npos);

  const std::string race = server.handle_line(
      R"({"op":"policy","policies":["static","dynamic"]})");
  EXPECT_NE(race.find("\"results\":["), std::string::npos);
  EXPECT_NE(race.find("\"policy\":\"static\""), std::string::npos);
  EXPECT_NE(race.find("\"policy\":\"dynamic\""), std::string::npos);

  // Errors come back as replies, never as thrown exceptions or aborts:
  // malformed JSON, id collisions with the base workload (which would trip
  // an assert deeper in the scheduler), within-query duplicates, unknown
  // snapshot paths.
  EXPECT_NE(server.handle_line("garbage").find("\"status\":\"error\""),
            std::string::npos);
  const std::string collide = server.handle_line(
      R"({"op":"submit","jobs":[{"id":3,"mem_mib":1024,"duration":60}]})");
  EXPECT_NE(collide.find("\"status\":\"error\""), std::string::npos);
  const std::string dup = server.handle_line(
      R"({"op":"submit","jobs":[{"id":9001,"mem_mib":1024,"duration":60},)"
      R"({"id":9001,"mem_mib":1024,"duration":60}]})");
  EXPECT_NE(dup.find("\"status\":\"error\""), std::string::npos);
  const std::string missing = server.handle_line(
      R"({"op":"baseline","snapshot":"/nonexistent/image.snap"})");
  EXPECT_NE(missing.find("\"status\":\"error\""), std::string::npos);

  std::remove(f.snap_path.c_str());
}

TEST(ServeServer, RefusesImagesFromAnotherConfiguration) {
  const ServeFixture f = ServeFixture::make("serve_fp_base.snap");
  // Same workload, different topology: fingerprints must differ, and the
  // server must refuse the foreign image loudly instead of simulating it.
  const ServeFixture other = ServeFixture::make("serve_fp_other.snap", 48);
  serve::Server server(f.scenario(), serve::ServerOptions{});
  const std::string reply = server.handle_line(
      R"({"op":"baseline","snapshot":")" + other.snap_path + "\"}");
  EXPECT_NE(reply.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(reply.find("different configuration"), std::string::npos);
  std::remove(f.snap_path.c_str());
  std::remove(other.snap_path.c_str());
}

TEST(ServeServer, RunOnceDrainsUntilShutdown) {
  const ServeFixture f = ServeFixture::make("serve_once.snap");
  serve::Server server(f.scenario(), serve::ServerOptions{});
  std::istringstream in(
      "{\"op\":\"info\"}\n"
      "\n"  // blank lines are skipped
      "not json\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"info\"}\n");  // never reached: shutdown stops the drain
  std::ostringstream out;
  const std::size_t answered = server.run_once(in, out);
  EXPECT_EQ(answered, 3U);
  EXPECT_TRUE(server.shutdown_requested());
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> replies;
  while (std::getline(lines, line)) replies.push_back(line);
  ASSERT_EQ(replies.size(), 3U);
  EXPECT_NE(replies[1].find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(replies[2].find("\"stopping\":true"), std::string::npos);
  std::remove(f.snap_path.c_str());
}

// --------------------------------------------------------- ServeConcurrency

// The tentpole determinism contract and satellite TSan target in one: many
// threads fork the same warm image (through a capacity-1 cache that keeps
// evicting under them) and every reply must be byte-identical to a serial,
// single-threaded server's answer.
TEST(ServeConcurrency, ThreadedRepliesMatchSerialByteForByte) {
  const ServeFixture f = ServeFixture::make("serve_conc.snap");
  // Two byte-identical copies of the image under different paths: alternating
  // queries between them forces continuous evictions in a capacity-1 cache
  // while forks of the evicted image are still running.
  const std::string alt = f.snap_path + ".alt";
  std::filesystem::copy_file(f.snap_path, alt,
                             std::filesystem::copy_options::overwrite_existing);

  const std::vector<std::string> queries = {
      R"({"op":"baseline"})",
      R"({"op":"baseline","snapshot":")" + alt + "\"}",
      R"({"op":"submit","jobs":[{"id":9001,"num_nodes":2,"mem_mib":4096,)"
      R"("duration":1000,"walltime":4000}]})",
      R"({"op":"topology","add_nodes":4,"capacity_mib":65536})",
      R"({"op":"policy","policies":["static","dynamic"]})",
      R"({"op":"baseline","sched":{"sched_interval":60}})",
  };

  std::vector<std::string> golden;
  {
    serve::ServerOptions serial;
    serial.threads = 1;
    serial.cache_images = 4;
    serve::Server server(f.scenario(), serial);
    for (const std::string& q : queries) {
      golden.push_back(server.handle_line(q));
      EXPECT_NE(golden.back().find("\"status\":\"ok\""), std::string::npos);
    }
  }

  serve::ServerOptions opts;
  opts.threads = 4;
  opts.cache_images = 1;  // maximum eviction pressure
  serve::Server server(f.scenario(), opts);
  constexpr int kThreads = 4;
  constexpr int kIterations = 2;
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int iter = 0; iter < kIterations; ++iter) {
        // Stagger starting offsets so threads hit different queries (and
        // different images) at the same time.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t pick =
              (i + static_cast<std::size_t>(t)) % queries.size();
          got[static_cast<std::size_t>(t)].push_back(
              server.handle_line(queries[pick]) + "|" +
              std::to_string(pick));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (const std::vector<std::string>& thread_replies : got) {
    ASSERT_EQ(thread_replies.size(), queries.size() * kIterations);
    for (const std::string& tagged : thread_replies) {
      const std::size_t bar = tagged.rfind('|');
      ASSERT_NE(bar, std::string::npos);
      const std::size_t pick = std::stoul(tagged.substr(bar + 1));
      EXPECT_EQ(tagged.substr(0, bar), golden[pick]);
    }
  }
  EXPECT_GT(server.cache().evictions(), 0U);

  std::remove(f.snap_path.c_str());
  std::remove(alt.c_str());
}

}  // namespace
}  // namespace dmsim
