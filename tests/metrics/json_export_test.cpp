#include "metrics/json_export.hpp"

#include <gtest/gtest.h>

namespace dmsim::metrics {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("x");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_object().key("v").value(1.5).end_object();
  w.begin_object().key("v").value(2.5).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"v":1.5},{"v":2.5}]})");
}

TEST(JsonWriter, ArrayOfScalars) {
  JsonWriter w;
  w.begin_array();
  w.value(1);
  w.value(2);
  w.value(3);
  w.end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonEscape, SpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(ToJson, FullSimulationDocument) {
  // Run a tiny simulation and export it.
  trace::Workload jobs;
  trace::JobSpec j;
  j.id = JobId{1};
  j.submit_time = 0.0;
  j.num_nodes = 1;
  j.requested_mem = 1024;
  j.duration = 100.0;
  j.walltime = 150.0;
  j.usage = trace::UsageTrace::constant(1024);
  jobs.push_back(j);

  SimulationConfig cfg;
  cfg.system.total_nodes = 2;
  cfg.system.pct_large_nodes = 0.5;
  cfg.policy = policy::PolicyKind::Static;
  cfg.sched.sample_interval = 50.0;
  Simulator sim(cfg, std::move(jobs), nullptr);
  const SimulationResult result = sim.run();

  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
  // Balanced braces/brackets (cheap structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string no_extras = to_json(result, false, false);
  EXPECT_EQ(no_extras.find("\"jobs\":["), std::string::npos);
  EXPECT_EQ(no_extras.find("\"samples\":["), std::string::npos);
  EXPECT_LT(no_extras.size(), json.size());
}

}  // namespace
}  // namespace dmsim::metrics
