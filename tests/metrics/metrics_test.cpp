#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

namespace dmsim::metrics {
namespace {

sched::JobRecord completed(std::uint32_t id, Seconds submit, Seconds start,
                           Seconds end) {
  sched::JobRecord r;
  r.id = JobId{id};
  r.submit_time = submit;
  r.first_start = start;
  r.last_start = start;
  r.end_time = end;
  r.outcome = sched::JobOutcome::Completed;
  return r;
}

TEST(Summarize, EmptyRecords) {
  const WorkloadSummary s = summarize({}, {});
  EXPECT_EQ(s.total_jobs, 0u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.throughput, 0.0);
}

TEST(Summarize, ThroughputOverMakespan) {
  std::vector<sched::JobRecord> records = {
      completed(1, 0.0, 0.0, 100.0),
      completed(2, 10.0, 100.0, 200.0),
  };
  const WorkloadSummary s = summarize(records, {});
  EXPECT_EQ(s.completed, 2u);
  EXPECT_DOUBLE_EQ(s.first_submit, 0.0);
  EXPECT_DOUBLE_EQ(s.last_end, 200.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 200.0);
  EXPECT_DOUBLE_EQ(s.throughput, 2.0 / 200.0);
}

TEST(Summarize, ResponseAndWaitTimes) {
  std::vector<sched::JobRecord> records = {completed(1, 10.0, 40.0, 100.0)};
  const WorkloadSummary s = summarize(records, {});
  EXPECT_DOUBLE_EQ(s.response_time.mean(), 90.0);
  EXPECT_DOUBLE_EQ(s.wait_time.mean(), 30.0);
  ASSERT_EQ(s.response_times.size(), 1u);
  EXPECT_DOUBLE_EQ(s.response_times[0], 90.0);
}

TEST(Summarize, InfeasibleJobsExcluded) {
  sched::JobRecord bad;
  bad.id = JobId{9};
  bad.infeasible = true;
  std::vector<sched::JobRecord> records = {completed(1, 0.0, 0.0, 50.0), bad};
  const WorkloadSummary s = summarize(records, {});
  EXPECT_EQ(s.total_jobs, 2u);
  EXPECT_EQ(s.infeasible, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(Summarize, OomCounting) {
  sched::JobRecord r = completed(1, 0.0, 0.0, 50.0);
  r.oom_failures = 2;
  sched::JobRecord clean = completed(2, 0.0, 0.0, 60.0);
  sched::SchedulerTotals totals;
  totals.oom_events = 2;
  const WorkloadSummary s = summarize(std::vector{r, clean}, totals);
  EXPECT_EQ(s.jobs_with_oom, 1u);
  EXPECT_EQ(s.oom_events, 2u);
  EXPECT_DOUBLE_EQ(s.oom_job_fraction(), 0.5);
}

TEST(Summarize, AbandonedCounted) {
  sched::JobRecord r;
  r.id = JobId{1};
  r.submit_time = 0.0;
  r.end_time = 100.0;
  r.outcome = sched::JobOutcome::AbandonedOom;
  const WorkloadSummary s = summarize(std::vector{r}, {});
  EXPECT_EQ(s.abandoned, 1u);
  EXPECT_EQ(s.completed, 0u);
}

TEST(CostModel, Table4Figures) {
  const CostModel cost;
  // A single node with 128 GB: $10,154 + $1,280.
  EXPECT_NEAR(cost.system_cost(1, gib(128)), 11434.0, 1e-6);
  // 1024-node 100%-large system: 1024 * (10154 + 1280).
  EXPECT_NEAR(cost.system_cost(1024, static_cast<MiB>(1024) * gib(128)),
              1024.0 * 11434.0, 1e-3);
}

TEST(CostModel, MemoryScalesLinearly) {
  const CostModel cost;
  const double base = cost.system_cost(10, gib(128));
  const double doubled = cost.system_cost(10, gib(256));
  EXPECT_NEAR(doubled - base, 1280.0, 1e-9);
}

TEST(CostModel, ThroughputPerDollar) {
  const CostModel cost;
  EXPECT_DOUBLE_EQ(cost.throughput_per_dollar(2.0, 1000.0), 0.002);
  EXPECT_DOUBLE_EQ(cost.throughput_per_dollar(2.0, 0.0), 0.0);
}

TEST(CostModel, LessMemoryCheaperSystem) {
  const CostModel cost;
  // The operator's Fig. 7 trade-off: a 50%-memory system costs less.
  const MiB full = static_cast<MiB>(1024) * gib(128);
  const MiB half = full / 2;
  EXPECT_LT(cost.system_cost(1024, half), cost.system_cost(1024, full));
}

}  // namespace
}  // namespace dmsim::metrics
