#include "metrics/timeline.hpp"

#include <gtest/gtest.h>

namespace dmsim::metrics {
namespace {

sched::SystemSample sample(Seconds t, MiB alloc, MiB used, int busy,
                           std::size_t pending) {
  return sched::SystemSample{t, alloc, used, busy, pending};
}

TEST(UtilizationReport, EmptySamples) {
  const UtilizationReport r = utilization_report({}, 1000, 10);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.avg_allocated_fraction, 0.0);
}

TEST(UtilizationReport, AveragesAndPeak) {
  std::vector<sched::SystemSample> s = {
      sample(0, 500, 250, 5, 2),
      sample(100, 1000, 500, 10, 0),
  };
  const UtilizationReport r = utilization_report(s, 1000, 10);
  EXPECT_EQ(r.samples, 2u);
  EXPECT_DOUBLE_EQ(r.avg_allocated_fraction, 0.75);
  EXPECT_DOUBLE_EQ(r.avg_used_fraction, 0.375);
  EXPECT_DOUBLE_EQ(r.avg_waste_fraction, 0.5);  // both samples waste half
  EXPECT_DOUBLE_EQ(r.peak_allocated_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_busy_node_fraction, 0.75);
  EXPECT_DOUBLE_EQ(r.avg_pending_jobs, 1.0);
}

TEST(UtilizationReport, ZeroAllocationSamplesSkippedInWaste) {
  std::vector<sched::SystemSample> s = {
      sample(0, 0, 0, 0, 0),
      sample(10, 100, 100, 1, 0),
  };
  const UtilizationReport r = utilization_report(s, 1000, 10);
  EXPECT_DOUBLE_EQ(r.avg_waste_fraction, 0.0);  // only the nonzero sample counts
}

sched::JobRecord completed_record(Seconds submit, Seconds start, Seconds end) {
  sched::JobRecord r;
  r.id = JobId{1};
  r.submit_time = submit;
  r.first_start = start;
  r.last_start = start;
  r.end_time = end;
  r.outcome = sched::JobOutcome::Completed;
  return r;
}

TEST(BoundedSlowdown, NoWaitIsUnity) {
  const auto r = completed_record(0, 0, 100);
  EXPECT_DOUBLE_EQ(bounded_slowdown(r), 1.0);
}

TEST(BoundedSlowdown, WaitDoublesSlowdown) {
  const auto r = completed_record(0, 100, 200);  // wait 100, run 100
  EXPECT_DOUBLE_EQ(bounded_slowdown(r), 2.0);
}

TEST(BoundedSlowdown, TauFloorsShortJobs) {
  // 1-second job waiting 99 seconds: raw slowdown 100, bounded (tau=10) 10.
  const auto r = completed_record(0, 99, 100);
  EXPECT_DOUBLE_EQ(bounded_slowdown(r, 10.0), 10.0);
}

TEST(BoundedSlowdown, IncompleteJobContributesZero) {
  sched::JobRecord r;
  r.outcome = sched::JobOutcome::AbandonedOom;
  EXPECT_DOUBLE_EQ(bounded_slowdown(r), 0.0);
}

TEST(SlowdownReport, AggregatesCompletedOnly) {
  std::vector<sched::JobRecord> records = {
      completed_record(0, 0, 100),    // bounded 1
      completed_record(0, 100, 200),  // bounded 2
  };
  sched::JobRecord bad;
  bad.outcome = sched::JobOutcome::NeverStarted;
  records.push_back(bad);
  const SlowdownReport r = slowdown_report(records);
  EXPECT_EQ(r.jobs, 2u);
  EXPECT_DOUBLE_EQ(r.bounded.mean(), 1.5);
  EXPECT_DOUBLE_EQ(r.median_bounded, 1.5);
}

TEST(WasteSeries, AllocatedMinusUsed) {
  std::vector<sched::SystemSample> s = {
      sample(0, 500, 300, 1, 0),
      sample(60, 800, 800, 2, 0),
  };
  const auto series = waste_series(s);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], (std::pair<Seconds, MiB>{0.0, 200}));
  EXPECT_EQ(series[1], (std::pair<Seconds, MiB>{60.0, 0}));
}

}  // namespace
}  // namespace dmsim::metrics
