// Randomized scheduler property tests: arbitrary small workloads under all
// policies and update modes must terminate with a consistent ledger and
// consistent per-job records. The cluster ledger is additionally audited
// mid-run — every 500 sim-seconds — so an invariant broken transiently by an
// OOM requeue or walltime kill is caught at the event that broke it, not
// masked by the final drain.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "slowdown/model.hpp"
#include "util/rng.hpp"
#include "workload/google_usage.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

struct FuzzParams {
  std::uint64_t seed;
  policy::PolicyKind policy;
  UpdateMode mode;
  OomHandling oom;
  /// Kill jobs at their walltime. Paired with tighter walltime estimates in
  /// the generated workload so kills actually fire mid-run.
  bool enforce_walltime;
  /// Attach an AppPool so contention produces real slowdowns (and therefore
  /// walltime overruns and shifted OOM timing).
  bool with_apps;
  /// Memory-tier topology axis: 1 = flat (the default everywhere else),
  /// 2/3 = CXL-style tiered tables exercising per-tier indexes, tier-tagged
  /// borrow edges and the scheduler's migration pass.
  int tier_count = 1;
  cluster::LenderPolicy lender = cluster::LenderPolicy::MemoryNodesFirst;
  /// Memory-monitor axis: non-oracle monitors estimate with error, adapt
  /// the update cadence, and inject runtime-OOM kills mid-window.
  monitor::MonitorKind monitor = monitor::MonitorKind::Oracle;
  /// Degenerate-input axis: sprinkle zero-duration jobs into the workload
  /// and run with an absurd update interval, so the demand look-ahead
  /// window guard (monitor::demand_window_end) is exercised end to end.
  bool degenerate = false;
};

class SchedulerFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

trace::Workload random_workload(util::Rng& rng, std::size_t count,
                                const workload::GoogleUsageLibrary& shapes,
                                const slowdown::AppPool* apps,
                                bool tight_walltimes,
                                bool degenerate = false) {
  trace::Workload jobs;
  jobs.reserve(count);
  for (std::uint32_t i = 1; i <= count; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    j.submit_time = rng.uniform(0.0, 20000.0);
    j.num_nodes = static_cast<int>(rng.uniform_int(1, 4));
    j.duration = rng.uniform(60.0, 14400.0);
    // Degenerate axis: every fifth job takes zero time — its progress folds
    // straight to 1.0 and its look-ahead window must not divide by zero.
    if (degenerate && i % 5 == 0) j.duration = 0.0;
    // Tight walltimes underestimate by up to 20% so enforcement kills some
    // jobs outright; the loose range only overruns via contention slowdown.
    j.walltime = j.duration * (tight_walltimes ? rng.uniform(0.8, 1.5)
                                               : rng.uniform(1.0, 2.0));
    const MiB peak = rng.uniform_int(1 * kGiB, 100 * kGiB);
    const std::size_t shape = rng.uniform_int(
        0, static_cast<std::int64_t>(shapes.size()) - 1);
    j.usage = shapes.instantiate(static_cast<std::size_t>(shape), peak);
    // Requests range from underestimates (0.5x: forces dynamic growth and
    // occasional OOM) to heavy overestimates (2x).
    j.requested_mem = static_cast<MiB>(
        static_cast<double>(peak) * rng.uniform(0.5, 2.0));
    j.requested_mem = std::max<MiB>(1, j.requested_mem);
    if (apps != nullptr && !apps->empty()) {
      j.app_profile = apps->match(j.num_nodes, j.duration, peak);
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

TEST_P(SchedulerFuzzTest, TerminatesConsistently) {
  const FuzzParams params = GetParam();
  util::Rng rng(params.seed);
  const auto shapes = workload::GoogleUsageLibrary::synthetic(
      rng.child("shapes"), 16);
  const slowdown::AppPool apps =
      params.with_apps ? slowdown::AppPool::synthetic(rng.child("apps"), 8)
                       : slowdown::AppPool{};
  const slowdown::AppPool* pool = params.with_apps ? &apps : nullptr;
  util::Rng wl_rng = rng.child("workload");
  trace::Workload jobs = random_workload(wl_rng, 40, shapes, pool,
                                         params.enforce_walltime,
                                         params.degenerate);

  cluster::ClusterConfig cluster_cfg =
      cluster::make_cluster_config(6, 64 * kGiB, 2, 128 * kGiB);
  cluster_cfg.lender_policy = params.lender;
  if (params.tier_count >= 2) {
    cluster_cfg.tiers = {
        cluster::MemoryTier{"local", 150.0, 90.0, cluster::TierScope::Local},
        cluster::MemoryTier{"rack", 450.0, 64.0, cluster::TierScope::Rack}};
    if (params.tier_count >= 3) {
      cluster_cfg.tiers.push_back(cluster::MemoryTier{
          "far", 1200.0, 40.0, cluster::TierScope::CrossRack});
    }
    for (std::size_t i = 0; i < cluster_cfg.nodes.size(); ++i) {
      const auto t = static_cast<std::uint8_t>(
          i % static_cast<std::size_t>(params.tier_count));
      cluster_cfg.nodes[i].tier = t;
      cluster_cfg.nodes[i].rack = t;
    }
  }
  cluster::Cluster cluster(std::move(cluster_cfg));
  // Force the column/view parity sweep in every build type (it defaults to
  // debug builds only): each audit below also cross-checks the materialized
  // per-node view against the SoA columns.
  cluster.set_debug_parity(true);
  const auto policy = policy::make_policy(params.policy);
  SchedulerConfig cfg;
  cfg.update_mode = params.mode;
  cfg.oom_handling = params.oom;
  cfg.max_restarts = 10;
  cfg.enforce_walltime = params.enforce_walltime;
  cfg.monitor.kind = params.monitor;
  if (params.monitor == monitor::MonitorKind::Sampled) {
    cfg.monitor.relative_error = 0.2;
    cfg.monitor.staleness = 120.0;
  } else if (params.monitor == monitor::MonitorKind::Adaptive) {
    cfg.monitor.min_interval = 60.0;
    cfg.monitor.max_interval = 1200.0;
    cfg.monitor.error_bound = 0.08;
  }
  // Huge update interval: the first look-ahead window spans the whole job
  // and overflow in the window arithmetic must saturate, not go NaN.
  if (params.degenerate) cfg.update_interval = 9e15;
  sim::Engine engine;
  Scheduler scheduler(engine, cluster, *policy, pool, cfg);
  scheduler.submit_workload(jobs);

  // Property 0: the ledger is consistent at every point of the run, not just
  // after the drain. A self-rescheduling audit event walks the full
  // invariant suite (per-node accounting, borrow-edge reverse index, free
  // indexes) between scheduler events; the chain stops once every feasible
  // job is terminal so the engine can drain.
  std::uint64_t audits = 0;
  std::function<void()> audit = [&] {
    cluster.check_invariants();
    // Between events every running job's cached slowdown must equal a fresh
    // model evaluation — no OOM-victim batch, backfill pass or monitor
    // resize may leave survivors on stale projections.
    EXPECT_TRUE(scheduler.slowdowns_fresh());
    ++audits;
    const auto& t = scheduler.totals();
    const std::uint64_t terminal =
        t.completed + t.abandoned + t.walltime_kills;
    const std::uint64_t feasible =
        scheduler.records().size() - scheduler.infeasible_count();
    if (terminal < feasible) engine.schedule_after(500.0, audit);
  };
  engine.schedule(0.0, audit);

  scheduler.run();
  EXPECT_GT(audits, 0u);

  // Property 1: ledger fully drained and consistent.
  cluster.check_invariants();
  EXPECT_EQ(cluster.total_allocated(), 0);
  EXPECT_EQ(scheduler.running_count(), 0u);
  EXPECT_EQ(scheduler.pending_count(), 0u);

  // Property 2: every feasible job reached a terminal state; infeasible
  // ones were never started.
  std::size_t terminal = 0;
  for (const auto& rec : scheduler.records()) {
    if (rec.infeasible) {
      EXPECT_EQ(rec.outcome, JobOutcome::NeverStarted);
      EXPECT_EQ(rec.first_start, kNoTime);
      continue;
    }
    EXPECT_NE(rec.outcome, JobOutcome::NeverStarted) << rec.id.get();
    ++terminal;
    // Property 3: per-record time sanity.
    if (rec.first_start != kNoTime) {
      EXPECT_GE(rec.first_start, rec.submit_time);
      EXPECT_GE(rec.last_start, rec.first_start);
    }
    if (rec.outcome == JobOutcome::Completed) {
      EXPECT_GE(rec.end_time, rec.last_start);
      EXPECT_GE(rec.response_time(), 0.0);
    }
  }
  EXPECT_EQ(terminal + scheduler.infeasible_count(),
            scheduler.records().size());

  // Property 4: totals line up with records.
  const auto& totals = scheduler.totals();
  EXPECT_EQ(totals.completed + totals.abandoned + totals.walltime_kills,
            terminal);
  EXPECT_GE(totals.requeues, 0u);
  EXPECT_GE(totals.oom_events, totals.abandoned);
  if (!params.enforce_walltime) EXPECT_EQ(totals.walltime_kills, 0u);
}

std::vector<FuzzParams> fuzz_matrix() {
  std::vector<FuzzParams> out;
  std::uint64_t seed = 100;
  for (const auto policy :
       {policy::PolicyKind::Baseline, policy::PolicyKind::Static,
        policy::PolicyKind::Dynamic}) {
    for (const auto mode :
         {UpdateMode::PerJobStaggered, UpdateMode::GlobalBatch}) {
      for (const auto oom :
           {OomHandling::FailRestart, OomHandling::CheckpointRestart}) {
        // Two seeds per combo: one plain, one with walltime enforcement and
        // an app pool so kills and contention-shifted OOMs hit the audits.
        out.push_back(FuzzParams{seed++, policy, mode, oom, false, false});
        out.push_back(FuzzParams{seed++, policy, mode, oom, true, true});
      }
    }
  }
  // Tier axis: 1/2/3-tier topologies under every lender policy, Dynamic
  // policy with apps so tier-weighted exposure, per-tier lender selection
  // and the migration pass all run under the mid-run audits.
  for (const int tiers : {1, 2, 3}) {
    for (const auto lender :
         {cluster::LenderPolicy::MemoryNodesFirst,
          cluster::LenderPolicy::MostFree, cluster::LenderPolicy::LeastFree}) {
      out.push_back(FuzzParams{seed++, policy::PolicyKind::Dynamic,
                               UpdateMode::PerJobStaggered,
                               OomHandling::FailRestart, true, true, tiers,
                               lender});
    }
  }
  // Monitor axis: imperfect monitors under both update modes and both OOM
  // policies, so runtime-OOM kills, adaptive cadence changes and overhead
  // slowdown folds all run under the mid-run audits.
  for (const auto kind :
       {monitor::MonitorKind::Sampled, monitor::MonitorKind::Adaptive}) {
    for (const auto mode :
         {UpdateMode::PerJobStaggered, UpdateMode::GlobalBatch}) {
      for (const auto oom :
           {OomHandling::FailRestart, OomHandling::CheckpointRestart}) {
        FuzzParams p{seed++,  policy::PolicyKind::Dynamic, mode, oom,
                     true,    true};
        p.monitor = kind;
        out.push_back(p);
      }
    }
  }
  // Degenerate-input axis: zero-duration jobs + an absurd update interval,
  // with and without an imperfect monitor in the loop.
  for (const auto kind :
       {monitor::MonitorKind::Oracle, monitor::MonitorKind::Sampled}) {
    FuzzParams p{seed++,
                 policy::PolicyKind::Dynamic,
                 UpdateMode::PerJobStaggered,
                 OomHandling::FailRestart,
                 false,
                 true};
    p.monitor = kind;
    p.degenerate = true;
    out.push_back(p);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, SchedulerFuzzTest,
                         ::testing::ValuesIn(fuzz_matrix()));

}  // namespace
}  // namespace dmsim::sched
