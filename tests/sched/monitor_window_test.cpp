// Regression: the zeroth monitoring window must be provisioned for the gap
// the staggered schedule actually leaves, not for exactly one interval.
//
// PerJobStaggered fires a job's first update at interval * (0.5 + phase)
// with phase in [0, 1) — up to 1.5 intervals after start. The old demand
// look-ahead was hard-coded to one interval, so for phase > 0.5 the tail
// [interval, (0.5 + phase) * interval] of the zeroth window was never
// provisioned: a usage spike there ran on memory the ledger had not
// granted. cover_first_window() now sizes the look-ahead from the actual
// time to the first update.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/job_spec.hpp"

namespace dmsim {
namespace {

/// Job 1's stagger phase is (2654435761 % 4096) / 4096 ~= 0.6057, so its
/// first update fires ~1.106 intervals after start — a tail of ~31.7 s
/// beyond the old one-interval look-ahead at interval 300.
constexpr double kPhaseJob1 = 2481.0 / 4096.0;

trace::JobSpec tail_spike_job() {
  trace::JobSpec j;
  j.id = JobId{1};
  j.submit_time = 0.0;
  j.num_nodes = 1;
  j.duration = 1000.0;
  j.walltime = 4000.0;
  j.requested_mem = gib(8);
  // The spike sits at progress [0.305, 0.325): past the old look-ahead
  // window [0, 0.300] but inside the real zeroth window [0, ~0.3317].
  j.usage = trace::UsageTrace(std::vector<trace::UsagePoint>{
      {0.0, gib(8)}, {0.305, gib(30)}, {0.325, gib(8)}});
  return j;
}

TEST(MonitorWindow, FirstWindowCoversTheStaggerTail) {
  ASSERT_GT(kPhaseJob1, 0.5);  // the premise: job 1 has an uncovered tail

  sim::Engine engine;
  cluster::Cluster cluster(
      cluster::make_cluster_config(4, gib(64), 0, gib(128)));
  auto policy = policy::make_policy(policy::PolicyKind::Dynamic);
  sched::SchedulerConfig cfg;
  cfg.update_interval = 300.0;
  sched::Scheduler sched(engine, cluster, *policy, nullptr, cfg, nullptr);
  sched.submit_workload({tail_spike_job()});

  // Run to just after the job starts but well before the first update
  // (~331.7 s): the zeroth-window plan must already cover the spike.
  (void)sched.run_ready(50.0);
  const auto hosts = cluster.hosts_of(JobId{1});
  ASSERT_EQ(hosts.size(), 1U);
  EXPECT_GE(cluster.slot(JobId{1}, hosts[0]).total(), gib(30))
      << "zeroth-window provisioning missed the stagger tail";

  // The run completes without the spike ever exceeding the allocation.
  (void)sched.run_ready(1e18);
  sched.finalize();
  EXPECT_EQ(sched.totals().oom_events, 0U);
  EXPECT_EQ(sched.totals().completed, 1U);
}

TEST(MonitorWindow, NoGrowthWhenRequestCoversTheWindow) {
  // Control: a flat job at its request must leave the ledger untouched at
  // start (the identity rule depends on this early-out).
  sim::Engine engine;
  cluster::Cluster cluster(
      cluster::make_cluster_config(4, gib(64), 0, gib(128)));
  auto policy = policy::make_policy(policy::PolicyKind::Dynamic);
  sched::SchedulerConfig cfg;
  cfg.update_interval = 300.0;
  sched::Scheduler sched(engine, cluster, *policy, nullptr, cfg, nullptr);

  trace::JobSpec j = tail_spike_job();
  j.usage = trace::UsageTrace::constant(gib(8));
  sched.submit_workload({j});

  (void)sched.run_ready(50.0);
  const auto hosts = cluster.hosts_of(JobId{1});
  ASSERT_EQ(hosts.size(), 1U);
  EXPECT_EQ(cluster.slot(JobId{1}, hosts[0]).total(), gib(8));
  (void)sched.run_ready(1e18);
  sched.finalize();
  EXPECT_EQ(sched.totals().completed, 1U);
}

}  // namespace
}  // namespace dmsim
