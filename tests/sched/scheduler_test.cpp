#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "policy/policy.hpp"
#include "sim/engine.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec make_job(std::uint32_t id, Seconds submit, int nodes,
                        MiB request, Seconds duration,
                        Seconds walltime = 0.0) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.requested_mem = request;
  j.duration = duration;
  j.walltime = walltime > 0.0 ? walltime : duration * 1.5;
  j.usage = trace::UsageTrace::constant(request);
  return j;
}

struct Harness {
  explicit Harness(cluster::ClusterConfig cluster_cfg,
                   policy::PolicyKind kind = policy::PolicyKind::Static,
                   SchedulerConfig sched_cfg = {})
      : cluster(std::move(cluster_cfg)),
        policy(policy::make_policy(kind)),
        scheduler(engine, cluster, *policy, nullptr, sched_cfg) {}

  const JobRecord& record(std::uint32_t id) const {
    for (const auto& r : scheduler.records()) {
      if (r.id == JobId{id}) return r;
    }
    throw std::runtime_error("no record");
  }

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

cluster::ClusterConfig two_nodes() {
  return cluster::make_cluster_config(2, 64 * kGiB, 0, 0);
}

TEST(Scheduler, SingleJobLifecycle) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({make_job(1, 0.0, 1, 8 * kGiB, 100.0)});
  h.scheduler.run();
  const JobRecord& r = h.record(1);
  EXPECT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_EQ(r.first_start, 0.0);
  EXPECT_EQ(r.end_time, 100.0);
  EXPECT_DOUBLE_EQ(r.response_time(), 100.0);
  EXPECT_DOUBLE_EQ(r.wait_time(), 0.0);
  EXPECT_EQ(h.scheduler.totals().completed, 1u);
  EXPECT_EQ(h.cluster.total_allocated(), 0);
}

TEST(Scheduler, FcfsOrderOnContendedNode) {
  Harness h(cluster::make_cluster_config(1, 64 * kGiB, 0, 0));
  h.scheduler.submit_workload({
      make_job(1, 0.0, 1, 8 * kGiB, 100.0),
      make_job(2, 1.0, 1, 8 * kGiB, 10.0),
  });
  h.scheduler.run();
  EXPECT_EQ(h.record(1).first_start, 0.0);
  EXPECT_GE(h.record(2).first_start, 100.0);
  EXPECT_EQ(h.record(2).outcome, JobOutcome::Completed);
}

TEST(Scheduler, BackfillShortJobJumpsAhead) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({
      make_job(1, 0.0, 1, 8 * kGiB, 100.0, 100.0),   // runs on one node
      make_job(2, 1.0, 2, 8 * kGiB, 50.0, 50.0),     // head: needs both nodes
      make_job(3, 2.0, 1, 8 * kGiB, 20.0, 20.0),     // short: fits the hole
  });
  h.scheduler.run();
  EXPECT_LT(h.record(3).first_start, h.record(2).first_start);
  EXPECT_GE(h.scheduler.totals().backfill_starts, 1u);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(h.record(id).outcome, JobOutcome::Completed);
  }
}

TEST(Scheduler, BackfillRespectsHeadReservation) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({
      make_job(1, 0.0, 1, 8 * kGiB, 100.0, 100.0),
      make_job(2, 1.0, 2, 8 * kGiB, 50.0, 50.0),    // head reservation at ~100
      make_job(3, 2.0, 1, 8 * kGiB, 200.0, 200.0),  // too long to backfill
  });
  h.scheduler.run();
  // Job 3 would delay the head's reservation; it must start after job 2.
  EXPECT_GT(h.record(3).first_start, h.record(2).first_start);
  EXPECT_EQ(h.record(2).first_start, 100.0);
}

TEST(Scheduler, BackfillDisabledKeepsStrictFifo) {
  SchedulerConfig cfg;
  cfg.enable_backfill = false;
  Harness h(two_nodes(), policy::PolicyKind::Static, cfg);
  h.scheduler.submit_workload({
      make_job(1, 0.0, 1, 8 * kGiB, 100.0, 100.0),
      make_job(2, 1.0, 2, 8 * kGiB, 50.0, 50.0),
      make_job(3, 2.0, 1, 8 * kGiB, 20.0, 20.0),
  });
  h.scheduler.run();
  EXPECT_GT(h.record(3).first_start, h.record(2).first_start);
  EXPECT_EQ(h.scheduler.totals().backfill_starts, 0u);
}

TEST(Scheduler, SchedulingPassRateLimited) {
  SchedulerConfig cfg;
  cfg.sched_interval = 30.0;
  Harness h(cluster::make_cluster_config(1, 64 * kGiB, 0, 0),
            policy::PolicyKind::Static, cfg);
  // Second job arrives at t=1; the next pass may run no earlier than t=30.
  h.scheduler.submit_workload({
      make_job(1, 0.0, 1, 8 * kGiB, 5.0),
      make_job(2, 1.0, 1, 8 * kGiB, 5.0),
  });
  h.scheduler.run();
  EXPECT_EQ(h.record(1).first_start, 0.0);
  EXPECT_GE(h.record(2).first_start, 30.0);
}

TEST(Scheduler, InfeasibleJobIsRecordedNotQueued) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({
      make_job(1, 0.0, 1, 500 * kGiB, 100.0),  // can never fit
      make_job(2, 0.0, 1, 8 * kGiB, 50.0),
  });
  EXPECT_EQ(h.scheduler.infeasible_count(), 1u);
  h.scheduler.run();
  EXPECT_TRUE(h.record(1).infeasible);
  EXPECT_EQ(h.record(1).outcome, JobOutcome::NeverStarted);
  EXPECT_EQ(h.record(2).outcome, JobOutcome::Completed);
}

TEST(Scheduler, WalltimeKillWhenEnforced) {
  SchedulerConfig cfg;
  cfg.enforce_walltime = true;
  Harness h(two_nodes(), policy::PolicyKind::Static, cfg);
  h.scheduler.submit_workload({make_job(1, 0.0, 1, 8 * kGiB, 100.0, 50.0)});
  h.scheduler.run();
  const JobRecord& r = h.record(1);
  EXPECT_EQ(r.outcome, JobOutcome::KilledWalltime);
  EXPECT_EQ(r.end_time, 50.0);
  EXPECT_EQ(h.scheduler.totals().walltime_kills, 1u);
  EXPECT_EQ(h.cluster.total_allocated(), 0);
}

TEST(Scheduler, WalltimeNotEnforcedByDefault) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({make_job(1, 0.0, 1, 8 * kGiB, 100.0, 50.0)});
  h.scheduler.run();
  EXPECT_EQ(h.record(1).outcome, JobOutcome::Completed);
  EXPECT_EQ(h.record(1).end_time, 100.0);
}

TEST(Scheduler, DynamicUpdatesCountedAndHarmless) {
  Harness h(two_nodes(), policy::PolicyKind::Dynamic);
  h.scheduler.submit_workload({make_job(1, 0.0, 1, 8 * kGiB, 2000.0)});
  h.scheduler.run();
  EXPECT_EQ(h.record(1).outcome, JobOutcome::Completed);
  EXPECT_GT(h.scheduler.totals().update_events, 0u);
  EXPECT_EQ(h.scheduler.totals().oom_events, 0u);
  EXPECT_EQ(h.record(1).end_time, 2000.0);  // constant usage: no slowdown
}

// A job whose trace starts at its peak then drops: the dynamic policy must
// reclaim the difference, letting a blocked job start earlier than under
// the static policy.
trace::Workload shrink_scenario() {
  trace::JobSpec a = make_job(1, 0.0, 1, 120 * kGiB, 3600.0);
  a.usage = trace::UsageTrace({{0.0, 120 * kGiB}, {0.2, 16 * kGiB}});
  trace::JobSpec b = make_job(2, 10.0, 1, 120 * kGiB, 600.0);
  b.usage = trace::UsageTrace::constant(16 * kGiB);
  return {a, b};
}

cluster::ClusterConfig three_nodes() {
  return cluster::make_cluster_config(3, 64 * kGiB, 0, 0);
}

TEST(Scheduler, DynamicReclaimStartsBlockedJobEarlier) {
  Seconds static_start = 0.0;
  Seconds dynamic_start = 0.0;
  {
    Harness h(three_nodes(), policy::PolicyKind::Static);
    h.scheduler.submit_workload(shrink_scenario());
    h.scheduler.run();
    static_start = h.record(2).first_start;
  }
  {
    Harness h(three_nodes(), policy::PolicyKind::Dynamic);
    h.scheduler.submit_workload(shrink_scenario());
    h.scheduler.run();
    dynamic_start = h.record(2).first_start;
  }
  // Static: job 2 waits for job 1 to finish (t=3600). Dynamic: job 1's
  // allocation shrinks once its trace drops at 20% progress (~t=720).
  EXPECT_GE(static_start, 3600.0);
  EXPECT_LT(dynamic_start, 2000.0);
}

// Out-of-memory handling: job 1 grows mid-run beyond what the system has
// while job 2 holds a static reservation.
trace::Workload oom_scenario() {
  trace::JobSpec a = make_job(1, 0.0, 1, 10 * kGiB, 3600.0);
  a.usage = trace::UsageTrace({{0.0, 10 * kGiB}, {0.5, 120 * kGiB}});
  trace::JobSpec b = make_job(2, 0.0, 1, 100 * kGiB, 3600.0);
  b.usage = trace::UsageTrace::constant(100 * kGiB);
  return {a, b};
}

TEST(Scheduler, OomFailRestartRequeuesAndCompletes) {
  SchedulerConfig cfg;
  cfg.oom_handling = OomHandling::FailRestart;
  cfg.guaranteed_after_failures = 0;
  Harness h(two_nodes(), policy::PolicyKind::Dynamic, cfg);
  h.scheduler.submit_workload(oom_scenario());
  h.scheduler.run();
  const JobRecord& a = h.record(1);
  EXPECT_EQ(a.outcome, JobOutcome::Completed);
  EXPECT_GE(a.oom_failures, 1);
  EXPECT_GE(h.scheduler.totals().oom_events, 1u);
  EXPECT_GE(h.scheduler.totals().requeues, 1u);
  // The restart threw away progress; the job finishes after job 2.
  EXPECT_GT(a.end_time, h.record(2).end_time);
  EXPECT_EQ(h.cluster.total_allocated(), 0);
}

TEST(Scheduler, CheckpointRestartFinishesNoLaterThanFailRestart) {
  Seconds fr_end = 0.0;
  Seconds cr_end = 0.0;
  {
    SchedulerConfig cfg;
    cfg.oom_handling = OomHandling::FailRestart;
    cfg.guaranteed_after_failures = 0;
    Harness h(two_nodes(), policy::PolicyKind::Dynamic, cfg);
    h.scheduler.submit_workload(oom_scenario());
    h.scheduler.run();
    fr_end = h.record(1).end_time;
  }
  {
    SchedulerConfig cfg;
    cfg.oom_handling = OomHandling::CheckpointRestart;
    cfg.guaranteed_after_failures = 0;
    Harness h(two_nodes(), policy::PolicyKind::Dynamic, cfg);
    h.scheduler.submit_workload(oom_scenario());
    h.scheduler.run();
    cr_end = h.record(1).end_time;
    EXPECT_EQ(h.record(1).outcome, JobOutcome::Completed);
  }
  EXPECT_LE(cr_end, fr_end);
}

TEST(Scheduler, GuaranteedFallbackAfterRepeatedFailures) {
  // Single 64 GiB node; the job's true peak (120 GiB) can never be satisfied,
  // so without mitigation it would fail forever.
  SchedulerConfig cfg;
  cfg.guaranteed_after_failures = 1;
  Harness h(cluster::make_cluster_config(1, 64 * kGiB, 0, 0),
            policy::PolicyKind::Dynamic, cfg);
  trace::JobSpec a = make_job(1, 0.0, 1, 10 * kGiB, 1000.0);
  a.usage = trace::UsageTrace({{0.0, 10 * kGiB}, {0.5, 120 * kGiB}});
  h.scheduler.submit_workload({a});
  h.scheduler.run();
  const JobRecord& r = h.record(1);
  EXPECT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_TRUE(r.ran_guaranteed);
  EXPECT_EQ(r.oom_failures, 1);
  EXPECT_GE(h.scheduler.totals().guaranteed_starts, 1u);
}

TEST(Scheduler, AbandonsAfterMaxRestartsWithoutMitigation) {
  SchedulerConfig cfg;
  cfg.guaranteed_after_failures = 0;  // mitigation off
  cfg.max_restarts = 3;
  Harness h(cluster::make_cluster_config(1, 64 * kGiB, 0, 0),
            policy::PolicyKind::Dynamic, cfg);
  trace::JobSpec a = make_job(1, 0.0, 1, 10 * kGiB, 1000.0);
  a.usage = trace::UsageTrace({{0.0, 10 * kGiB}, {0.5, 120 * kGiB}});
  h.scheduler.submit_workload({a});
  h.scheduler.run();
  const JobRecord& r = h.record(1);
  EXPECT_EQ(r.outcome, JobOutcome::AbandonedOom);
  EXPECT_EQ(r.oom_failures, 4);  // initial run + 3 restarts
  EXPECT_EQ(h.scheduler.totals().abandoned, 1u);
  EXPECT_EQ(h.cluster.total_allocated(), 0);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Harness h(three_nodes(), policy::PolicyKind::Dynamic);
    trace::Workload jobs;
    for (std::uint32_t i = 1; i <= 10; ++i) {
      jobs.push_back(make_job(i, i * 7.0, 1 + static_cast<int>(i % 3),
                              (8 + 11 * i) * kGiB, 200.0 + 37.0 * i));
    }
    h.scheduler.submit_workload(std::move(jobs));
    h.scheduler.run();
    std::vector<std::pair<Seconds, Seconds>> out;
    for (const auto& r : h.scheduler.records()) {
      out.emplace_back(r.first_start, r.end_time);
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, UtilizationAccountingSaneBounds) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({
      make_job(1, 0.0, 2, 32 * kGiB, 100.0),
      make_job(2, 0.0, 1, 8 * kGiB, 50.0),
  });
  h.scheduler.run();
  EXPECT_GT(h.scheduler.avg_busy_nodes(), 0.0);
  EXPECT_LE(h.scheduler.avg_busy_nodes(), 2.0);
  EXPECT_GT(h.scheduler.avg_allocated_mib(), 0.0);
  EXPECT_LE(h.scheduler.avg_allocated_mib(),
            static_cast<double>(h.cluster.total_capacity()));
}

TEST(Scheduler, SystemSamplesWhenEnabled) {
  SchedulerConfig cfg;
  cfg.sample_interval = 50.0;
  Harness h(two_nodes(), policy::PolicyKind::Static, cfg);
  h.scheduler.submit_workload({make_job(1, 0.0, 1, 8 * kGiB, 200.0)});
  h.scheduler.run();
  const auto& samples = h.scheduler.samples();
  ASSERT_GE(samples.size(), 4u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].time, samples[i - 1].time);
  }
  // While the job runs, one node is busy and 8 GiB is allocated.
  EXPECT_EQ(samples[1].busy_nodes, 1);
  EXPECT_EQ(samples[1].allocated, 8 * kGiB);
  EXPECT_EQ(samples[1].used, 8 * kGiB);
}

TEST(Scheduler, MultiNodeJobOccupiesAllHosts) {
  Harness h(three_nodes());
  h.scheduler.submit_workload({make_job(1, 0.0, 3, 8 * kGiB, 100.0)});
  h.scheduler.run();
  EXPECT_EQ(h.record(1).outcome, JobOutcome::Completed);
  EXPECT_NEAR(h.scheduler.avg_busy_nodes(), 3.0, 0.1);
}

TEST(Scheduler, ZeroDurationJobCompletesImmediately) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({make_job(1, 5.0, 1, 8 * kGiB, 0.0, 60.0)});
  h.scheduler.run();
  const JobRecord& r = h.record(1);
  EXPECT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_EQ(r.end_time, 5.0);
}

TEST(Scheduler, EmptyWorkloadRunsCleanly) {
  Harness h(two_nodes());
  h.scheduler.submit_workload({});
  h.scheduler.run();
  EXPECT_EQ(h.scheduler.totals().completed, 0u);
  EXPECT_TRUE(h.scheduler.records().empty());
}

}  // namespace
}  // namespace dmsim::sched
