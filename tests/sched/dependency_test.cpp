// SWF job dependencies: preceding_job + think_time hold a job back until
// its predecessor reaches a terminal state.
#include <gtest/gtest.h>

#include <memory>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "trace/swf.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec job(std::uint32_t id, Seconds submit, Seconds duration,
                   std::uint32_t pred = JobId::kInvalid,
                   Seconds think = 0.0) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = 1;
  j.requested_mem = 8 * kGiB;
  j.duration = duration;
  j.walltime = duration * 1.5;
  j.usage = trace::UsageTrace::constant(8 * kGiB);
  if (pred != JobId::kInvalid) {
    j.preceding_job = JobId{pred};
    j.think_time = think;
  }
  return j;
}

struct Rig {
  explicit Rig(SchedulerConfig cfg = {})
      : cluster(cluster::make_cluster_config(4, 64 * kGiB, 0, 0)),
        policy(policy::make_policy(policy::PolicyKind::Static)),
        scheduler(engine, cluster, *policy, nullptr, cfg) {}

  const JobRecord& record(std::uint32_t id) const {
    for (const auto& r : scheduler.records()) {
      if (r.id == JobId{id}) return r;
    }
    throw std::runtime_error("no record");
  }

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

TEST(Dependency, DependentWaitsForPredecessor) {
  Rig rig;
  // Plenty of free nodes, but job 2 depends on job 1 (duration 500).
  rig.scheduler.submit_workload({
      job(1, 0.0, 500.0),
      job(2, 0.0, 100.0, /*pred=*/1),
  });
  rig.scheduler.run();
  EXPECT_DOUBLE_EQ(rig.record(1).end_time, 500.0);
  EXPECT_GE(rig.record(2).first_start, 500.0);
  EXPECT_EQ(rig.record(2).outcome, JobOutcome::Completed);
}

TEST(Dependency, ThinkTimeDelaysRelease) {
  Rig rig;
  rig.scheduler.submit_workload({
      job(1, 0.0, 500.0),
      job(2, 0.0, 100.0, /*pred=*/1, /*think=*/200.0),
  });
  rig.scheduler.run();
  EXPECT_GE(rig.record(2).first_start, 700.0);
}

TEST(Dependency, ChainExecutesInOrder) {
  Rig rig;
  rig.scheduler.submit_workload({
      job(1, 0.0, 100.0),
      job(2, 0.0, 100.0, 1),
      job(3, 0.0, 100.0, 2),
      job(4, 0.0, 100.0, 3),
  });
  rig.scheduler.run();
  for (std::uint32_t id = 2; id <= 4; ++id) {
    EXPECT_GE(rig.record(id).first_start, rig.record(id - 1).end_time);
    EXPECT_EQ(rig.record(id).outcome, JobOutcome::Completed);
  }
}

TEST(Dependency, UnknownPredecessorIgnored) {
  Rig rig;
  rig.scheduler.submit_workload({job(2, 0.0, 100.0, /*pred=*/999)});
  rig.scheduler.run();
  EXPECT_DOUBLE_EQ(rig.record(2).first_start, 0.0);
}

TEST(Dependency, BackwardReferenceIgnored) {
  // pred id > own id violates the SWF convention and is ignored (this also
  // rules out cycles).
  Rig rig;
  rig.scheduler.submit_workload({
      job(1, 0.0, 100.0, /*pred=*/2),
      job(2, 0.0, 100.0, /*pred=*/1),
  });
  rig.scheduler.run();
  EXPECT_DOUBLE_EQ(rig.record(1).first_start, 0.0);
  EXPECT_GE(rig.record(2).first_start, 100.0);
}

TEST(Dependency, InfeasiblePredecessorReleasesDependent) {
  Rig rig;
  trace::JobSpec bad = job(1, 0.0, 100.0);
  bad.requested_mem = 4096 * kGiB;  // cannot ever run
  rig.scheduler.submit_workload({bad, job(2, 10.0, 100.0, 1)});
  rig.scheduler.run();
  EXPECT_TRUE(rig.record(1).infeasible);
  EXPECT_EQ(rig.record(2).outcome, JobOutcome::Completed);
  EXPECT_GE(rig.record(2).first_start, 10.0);
}

TEST(Dependency, DependentSubmitTimeStillRespected) {
  Rig rig;
  // Predecessor finishes at 100, but the dependent is only submitted at 5000.
  rig.scheduler.submit_workload({
      job(1, 0.0, 100.0),
      job(2, 5000.0, 100.0, 1),
  });
  rig.scheduler.run();
  EXPECT_GE(rig.record(2).first_start, 5000.0);
}

TEST(Dependency, ResponseTimeIncludesDependencyWait) {
  Rig rig;
  rig.scheduler.submit_workload({
      job(1, 0.0, 500.0),
      job(2, 0.0, 100.0, 1),
  });
  rig.scheduler.run();
  EXPECT_GE(rig.record(2).response_time(), 600.0 - 1e-9);
}

TEST(Dependency, SurvivesSwfRoundTrip) {
  trace::Workload jobs = {job(1, 0.0, 300.0),
                          job(2, 0.0, 100.0, 1, 50.0)};
  const trace::Workload back = trace::from_swf(trace::to_swf(jobs, 32), 32);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[1].preceding_job, JobId{1});
  EXPECT_DOUBLE_EQ(back[1].think_time, 50.0);
  EXPECT_FALSE(back[0].preceding_job.valid());

  Rig rig;
  rig.scheduler.submit_workload(back);
  rig.scheduler.run();
  EXPECT_GE(rig.record(2).first_start, 350.0);
}

}  // namespace
}  // namespace dmsim::sched
