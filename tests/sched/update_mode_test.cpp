// Global-batch Monitor updates (paper §2.3's sim_mgr timer) versus the
// default per-job staggered mode.
#include <gtest/gtest.h>

#include <memory>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec shrink_job(std::uint32_t id, Seconds submit) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = 1;
  j.requested_mem = 120 * kGiB;
  j.duration = 3600.0;
  j.walltime = 5400.0;
  j.usage = trace::UsageTrace({{0.0, 120 * kGiB}, {0.2, 16 * kGiB}});
  return j;
}

struct Rig {
  explicit Rig(SchedulerConfig cfg)
      : cluster(cluster::make_cluster_config(3, 64 * kGiB, 0, 0)),
        policy(policy::make_policy(policy::PolicyKind::Dynamic)),
        scheduler(engine, cluster, *policy, nullptr, cfg) {}

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

TEST(UpdateMode, GlobalBatchCompletesWorkload) {
  SchedulerConfig cfg;
  cfg.update_mode = UpdateMode::GlobalBatch;
  Rig rig(cfg);
  trace::Workload jobs = {shrink_job(1, 0.0), shrink_job(2, 10.0)};
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  for (const auto& r : rig.scheduler.records()) {
    EXPECT_EQ(r.outcome, JobOutcome::Completed);
  }
  EXPECT_GT(rig.scheduler.totals().update_events, 0u);
  EXPECT_EQ(rig.cluster.total_allocated(), 0);
}

TEST(UpdateMode, GlobalBatchReclaimsLikeStaggered) {
  // Both modes must let the blocked second job start early (the reclaim
  // behaviour of the shrink scenario), within one update interval of each
  // other.
  const auto run_mode = [](UpdateMode mode) {
    SchedulerConfig cfg;
    cfg.update_mode = mode;
    Rig rig(cfg);
    rig.scheduler.submit_workload({shrink_job(1, 0.0), shrink_job(2, 10.0)});
    rig.scheduler.run();
    for (const auto& r : rig.scheduler.records()) {
      if (r.id == JobId{2}) return r.first_start;
    }
    return kNoTime;
  };
  const Seconds staggered = run_mode(UpdateMode::PerJobStaggered);
  const Seconds batched = run_mode(UpdateMode::GlobalBatch);
  EXPECT_LT(staggered, 2500.0);
  EXPECT_LT(batched, 2500.0);
  EXPECT_NEAR(staggered, batched, 600.0);
}

TEST(UpdateMode, GlobalBatchHandlesOomVictims) {
  SchedulerConfig cfg;
  cfg.update_mode = UpdateMode::GlobalBatch;
  cfg.guaranteed_after_failures = 0;
  Rig rig(cfg);
  // Job 1 grows beyond what remains while job 2 pins memory (192 GiB pool).
  trace::JobSpec grower;
  grower.id = JobId{1};
  grower.submit_time = 0.0;
  grower.num_nodes = 1;
  grower.requested_mem = 10 * kGiB;
  grower.duration = 3600.0;
  grower.walltime = 5400.0;
  grower.usage =
      trace::UsageTrace({{0.0, 10 * kGiB}, {0.5, 150 * kGiB}});
  trace::JobSpec pinner;
  pinner.id = JobId{2};
  pinner.submit_time = 0.0;
  pinner.num_nodes = 1;
  pinner.requested_mem = 120 * kGiB;
  pinner.duration = 3600.0;
  pinner.walltime = 5400.0;
  pinner.usage = trace::UsageTrace::constant(120 * kGiB);
  rig.scheduler.submit_workload({grower, pinner});
  rig.scheduler.run();
  EXPECT_GE(rig.scheduler.totals().oom_events, 1u);
  for (const auto& r : rig.scheduler.records()) {
    EXPECT_EQ(r.outcome, JobOutcome::Completed) << r.id.get();
  }
  EXPECT_EQ(rig.cluster.total_allocated(), 0);
}

TEST(UpdateMode, GlobalTimerStopsWhenIdle) {
  SchedulerConfig cfg;
  cfg.update_mode = UpdateMode::GlobalBatch;
  Rig rig(cfg);
  rig.scheduler.submit_workload({shrink_job(1, 0.0)});
  rig.scheduler.run();  // must terminate (no self-sustaining timer chain)
  EXPECT_EQ(rig.scheduler.running_count(), 0u);
}

}  // namespace
}  // namespace dmsim::sched
