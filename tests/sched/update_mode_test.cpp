// Global-batch Monitor updates (paper §2.3's sim_mgr timer) versus the
// default per-job staggered mode.
#include <gtest/gtest.h>

#include <memory>

#include "obs/counters.hpp"
#include "obs/observer.hpp"
#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec shrink_job(std::uint32_t id, Seconds submit) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = 1;
  j.requested_mem = 120 * kGiB;
  j.duration = 3600.0;
  j.walltime = 5400.0;
  j.usage = trace::UsageTrace({{0.0, 120 * kGiB}, {0.2, 16 * kGiB}});
  return j;
}

struct Rig {
  explicit Rig(SchedulerConfig cfg)
      : cluster(cluster::make_cluster_config(3, 64 * kGiB, 0, 0)),
        policy(policy::make_policy(policy::PolicyKind::Dynamic)),
        scheduler(engine, cluster, *policy, nullptr, cfg) {}

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

TEST(UpdateMode, GlobalBatchCompletesWorkload) {
  SchedulerConfig cfg;
  cfg.update_mode = UpdateMode::GlobalBatch;
  Rig rig(cfg);
  trace::Workload jobs = {shrink_job(1, 0.0), shrink_job(2, 10.0)};
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  for (const auto& r : rig.scheduler.records()) {
    EXPECT_EQ(r.outcome, JobOutcome::Completed);
  }
  EXPECT_GT(rig.scheduler.totals().update_events, 0u);
  EXPECT_EQ(rig.cluster.total_allocated(), 0);
}

TEST(UpdateMode, GlobalBatchReclaimsLikeStaggered) {
  // Both modes must let the blocked second job start early (the reclaim
  // behaviour of the shrink scenario), within one update interval of each
  // other.
  const auto run_mode = [](UpdateMode mode) {
    SchedulerConfig cfg;
    cfg.update_mode = mode;
    Rig rig(cfg);
    rig.scheduler.submit_workload({shrink_job(1, 0.0), shrink_job(2, 10.0)});
    rig.scheduler.run();
    for (const auto& r : rig.scheduler.records()) {
      if (r.id == JobId{2}) return r.first_start;
    }
    return kNoTime;
  };
  const Seconds staggered = run_mode(UpdateMode::PerJobStaggered);
  const Seconds batched = run_mode(UpdateMode::GlobalBatch);
  EXPECT_LT(staggered, 2500.0);
  EXPECT_LT(batched, 2500.0);
  EXPECT_NEAR(staggered, batched, 600.0);
}

TEST(UpdateMode, GlobalBatchHandlesOomVictims) {
  SchedulerConfig cfg;
  cfg.update_mode = UpdateMode::GlobalBatch;
  cfg.guaranteed_after_failures = 0;
  Rig rig(cfg);
  // Job 1 grows beyond what remains while job 2 pins memory (192 GiB pool).
  trace::JobSpec grower;
  grower.id = JobId{1};
  grower.submit_time = 0.0;
  grower.num_nodes = 1;
  grower.requested_mem = 10 * kGiB;
  grower.duration = 3600.0;
  grower.walltime = 5400.0;
  grower.usage =
      trace::UsageTrace({{0.0, 10 * kGiB}, {0.5, 150 * kGiB}});
  trace::JobSpec pinner;
  pinner.id = JobId{2};
  pinner.submit_time = 0.0;
  pinner.num_nodes = 1;
  pinner.requested_mem = 120 * kGiB;
  pinner.duration = 3600.0;
  pinner.walltime = 5400.0;
  pinner.usage = trace::UsageTrace::constant(120 * kGiB);
  rig.scheduler.submit_workload({grower, pinner});
  rig.scheduler.run();
  EXPECT_GE(rig.scheduler.totals().oom_events, 1u);
  for (const auto& r : rig.scheduler.records()) {
    EXPECT_EQ(r.outcome, JobOutcome::Completed) << r.id.get();
  }
  EXPECT_EQ(rig.cluster.total_allocated(), 0);
}

// Guaranteed allocations are update-exempt, so once they are all that is
// running the global timer has no work. It must stop ticking (and re-arm on
// the next updatable start) instead of firing no-op batches until the last
// guaranteed job drains — observable as a bounded sched.update_batches count.
TEST(UpdateMode, GlobalTimerStopsWhenOnlyGuaranteedJobsRemain) {
  SchedulerConfig cfg;
  cfg.update_mode = UpdateMode::GlobalBatch;
  cfg.update_interval = 50.0;
  cfg.guaranteed_after_failures = 1;

  obs::Counters counters;
  obs::Observer obs;
  obs.counters = &counters;

  sim::Engine engine;
  cluster::Cluster cluster(cluster::make_cluster_config(3, 64 * kGiB, 0, 0));
  auto policy = policy::make_policy(policy::PolicyKind::Dynamic);
  Scheduler scheduler(engine, cluster, *policy, nullptr, cfg, &obs);

  // Job 1 grows to 150 GiB at 10% progress while job 2 pins 120 GiB of the
  // 192 GiB pool: job 1 OOMs once (~t=800), restarts guaranteed, then runs
  // its full 8000 s alone after job 2 ends (~t=1000 plus slowdown).
  trace::JobSpec grower;
  grower.id = JobId{1};
  grower.submit_time = 0.0;
  grower.num_nodes = 1;
  grower.requested_mem = 10 * kGiB;
  grower.duration = 8000.0;
  grower.walltime = 12000.0;
  grower.usage = trace::UsageTrace({{0.0, 10 * kGiB}, {0.1, 150 * kGiB}});
  trace::JobSpec pinner;
  pinner.id = JobId{2};
  pinner.submit_time = 0.0;
  pinner.num_nodes = 1;
  pinner.requested_mem = 120 * kGiB;
  pinner.duration = 1000.0;
  pinner.walltime = 2000.0;
  pinner.usage = trace::UsageTrace::constant(120 * kGiB);
  scheduler.submit_workload({grower, pinner});
  scheduler.run();

  EXPECT_GE(scheduler.totals().oom_events, 1u);
  for (const auto& r : scheduler.records()) {
    EXPECT_EQ(r.outcome, JobOutcome::Completed) << r.id.get();
    if (r.id == JobId{1}) EXPECT_TRUE(r.ran_guaranteed);
  }
  // Batches tick only while an updatable job runs (t <~ 2000, interval 50).
  // Before the fix the chain ticked across the guaranteed job's whole 8000 s
  // tail as well, pushing the count past 160.
  EXPECT_GE(counters.counter("sched.update_batches"), 5u);
  EXPECT_LE(counters.counter("sched.update_batches"), 100u);
  EXPECT_EQ(cluster.total_allocated(), 0);
}

TEST(UpdateMode, GlobalTimerStopsWhenIdle) {
  SchedulerConfig cfg;
  cfg.update_mode = UpdateMode::GlobalBatch;
  Rig rig(cfg);
  rig.scheduler.submit_workload({shrink_job(1, 0.0)});
  rig.scheduler.run();  // must terminate (no self-sustaining timer chain)
  EXPECT_EQ(rig.scheduler.running_count(), 0u);
}

}  // namespace
}  // namespace dmsim::sched
