// Scheduler edge cases and an analytic FCFS oracle.
#include <gtest/gtest.h>

#include <memory>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec job(std::uint32_t id, Seconds submit, int nodes, MiB mem,
                   Seconds duration) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.requested_mem = mem;
  j.duration = duration;
  j.walltime = duration;
  j.usage = trace::UsageTrace::constant(mem);
  return j;
}

struct Rig {
  Rig(int nodes, policy::PolicyKind kind, SchedulerConfig cfg = {})
      : cluster(cluster::make_cluster_config(nodes, 64 * kGiB, 0, 0)),
        policy(policy::make_policy(kind)),
        scheduler(engine, cluster, *policy, nullptr, cfg) {}

  const JobRecord& record(std::uint32_t id) const {
    for (const auto& r : scheduler.records()) {
      if (r.id == JobId{id}) return r;
    }
    throw std::runtime_error("no record");
  }

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

// Oracle: N equal jobs, all submitted at t=0 on a single node, no backfill
// relevance. FCFS completion time of job k is exactly k * duration, modulo
// the 30 s scheduling-pass cadence between starts.
TEST(SchedulerOracle, SerialFcfsMatchesAnalyticSchedule) {
  Rig rig(1, policy::PolicyKind::Static);
  trace::Workload jobs;
  const Seconds duration = 500.0;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    jobs.push_back(job(i, 0.0, 1, 8 * kGiB, duration));
  }
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  Seconds expected_start = 0.0;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    const JobRecord& r = rig.record(i);
    // Each successor starts at its predecessor's end, within one 30 s pass.
    EXPECT_GE(r.first_start, expected_start - 1e-9);
    EXPECT_LE(r.first_start, expected_start + 30.0 + 1e-9);
    EXPECT_DOUBLE_EQ(r.end_time - r.first_start, duration);
    expected_start = r.end_time;
  }
}

// Oracle: M nodes, M identical jobs at t=0 -> all run concurrently.
TEST(SchedulerOracle, ParallelFcfsStartsEverythingAtOnce) {
  Rig rig(4, policy::PolicyKind::Static);
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    jobs.push_back(job(i, 0.0, 1, 8 * kGiB, 300.0));
  }
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  for (std::uint32_t i = 1; i <= 4; ++i) {
    EXPECT_DOUBLE_EQ(rig.record(i).first_start, 0.0);
    EXPECT_DOUBLE_EQ(rig.record(i).end_time, 300.0);
  }
}

TEST(SchedulerEdge, QueueDepthOneStillDrainsEventually) {
  SchedulerConfig cfg;
  cfg.queue_depth = 1;
  Rig rig(4, policy::PolicyKind::Static, cfg);
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    jobs.push_back(job(i, 0.0, 1, 8 * kGiB, 100.0));
  }
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  EXPECT_EQ(rig.scheduler.totals().completed, 8u);
}

TEST(SchedulerEdge, SimultaneousSubmitsKeepIdOrder) {
  Rig rig(1, policy::PolicyKind::Static);
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    jobs.push_back(job(i, 42.0, 1, 8 * kGiB, 50.0));
  }
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  // Submit events share a timestamp; FIFO tie-breaking preserves workload
  // order, so starts are monotone in id.
  for (std::uint32_t i = 2; i <= 5; ++i) {
    EXPECT_GT(rig.record(i).first_start, rig.record(i - 1).first_start);
  }
}

TEST(SchedulerEdge, MultiNodeJobOomReleasesEveryHost) {
  SchedulerConfig cfg;
  cfg.guaranteed_after_failures = 1;
  Rig rig(3, policy::PolicyKind::Dynamic, cfg);
  trace::JobSpec grower = job(1, 0.0, 2, 10 * kGiB, 1000.0);
  grower.usage =
      trace::UsageTrace({{0.0, 10 * kGiB}, {0.5, 100 * kGiB}});  // 2x100 > 192
  rig.scheduler.submit_workload({grower});
  rig.scheduler.run();
  const JobRecord& r = rig.record(1);
  EXPECT_GE(r.oom_failures, 1);
  EXPECT_EQ(r.outcome, JobOutcome::Completed);  // guaranteed fallback
  EXPECT_TRUE(r.ran_guaranteed);
  EXPECT_EQ(rig.cluster.total_allocated(), 0);
  rig.cluster.check_invariants();
}

TEST(SchedulerEdge, WalltimeKillDuringDynamicUpdates) {
  SchedulerConfig cfg;
  cfg.enforce_walltime = true;
  Rig rig(2, policy::PolicyKind::Dynamic, cfg);
  trace::JobSpec j = job(1, 0.0, 1, 32 * kGiB, 2000.0);
  j.walltime = 700.0;  // several update events happen first
  rig.scheduler.submit_workload({j});
  rig.scheduler.run();
  EXPECT_EQ(rig.record(1).outcome, JobOutcome::KilledWalltime);
  EXPECT_EQ(rig.record(1).end_time, 700.0);
  EXPECT_GT(rig.scheduler.totals().update_events, 0u);
  EXPECT_EQ(rig.cluster.total_allocated(), 0);
}

TEST(SchedulerEdge, LateSubmissionAfterIdlePeriod) {
  Rig rig(2, policy::PolicyKind::Static);
  rig.scheduler.submit_workload({
      job(1, 0.0, 1, 8 * kGiB, 100.0),
      job(2, 50000.0, 1, 8 * kGiB, 100.0),  // long idle gap
  });
  rig.scheduler.run();
  EXPECT_DOUBLE_EQ(rig.record(2).first_start, 50000.0);
  EXPECT_DOUBLE_EQ(rig.record(2).wait_time(), 0.0);
}

TEST(SchedulerEdge, AvgAllocatedDropsUnderDynamicShrink) {
  const auto avg_alloc = [](policy::PolicyKind kind) {
    Rig rig(2, kind);
    trace::JobSpec j = job(1, 0.0, 1, 60 * kGiB, 4000.0);
    j.usage = trace::UsageTrace({{0.0, 60 * kGiB}, {0.1, 4 * kGiB}});
    rig.scheduler.submit_workload({j});
    rig.scheduler.run();
    return rig.scheduler.avg_allocated_mib();
  };
  // Dynamic reclaims ~56 GiB for 90% of the run; static holds the request.
  EXPECT_LT(avg_alloc(policy::PolicyKind::Dynamic),
            0.4 * avg_alloc(policy::PolicyKind::Static));
}

TEST(SchedulerEdge, ManyJobsOneNodeNoEventLeaks) {
  Rig rig(1, policy::PolicyKind::Dynamic);
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 50; ++i) {
    jobs.push_back(job(i, static_cast<double>(i), 1, 8 * kGiB, 40.0));
  }
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  EXPECT_EQ(rig.scheduler.totals().completed, 50u);
  EXPECT_TRUE(rig.engine.empty());
  EXPECT_EQ(rig.engine.pending_events(), 0u);
}

TEST(SchedulerEdge, RequestSmallerThanUsageGrowsUnderDynamic) {
  // Underestimating users: dynamic grows the allocation instead of killing.
  Rig rig(2, policy::PolicyKind::Dynamic);
  trace::JobSpec j = job(1, 0.0, 1, 4 * kGiB, 3000.0);
  j.usage = trace::UsageTrace({{0.0, 4 * kGiB}, {0.4, 48 * kGiB}});
  rig.scheduler.submit_workload({j});
  rig.scheduler.run();
  EXPECT_EQ(rig.record(1).outcome, JobOutcome::Completed);
  EXPECT_EQ(rig.record(1).oom_failures, 0);
}

}  // namespace
}  // namespace dmsim::sched
