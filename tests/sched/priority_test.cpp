// Priority-boost requeue mitigation (§2.2 alternative: "increase the job's
// priority ... after a specified number of failures").
#include <gtest/gtest.h>

#include <memory>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec job(std::uint32_t id, Seconds submit, MiB request,
                   Seconds duration, trace::UsageTrace usage) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = 1;
  j.requested_mem = request;
  j.duration = duration;
  j.walltime = duration * 1.5;
  j.usage = std::move(usage);
  return j;
}

struct Rig {
  explicit Rig(SchedulerConfig cfg)
      : cluster(cluster::make_cluster_config(2, 64 * kGiB, 0, 0)),
        policy(policy::make_policy(policy::PolicyKind::Dynamic)),
        scheduler(engine, cluster, *policy, nullptr, cfg) {}

  const JobRecord& record(std::uint32_t id) const {
    for (const auto& r : scheduler.records()) {
      if (r.id == JobId{id}) return r;
    }
    throw std::runtime_error("no record");
  }

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

// Job 1 OOMs mid-run; with priority boost it must be retried ahead of the
// queue of later arrivals; without it, it goes to the back.
trace::Workload contention_workload() {
  trace::Workload jobs;
  // Grower: needs 100 GiB at 50% progress while job 2 pins 100 GiB, so the
  // first attempt OOMs (~t=1030). Job 2 exits at t=1500, after which the
  // retry can always grow (100 + 10 GiB fits the 128 GiB pool).
  jobs.push_back(job(1, 0.0, 10 * kGiB, 2000.0,
                     trace::UsageTrace({{0.0, 10 * kGiB}, {0.5, 100 * kGiB}})));
  jobs.push_back(job(2, 0.0, 100 * kGiB, 1500.0,
                     trace::UsageTrace::constant(100 * kGiB)));
  // A queue of long 1-node jobs submitted before the OOM happens; without a
  // boost the requeued job 1 waits behind all of them.
  for (std::uint32_t i = 3; i <= 8; ++i) {
    jobs.push_back(job(i, 100.0 + i, 10 * kGiB, 5000.0,
                       trace::UsageTrace::constant(10 * kGiB)));
  }
  return jobs;
}

TEST(PriorityBoost, BoostedRestartJumpsQueue) {
  Seconds boosted_end = 0.0;
  Seconds unboosted_end = 0.0;
  int boosted_failures = 0;
  {
    SchedulerConfig cfg;
    cfg.priority_boost_per_failure = 10;
    cfg.guaranteed_after_failures = 0;
    Rig rig(cfg);
    rig.scheduler.submit_workload(contention_workload());
    rig.scheduler.run();
    boosted_end = rig.record(1).end_time;
    boosted_failures = rig.record(1).oom_failures;
  }
  {
    SchedulerConfig cfg;
    cfg.priority_boost_per_failure = 0;
    cfg.guaranteed_after_failures = 0;
    Rig rig(cfg);
    rig.scheduler.submit_workload(contention_workload());
    rig.scheduler.run();
    unboosted_end = rig.record(1).end_time;
  }
  EXPECT_GE(boosted_failures, 1);
  // With the boost, job 1's restart outranks jobs 3..8 and it finishes
  // earlier than without the boost.
  EXPECT_LT(boosted_end, unboosted_end);
}

TEST(PriorityBoost, FifoPreservedWithinSamePriority) {
  SchedulerConfig cfg;
  cfg.priority_boost_per_failure = 5;
  Rig rig(cfg);
  // Two plain jobs on one free node: strict submission order expected.
  trace::Workload jobs;
  jobs.push_back(job(1, 0.0, 10 * kGiB, 500.0,
                     trace::UsageTrace::constant(10 * kGiB)));
  jobs.push_back(job(2, 0.0, 100 * kGiB, 500.0,
                     trace::UsageTrace::constant(100 * kGiB)));
  jobs.push_back(job(3, 1.0, 10 * kGiB, 500.0,
                     trace::UsageTrace::constant(10 * kGiB)));
  rig.scheduler.submit_workload(std::move(jobs));
  rig.scheduler.run();
  EXPECT_LE(rig.record(1).first_start, rig.record(3).first_start);
}

TEST(PriorityBoost, CompletesEverythingDeterministically) {
  const auto run_once = [] {
    SchedulerConfig cfg;
    cfg.priority_boost_per_failure = 3;
    cfg.guaranteed_after_failures = 2;
    Rig rig(cfg);
    rig.scheduler.submit_workload(contention_workload());
    rig.scheduler.run();
    std::vector<Seconds> ends;
    for (const auto& r : rig.scheduler.records()) {
      EXPECT_EQ(r.outcome, JobOutcome::Completed);
      ends.push_back(r.end_time);
    }
    return ends;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dmsim::sched
