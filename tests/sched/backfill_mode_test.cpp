// Backfill flavours: Off / EASY / Conservative.
#include <gtest/gtest.h>

#include <memory>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

trace::JobSpec job(std::uint32_t id, Seconds submit, int nodes,
                   Seconds duration, Seconds walltime, MiB mem = 8 * kGiB) {
  trace::JobSpec j;
  j.id = JobId{id};
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.requested_mem = mem;
  j.duration = duration;
  j.walltime = walltime;
  j.usage = trace::UsageTrace::constant(mem);
  return j;
}

struct Rig {
  explicit Rig(SchedulerConfig cfg, int nodes = 2)
      : cluster(cluster::make_cluster_config(nodes, 64 * kGiB, 0, 0)),
        policy(policy::make_policy(policy::PolicyKind::Static)),
        scheduler(engine, cluster, *policy, nullptr, cfg) {}

  const JobRecord& record(std::uint32_t id) const {
    for (const auto& r : scheduler.records()) {
      if (r.id == JobId{id}) return r;
    }
    throw std::runtime_error("no record");
  }

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

// Queue: 1 (runs), 2 (head, blocked, reservation ~100), 3 (blocked behind 2,
// would start at ~150), 4 (short: fits before 2's shadow but would overlap
// job 3's estimated start).
trace::Workload layered_queue() {
  return {
      job(1, 0.0, 1, 100.0, 100.0),  // occupies node A until 100
      job(2, 1.0, 2, 50.0, 50.0),    // head: both nodes, shadow 100
      job(3, 2.0, 2, 60.0, 60.0),    // behind head
      job(4, 3.0, 1, 80.0, 80.0),    // candidate: 30+80 > 100? no: 110 > 100
      job(5, 4.0, 1, 40.0, 40.0),    // candidate: 30+40 <= 100 -> EASY ok
  };
}

TEST(BackfillMode, EasyStartsShortCandidate) {
  SchedulerConfig cfg;
  cfg.backfill_mode = BackfillMode::Easy;
  Rig rig(cfg);
  rig.scheduler.submit_workload(layered_queue());
  rig.scheduler.run();
  // Job 5 (walltime 40) fits before the head's shadow at 100; job 4 doesn't.
  EXPECT_LT(rig.record(5).first_start, rig.record(2).first_start);
  EXPECT_GT(rig.record(4).first_start, rig.record(2).first_start);
  EXPECT_GE(rig.scheduler.totals().backfill_starts, 1u);
}

TEST(BackfillMode, OffNeverBackfills) {
  SchedulerConfig cfg;
  cfg.backfill_mode = BackfillMode::Off;
  Rig rig(cfg);
  rig.scheduler.submit_workload(layered_queue());
  rig.scheduler.run();
  EXPECT_EQ(rig.scheduler.totals().backfill_starts, 0u);
  EXPECT_GT(rig.record(5).first_start, rig.record(2).first_start);
}

TEST(BackfillMode, EnableBackfillFalseOverridesMode) {
  SchedulerConfig cfg;
  cfg.backfill_mode = BackfillMode::Easy;
  cfg.enable_backfill = false;
  Rig rig(cfg);
  rig.scheduler.submit_workload(layered_queue());
  rig.scheduler.run();
  EXPECT_EQ(rig.scheduler.totals().backfill_starts, 0u);
}

TEST(BackfillMode, ConservativeNeverBackfillsMoreThanEasy) {
  const auto starts = [](BackfillMode mode) {
    SchedulerConfig cfg;
    cfg.backfill_mode = mode;
    Rig rig(cfg);
    rig.scheduler.submit_workload(layered_queue());
    rig.scheduler.run();
    return rig.scheduler.totals().backfill_starts;
  };
  EXPECT_LE(starts(BackfillMode::Conservative), starts(BackfillMode::Easy));
}

TEST(BackfillMode, ConservativeProtectsSecondBlockedJob) {
  // Head needs both nodes (shadow 100). Job 3 (1 node) is blocked because
  // node B is free but head's reservation... actually job 3 can start on the
  // free node under FCFS? No: FCFS stops at the blocked head; job 3 is a
  // backfill candidate. Easy: job 3 (walltime 90, 30+90 > 100) rejected,
  // job 4 (walltime 60, 30+60 <= 100) accepted. Conservative: after
  // rejecting job 3, the bound tightens to job 3's own shadow; job 4 is
  // examined against the tightened bound.
  const auto make = [] {
    return trace::Workload{
        job(1, 0.0, 1, 100.0, 100.0),
        job(2, 1.0, 2, 50.0, 50.0),   // head
        job(3, 2.0, 1, 90.0, 90.0),   // too long for EASY
        job(4, 3.0, 1, 60.0, 60.0),   // EASY-eligible
    };
  };
  SchedulerConfig easy_cfg;
  easy_cfg.backfill_mode = BackfillMode::Easy;
  Rig easy(easy_cfg);
  easy.scheduler.submit_workload(make());
  easy.scheduler.run();
  EXPECT_GE(easy.scheduler.totals().backfill_starts, 1u);

  SchedulerConfig cons_cfg;
  cons_cfg.backfill_mode = BackfillMode::Conservative;
  Rig cons(cons_cfg);
  cons.scheduler.submit_workload(make());
  cons.scheduler.run();
  EXPECT_LE(cons.scheduler.totals().backfill_starts,
            easy.scheduler.totals().backfill_starts);
  // All jobs still complete under both flavours.
  for (std::uint32_t id = 1; id <= 4; ++id) {
    EXPECT_EQ(cons.record(id).outcome, JobOutcome::Completed);
  }
}

TEST(BackfillMode, AllModesCompleteTheWorkload) {
  for (const auto mode :
       {BackfillMode::Off, BackfillMode::Easy, BackfillMode::Conservative}) {
    SchedulerConfig cfg;
    cfg.backfill_mode = mode;
    Rig rig(cfg);
    rig.scheduler.submit_workload(layered_queue());
    rig.scheduler.run();
    for (std::uint32_t id = 1; id <= 5; ++id) {
      EXPECT_EQ(rig.record(id).outcome, JobOutcome::Completed)
          << "mode " << static_cast<int>(mode) << " job " << id;
    }
    EXPECT_EQ(rig.cluster.total_allocated(), 0);
  }
}

// Walltimes are user estimates and enforce_walltime defaults off, so a
// backfilled job may hold its nodes long past the shadow that admitted it.
// The head's reservation must be recomputed after every backfill start;
// holding the pass-entry value rejects candidates against a shadow that has
// already moved.
TEST(BackfillMode, ShadowRecomputedAfterEachBackfillStart) {
  SchedulerConfig cfg;
  cfg.backfill_mode = BackfillMode::Easy;
  Rig rig(cfg, 3);
  const MiB full = 64 * kGiB;  // every job pins a whole node
  // Submits are staggered so the min-spacing rule batches jobs 2..4 into one
  // scheduling pass at t=30 — the stale shadow only bites when a later
  // candidate is examined in the same pass as an earlier backfill start.
  rig.scheduler.submit_workload({
      job(1, 0.0, 1, 150.0, 150.0, full),  // node A until 150 -> shadow 150
      job(2, 1.0, 3, 50.0, 50.0, full),    // head: needs all three nodes
      job(3, 2.0, 1, 200.0, 80.0, full),   // lied: walltime 80, runs to 230
      job(4, 3.0, 1, 10.0, 150.0, full),   // admissible only vs fresh shadow
  });
  rig.scheduler.run();
  // Job 3 backfills under the head's original shadow (30+80 <= 150) but its
  // projected end is 230, so the head cannot start before 230. Job 4
  // (walltime 150, 30+150 <= 230) fits under the fresh shadow and must start
  // immediately; the stale shadow rejected it until the head itself had run.
  EXPECT_LT(rig.record(3).first_start, 50.0);
  EXPECT_LT(rig.record(4).first_start, 50.0);
  EXPECT_LT(rig.record(4).first_start, rig.record(2).first_start);
  EXPECT_GE(rig.scheduler.totals().backfill_starts, 2u);
  for (std::uint32_t id = 1; id <= 4; ++id) {
    EXPECT_EQ(rig.record(id).outcome, JobOutcome::Completed) << id;
  }
}

// A rig with capacity-heterogeneous nodes and the Baseline policy, which can
// deny a job the aggregate free-memory check says is satisfiable — the
// fragmentation-blocked head state (reservation shadow == now).
struct HeteroRig {
  explicit HeteroRig(SchedulerConfig cfg)
      : cluster(cluster::make_cluster_config(2, 16 * kGiB, 1, 64 * kGiB)),
        policy(policy::make_policy(policy::PolicyKind::Baseline)),
        scheduler(engine, cluster, *policy, nullptr, cfg) {}

  const JobRecord& record(std::uint32_t id) const {
    for (const auto& r : scheduler.records()) {
      if (r.id == JobId{id}) return r;
    }
    throw std::runtime_error("no record");
  }

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

// Head blocked purely by fragmentation: the cluster has enough idle nodes
// and enough total free memory, but no single idle node fits the request.
// The shadow degenerates to `now`, and `now + walltime <= now` holds for no
// candidate — which used to disable backfill exactly when no candidate could
// possibly delay the head. Candidates must still start.
TEST(BackfillMode, FragmentationBlockedHeadStillBackfills) {
  for (const auto mode : {BackfillMode::Easy, BackfillMode::Conservative}) {
    SchedulerConfig cfg;
    cfg.backfill_mode = mode;
    HeteroRig rig(cfg);
    rig.scheduler.submit_workload({
        job(1, 0.0, 1, 100.0, 100.0, 32 * kGiB),  // only fits the large node
        job(2, 0.0, 1, 50.0, 50.0, 64 * kGiB),    // head: needs the large node
        job(3, 0.0, 1, 40.0, 500.0, 8 * kGiB),    // fits an idle small node
    });
    rig.scheduler.run();
    // Job 3's walltime (500) dwarfs the head's wait (~100); it is admissible
    // only because the head is fragmentation-blocked, not time-blocked.
    EXPECT_LT(rig.record(3).first_start, 50.0)
        << "mode " << static_cast<int>(mode);
    EXPECT_LT(rig.record(3).first_start, rig.record(2).first_start);
    EXPECT_GE(rig.scheduler.totals().backfill_starts, 1u);
    for (std::uint32_t id = 1; id <= 3; ++id) {
      EXPECT_EQ(rig.record(id).outcome, JobOutcome::Completed) << id;
    }
    EXPECT_EQ(rig.cluster.total_allocated(), 0);
  }
}

}  // namespace
}  // namespace dmsim::sched
