// Per-node usage heterogeneity: rank-0-heavy jobs let the dynamic policy
// reclaim the lighter nodes' share.
#include <gtest/gtest.h>

#include <memory>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace dmsim::sched {
namespace {

constexpr MiB kGiB = 1024;

TEST(JobSpecScale, DefaultsToUniform) {
  trace::JobSpec j;
  j.num_nodes = 4;
  EXPECT_DOUBLE_EQ(j.usage_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(j.usage_scale(3), 1.0);
  j.node_usage_scale = {1.0, 0.5};
  EXPECT_DOUBLE_EQ(j.usage_scale(1), 0.5);
  EXPECT_DOUBLE_EQ(j.usage_scale(2), 1.0);  // beyond the vector -> uniform
}

struct Rig {
  explicit Rig(policy::PolicyKind kind)
      : cluster(cluster::make_cluster_config(4, 64 * kGiB, 0, 0)),
        policy(policy::make_policy(kind)),
        scheduler(engine, cluster, *policy, nullptr, {}) {}

  sim::Engine engine;
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  Scheduler scheduler;
};

TEST(Heterogeneity, DynamicShrinksLightNodesMore) {
  // 3-node job, constant usage at 40 GiB on the head node, half on others.
  Rig rig(policy::PolicyKind::Dynamic);
  trace::JobSpec j;
  j.id = JobId{1};
  j.submit_time = 0.0;
  j.num_nodes = 3;
  j.requested_mem = 40 * kGiB;
  j.duration = 2000.0;
  j.walltime = 3000.0;
  j.usage = trace::UsageTrace::constant(40 * kGiB);
  j.node_usage_scale = {1.0, 0.5, 0.5};
  rig.scheduler.submit_workload({j});

  // Run past the first update cycle, then inspect the per-slot allocations.
  rig.engine.run_until(700.0);
  const auto slots = rig.cluster.job_slots(JobId{1});
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0]->total(), 40 * kGiB);
  EXPECT_EQ(slots[1]->total(), 20 * kGiB);
  EXPECT_EQ(slots[2]->total(), 20 * kGiB);
  rig.engine.run();
  EXPECT_EQ(rig.cluster.total_allocated(), 0);
}

TEST(Heterogeneity, StaticIgnoresScales) {
  Rig rig(policy::PolicyKind::Static);
  trace::JobSpec j;
  j.id = JobId{1};
  j.submit_time = 0.0;
  j.num_nodes = 2;
  j.requested_mem = 40 * kGiB;
  j.duration = 2000.0;
  j.walltime = 3000.0;
  j.usage = trace::UsageTrace::constant(40 * kGiB);
  j.node_usage_scale = {1.0, 0.5};
  rig.scheduler.submit_workload({j});
  rig.engine.run_until(700.0);
  for (const auto* slot : rig.cluster.job_slots(JobId{1})) {
    EXPECT_EQ(slot->total(), 40 * kGiB);  // request held on every node
  }
  rig.engine.run();
}

TEST(Heterogeneity, GeneratorEmitsRankZeroHeavyJobs) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 400;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.rank0_heavy_fraction = 0.5;
  cfg.seed = 31;
  const auto w = workload::generate_synthetic(cfg);
  std::size_t multi = 0;
  std::size_t heavy = 0;
  for (const auto& j : w.jobs) {
    if (j.num_nodes <= 1) {
      EXPECT_TRUE(j.node_usage_scale.empty());
      continue;
    }
    ++multi;
    if (!j.node_usage_scale.empty()) {
      ++heavy;
      EXPECT_EQ(j.node_usage_scale.size(),
                static_cast<std::size_t>(j.num_nodes));
      EXPECT_DOUBLE_EQ(j.node_usage_scale[0], 1.0);
      for (std::size_t n = 1; n < j.node_usage_scale.size(); ++n) {
        EXPECT_GE(j.node_usage_scale[n], 0.5);
        EXPECT_LE(j.node_usage_scale[n], 0.9);
      }
    }
  }
  ASSERT_GT(multi, 0u);
  EXPECT_NEAR(static_cast<double>(heavy) / static_cast<double>(multi), 0.5,
              0.12);
}

TEST(Heterogeneity, ZeroFractionDisablesFeature) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 200;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.rank0_heavy_fraction = 0.0;
  cfg.seed = 32;
  const auto w = workload::generate_synthetic(cfg);
  for (const auto& j : w.jobs) {
    EXPECT_TRUE(j.node_usage_scale.empty());
  }
}

}  // namespace
}  // namespace dmsim::sched
