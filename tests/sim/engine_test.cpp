#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dmsim::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, TiesBreakFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  double seen = -1.0;
  e.schedule(7.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 7.5);
}

TEST(Engine, ScheduleAfterUsesRelativeDelay) {
  Engine e;
  double seen = -1.0;
  e.schedule(10.0, [&] {
    e.schedule_after(5.0, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 15.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, CancelInvalidHandleIsNoop) {
  Engine e;
  e.cancel(EventId{});
  e.cancel(EventId{999});
  EXPECT_TRUE(e.empty());
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  e.run();
  e.cancel(id);  // must not crash or corrupt
  EXPECT_TRUE(e.empty());
}

TEST(Engine, DoubleCancelIsNoop) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  e.cancel(id);
  e.cancel(id);
  e.run();
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RescheduleViaCancelAndSchedule) {
  Engine e;
  std::vector<double> fired;
  EventId id = e.schedule(10.0, [&] { fired.push_back(e.now()); });
  e.schedule(2.0, [&] {
    e.cancel(id);
    id = e.schedule(20.0, [&] { fired.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 20.0);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) e.schedule_after(1.0, chain);
  };
  e.schedule(0.0, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 4.0);
}

TEST(Engine, RunMaxEventsStopsEarly) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule(static_cast<Seconds>(i), [&] { ++count; });
  }
  EXPECT_EQ(e.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.pending_events(), 7u);
}

TEST(Engine, RunUntilExecutesInclusiveBoundary) {
  Engine e;
  std::vector<double> fired;
  e.schedule(1.0, [&] { fired.push_back(1.0); });
  e.schedule(2.0, [&] { fired.push_back(2.0); });
  e.schedule(3.0, [&] { fired.push_back(3.0); });
  e.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.run_until(100.0);
  EXPECT_EQ(e.now(), 100.0);
}

TEST(Engine, RunUntilSkipsCancelledHead) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule(1.0, [&] { fired = true; });
  e.schedule(5.0, [] {});
  e.cancel(id);
  e.run_until(2.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, ExecutedEventsCounter) {
  Engine e;
  for (int i = 0; i < 4; ++i) e.schedule(1.0, [] {});
  e.run();
  EXPECT_EQ(e.executed_events(), 4u);
}

TEST(Engine, PendingEventsExcludesCancelled) {
  Engine e;
  const EventId a = e.schedule(1.0, [] {});
  e.schedule(2.0, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending_events(), 1u);
  EXPECT_FALSE(e.empty());
}

TEST(Engine, CancellingOwnFutureEventFromCallback) {
  Engine e;
  bool late_fired = false;
  const EventId late = e.schedule(10.0, [&] { late_fired = true; });
  e.schedule(1.0, [&] { e.cancel(late); });
  e.run();
  EXPECT_FALSE(late_fired);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule(1.0, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

}  // namespace
}  // namespace dmsim::sim
