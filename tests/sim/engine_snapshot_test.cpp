// Typed-event dispatch and engine save/restore.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "snapshot/snapshot.hpp"

namespace dmsim::sim {
namespace {

struct Fired {
  Seconds time;
  EventPayload payload;
};

/// Records every dispatched payload; optionally re-arms a periodic tick to
/// exercise slot reuse across a snapshot cut.
class RecordingHandler : public EventHandler {
 public:
  explicit RecordingHandler(Engine& engine) : engine_(engine) {}

  void on_event(const EventPayload& event) override {
    fired.push_back({engine_.now(), event});
    if (rearm_until > 0.0 && event.type == EventType::TraceSample &&
        engine_.now() + rearm_period <= rearm_until) {
      engine_.schedule_typed_after(rearm_period, EventPayload::trace_sample());
    }
  }

  std::vector<Fired> fired;
  Seconds rearm_period = 0.0;
  Seconds rearm_until = 0.0;

 private:
  Engine& engine_;
};

TEST(EngineTyped, DispatchesThroughHandlerInOrder) {
  Engine engine;
  RecordingHandler handler(engine);
  engine.set_handler(&handler);

  engine.schedule_typed(2.0, EventPayload::job_end(7));
  engine.schedule_typed(1.0, EventPayload::sched_pass());
  engine.schedule_typed(2.0, EventPayload::monitor_update(9));  // tie: FIFO
  EXPECT_EQ(engine.run(), 3U);

  ASSERT_EQ(handler.fired.size(), 3U);
  EXPECT_EQ(handler.fired[0].payload, EventPayload::sched_pass());
  EXPECT_EQ(handler.fired[1].payload, EventPayload::job_end(7));
  EXPECT_EQ(handler.fired[2].payload, EventPayload::monitor_update(9));
  EXPECT_EQ(handler.fired[2].time, 2.0);
}

TEST(EngineTyped, ClosuresAndTypedEventsInterleave) {
  Engine engine;
  RecordingHandler handler(engine);
  engine.set_handler(&handler);
  std::vector<std::string> order;
  engine.schedule(1.0, [&] { order.push_back("closure"); });
  engine.schedule_typed(1.0, EventPayload::sched_pass());
  engine.schedule(0.5, [&] { order.push_back("early"); });
  EXPECT_EQ(engine.run(), 3U);
  ASSERT_EQ(order.size(), 2U);
  EXPECT_EQ(order[0], "early");
  EXPECT_EQ(order[1], "closure");
  ASSERT_EQ(handler.fired.size(), 1U);
}

TEST(EngineTyped, RunReadyDoesNotOvershootClock) {
  Engine engine;
  RecordingHandler handler(engine);
  engine.set_handler(&handler);
  engine.schedule_typed(5.0, EventPayload::sched_pass());
  engine.schedule_typed(10.0, EventPayload::sched_pass());

  EXPECT_EQ(engine.run_ready(7.0), 1U);
  EXPECT_EQ(engine.now(), 5.0);  // run_until(7.0) would report 7.0

  EXPECT_EQ(engine.run_until(8.0), 0U);
  EXPECT_EQ(engine.now(), 8.0);
}

TEST(EngineSnapshot, PendingClosureRefusesToSerialize) {
  Engine engine;
  engine.schedule(1.0, [] {});
  snapshot::Writer w;
  EXPECT_THROW(engine.save_state(w), snapshot::SnapshotError);
}

TEST(EngineSnapshot, MidStreamRestoreReplaysIdenticalSequence) {
  // Reference run: periodic self-re-arming tick plus one-shot events with
  // ties, cancelled events, and slot reuse.
  const auto seed = [](Engine& engine) {
    engine.schedule_typed(1.0, EventPayload::trace_sample());
    engine.schedule_typed(4.0, EventPayload::job_end(1));
    engine.schedule_typed(4.0, EventPayload::job_end(2));  // tie with previous
    const EventId doomed =
        engine.schedule_typed(6.0, EventPayload::walltime_kill(3));
    engine.schedule_typed(9.0, EventPayload::job_submit(42));
    engine.cancel(doomed);  // leaves a stale heap entry behind
  };

  Engine full;
  RecordingHandler full_handler(full);
  full_handler.rearm_period = 1.0;
  full_handler.rearm_until = 8.0;
  full.set_handler(&full_handler);
  seed(full);

  // Cut mid-stream (between events, clock NOT advanced to the cut time).
  (void)full.run_ready(4.5);
  snapshot::Writer w;
  full.save_state(w);
  const std::string bytes = w.take();

  // Restore into a polluted engine: pre-existing junk must be wiped.
  Engine resumed;
  RecordingHandler resumed_handler(resumed);
  resumed_handler.rearm_period = 1.0;
  resumed_handler.rearm_until = 8.0;
  resumed.set_handler(&resumed_handler);
  resumed.schedule_typed(0.25, EventPayload::sched_pass());
  snapshot::Reader r(bytes);
  resumed.restore_state(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(resumed.now(), full.now());
  EXPECT_EQ(resumed.pending_events(), full.pending_events());
  EXPECT_EQ(resumed.executed_events(), full.executed_events());

  // Both finish; resumed saw only the post-cut events, which must match
  // full's tail event for event.
  const std::size_t cut_count = full_handler.fired.size();
  (void)full.run();
  (void)resumed.run();
  ASSERT_EQ(resumed_handler.fired.size(), full_handler.fired.size() - cut_count);
  const std::size_t skip = cut_count;
  for (std::size_t i = 0; i < resumed_handler.fired.size(); ++i) {
    EXPECT_EQ(resumed_handler.fired[i].time, full_handler.fired[skip + i].time);
    EXPECT_EQ(resumed_handler.fired[i].payload,
              full_handler.fired[skip + i].payload);
  }
  EXPECT_EQ(resumed.now(), full.now());
  EXPECT_EQ(resumed.executed_events(), full.executed_events());

  // Determinism of the format itself: re-saving the restored engine at the
  // same point must reproduce the snapshot byte for byte.
  Engine again;
  RecordingHandler again_handler(again);
  again.set_handler(&again_handler);
  snapshot::Reader r2(bytes);
  again.restore_state(r2);
  snapshot::Writer w2;
  again.save_state(w2);
  EXPECT_EQ(w2.buffer(), bytes);
}

TEST(EngineSnapshot, TruncatedBytesThrow) {
  Engine engine;
  engine.schedule_typed(1.0, EventPayload::sched_pass());
  snapshot::Writer w;
  engine.save_state(w);
  const std::string bytes = w.take();
  for (const std::size_t cut : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    Engine target;
    snapshot::Reader r(std::string_view(bytes).substr(0, cut));
    EXPECT_THROW(target.restore_state(r), snapshot::SnapshotError);
  }
}

}  // namespace
}  // namespace dmsim::sim
