// Randomized engine properties: under arbitrary schedule/cancel interleaving
// events fire exactly once, in nondecreasing time order, FIFO within a
// timestamp, and cancelled events never fire.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace dmsim::sim {
namespace {

class EngineRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineRandomTest, OrderingAndExactlyOnceUnderChurn) {
  util::Rng rng(GetParam());
  Engine engine;

  struct Slot {
    EventId id{};
    bool cancelled = false;
    int fired = 0;
    Seconds time = 0.0;
    std::uint64_t seq = 0;
  };
  std::vector<Slot> slots(400);
  std::vector<std::pair<Seconds, std::uint64_t>> fire_log;

  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    slot.time = rng.uniform(0.0, 100.0);
    // Quantize some times to force ties.
    if (rng.bernoulli(0.5)) slot.time = std::floor(slot.time);
    slot.seq = seq++;
    slot.id = engine.schedule(slot.time, [&slot, &fire_log] {
      ++slot.fired;
      fire_log.emplace_back(slot.time, slot.seq);
    });
  }
  // Cancel a random third.
  for (auto& slot : slots) {
    if (rng.bernoulli(0.33)) {
      engine.cancel(slot.id);
      slot.cancelled = true;
    }
  }
  engine.run();

  std::size_t expected_fires = 0;
  for (const auto& slot : slots) {
    if (slot.cancelled) {
      EXPECT_EQ(slot.fired, 0);
    } else {
      EXPECT_EQ(slot.fired, 1);
      ++expected_fires;
    }
  }
  EXPECT_EQ(fire_log.size(), expected_fires);
  for (std::size_t i = 1; i < fire_log.size(); ++i) {
    EXPECT_LE(fire_log[i - 1].first, fire_log[i].first);
    if (fire_log[i - 1].first == fire_log[i].first) {
      // FIFO within the same timestamp.
      EXPECT_LT(fire_log[i - 1].second, fire_log[i].second);
    }
  }
  EXPECT_TRUE(engine.empty());
}

TEST_P(EngineRandomTest, ReschedulingChainsStayConsistent) {
  util::Rng rng(GetParam() + 1000);
  Engine engine;
  int fired = 0;
  // Events that reschedule themselves a random number of times.
  std::function<void(int)> hop = [&](int remaining) {
    ++fired;
    if (remaining > 0) {
      engine.schedule_after(rng.uniform(0.1, 5.0),
                            [&hop, remaining] { hop(remaining - 1); });
    }
  };
  int expected = 0;
  for (int chain = 0; chain < 20; ++chain) {
    const int hops = static_cast<int>(rng.uniform_int(0, 10));
    expected += hops + 1;
    engine.schedule(rng.uniform(0.0, 10.0), [&hop, hops] { hop(hops); });
  }
  engine.run();
  EXPECT_EQ(fired, expected);
  EXPECT_TRUE(engine.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace dmsim::sim
