// Tests for the generation-tagged slot-slab internals of the event engine:
// handle safety across slot reuse, allocation-free churn at scale, and a
// golden trace proving the slab rewrite preserved the original engine's
// observable behaviour bit for bit.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "util/rng.hpp"

namespace dmsim::sim {
namespace {

TEST(EngineSlab, CancelAfterFireDoesNotTouchReusedSlot) {
  Engine e;
  bool first = false;
  const EventId stale = e.schedule(1.0, [&] { first = true; });
  e.run();
  EXPECT_TRUE(first);

  // The fired event's slot is on the free list; the next schedule reuses it
  // under a bumped generation. Cancelling the stale handle must be a no-op.
  bool second = false;
  e.schedule(2.0, [&] { second = true; });
  e.cancel(stale);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_TRUE(second);
}

TEST(EngineSlab, StaleHandleCannotCancelNewOccupant) {
  Engine e;
  const EventId a = e.schedule(1.0, [] {});
  e.cancel(a);  // slot freed without firing
  bool fired = false;
  e.schedule(2.0, [&] { fired = true; });  // reuses the slot
  e.cancel(a);                             // stale: generation mismatch
  e.cancel(a);                             // and again, for good measure
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.executed_events(), 1u);
}

TEST(EngineSlab, HandlesStayDistinctAcrossHeavyReuse) {
  // Drive one slot through many occupy/free cycles; every retired handle
  // must stay dead even as the slot's generation keeps advancing.
  Engine e;
  std::vector<EventId> retired;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = e.schedule(1.0, [] {});
    for (const EventId old : retired) e.cancel(old);  // all no-ops
    EXPECT_EQ(e.pending_events(), 1u) << "round " << round;
    e.cancel(id);
    retired.push_back(id);
    if (retired.size() > 8) retired.erase(retired.begin());
  }
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.executed_events(), 0u);
}

TEST(EngineSlab, ChurnStress100k) {
  // 100k events through a small window of live slots: schedule, cancel every
  // other handle, let the rest fire, each firing scheduling a successor.
  // Exercises free-list recycling, generation bumps and heap skipping under
  // a workload far larger than the slab's live size.
  Engine e;
  util::Rng rng(99);
  constexpr int kWindow = 64;
  constexpr std::uint64_t kTarget = 100'000;
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::vector<EventId> window;
  window.reserve(kWindow);
  while (scheduled < kTarget || !e.empty()) {
    while (scheduled < kTarget &&
           window.size() < static_cast<std::size_t>(kWindow)) {
      const Seconds t = e.now() + 1.0 + rng.uniform_int(0, 7);
      window.push_back(e.schedule(t, [&fired] { ++fired; }));
      ++scheduled;
    }
    // Cancel half the window (every other handle), run a bounded slice.
    for (std::size_t i = 0; i < window.size(); i += 2) e.cancel(window[i]);
    window.clear();
    e.run(kWindow);
  }
  e.run();
  EXPECT_EQ(scheduled, kTarget);
  EXPECT_EQ(fired, e.executed_events());
  EXPECT_EQ(fired, kTarget / 2);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.pending_events(), 0u);
}

// Golden trace captured from the pre-slab engine (priority_queue +
// unordered_map) on the scripted scenario below. The slab rewrite must
// reproduce the fire order, executed count, clock and the NDJSON trace
// byte for byte — event ids included.
constexpr const char* kGoldenFired =
    "1 7 28 11 38 19 35 34 23 31 2 17 22 25 4 8 40 13 14 26 29 32 37 10 5 16 20";

constexpr const char* kGoldenNdjson =
    R"({"t":0,"ev":"engine_schedule","when":7,"id":1}
{"t":0,"ev":"engine_schedule","when":0,"id":2}
{"t":0,"ev":"engine_schedule","when":5,"id":3}
{"t":0,"ev":"engine_schedule","when":7,"id":4}
{"t":0,"ev":"engine_schedule","when":6,"id":5}
{"t":0,"ev":"engine_schedule","when":9,"id":6}
{"t":0,"ev":"engine_schedule","when":5,"id":7}
{"t":0,"ev":"engine_schedule","when":0,"id":8}
{"t":0,"ev":"engine_schedule","when":6,"id":9}
{"t":0,"ev":"engine_schedule","when":0,"id":10}
{"t":0,"ev":"engine_schedule","when":8,"id":11}
{"t":0,"ev":"engine_schedule","when":1,"id":12}
{"t":0,"ev":"engine_schedule","when":7,"id":13}
{"t":0,"ev":"engine_schedule","when":7,"id":14}
{"t":0,"ev":"engine_schedule","when":7,"id":15}
{"t":0,"ev":"engine_schedule","when":1,"id":16}
{"t":0,"ev":"engine_schedule","when":9,"id":17}
{"t":0,"ev":"engine_schedule","when":5,"id":18}
{"t":0,"ev":"engine_schedule","when":6,"id":19}
{"t":0,"ev":"engine_schedule","when":2,"id":20}
{"t":0,"ev":"engine_schedule","when":9,"id":21}
{"t":0,"ev":"engine_schedule","when":4,"id":22}
{"t":0,"ev":"engine_schedule","when":5,"id":23}
{"t":0,"ev":"engine_schedule","when":4,"id":24}
{"t":0,"ev":"engine_schedule","when":0,"id":25}
{"t":0,"ev":"engine_schedule","when":5,"id":26}
{"t":0,"ev":"engine_schedule","when":7,"id":27}
{"t":0,"ev":"engine_schedule","when":1,"id":28}
{"t":0,"ev":"engine_schedule","when":0,"id":29}
{"t":0,"ev":"engine_schedule","when":7,"id":30}
{"t":0,"ev":"engine_schedule","when":8,"id":31}
{"t":0,"ev":"engine_schedule","when":4,"id":32}
{"t":0,"ev":"engine_schedule","when":7,"id":33}
{"t":0,"ev":"engine_schedule","when":8,"id":34}
{"t":0,"ev":"engine_schedule","when":3,"id":35}
{"t":0,"ev":"engine_schedule","when":2,"id":36}
{"t":0,"ev":"engine_schedule","when":0,"id":37}
{"t":0,"ev":"engine_schedule","when":7,"id":38}
{"t":0,"ev":"engine_schedule","when":1,"id":39}
{"t":0,"ev":"engine_schedule","when":1,"id":40}
{"t":0,"ev":"engine_cancel","id":1}
{"t":0,"ev":"engine_cancel","id":4}
{"t":0,"ev":"engine_cancel","id":7}
{"t":0,"ev":"engine_cancel","id":10}
{"t":0,"ev":"engine_cancel","id":13}
{"t":0,"ev":"engine_cancel","id":16}
{"t":0,"ev":"engine_cancel","id":19}
{"t":0,"ev":"engine_cancel","id":22}
{"t":0,"ev":"engine_cancel","id":25}
{"t":0,"ev":"engine_cancel","id":28}
{"t":0,"ev":"engine_cancel","id":31}
{"t":0,"ev":"engine_cancel","id":34}
{"t":0,"ev":"engine_cancel","id":37}
{"t":0,"ev":"engine_cancel","id":40}
{"t":0,"ev":"engine_schedule","when":50,"id":41}
{"t":0,"ev":"engine_schedule","when":5,"id":42}
{"t":0,"ev":"engine_fire","id":2}
{"t":0,"ev":"engine_fire","id":8}
{"t":0,"ev":"engine_fire","id":29}
{"t":1,"ev":"engine_fire","id":12}
{"t":1,"ev":"engine_fire","id":39}
{"t":2,"ev":"engine_fire","id":20}
{"t":2,"ev":"engine_fire","id":36}
{"t":3,"ev":"engine_fire","id":35}
{"t":4,"ev":"engine_fire","id":24}
{"t":4,"ev":"engine_fire","id":32}
{"t":5,"ev":"engine_fire","id":3}
{"t":5,"ev":"engine_fire","id":18}
{"t":5,"ev":"engine_fire","id":23}
{"t":5,"ev":"engine_fire","id":26}
{"t":5,"ev":"engine_fire","id":42}
{"t":5,"ev":"engine_cancel","id":41}
{"t":5,"ev":"engine_schedule","when":6.5,"id":43}
{"t":6,"ev":"engine_fire","id":5}
{"t":6,"ev":"engine_fire","id":9}
{"t":6.5,"ev":"engine_fire","id":43}
{"t":7,"ev":"engine_fire","id":14}
{"t":7,"ev":"engine_fire","id":15}
{"t":7,"ev":"engine_fire","id":27}
{"t":7,"ev":"engine_fire","id":30}
{"t":7,"ev":"engine_fire","id":33}
{"t":7,"ev":"engine_fire","id":38}
{"t":8,"ev":"engine_fire","id":11}
{"t":9,"ev":"engine_fire","id":6}
{"t":9,"ev":"engine_fire","id":17}
{"t":9,"ev":"engine_fire","id":21}
)";

TEST(EngineSlab, GoldenTraceMatchesPreSlabEngine) {
  std::ostringstream ndjson;
  obs::NdjsonSink sink(ndjson);
  Engine e;
  obs::Observer observer{&sink, nullptr, &e};
  e.set_observer(&observer);

  util::Rng rng(1234);
  std::vector<EventId> ids;
  std::vector<int> fired;
  int tag = 0;
  // Phase 1: 40 events at randomized times (some ties), cancel every 3rd.
  for (int i = 0; i < 40; ++i) {
    const Seconds t = static_cast<Seconds>(rng.uniform_int(0, 9));
    const int my = tag++;
    ids.push_back(e.schedule(t, [&fired, my] { fired.push_back(my); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) e.cancel(ids[i]);
  // Phase 2: an event that cancels a future event and reschedules.
  const EventId late = e.schedule(50.0, [&fired] { fired.push_back(9999); });
  e.schedule(5.0, [&] {
    e.cancel(late);
    const int my = tag++;
    e.schedule(6.5, [&fired, my] { fired.push_back(my); });
  });
  e.run();

  std::string fired_str;
  for (const int f : fired) {
    if (!fired_str.empty()) fired_str += ' ';
    fired_str += std::to_string(f);
  }
  EXPECT_EQ(fired_str, kGoldenFired);
  EXPECT_EQ(e.executed_events(), 28u);
  EXPECT_EQ(e.now(), 9.0);
  EXPECT_EQ(ndjson.str(), kGoldenNdjson);
}

}  // namespace
}  // namespace dmsim::sim
