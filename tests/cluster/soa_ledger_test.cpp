// Structure-of-arrays ledger: the column accessors, the materialized Node
// view and the parity sweep must all describe the same cluster. The fuzz
// harnesses force the parity checker on during long runs; this file pins
// the per-accessor contracts directly.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "util/units.hpp"

namespace dmsim::cluster {
namespace {

constexpr MiB kGiB = 1024;

Cluster busy_cluster() {
  Cluster c(make_cluster_config(12, 64 * kGiB, 6, 128 * kGiB));
  std::uint32_t id = 1;
  for (std::size_t i = 0; i < c.node_count(); ++i) {
    if (i % 5 >= 3) continue;
    const JobId job{id++};
    const NodeId host{static_cast<std::uint32_t>(i)};
    c.assign_job(job, std::vector<NodeId>{host});
    (void)c.grow_local(job, host, (static_cast<MiB>(i % 4) + 4) * kGiB);
    if (i % 3 == 0) {
      (void)c.grow_remote(job, host, (static_cast<MiB>(i % 2) + 1) * kGiB);
    }
  }
  return c;
}

TEST(SoALedger, ColumnsMatchNodeView) {
  const Cluster c = busy_cluster();
  ASSERT_EQ(c.capacity_column().size(), c.node_count());
  ASSERT_EQ(c.free_column().size(), c.node_count());
  std::size_t i = 0;
  for (const Node& n : c.nodes()) {
    EXPECT_EQ(n.id.get(), i);
    EXPECT_EQ(c.capacity_column()[i], n.capacity);
    EXPECT_EQ(c.local_used_column()[i], n.local_used);
    EXPECT_EQ(c.lent_column()[i], n.lent);
    EXPECT_EQ(c.free_column()[i], n.free());
    EXPECT_EQ(c.running_job_column()[i] == NodeId::kInvalid, n.idle());
    EXPECT_EQ(c.memory_node_column()[i] != 0, n.memory_node());
    const NodeId id{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(c.capacity_of(id), n.capacity);
    EXPECT_EQ(c.free_of(id), n.free());
    EXPECT_EQ(c.is_idle(id), n.idle());
    EXPECT_EQ(c.is_memory_node(id), n.memory_node());
    EXPECT_EQ(c.is_large(id), n.large);
    EXPECT_EQ(c.cores_of(id), n.cores);
    ++i;
  }
  EXPECT_EQ(i, c.node_count());
}

TEST(SoALedger, MaterializeNodesSnapshotsEveryColumn) {
  const Cluster c = busy_cluster();
  const std::vector<Node> nodes = c.materialize_nodes();
  ASSERT_EQ(nodes.size(), c.node_count());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node view = c.node(NodeId{static_cast<std::uint32_t>(i)});
    EXPECT_EQ(nodes[i].id, view.id);
    EXPECT_EQ(nodes[i].capacity, view.capacity);
    EXPECT_EQ(nodes[i].local_used, view.local_used);
    EXPECT_EQ(nodes[i].lent, view.lent);
    EXPECT_EQ(nodes[i].running_job, view.running_job);
    EXPECT_EQ(nodes[i].large, view.large);
  }
}

TEST(SoALedger, ViewsAreSnapshotsNotReferences) {
  Cluster c(make_cluster_config(4, 64 * kGiB, 0, 0));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  const Node before = c.node(NodeId{0});
  (void)c.grow_local(job, NodeId{0}, 8 * kGiB);
  // The earlier view still shows the pre-mutation ledger...
  EXPECT_EQ(before.local_used, 0);
  // ...while a fresh view and the columns show the new state.
  EXPECT_EQ(c.node(NodeId{0}).local_used, 8 * kGiB);
  EXPECT_EQ(c.local_used_column()[0], 8 * kGiB);
}

TEST(SoALedger, ParitySweepAcceptsABusyLedger) {
  Cluster c = busy_cluster();
  c.set_debug_parity(true);
  // check_invariants includes the column/view parity sweep when enabled; it
  // aborts (DMSIM_ASSERT) on any divergence.
  c.check_invariants();
  c.check_node_view_parity();
}

TEST(SoALedger, RangeForOverNodesCompilesWithConstRef) {
  // The pre-SoA caller pattern: const auto& binding to the by-value view.
  const Cluster c = busy_cluster();
  MiB total = 0;
  int idle = 0;
  for (const auto& n : c.nodes()) {
    total += n.capacity;
    idle += n.idle() ? 1 : 0;
  }
  EXPECT_EQ(total, 12 * 64 * kGiB + 6 * 128 * kGiB);
  EXPECT_GT(idle, 0);
}

}  // namespace
}  // namespace dmsim::cluster
