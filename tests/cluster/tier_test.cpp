// Memory-tier topology: the tier table, per-tier indexes and accounting,
// nearest-tier lender selection, the shrink_remote_edge primitive, and the
// policy-layer migration pass. The degenerate single-tier case must be
// indistinguishable from the flat pool (the byte-identity goldens pin the
// full-simulation side; this file pins the ledger-level contracts).
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "policy/policy.hpp"
#include "util/units.hpp"

namespace dmsim::cluster {
namespace {

constexpr MiB kGiB = 1024;

/// 6 nodes in 3 tiers of 2: ids {0,1} local (fast), {2,3} rack CXL,
/// {4,5} cross-rack (slow). Lender policy LeastFree keeps in-tier order
/// deterministic and capacity-independent.
ClusterConfig three_tier_config(MiB capacity = 64 * kGiB) {
  ClusterConfig cfg = make_cluster_config(6, capacity, 0, 0);
  cfg.tiers = {MemoryTier{"local", 150.0, 90.0, TierScope::Local},
               MemoryTier{"rack", 450.0, 64.0, TierScope::Rack},
               MemoryTier{"far", 1200.0, 40.0, TierScope::CrossRack}};
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    cfg.nodes[i].tier = static_cast<std::uint8_t>(i / 2);
    cfg.nodes[i].rack = static_cast<std::uint16_t>(i / 2);
  }
  cfg.lender_policy = LenderPolicy::LeastFree;
  return cfg;
}

TEST(Tiers, FlatConfigGetsTheImplicitDefaultTier) {
  const Cluster c(make_cluster_config(4, 64 * kGiB, 0, 0));
  EXPECT_FALSE(c.tiered());
  ASSERT_EQ(c.tier_count(), 1u);
  const MemoryTier& t = c.tiers()[0];
  EXPECT_EQ(t.name, "pool");
  EXPECT_DOUBLE_EQ(t.latency_ns, kTierReferenceLatencyNs);
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs, kTierReferenceBandwidthGbs);
  // Exactly at the reference point: both factors are exactly 1, so the
  // slowdown model's tiered math would reproduce the flat numbers even if
  // it ran (it does not — tiered() gates it off).
  EXPECT_EQ(c.tier_latency_factor(0), 1.0);
  EXPECT_EQ(c.tier_bandwidth_factor(0), 1.0);
  EXPECT_EQ(c.tier_of(NodeId{0}), 0);
  EXPECT_EQ(c.rack_of(NodeId{0}), 0);
  // Degenerate per-tier totals fall through to the global ledger.
  EXPECT_EQ(c.tier_free(0), c.total_free());
  EXPECT_EQ(c.tier_lent(0), 0);
}

TEST(Tiers, TierTableAndColumnsAreExposed) {
  const Cluster c(three_tier_config());
  EXPECT_TRUE(c.tiered());
  ASSERT_EQ(c.tier_count(), 3u);
  EXPECT_GT(c.tier_latency_factor(2), c.tier_latency_factor(0));
  ASSERT_EQ(c.tier_column().size(), 6u);
  EXPECT_EQ(c.tier_of(NodeId{0}), 0);
  EXPECT_EQ(c.tier_of(NodeId{3}), 1);
  EXPECT_EQ(c.tier_of(NodeId{5}), 2);
  EXPECT_EQ(c.rack_of(NodeId{4}), 2);
  // tier_order_ is latency-ascending; this table is already sorted.
  ASSERT_EQ(c.tier_order().size(), 3u);
  EXPECT_EQ(c.tier_order()[0], 0);
  EXPECT_EQ(c.tier_order()[2], 2);
  for (std::uint8_t t = 0; t < 3; ++t) {
    EXPECT_EQ(c.tier_free(t), 2 * 64 * kGiB) << int(t);
    EXPECT_EQ(c.tier_lent(t), 0) << int(t);
  }
  c.check_invariants();
}

TEST(Tiers, GrowRemoteFillsNearestTierFirst) {
  Cluster c(three_tier_config());
  const JobId job{1};
  const NodeId host{4};  // far tier, so every other node can lend
  c.assign_job(job, std::vector<NodeId>{host});
  // Borrow more than the local tier can lend: 2 * 64 GiB from tier 0, the
  // remainder must spill into tier 1 — and never reach tier 2.
  const MiB want = 3 * 64 * kGiB;
  ASSERT_EQ(c.grow_remote(job, host, want), want);
  EXPECT_EQ(c.tier_lent(0), 2 * 64 * kGiB);
  EXPECT_EQ(c.tier_lent(1), 64 * kGiB);
  EXPECT_EQ(c.tier_lent(2), 0);
  EXPECT_EQ(c.tier_free(0), 0);
  // Every borrow edge carries its lender's tier tag.
  for (const Cluster::BorrowEdge& e : c.borrowers_of(NodeId{0})) {
    EXPECT_EQ(e.tier, 0);
    EXPECT_EQ(e.job, job);
  }
  c.check_invariants();
  c.finish_job(job);
  EXPECT_EQ(c.tier_lent(0), 0);
  EXPECT_EQ(c.tier_lent(1), 0);
  c.check_invariants();
}

TEST(Tiers, ShrinkRemoteEdgeTargetsOneLender) {
  Cluster c(three_tier_config());
  const JobId job{1};
  const NodeId host{5};
  c.assign_job(job, std::vector<NodeId>{host});
  ASSERT_EQ(c.grow_remote(job, host, 3 * 64 * kGiB), 3 * 64 * kGiB);
  // Tier 1 holds one lent slab; shrink half of it, the other edges stay.
  const NodeId lender{2};
  const MiB before = c.tier_lent(1);
  EXPECT_EQ(c.shrink_remote_edge(job, host, lender, 32 * kGiB), 32 * kGiB);
  EXPECT_EQ(c.tier_lent(1), before - 32 * kGiB);
  EXPECT_EQ(c.tier_lent(0), 2 * 64 * kGiB);
  // Over-asking releases only what the edge holds; a missing edge is 0.
  EXPECT_EQ(c.shrink_remote_edge(job, host, lender, 1024 * kGiB), 32 * kGiB);
  EXPECT_EQ(c.shrink_remote_edge(job, host, lender, kGiB), 0);
  c.check_invariants();
  c.finish_job(job);
}

TEST(Tiers, MigrationPromotesTowardNearerTiers) {
  Cluster c(three_tier_config());
  const JobId filler{1};
  const NodeId host{5};
  // Fill tiers 0 and 1 via a filler job so the victim's borrow lands far.
  c.assign_job(filler, std::vector<NodeId>{NodeId{4}});
  ASSERT_EQ(c.grow_remote(filler, NodeId{4}, 3 * 64 * kGiB), 3 * 64 * kGiB);
  const JobId job{2};
  c.assign_job(job, std::vector<NodeId>{host});
  // Only tier 1's leftover (64 GiB) and the host's own tier remain; borrow
  // 64 GiB — it lands in tier 1 (node 3).
  ASSERT_EQ(c.grow_remote(job, host, 64 * kGiB), 64 * kGiB);
  ASSERT_EQ(c.tier_lent(1), 2 * 64 * kGiB);

  // Nothing nearer is free yet: migration is a no-op.
  policy::MigrateOutcome out = policy::migrate_to_nearest_tier(c, job, host);
  EXPECT_EQ(out.migrated, 0);
  EXPECT_FALSE(out.remote_changed);

  // The filler releases everything; now tier 0 has 2 * 64 GiB free and the
  // victim's single 64 GiB edge promotes fully into tier 0.
  c.finish_job(filler);
  out = policy::migrate_to_nearest_tier(c, job, host);
  EXPECT_EQ(out.migrated, 64 * kGiB);
  EXPECT_TRUE(out.remote_changed);
  EXPECT_EQ(c.tier_lent(0), 64 * kGiB);
  EXPECT_EQ(c.tier_lent(1), 0);
  c.check_invariants();

  // Already in the nearest tier: promoting again moves nothing.
  out = policy::migrate_to_nearest_tier(c, job, host);
  EXPECT_EQ(out.migrated, 0);
  c.finish_job(job);
}

TEST(Tiers, MigrationIsANoOpOnFlatTopologies) {
  Cluster c(make_cluster_config(4, 64 * kGiB, 0, 0));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  ASSERT_GT(c.grow_remote(job, NodeId{0}, 8 * kGiB), 0);
  const policy::MigrateOutcome out =
      policy::migrate_to_nearest_tier(c, job, NodeId{0});
  EXPECT_EQ(out.migrated, 0);
  EXPECT_FALSE(out.remote_changed);
  c.finish_job(job);
}

TEST(Tiers, UnsortedTierTableIsWalkedLatencyAscending) {
  // Declare the far tier first: tier_order_ must still walk 150 -> 450 ->
  // 1200 ns, so lender selection starts at tier id 2.
  ClusterConfig cfg = make_cluster_config(6, 64 * kGiB, 0, 0);
  cfg.tiers = {MemoryTier{"far", 1200.0, 40.0, TierScope::CrossRack},
               MemoryTier{"rack", 450.0, 64.0, TierScope::Rack},
               MemoryTier{"local", 150.0, 90.0, TierScope::Local}};
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    cfg.nodes[i].tier = static_cast<std::uint8_t>(2 - i / 2);
  }
  Cluster c(std::move(cfg));
  ASSERT_EQ(c.tier_order().size(), 3u);
  EXPECT_EQ(c.tier_order()[0], 2);  // local
  EXPECT_EQ(c.tier_order()[1], 1);
  EXPECT_EQ(c.tier_order()[2], 0);  // far
  const JobId job{1};
  const NodeId host{0};  // tier id 2 = "local" (ids {0,1}); node 1 lends
  c.assign_job(job, std::vector<NodeId>{host});
  ASSERT_EQ(c.grow_remote(job, host, 32 * kGiB), 32 * kGiB);
  // The grant must come from the nearest tier: "local" (tier id 2).
  EXPECT_EQ(c.tier_lent(2), 32 * kGiB);
  EXPECT_EQ(c.tier_lent(1), 0);
  EXPECT_EQ(c.tier_lent(0), 0);
  c.check_invariants();
  c.finish_job(job);
}

TEST(Tiers, InvariantsHoldUnderChurnWithDebugParity) {
  Cluster c(three_tier_config(16 * kGiB));
  c.set_debug_parity(true);
  std::uint32_t next = 1;
  std::vector<JobId> running;
  for (int round = 0; round < 50; ++round) {
    const NodeId host{static_cast<std::uint32_t>(round % 6)};
    if (!c.is_idle(host)) {
      // Finish whichever job occupies the host.
      const JobId victim = c.node(host).running_job;
      c.finish_job(victim);
      std::erase(running, victim);
    }
    if (!c.can_host(host)) {
      // Idle but lending (a memory node): leave it be this round.
      c.check_invariants();
      continue;
    }
    const JobId job{next++};
    c.assign_job(job, std::vector<NodeId>{host});
    (void)c.grow_local(job, host, (static_cast<MiB>(round % 3) + 1) * kGiB);
    (void)c.grow_remote(job, host, (static_cast<MiB>(round % 5) + 1) * kGiB);
    if (round % 4 == 1) {
      (void)c.shrink_remote(job, host, kGiB);
    }
    if (round % 7 == 2) {
      (void)policy::migrate_to_nearest_tier(c, job, host);
    }
    running.push_back(job);
    c.check_invariants();
  }
  for (const JobId job : running) c.finish_job(job);
  c.check_invariants();
  EXPECT_EQ(c.total_lent(), 0);
}

}  // namespace
}  // namespace dmsim::cluster
