#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace dmsim::cluster {
namespace {

constexpr MiB kGiB = 1024;

Cluster small_cluster(LenderPolicy policy = LenderPolicy::MemoryNodesFirst) {
  ClusterConfig cfg = make_cluster_config(3, 64 * kGiB, 1, 128 * kGiB);
  cfg.lender_policy = policy;
  return Cluster(std::move(cfg));
}

TEST(ClusterConfigTest, BuilderCountsAndClasses) {
  const ClusterConfig cfg = make_cluster_config(5, 64 * kGiB, 3, 128 * kGiB, 16);
  ASSERT_EQ(cfg.nodes.size(), 8u);
  int large = 0;
  for (const auto& n : cfg.nodes) {
    EXPECT_EQ(n.cores, 16);
    if (n.large) {
      ++large;
      EXPECT_EQ(n.capacity, 128 * kGiB);
    } else {
      EXPECT_EQ(n.capacity, 64 * kGiB);
    }
  }
  EXPECT_EQ(large, 3);
}

TEST(ClusterTest, InitialState) {
  const Cluster c = small_cluster();
  EXPECT_EQ(c.node_count(), 4u);
  EXPECT_EQ(c.total_capacity(), (3 * 64 + 128) * kGiB);
  EXPECT_EQ(c.total_allocated(), 0);
  EXPECT_EQ(c.total_free(), c.total_capacity());
  EXPECT_EQ(c.idle_hostable_nodes(), 4);
  for (const auto& n : c.nodes()) {
    EXPECT_TRUE(n.idle());
    EXPECT_FALSE(n.memory_node());
    EXPECT_EQ(n.free(), n.capacity);
  }
}

TEST(ClusterTest, AssignAndFinishJob) {
  Cluster c = small_cluster();
  const JobId job{1};
  const std::vector<NodeId> hosts = {NodeId{0}, NodeId{1}};
  c.assign_job(job, hosts);
  EXPECT_FALSE(c.can_host(NodeId{0}));
  EXPECT_FALSE(c.can_host(NodeId{1}));
  EXPECT_TRUE(c.can_host(NodeId{2}));
  EXPECT_EQ(c.idle_hostable_nodes(), 2);
  EXPECT_TRUE(c.has_slot(job, NodeId{0}));
  EXPECT_EQ(c.job_slots(job).size(), 2u);
  c.check_invariants();

  c.finish_job(job);
  EXPECT_TRUE(c.can_host(NodeId{0}));
  EXPECT_EQ(c.total_allocated(), 0);
  EXPECT_FALSE(c.has_slot(job, NodeId{0}));
  c.check_invariants();
}

TEST(ClusterTest, GrowLocalUpToCapacity) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  EXPECT_EQ(c.grow_local(job, NodeId{0}, 10 * kGiB), 10 * kGiB);
  EXPECT_EQ(c.slot(job, NodeId{0}).local, 10 * kGiB);
  // Asking beyond capacity grants only what is free.
  EXPECT_EQ(c.grow_local(job, NodeId{0}, 100 * kGiB), 54 * kGiB);
  EXPECT_EQ(c.node(NodeId{0}).free(), 0);
  c.check_invariants();
}

TEST(ClusterTest, ShrinkLocalBoundedBySlot) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_local(job, NodeId{0}, 8 * kGiB);
  EXPECT_EQ(c.shrink_local(job, NodeId{0}, 100 * kGiB), 8 * kGiB);
  EXPECT_EQ(c.slot(job, NodeId{0}).local, 0);
  c.check_invariants();
}

TEST(ClusterTest, GrowRemoteBorrowsFromLenders) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_local(job, NodeId{0}, 64 * kGiB);  // host is full
  const MiB granted = c.grow_remote(job, NodeId{0}, 100 * kGiB);
  EXPECT_EQ(granted, 100 * kGiB);
  const AllocationSlot& slot = c.slot(job, NodeId{0});
  EXPECT_EQ(slot.remote_total(), 100 * kGiB);
  EXPECT_EQ(slot.total(), 164 * kGiB);
  EXPECT_NEAR(slot.remote_fraction(), 100.0 / 164.0, 1e-12);
  c.check_invariants();
}

TEST(ClusterTest, GrowRemotePartialWhenPoolExhausted) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  const MiB rest = c.total_capacity() - c.node(NodeId{0}).capacity;
  EXPECT_EQ(c.grow_remote(job, NodeId{0}, rest + 5000), rest);
  EXPECT_EQ(c.total_free(), c.node(NodeId{0}).capacity);
  c.check_invariants();
}

TEST(ClusterTest, ShrinkRemoteReturnsToLenders) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_remote(job, NodeId{0}, 100 * kGiB);
  EXPECT_EQ(c.shrink_remote(job, NodeId{0}, 40 * kGiB), 40 * kGiB);
  EXPECT_EQ(c.slot(job, NodeId{0}).remote_total(), 60 * kGiB);
  // Shrinking more than held releases only what exists.
  EXPECT_EQ(c.shrink_remote(job, NodeId{0}, 1000 * kGiB), 60 * kGiB);
  EXPECT_EQ(c.slot(job, NodeId{0}).remote_total(), 0);
  for (const auto& n : c.nodes()) EXPECT_EQ(n.lent, 0);
  c.check_invariants();
}

TEST(ClusterTest, MemoryNodeRuleBlocksHosting) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{3}});  // host on the large node
  // Borrow enough that some node crosses the half-capacity mark.
  (void)c.grow_remote(job, NodeId{3}, 3 * 64 * kGiB - 3000);
  int memory_nodes = 0;
  for (const auto& n : c.nodes()) {
    if (n.memory_node()) {
      ++memory_nodes;
      EXPECT_FALSE(c.can_host(n.id));
      EXPECT_TRUE(n.idle());  // idle yet not hostable
    }
  }
  EXPECT_GT(memory_nodes, 0);
  c.check_invariants();
}

TEST(ClusterTest, MemoryNodeRecoversAfterRelease) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{3}});
  (void)c.grow_remote(job, NodeId{3}, 3 * 64 * kGiB);
  EXPECT_LT(c.idle_hostable_nodes(), 3);
  (void)c.shrink_remote(job, NodeId{3}, 3 * 64 * kGiB);
  EXPECT_EQ(c.idle_hostable_nodes(), 3);
  c.check_invariants();
}

TEST(ClusterTest, FinishJobReturnsAllBorrows) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_local(job, NodeId{0}, 64 * kGiB);
  (void)c.grow_remote(job, NodeId{0}, 90 * kGiB);
  c.finish_job(job);
  EXPECT_EQ(c.total_allocated(), 0);
  for (const auto& n : c.nodes()) {
    EXPECT_EQ(n.lent, 0);
    EXPECT_EQ(n.local_used, 0);
  }
  c.check_invariants();
}

TEST(ClusterTest, BorrowersOfListsEdges) {
  Cluster c = small_cluster(LenderPolicy::MostFree);
  const JobId a{1};
  const JobId b{2};
  c.assign_job(a, std::vector<NodeId>{NodeId{0}});
  c.assign_job(b, std::vector<NodeId>{NodeId{1}});
  // MostFree: both borrow from the large node 3 first.
  (void)c.grow_remote(a, NodeId{0}, 10 * kGiB);
  (void)c.grow_remote(b, NodeId{1}, 20 * kGiB);
  const auto edges = c.borrowers_of(NodeId{3});
  ASSERT_EQ(edges.size(), 2u);
  MiB total = 0;
  for (const auto& e : edges) total += e.amount;
  EXPECT_EQ(total, 30 * kGiB);
  EXPECT_EQ(c.node(NodeId{3}).lent, 30 * kGiB);
}

TEST(ClusterTest, LenderPolicyMostFreePrefersLargestFree) {
  Cluster c = small_cluster(LenderPolicy::MostFree);
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_remote(job, NodeId{0}, 10 * kGiB);
  // Node 3 (128 GiB, all free) must be the lender.
  EXPECT_EQ(c.node(NodeId{3}).lent, 10 * kGiB);
  EXPECT_EQ(c.node(NodeId{1}).lent, 0);
}

TEST(ClusterTest, LenderPolicyLeastFreePacksTightly) {
  Cluster c = small_cluster(LenderPolicy::LeastFree);
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{3}});
  (void)c.grow_remote(job, NodeId{3}, 10 * kGiB);
  // All normal nodes tie on free; deterministic tie-break picks node 0.
  EXPECT_EQ(c.node(NodeId{0}).lent, 10 * kGiB);
}

TEST(ClusterTest, LenderPolicyMemoryNodesFirstReusesLenders) {
  Cluster c = small_cluster(LenderPolicy::MemoryNodesFirst);
  const JobId a{1};
  c.assign_job(a, std::vector<NodeId>{NodeId{3}});
  // Push node 0 past half capacity (borrow 40 of its 64 GiB).
  ClusterConfig cfg2;
  (void)cfg2;
  (void)c.grow_remote(a, NodeId{3}, 0);  // no-op guard
  // Borrow heavily so one normal node becomes a memory node.
  (void)c.grow_remote(a, NodeId{3}, 40 * kGiB);
  NodeId lender{NodeId::kInvalid};
  for (const auto& n : c.nodes()) {
    if (n.lent > 0) lender = n.id;
  }
  ASSERT_TRUE(lender.valid());
  EXPECT_TRUE(c.node(lender).memory_node());
  // A second borrow should drain the same (memory) node first.
  const JobId b{2};
  c.assign_job(b, std::vector<NodeId>{NodeId{0} == lender ? NodeId{1} : NodeId{0}});
  (void)c.grow_remote(b, c.node(NodeId{0}) .id == lender ? NodeId{1} : NodeId{0},
                      10 * kGiB);
  EXPECT_EQ(c.node(lender).lent, 50 * kGiB);
}

TEST(ClusterTest, SelfBorrowNeverHappens) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_remote(job, NodeId{0}, c.total_capacity());
  for (const auto& [lender, amount] : c.slot(job, NodeId{0}).remote) {
    (void)amount;
    EXPECT_NE(lender, NodeId{0});
  }
}

TEST(ClusterTest, MultiNodeJobSlotsIndependent) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}, NodeId{1}});
  (void)c.grow_local(job, NodeId{0}, 5 * kGiB);
  (void)c.grow_local(job, NodeId{1}, 7 * kGiB);
  EXPECT_EQ(c.slot(job, NodeId{0}).local, 5 * kGiB);
  EXPECT_EQ(c.slot(job, NodeId{1}).local, 7 * kGiB);
  EXPECT_EQ(c.total_allocated(), 12 * kGiB);
}

TEST(ClusterTest, ChangeEpochAdvancesOnlyOnMutation) {
  Cluster c = small_cluster();
  const std::uint64_t e0 = c.change_epoch();
  // Queries leave the epoch untouched (deny-replay caching depends on it).
  (void)c.idle_hostable_nodes();
  (void)c.nodes_by_capacity_at_least(1);
  (void)c.borrowers_of(NodeId{3});
  EXPECT_EQ(c.change_epoch(), e0);

  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  const std::uint64_t e1 = c.change_epoch();
  EXPECT_GT(e1, e0);
  (void)c.grow_local(job, NodeId{0}, 4 * kGiB);
  EXPECT_GT(c.change_epoch(), e1);
  const std::uint64_t e2 = c.change_epoch();
  c.finish_job(job);
  EXPECT_GT(c.change_epoch(), e2);
}

TEST(ClusterTest, CapacityIndexIsSortedAndFiltered) {
  const Cluster c = small_cluster();  // 3x64 GiB (ids 0-2) + 1x128 GiB (id 3)
  const auto all = c.nodes_by_capacity_at_least(1);
  ASSERT_EQ(all.size(), 4u);
  // Capacity ascending, id ascending within a capacity class.
  EXPECT_EQ(all[0], NodeId{0});
  EXPECT_EQ(all[1], NodeId{1});
  EXPECT_EQ(all[2], NodeId{2});
  EXPECT_EQ(all[3], NodeId{3});
  const auto large = c.nodes_by_capacity_at_least(64 * kGiB + 1);
  ASSERT_EQ(large.size(), 1u);
  EXPECT_EQ(large[0], NodeId{3});
  EXPECT_TRUE(c.nodes_by_capacity_at_least(129 * kGiB).empty());
}

TEST(ClusterTest, HostableVisitorsMatchPolicyOrdering) {
  Cluster c = small_cluster();
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});  // node 0 not idle

  // At-least: free ascending, id ascending — Static's tightest-fit order.
  std::vector<NodeId> asc;
  c.visit_hostable_at_least(1, [&](NodeId id) {
    asc.push_back(id);
    return true;
  });
  ASSERT_EQ(asc.size(), 3u);
  EXPECT_EQ(asc[0], NodeId{1});
  EXPECT_EQ(asc[1], NodeId{2});
  EXPECT_EQ(asc[2], NodeId{3});

  // Below (exclusive): free descending, id ascending within equal free —
  // Static's most-free fallback order.
  std::vector<NodeId> desc;
  c.visit_hostable_below_desc(128 * kGiB, [&](NodeId id) {
    desc.push_back(id);
    return true;
  });
  ASSERT_EQ(desc.size(), 2u);
  EXPECT_EQ(desc[0], NodeId{1});
  EXPECT_EQ(desc[1], NodeId{2});

  // Early-exit contract: returning false stops the walk.
  int visited = 0;
  c.visit_hostable_at_least(1, [&](NodeId) { return ++visited < 2; });
  EXPECT_EQ(visited, 2);
}

// Regression: a shrink that returns a borrow edge in full erases the edge
// from the slot before the generic slot-dirty walk runs, so the lender's
// pressure change was never flagged and its borrowers kept a stale slowdown
// until some unrelated edge touched the same lender.
TEST(ClusterTest, ShrinkRemoteFullReturnMarksLenderDirty) {
  Cluster c = small_cluster(LenderPolicy::MostFree);
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_local(job, NodeId{0}, 64 * kGiB);
  ASSERT_EQ(c.grow_remote(job, NodeId{0}, 10 * kGiB), 10 * kGiB);
  ASSERT_EQ(c.node(NodeId{3}).lent, 10 * kGiB);  // MostFree -> large node
  c.clear_contention_dirty();
  ASSERT_TRUE(c.dirty_lenders().empty());

  // Full return: the edge disappears entirely.
  EXPECT_EQ(c.shrink_remote(job, NodeId{0}, 10 * kGiB), 10 * kGiB);
  EXPECT_TRUE(c.borrowers_of(NodeId{3}).empty());
  bool lender_dirty = false;
  for (const NodeId n : c.dirty_lenders()) {
    if (n == NodeId{3}) lender_dirty = true;
  }
  EXPECT_TRUE(lender_dirty);
  c.check_invariants();

  c.clear_contention_dirty();
  EXPECT_TRUE(c.dirty_lenders().empty());
  EXPECT_TRUE(c.dirty_jobs().empty());
}

// Property test: a random sequence of assign/grow/shrink/finish operations
// never breaks the ledger invariants.
class ClusterFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterFuzzTest, RandomOpSequenceKeepsInvariants) {
  util::Rng rng(GetParam());
  ClusterConfig cfg = make_cluster_config(6, 64 * kGiB, 2, 128 * kGiB);
  cfg.lender_policy = static_cast<LenderPolicy>(GetParam() % 3);
  Cluster c(std::move(cfg));

  std::vector<JobId> active;
  std::uint32_t next_job = 1;
  for (int step = 0; step < 400; ++step) {
    const double op = rng.uniform();
    if (op < 0.25) {
      // Try to assign a new 1-2 node job.
      std::vector<NodeId> hosts;
      for (const auto& n : c.nodes()) {
        if (c.can_host(n.id)) hosts.push_back(n.id);
      }
      const int want = static_cast<int>(rng.uniform_int(1, 2));
      if (static_cast<int>(hosts.size()) >= want) {
        hosts.resize(static_cast<std::size_t>(want));
        const JobId job{next_job++};
        c.assign_job(job, hosts);
        active.push_back(job);
      }
    } else if (op < 0.5 && !active.empty()) {
      const JobId job = active[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1))];
      for (const auto* slot : c.job_slots(job)) {
        const MiB amount = rng.uniform_int(0, 32 * kGiB);
        if (rng.bernoulli(0.5)) {
          (void)c.grow_local(job, slot->host, amount);
        } else {
          (void)c.grow_remote(job, slot->host, amount);
        }
      }
    } else if (op < 0.75 && !active.empty()) {
      const JobId job = active[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1))];
      for (const auto* slot : c.job_slots(job)) {
        const MiB amount = rng.uniform_int(0, 32 * kGiB);
        if (rng.bernoulli(0.5)) {
          (void)c.shrink_local(job, slot->host, amount);
        } else {
          (void)c.shrink_remote(job, slot->host, amount);
        }
      }
    } else if (!active.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
      c.finish_job(active[idx]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    c.check_invariants();
    EXPECT_GE(c.total_free(), 0);
    EXPECT_LE(c.total_allocated(), c.total_capacity());
  }
  for (const JobId job : active) c.finish_job(job);
  EXPECT_EQ(c.total_allocated(), 0);
  c.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace dmsim::cluster
