// Detailed ledger behaviours: shrink ordering, borrow merging, and
// aggregate counters under interleaved multi-job traffic.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace dmsim::cluster {
namespace {

constexpr MiB kGiB = 1024;

TEST(LedgerDetail, ShrinkReturnsLargestBorrowFirst) {
  // Host on node 3 borrows from nodes 0..2 in uneven amounts.
  Cluster c(make_cluster_config(4, 64 * kGiB, 0, 0, 32));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{3}});
  (void)c.grow_local(job, NodeId{3}, 64 * kGiB);
  // MostFree would equalize; force uneven borrows with targeted grows.
  // First borrow drains node 0 (most free, id tie-break) fully.
  (void)c.grow_remote(job, NodeId{3}, 64 * kGiB);          // node 0: 64
  (void)c.grow_remote(job, NodeId{3}, 10 * kGiB);          // node 1: 10
  ASSERT_EQ(c.node(NodeId{0}).lent, 64 * kGiB);
  ASSERT_EQ(c.node(NodeId{1}).lent, 10 * kGiB);

  // Shrinking 30 GiB must come from the largest borrow (node 0).
  EXPECT_EQ(c.shrink_remote(job, NodeId{3}, 30 * kGiB), 30 * kGiB);
  EXPECT_EQ(c.node(NodeId{0}).lent, 34 * kGiB);
  EXPECT_EQ(c.node(NodeId{1}).lent, 10 * kGiB);
  c.check_invariants();
}

TEST(LedgerDetail, RepeatedBorrowsMergeEdges) {
  Cluster c(make_cluster_config(2, 64 * kGiB, 0, 0, 32));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  for (int i = 0; i < 10; ++i) {
    (void)c.grow_remote(job, NodeId{0}, 1 * kGiB);
  }
  const AllocationSlot& slot = c.slot(job, NodeId{0});
  ASSERT_EQ(slot.remote.size(), 1u);  // one merged edge, not ten
  EXPECT_EQ(slot.remote_total(), 10 * kGiB);
  EXPECT_EQ(c.borrowers_of(NodeId{1}).size(), 1u);
}

TEST(LedgerDetail, TotalLentTracksAllTraffic) {
  Cluster c(make_cluster_config(4, 64 * kGiB, 0, 0, 32));
  EXPECT_EQ(c.total_lent(), 0);
  const JobId a{1};
  const JobId b{2};
  c.assign_job(a, std::vector<NodeId>{NodeId{0}});
  c.assign_job(b, std::vector<NodeId>{NodeId{1}});
  (void)c.grow_remote(a, NodeId{0}, 20 * kGiB);
  (void)c.grow_remote(b, NodeId{1}, 12 * kGiB);
  EXPECT_EQ(c.total_lent(), 32 * kGiB);
  (void)c.shrink_remote(a, NodeId{0}, 5 * kGiB);
  EXPECT_EQ(c.total_lent(), 27 * kGiB);
  c.finish_job(a);
  EXPECT_EQ(c.total_lent(), 12 * kGiB);
  c.finish_job(b);
  EXPECT_EQ(c.total_lent(), 0);
  c.check_invariants();
}

TEST(LedgerDetail, BorrowersOfEmptyAfterFullShrink) {
  Cluster c(make_cluster_config(2, 64 * kGiB, 0, 0, 32));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  (void)c.grow_remote(job, NodeId{0}, 8 * kGiB);
  EXPECT_EQ(c.borrowers_of(NodeId{1}).size(), 1u);
  (void)c.shrink_remote(job, NodeId{0}, 8 * kGiB);
  EXPECT_TRUE(c.borrowers_of(NodeId{1}).empty());
  // The zeroed edge is purged from the slot too.
  EXPECT_TRUE(c.slot(job, NodeId{0}).remote.empty());
}

TEST(LedgerDetail, GrowLocalZeroIsNoop) {
  Cluster c(make_cluster_config(1, 64 * kGiB, 0, 0, 32));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  EXPECT_EQ(c.grow_local(job, NodeId{0}, 0), 0);
  EXPECT_EQ(c.grow_remote(job, NodeId{0}, 0), 0);
  EXPECT_EQ(c.shrink_local(job, NodeId{0}, 0), 0);
  EXPECT_EQ(c.shrink_remote(job, NodeId{0}, 0), 0);
  EXPECT_EQ(c.total_allocated(), 0);
  c.check_invariants();
}

TEST(LedgerDetail, SingleNodeClusterCannotBorrow) {
  Cluster c(make_cluster_config(1, 64 * kGiB, 0, 0, 32));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  EXPECT_EQ(c.grow_remote(job, NodeId{0}, 10 * kGiB), 0);
  EXPECT_EQ(c.total_lent(), 0);
}

TEST(LedgerDetail, RemoteFractionBounds) {
  Cluster c(make_cluster_config(3, 64 * kGiB, 0, 0, 32));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  EXPECT_DOUBLE_EQ(c.slot(job, NodeId{0}).remote_fraction(), 0.0);  // empty
  (void)c.grow_remote(job, NodeId{0}, 10 * kGiB);
  EXPECT_DOUBLE_EQ(c.slot(job, NodeId{0}).remote_fraction(), 1.0);  // all remote
  (void)c.grow_local(job, NodeId{0}, 30 * kGiB);
  EXPECT_DOUBLE_EQ(c.slot(job, NodeId{0}).remote_fraction(), 0.25);
}

}  // namespace
}  // namespace dmsim::cluster
