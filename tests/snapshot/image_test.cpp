// The two-level snapshot model: immutable snapshot::Image + per-fork
// overlays. Contracts pinned here:
//   * the envelope's section table describes the payload exactly (five
//     contiguous sections with per-section checksums), at the current
//     format version — no version bump for the trailer,
//   * a file with no section table (a pre-TOC writer) still opens,
//   * corruption, truncation into the trailer, and trailing garbage are
//     rejected at parse time — before any component state is touched,
//   * a fork from a shared image reproduces the file-resumed run bit for
//     bit, and materialize_trusted refuses a wrong fingerprint,
//   * what-if overlays change exactly what they claim: extra jobs complete,
//     extra nodes raise provisioned memory, policy/sched swaps take effect
//     while the fingerprint still covers the base configuration.
#include "snapshot/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace dmsim {
namespace {

struct Scenario {
  workload::SyntheticWorkload generated;
  harness::CellConfig cell;
  std::string path;

  static Scenario make(const char* file_tag) {
    Scenario s;
    workload::SyntheticWorkloadConfig wcfg;
    wcfg.cirne.num_jobs = 60;
    wcfg.cirne.system_nodes = 32;
    wcfg.cirne.max_job_nodes = 8;
    wcfg.seed = 5150;
    s.generated = workload::generate_synthetic(wcfg);
    s.cell.system.total_nodes = 32;
    s.cell.system.pct_large_nodes = 0.5;
    s.cell.policy = policy::PolicyKind::Dynamic;
    s.cell.sched.sample_interval = 500.0;
    s.path = (std::filesystem::path(::testing::TempDir()) / file_tag).string();
    std::remove(s.path.c_str());
    return s;
  }

  /// Run the cell saving one snapshot at a third of the reference makespan;
  /// returns the uninterrupted result (which the save run must reproduce).
  harness::CellResult save_snapshot() {
    const harness::CellResult reference =
        harness::run_cell(cell, generated.jobs, generated.apps);
    EXPECT_TRUE(reference.valid);
    harness::CellConfig saver = cell;
    saver.checkpoint = harness::CheckpointSpec{
        path, 0.0, {reference.summary.last_end / 3.0}, false};
    const harness::CellResult saved =
        harness::run_cell(saver, generated.jobs, generated.apps);
    EXPECT_EQ(harness::cell_result_to_json(saved),
              harness::cell_result_to_json(reference));
    EXPECT_TRUE(std::filesystem::exists(path));
    return reference;
  }
};

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(SnapshotImage, SectionTableDescribesPayloadExactly) {
  Scenario s = Scenario::make("image_sections.snap");
  s.save_snapshot();

  const auto image = snapshot::Image::open(s.path);
  EXPECT_EQ(image->version(), snapshot::kFormatVersion);
  ASSERT_TRUE(image->has_section_table());
  const auto& sections = image->sections();
  ASSERT_EQ(sections.size(), 5U);
  EXPECT_EQ(sections[0].name, "ENGI");
  EXPECT_EQ(sections[1].name, "CLUS");
  EXPECT_EQ(sections[2].name, "SCHD");
  EXPECT_EQ(sections[3].name, "CNTR");
  EXPECT_EQ(sections[4].name, "END.");

  // Contiguous tiling of the payload, each checksum matching its bytes.
  const std::string_view payload = image->payload();
  std::uint64_t expected_offset = 0;
  for (const snapshot::SectionInfo& sec : sections) {
    EXPECT_EQ(sec.offset, expected_offset);
    EXPECT_EQ(sec.checksum, util::fnv1a(payload.substr(sec.offset, sec.size)));
    expected_offset += sec.size;
  }
  EXPECT_EQ(expected_offset, payload.size());
  std::remove(s.path.c_str());
}

TEST(SnapshotImage, PreTocFileStillOpens) {
  Scenario s = Scenario::make("image_pretoc.snap");
  s.save_snapshot();

  // A writer from before the section table ended right after the payload
  // checksum; cutting the trailer reproduces such a file.
  const std::string bytes = slurp(s.path);
  const auto full = snapshot::Image::from_bytes(bytes);
  const std::size_t pre_toc_size =
      28 + full->payload().size() + 8;  // header + payload + checksum
  ASSERT_LT(pre_toc_size, bytes.size());
  const auto old_style = snapshot::Image::from_bytes(bytes.substr(0, pre_toc_size));
  EXPECT_FALSE(old_style->has_section_table());
  EXPECT_TRUE(old_style->sections().empty());
  EXPECT_EQ(old_style->fingerprint(), full->fingerprint());
  EXPECT_EQ(old_style->payload(), full->payload());
  std::remove(s.path.c_str());
}

TEST(SnapshotImage, CorruptionRejectedAtParseTime) {
  Scenario s = Scenario::make("image_corrupt.snap");
  s.save_snapshot();
  const std::string bytes = slurp(s.path);

  // Payload corruption: checksum mismatch.
  std::string bad = bytes;
  bad[40] ^= 0x5A;
  EXPECT_THROW((void)snapshot::Image::from_bytes(bad), snapshot::SnapshotError);

  // Truncation into the trailer: neither a clean pre-TOC file nor a valid
  // table.
  EXPECT_THROW((void)snapshot::Image::from_bytes(bytes.substr(0, bytes.size() - 4)),
               snapshot::SnapshotError);

  // Trailing garbage after a valid trailer.
  EXPECT_THROW((void)snapshot::Image::from_bytes(bytes + "junk"),
               snapshot::SnapshotError);

  // Truncated payload.
  EXPECT_THROW((void)snapshot::Image::from_bytes(bytes.substr(0, 40)),
               snapshot::SnapshotError);
  std::remove(s.path.c_str());
}

TEST(SnapshotImage, ForkMatchesFileResumeBitForBit) {
  Scenario s = Scenario::make("image_fork.snap");
  const harness::CellResult reference = s.save_snapshot();
  const std::string ref_json = harness::cell_result_to_json(reference);

  // File resume (the pre-image path).
  harness::CellConfig resume = s.cell;
  resume.checkpoint = harness::CheckpointSpec{s.path, 0.0, {}, true};
  const harness::CellResult resumed =
      harness::run_cell(resume, s.generated.jobs, s.generated.apps);
  EXPECT_EQ(harness::cell_result_to_json(resumed), ref_json);

  // Fork from the shared image, slow (recomputed) and trusted fingerprint.
  const auto image = snapshot::Image::open(s.path);
  harness::CellConfig fork = s.cell;
  fork.restore_image = image;
  const harness::CellResult forked =
      harness::run_cell(fork, s.generated.jobs, s.generated.apps);
  EXPECT_EQ(harness::cell_result_to_json(forked), ref_json);
  EXPECT_EQ(forked.checkpoint.restores, 1U);
  EXPECT_EQ(forked.checkpoint.bytes_read, image->size_bytes());

  fork.trusted_fingerprint = image->fingerprint();
  const harness::CellResult trusted =
      harness::run_cell(fork, s.generated.jobs, s.generated.apps);
  EXPECT_EQ(harness::cell_result_to_json(trusted), ref_json);
  std::remove(s.path.c_str());
}

TEST(SnapshotImage, WrongFingerprintRefusedLoudly) {
  Scenario s = Scenario::make("image_badfp.snap");
  s.save_snapshot();
  const auto image = snapshot::Image::open(s.path);

  harness::CellConfig fork = s.cell;
  fork.restore_image = image;
  fork.trusted_fingerprint = image->fingerprint() ^ 1;
  EXPECT_THROW((void)harness::run_cell(fork, s.generated.jobs, s.generated.apps),
               snapshot::SnapshotError);

  // The slow path recomputes from the cell's base config; a different
  // topology must also be refused.
  harness::CellConfig wrong = s.cell;
  wrong.system.total_nodes = 48;
  wrong.restore_image = image;
  EXPECT_THROW((void)harness::run_cell(wrong, s.generated.jobs, s.generated.apps),
               snapshot::SnapshotError);
  std::remove(s.path.c_str());
}

TEST(SnapshotImage, OverlaysApplyAfterTheRestore) {
  Scenario s = Scenario::make("image_overlay.snap");
  const harness::CellResult reference = s.save_snapshot();
  const auto image = snapshot::Image::open(s.path);

  harness::CellConfig fork = s.cell;
  fork.restore_image = image;
  fork.trusted_fingerprint = image->fingerprint();

  // Extra submission: one more job completes.
  {
    harness::CellConfig cell = fork;
    harness::WhatIfOverlay overlay;
    trace::JobSpec extra;
    extra.id = JobId{9001};
    extra.submit_time = 0.0;  // clamped to the restored clock
    extra.num_nodes = 2;
    extra.requested_mem = gib(8);
    extra.duration = 1000.0;
    extra.walltime = 4000.0;
    extra.usage = trace::UsageTrace::constant(gib(8));
    overlay.extra_jobs.push_back(extra);
    cell.overlay = overlay;
    const harness::CellResult result =
        harness::run_cell(cell, s.generated.jobs, s.generated.apps);
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.summary.completed, reference.summary.completed + 1);
  }

  // Topology edit: provisioned memory grows by the added capacity.
  {
    harness::CellConfig cell = fork;
    harness::WhatIfOverlay overlay;
    cluster::NodeConfig node;
    node.capacity = gib(128);
    node.cores = 32;
    node.large = true;
    overlay.extra_nodes.assign(4, node);
    cell.overlay = overlay;
    const harness::CellResult result =
        harness::run_cell(cell, s.generated.jobs, s.generated.apps);
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.provisioned_memory,
              reference.provisioned_memory + 4 * gib(128));
    EXPECT_EQ(result.summary.completed, reference.summary.completed);
  }

  // Policy swap: the fingerprint still covers the base config (PolicyKind
  // is not fingerprinted), and the swap changes scheduling behaviour.
  {
    harness::CellConfig cell = fork;
    harness::WhatIfOverlay overlay;
    overlay.policy = policy::PolicyKind::Static;
    cell.overlay = overlay;
    const harness::CellResult result =
        harness::run_cell(cell, s.generated.jobs, s.generated.apps);
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.summary.completed, reference.summary.completed);
  }

  // Scheduler-config swap: fingerprint checked against the BASE sched.
  {
    harness::CellConfig cell = fork;
    harness::WhatIfOverlay overlay;
    sched::SchedulerConfig swapped = s.cell.sched;
    swapped.sched_interval = 60.0;
    overlay.sched = swapped;
    cell.overlay = overlay;
    const harness::CellResult result =
        harness::run_cell(cell, s.generated.jobs, s.generated.apps);
    EXPECT_TRUE(result.valid);
  }
  std::remove(s.path.c_str());
}

TEST(SnapshotImage, SaveFileSurvivesRename) {
  // save_file writes through a temp file + rename; the destination must
  // never hold a half-written envelope, and a re-save overwrites cleanly.
  Scenario s = Scenario::make("image_resave.snap");
  s.save_snapshot();
  const std::string first = slurp(s.path);
  s.save_snapshot();
  const std::string second = slurp(s.path);
  EXPECT_EQ(first, second);  // deterministic bytes, no tmp residue
  EXPECT_FALSE(std::filesystem::exists(s.path + ".tmp"));
  std::remove(s.path.c_str());
}

}  // namespace
}  // namespace dmsim
