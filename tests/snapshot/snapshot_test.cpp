#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace dmsim::snapshot {
namespace {

TEST(Snapshot, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, DoubleRoundTripIsBitwiseExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.5,
                           3600.000000000001,
                           std::numeric_limits<double>::denorm_min(),
                           -std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  Writer w;
  for (const double v : values) w.f64(v);
  Reader r(w.buffer());
  for (const double v : values) {
    const double got = r.f64();
    // Bit-pattern equality: distinguishes -0.0 from 0.0 and handles NaN.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(v));
  }
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, LittleEndianLayoutIsStable) {
  // The byte layout is the on-disk format; lock it.
  Writer w;
  w.u32(0x04030201U);
  const std::string& b = w.buffer();
  ASSERT_EQ(b.size(), 4U);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x04);
}

TEST(Snapshot, TruncatedReadThrows) {
  Writer w;
  w.u32(7);
  Reader r(w.buffer());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), SnapshotError);
  Reader r2(w.buffer());
  EXPECT_THROW((void)r2.u64(), SnapshotError);
}

TEST(Snapshot, TruncatedStringThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Reader r(w.buffer());
  EXPECT_THROW((void)r.str(), SnapshotError);
}

TEST(Snapshot, MalformedBooleanThrows) {
  Writer w;
  w.u8(2);
  Reader r(w.buffer());
  EXPECT_THROW((void)r.boolean(), SnapshotError);
}

TEST(Snapshot, SectionTagMismatchNamesTheSection) {
  constexpr std::uint32_t kGood = section_tag('G', 'O', 'O', 'D');
  constexpr std::uint32_t kBad = section_tag('B', 'A', 'D', '.');
  Writer w;
  w.section(kBad);
  Reader r(w.buffer());
  try {
    r.expect_section(kGood, "engine");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("engine"), std::string::npos);
  }
}

TEST(Snapshot, PositionAndRemainingTrackConsumption) {
  Writer w;
  w.u64(1);
  w.u32(2);
  Reader r(w.buffer());
  EXPECT_EQ(r.remaining(), 12U);
  (void)r.u64();
  EXPECT_EQ(r.position(), 8U);
  EXPECT_EQ(r.remaining(), 4U);
  EXPECT_FALSE(r.at_end());
  (void)r.u32();
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace dmsim::snapshot
