// Snapshot format-version compatibility (v5 scheduler monitor state).
//
// v5 appends per-running-job monitor fold state plus the memory-monitor's
// own per-job section; v4 leads the cluster section with the memory-tier
// table and the per-node tier/rack columns; v3 stored the occupancy ledger
// as whole columns with no tier data; v2 stored one interleaved record per
// node. Contracts pinned here:
//   * hand-written v2 (interleaved) and v3 (columnar, tierless) cluster
//     sections restore into today's ledger bit-for-bit (read-compat for
//     old snapshot files) and re-save deterministically as v5,
//   * a v4 whole-file snapshot (pre-monitor, so necessarily an oracle run)
//     restores with oracle-equivalent monitor defaults,
//   * a full v5 snapshot round-trips — flat and tiered — with restore +
//     re-save byte-identical, and the header carries version 5,
//   * corrupt payloads, truncation, bad magic and out-of-range versions are
//     rejected loudly before any component state is touched, and file-level
//     restore errors name the offending path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "slowdown/model.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace dmsim {
namespace {

cluster::ClusterConfig small_config() {
  return cluster::make_cluster_config(8, gib(64), 4, gib(128));
}

/// Two jobs with local shares and borrow edges: enough ledger structure to
/// make an interleaved-vs-columnar mixup visible.
void populate(cluster::Cluster& c) {
  const JobId j1{1};
  const JobId j2{2};
  c.assign_job(j1, std::vector<NodeId>{NodeId{0}, NodeId{1}});
  (void)c.grow_local(j1, NodeId{0}, gib(60));
  (void)c.grow_remote(j1, NodeId{0}, gib(20));
  (void)c.grow_local(j1, NodeId{1}, gib(10));
  c.assign_job(j2, std::vector<NodeId>{NodeId{9}});
  (void)c.grow_local(j2, NodeId{9}, gib(100));
  (void)c.grow_remote(j2, NodeId{9}, gib(8));
}

TEST(SnapshotCompat, V2InterleavedClusterSectionRestores) {
  cluster::Cluster src(small_config());
  populate(src);
  src.check_invariants();

  // Serialize src in the v2 layout by hand: one (running_job, local_used,
  // lent) record per node. The job/slot part and the trailing totals are
  // unchanged between v2 and v3.
  snapshot::Writer w;
  w.section(snapshot::section_tag('C', 'L', 'U', 'S'));
  const std::size_t n = src.node_count();
  w.u32(static_cast<std::uint32_t>(n));
  const auto running = src.running_job_column();
  const auto local = src.local_used_column();
  const auto lent = src.lent_column();
  for (std::size_t i = 0; i < n; ++i) {
    w.u32(running[i]);
    w.i64(local[i]);
    w.i64(lent[i]);
  }
  const std::vector<std::uint32_t> jobs = {1, 2};
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const std::uint32_t job : jobs) {
    const auto hosts = src.hosts_of(JobId{job});
    w.u32(job);
    w.u32(static_cast<std::uint32_t>(hosts.size()));
    for (const NodeId h : hosts) {
      const cluster::AllocationSlot& slot = src.slot(JobId{job}, h);
      w.u32(h.get());
      w.i64(slot.local);
      w.u32(static_cast<std::uint32_t>(slot.remote.size()));
      for (const auto& [lender, amount] : slot.remote) {
        w.u32(lender.get());
        w.i64(amount);
      }
    }
  }
  w.i64(src.total_allocated());
  w.i64(src.total_lent());
  w.u64(src.change_epoch());

  cluster::Cluster dst(small_config());
  snapshot::Reader r(w.buffer());
  dst.restore_state(r, /*format_version=*/2);
  EXPECT_TRUE(r.at_end());
  dst.set_debug_parity(true);
  dst.check_invariants();

  // Bit-for-bit equivalence with the source ledger: re-saving dst in the
  // current (v4) format reproduces src's bytes exactly.
  snapshot::Writer from_src;
  snapshot::Writer from_dst;
  src.save_state(from_src);
  dst.save_state(from_dst);
  EXPECT_EQ(from_src.buffer(), from_dst.buffer());
  EXPECT_EQ(dst.total_allocated(), src.total_allocated());
  EXPECT_EQ(dst.total_lent(), src.total_lent());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dst.free_column()[i], src.free_column()[i]) << "node " << i;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto src_edges = src.borrowers_of(NodeId{static_cast<std::uint32_t>(i)});
    const auto dst_edges = dst.borrowers_of(NodeId{static_cast<std::uint32_t>(i)});
    ASSERT_EQ(src_edges.size(), dst_edges.size()) << "lender " << i;
    for (std::size_t e = 0; e < src_edges.size(); ++e) {
      EXPECT_EQ(src_edges[e].job, dst_edges[e].job);
      EXPECT_EQ(src_edges[e].host, dst_edges[e].host);
      EXPECT_EQ(src_edges[e].amount, dst_edges[e].amount);
    }
  }
}

TEST(SnapshotCompat, V2RejectsOutOfRangeLedger) {
  // local + lent beyond capacity must be caught at restore, not later.
  snapshot::Writer w;
  w.section(snapshot::section_tag('C', 'L', 'U', 'S'));
  const cluster::ClusterConfig cfg = small_config();
  w.u32(static_cast<std::uint32_t>(cfg.nodes.size()));
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    w.u32(NodeId::kInvalid);
    w.i64(i == 0 ? gib(1024) : 0);  // node 0 claims 1 TiB used on 64 GiB
    w.i64(0);
  }
  w.u32(0);  // no jobs
  w.i64(gib(1024));
  w.i64(0);
  w.u64(0);

  cluster::Cluster c(cfg);
  snapshot::Reader r(w.buffer());
  EXPECT_THROW(c.restore_state(r, /*format_version=*/2),
               snapshot::SnapshotError);
}

TEST(SnapshotCompat, V3ColumnarTierlessSectionRestores) {
  // A v3 file carries the occupancy columns but no tier table — exactly
  // what every pre-tier snapshot on disk looks like. It must restore into
  // today's ledger and re-save (as v4) bit-identically to a native save.
  cluster::Cluster src(small_config());
  populate(src);

  snapshot::Writer w;
  w.section(snapshot::section_tag('C', 'L', 'U', 'S'));
  const std::size_t n = src.node_count();
  w.u32(static_cast<std::uint32_t>(n));
  for (const std::uint32_t rj : src.running_job_column()) w.u32(rj);
  for (const MiB lu : src.local_used_column()) w.i64(lu);
  for (const MiB le : src.lent_column()) w.i64(le);
  const std::vector<std::uint32_t> jobs = {1, 2};
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const std::uint32_t job : jobs) {
    const auto hosts = src.hosts_of(JobId{job});
    w.u32(job);
    w.u32(static_cast<std::uint32_t>(hosts.size()));
    for (const NodeId h : hosts) {
      const cluster::AllocationSlot& slot = src.slot(JobId{job}, h);
      w.u32(h.get());
      w.i64(slot.local);
      w.u32(static_cast<std::uint32_t>(slot.remote.size()));
      for (const auto& [lender, amount] : slot.remote) {
        w.u32(lender.get());
        w.i64(amount);
      }
    }
  }
  w.i64(src.total_allocated());
  w.i64(src.total_lent());
  w.u64(src.change_epoch());

  cluster::Cluster dst(small_config());
  snapshot::Reader r(w.buffer());
  dst.restore_state(r, /*format_version=*/3);
  EXPECT_TRUE(r.at_end());
  dst.set_debug_parity(true);
  dst.check_invariants();

  snapshot::Writer from_src;
  snapshot::Writer from_dst;
  src.save_state(from_src);
  dst.save_state(from_dst);
  EXPECT_EQ(from_src.buffer(), from_dst.buffer());
}

TEST(SnapshotCompat, V4RejectsMismatchedTierTopology) {
  // A snapshot written by a tiered cluster must refuse to restore into the
  // same node layout under a different tier table.
  cluster::ClusterConfig cfg = small_config();
  cfg.tiers = {cluster::MemoryTier{"near", 150.0, 90.0,
                                   cluster::TierScope::Local},
               cluster::MemoryTier{"far", 900.0, 40.0,
                                   cluster::TierScope::CrossRack}};
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    cfg.nodes[i].tier = i < 6 ? 0 : 1;
  }
  cluster::Cluster src(cfg);
  populate(src);
  snapshot::Writer w;
  src.save_state(w);

  {  // different tier latency
    cluster::ClusterConfig other = cfg;
    other.tiers[1].latency_ns = 901.0;
    cluster::Cluster dst(other);
    snapshot::Reader r(w.buffer());
    EXPECT_THROW(dst.restore_state(r, 4), snapshot::SnapshotError);
  }
  {  // different node-to-tier assignment
    cluster::ClusterConfig other = cfg;
    other.nodes[0].tier = 1;
    cluster::Cluster dst(other);
    snapshot::Reader r(w.buffer());
    EXPECT_THROW(dst.restore_state(r, 4), snapshot::SnapshotError);
  }
  {  // the matching topology restores fine
    cluster::Cluster dst(cfg);
    snapshot::Reader r(w.buffer());
    dst.restore_state(r, 4);
    EXPECT_TRUE(r.at_end());
    dst.check_invariants();
  }
}

/// A minimal full simulation (engine + cluster + scheduler) for whole-file
/// snapshot tests, advanced to a busy mid-point.
struct MiniSim {
  explicit MiniSim(const workload::SyntheticWorkload& w, bool tiered = false) {
    cluster::ClusterConfig ccfg =
        cluster::make_cluster_config(12, gib(64), 4, gib(128));
    if (tiered) {
      ccfg.tiers = {cluster::MemoryTier{"near", 150.0, 90.0,
                                        cluster::TierScope::Local},
                    cluster::MemoryTier{"far", 1200.0, 40.0,
                                        cluster::TierScope::CrossRack}};
      for (std::size_t i = 0; i < ccfg.nodes.size(); ++i) {
        ccfg.nodes[i].tier = i < 8 ? 0 : 1;
        ccfg.nodes[i].rack = i < 8 ? 0 : 1;
      }
    }
    cluster_ = std::make_unique<cluster::Cluster>(std::move(ccfg));
    policy_ = policy::make_policy(policy::PolicyKind::Dynamic);
    sched::SchedulerConfig cfg;
    cfg.sample_interval = 300.0;
    scheduler_ = std::make_unique<sched::Scheduler>(
        engine_, *cluster_, *policy_, &w.apps, cfg, nullptr);
    scheduler_->submit_workload(w.jobs);
  }
  [[nodiscard]] snapshot::Components components() noexcept {
    return {&engine_, cluster_.get(), scheduler_.get(), nullptr};
  }
  sim::Engine engine_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<policy::AllocationPolicy> policy_;
  std::unique_ptr<sched::Scheduler> scheduler_;
};

workload::SyntheticWorkload mini_workload() {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 48;
  cfg.cirne.system_nodes = 16;
  cfg.cirne.max_job_nodes = 4;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.4;
  cfg.seed = 20260808;
  return workload::generate_synthetic(cfg);
}

[[nodiscard]] std::uint32_t header_version(const std::string& bytes) {
  // Layout: 8 magic bytes, then the format version as little-endian u32.
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[8])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[9])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[10]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[11]))
             << 24;
}

TEST(SnapshotCompat, V5RoundTripIsByteIdentical) {
  const workload::SyntheticWorkload w = mini_workload();
  MiniSim source(w);
  MiniSim target(w);
  (void)source.scheduler_->run_ready(15000.0);

  const std::string bytes = snapshot::save_bytes(source.components());
  EXPECT_EQ(header_version(bytes), snapshot::kFormatVersion);
  EXPECT_EQ(header_version(bytes), 5U);

  snapshot::restore_bytes(bytes, target.components());
  target.cluster_->set_debug_parity(true);
  target.cluster_->check_invariants();
  EXPECT_EQ(snapshot::save_bytes(target.components()), bytes);
}

TEST(SnapshotCompat, V4OracleSnapshotRestores) {
  // Read-compat with pre-monitor (v4) files. Every v4 file was written by an
  // oracle run, and an oracle scheduler section with no running jobs is
  // byte-identical between v4 and v5: the per-running-job monitor fields
  // contribute zero rows and the oracle monitor's state section is empty. So
  // a save cut before any job starts, with the header version patched to 4,
  // IS a well-formed v4 file (payload, size and checksum all unchanged) —
  // and it must restore into today's scheduler with oracle-equivalent
  // defaults, then re-save as v5 with the identical payload.
  const workload::SyntheticWorkload w = mini_workload();
  MiniSim source(w);
  const std::string v5 = snapshot::save_bytes(source.components());

  std::string v4 = v5;
  v4[8] = '\x04';  // version u32 little-endian at offset 8
  ASSERT_EQ(header_version(v4), 4U);

  MiniSim target(w);
  snapshot::restore_bytes(v4, target.components());
  target.cluster_->check_invariants();
  EXPECT_EQ(snapshot::save_bytes(target.components()), v5);

  // The restored run must finish exactly like the source run.
  (void)source.scheduler_->run_ready(1e18);
  (void)target.scheduler_->run_ready(1e18);
  EXPECT_EQ(snapshot::save_bytes(target.components()),
            snapshot::save_bytes(source.components()));
}

TEST(SnapshotCompat, TieredRoundTripIsByteIdentical) {
  // Same contract on a two-tier topology: the fingerprint (which now covers
  // the tier table) matches between identically configured sims, the tier
  // columns survive the trip, and re-save is byte-identical.
  const workload::SyntheticWorkload w = mini_workload();
  MiniSim source(w, /*tiered=*/true);
  MiniSim target(w, /*tiered=*/true);
  (void)source.scheduler_->run_ready(15000.0);

  const std::string bytes = snapshot::save_bytes(source.components());
  snapshot::restore_bytes(bytes, target.components());
  target.cluster_->set_debug_parity(true);
  target.cluster_->check_invariants();
  EXPECT_EQ(snapshot::save_bytes(target.components()), bytes);

  // A flat sim must refuse the tiered snapshot at the fingerprint.
  MiniSim flat(w);
  EXPECT_THROW(snapshot::restore_bytes(bytes, flat.components()),
               snapshot::SnapshotError);
}

TEST(SnapshotCompat, CorruptSnapshotsAreRejected) {
  const workload::SyntheticWorkload w = mini_workload();
  MiniSim source(w);
  (void)source.scheduler_->run_ready(15000.0);
  const std::string bytes = snapshot::save_bytes(source.components());
  MiniSim target(w);
  const snapshot::Components dst = target.components();

  {  // payload bit flip -> checksum mismatch
    std::string bad = bytes;
    bad[40] = static_cast<char>(bad[40] ^ 0x5A);
    EXPECT_THROW(snapshot::restore_bytes(bad, dst), snapshot::SnapshotError);
  }
  {  // truncation
    EXPECT_THROW(
        snapshot::restore_bytes(bytes.substr(0, bytes.size() - 4), dst),
        snapshot::SnapshotError);
  }
  {  // bad magic
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW(snapshot::restore_bytes(bad, dst), snapshot::SnapshotError);
  }
  {  // version below the compat window (v1) and above the writer (v6)
    for (const char v : {'\x01', '\x06'}) {
      std::string bad = bytes;
      bad[8] = v;
      EXPECT_THROW(snapshot::restore_bytes(bad, dst), snapshot::SnapshotError);
    }
  }
  // The pristine bytes still restore after all those rejections.
  snapshot::restore_bytes(bytes, dst);
  target.cluster_->check_invariants();
}

TEST(SnapshotCompat, RestoreFileErrorsNameThePath) {
  const workload::SyntheticWorkload w = mini_workload();
  MiniSim target(w);
  const std::string path =
      testing::TempDir() + "dmsim_compat_corrupt.snap";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTASNAPSHOT";
  }
  try {
    snapshot::restore_file(path, target.components());
    FAIL() << "corrupt file restored";
  } catch (const snapshot::SnapshotError& e) {
    // The wrapped message must carry both the path (so `dmsim_run
    // --restore` failures are actionable) and the underlying cause.
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("bad magic"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dmsim
