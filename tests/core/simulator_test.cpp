#include "core/simulator.hpp"

#include <gtest/gtest.h>

namespace dmsim {
namespace {

constexpr MiB kGiB = 1024;

trace::Workload tiny_workload() {
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    j.submit_time = i * 5.0;
    j.num_nodes = 1;
    j.requested_mem = 16 * kGiB;
    j.duration = 100.0;
    j.walltime = 150.0;
    j.usage = trace::UsageTrace::constant(16 * kGiB);
    jobs.push_back(j);
  }
  return jobs;
}

SimulationConfig tiny_config(policy::PolicyKind kind) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 4;
  cfg.system.pct_large_nodes = 0.5;
  cfg.policy = kind;
  return cfg;
}

TEST(Simulator, RunsWorkloadToCompletion) {
  Simulator sim(tiny_config(policy::PolicyKind::Dynamic), tiny_workload(),
                nullptr);
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.summary.completed, 5u);
  EXPECT_EQ(r.records.size(), 5u);
  EXPECT_GT(r.summary.throughput, 0.0);
  EXPECT_EQ(r.provisioned_memory, 2 * gib(64) + 2 * gib(128));
  EXPECT_GT(r.system_cost_usd, 0.0);
  EXPECT_EQ(sim.cluster().total_allocated(), 0);
}

TEST(Simulator, InvalidWorkloadShortCircuits) {
  trace::Workload jobs = tiny_workload();
  jobs[0].requested_mem = 4096 * kGiB;  // cannot ever fit
  Simulator sim(tiny_config(policy::PolicyKind::Baseline), std::move(jobs),
                nullptr);
  const SimulationResult r = sim.run();
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.summary.completed, 0u);
  EXPECT_EQ(r.records.size(), 5u);  // records still reported
}

TEST(Simulator, SamplesExposedWhenConfigured) {
  SimulationConfig cfg = tiny_config(policy::PolicyKind::Static);
  cfg.sched.sample_interval = 25.0;
  Simulator sim(cfg, tiny_workload(), nullptr);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.samples.size(), 2u);
}

TEST(Simulator, AllPolicyKindsRun) {
  for (const auto kind : {policy::PolicyKind::Baseline,
                          policy::PolicyKind::Static,
                          policy::PolicyKind::Dynamic}) {
    Simulator sim(tiny_config(kind), tiny_workload(), nullptr);
    const SimulationResult r = sim.run();
    EXPECT_TRUE(r.valid) << to_string(kind);
    EXPECT_EQ(r.summary.completed, 5u) << to_string(kind);
  }
}

}  // namespace
}  // namespace dmsim
