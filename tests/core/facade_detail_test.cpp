// Facade-level consistency checks complementing simulator_test.cpp.
#include <gtest/gtest.h>

#include "core/dmsim.hpp"
#include "metrics/timeline.hpp"

namespace dmsim {
namespace {

constexpr MiB kGiB = 1024;

trace::Workload small_workload(std::size_t n) {
  trace::Workload jobs;
  for (std::uint32_t i = 1; i <= n; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    j.submit_time = i * 3.0;
    j.num_nodes = 1 + static_cast<int>(i % 2);
    j.requested_mem = 24 * kGiB;
    j.duration = 200.0 + 13.0 * i;
    j.walltime = j.duration * 1.5;
    j.usage = trace::UsageTrace(
        {{0.0, 24 * kGiB}, {0.5, static_cast<MiB>(4 + i) * kGiB}});
    jobs.push_back(std::move(j));
  }
  return jobs;
}

TEST(FacadeDetail, NoSamplesUnlessConfigured) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 8;
  cfg.system.pct_large_nodes = 0.5;
  Simulator sim(cfg, small_workload(6), nullptr);
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.samples.empty());
}

TEST(FacadeDetail, CostMatchesCostModelExactly) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 10;
  cfg.system.pct_large_nodes = 0.3;
  Simulator sim(cfg, small_workload(3), nullptr);
  const SimulationResult r = sim.run();
  const metrics::CostModel cost;
  EXPECT_DOUBLE_EQ(r.system_cost_usd,
                   cost.system_cost(10, cfg.system.total_memory()));
}

TEST(FacadeDetail, RecordsAlignWithSummary) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 8;
  cfg.system.pct_large_nodes = 0.5;
  cfg.policy = policy::PolicyKind::Dynamic;
  Simulator sim(cfg, small_workload(10), nullptr);
  const SimulationResult r = sim.run();
  std::size_t completed = 0;
  for (const auto& rec : r.records) {
    if (rec.outcome == sched::JobOutcome::Completed) ++completed;
  }
  EXPECT_EQ(completed, r.summary.completed);
  EXPECT_EQ(r.records.size(), r.summary.total_jobs);
}

TEST(FacadeDetail, TimelineReportsComposeWithFacadeOutput) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 8;
  cfg.system.pct_large_nodes = 0.5;
  cfg.policy = policy::PolicyKind::Dynamic;
  cfg.sched.sample_interval = 60.0;
  Simulator sim(cfg, small_workload(10), nullptr);
  const SimulationResult r = sim.run();
  ASSERT_FALSE(r.samples.empty());
  const auto util = metrics::utilization_report(r.samples, r.provisioned_memory,
                                                cfg.system.total_nodes);
  EXPECT_GT(util.avg_allocated_fraction, 0.0);
  EXPECT_LE(util.peak_allocated_fraction, 1.0);
  EXPECT_GE(util.avg_allocated_fraction, util.avg_used_fraction - 1e-9);
  const auto slowdowns = metrics::slowdown_report(r.records);
  EXPECT_EQ(slowdowns.jobs, r.summary.completed);
  EXPECT_GE(slowdowns.bounded.mean(), 1.0 - 1e-9);
}

TEST(FacadeDetail, WalltimeKilledJobsExcludedFromThroughput) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 4;
  cfg.system.pct_large_nodes = 0.5;
  cfg.sched.enforce_walltime = true;
  trace::Workload jobs = small_workload(4);
  jobs[0].walltime = jobs[0].duration / 2;  // will be killed
  Simulator sim(cfg, std::move(jobs), nullptr);
  const SimulationResult r = sim.run();
  EXPECT_EQ(r.totals.walltime_kills, 1u);
  EXPECT_EQ(r.summary.completed, 3u);
  // Killed jobs contribute no response-time samples.
  EXPECT_EQ(r.summary.response_times.size(), 3u);
}

}  // namespace
}  // namespace dmsim
