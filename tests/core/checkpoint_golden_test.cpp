// Golden restore-equivalence on a Fig. 5-style scenario: a 64-node system
// under the Dynamic policy with sampling, tracing and counters all wired.
// Pins the full determinism contract at three fixed cut fractions:
//   * the final JSON document is byte-identical to the uninterrupted run,
//   * the counters registry lands on identical values,
//   * the resumed NDJSON trace is exactly the uninterrupted trace's suffix.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "core/simulator.hpp"
#include "metrics/json_export.hpp"
#include "obs/counters.hpp"
#include "obs/trace_sink.hpp"
#include "snapshot/checkpoint.hpp"
#include "util/rng.hpp"

namespace dmsim {
namespace {

trace::Workload golden_workload(const slowdown::AppPool& apps) {
  util::Rng rng(20260806);
  trace::Workload jobs;
  Seconds submit = 0.0;
  for (std::uint32_t i = 1; i <= 80; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    submit += rng.uniform() * 45.0;
    j.submit_time = submit;
    j.num_nodes = 1 + static_cast<int>(rng() % 8);
    j.duration = 120.0 + rng.uniform() * 900.0;
    j.walltime = j.duration * 2.5;
    const MiB peak = gib(6) + static_cast<MiB>(rng() % gib(110));
    j.usage = trace::UsageTrace(std::vector<trace::UsagePoint>{
        {0.0, peak / 3}, {0.25, (peak * 2) / 3}, {0.6, peak}});
    j.requested_mem = rng.uniform() < 0.25 ? (peak * 9) / 10 : peak;
    j.app_profile = apps.match(j.num_nodes, j.duration);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

SimulationConfig golden_config() {
  SimulationConfig cfg;
  cfg.system.total_nodes = 64;
  cfg.system.pct_large_nodes = 0.25;
  cfg.policy = policy::PolicyKind::Dynamic;
  cfg.sched.backfill_mode = sched::BackfillMode::Easy;
  cfg.sched.sample_interval = 200.0;
  cfg.sched.update_interval = 150.0;
  cfg.sched.enforce_walltime = true;
  return cfg;
}

TEST(CheckpointGolden, ThreeCutPointsReproduceJsonTraceAndCounters) {
  const slowdown::AppPool apps =
      slowdown::AppPool::synthetic(util::Rng(11), 24);
  const trace::Workload jobs = golden_workload(apps);
  const SimulationConfig cfg = golden_config();

  // Uninterrupted reference with full observability.
  std::ostringstream ref_trace;
  obs::NdjsonSink ref_sink(ref_trace);
  obs::Counters ref_counters;
  Simulator ref(cfg, jobs, &apps, &ref_sink, &ref_counters);
  const SimulationResult ref_result = ref.run();
  ASSERT_TRUE(ref_result.valid);
  const std::string ref_json = metrics::to_json(ref_result);
  const std::string ref_ndjson = ref_trace.str();
  // The registry must have picked up the distribution telemetry: the wait
  // and grant histograms and the ledger/engine series all record on this
  // scenario, and their exports ride inside ref_json via write_telemetry.
  const obs::CountersSnapshot ref_snap = ref_counters.snapshot();
  ASSERT_FALSE(ref_snap.histograms.empty());
  ASSERT_FALSE(ref_snap.series.empty());
  const std::string ref_telemetry = metrics::telemetry_to_json(ref_snap);
  const Seconds makespan = ref_result.summary.last_end;
  ASSERT_GT(makespan, 0.0);
  ASSERT_FALSE(ref_ndjson.empty());

  for (const double fraction : {0.25, 0.5, 0.8}) {
    const Seconds cut = fraction * makespan;
    const std::string path =
        (std::filesystem::path(::testing::TempDir()) /
         ("dmsim_golden_" + std::to_string(fraction) + ".snap"))
            .string();

    // Save leg: run with one cut; tracing/counters stay undisturbed.
    {
      std::ostringstream trace_out;
      obs::NdjsonSink sink(trace_out);
      obs::Counters counters;
      snapshot::Plan plan;
      plan.path = path;
      plan.cuts = {cut};
      Simulator saver(cfg, jobs, &apps, &sink, &counters);
      const SimulationResult saved = saver.run(plan);
      ASSERT_EQ(saver.checkpoint_stats().saves, 1U) << "cut=" << cut;
      EXPECT_EQ(metrics::to_json(saved), ref_json)
          << "cut=" << cut << ": saving perturbed the run";
      EXPECT_EQ(trace_out.str(), ref_ndjson)
          << "cut=" << cut << ": saving perturbed the trace";
    }

    // Restore leg: finish from the snapshot.
    {
      std::ostringstream trace_out;
      obs::NdjsonSink sink(trace_out);
      obs::Counters counters;
      auto resumed =
          Simulator::restore_from(path, cfg, jobs, &apps, &sink, &counters);
      EXPECT_EQ(resumed->checkpoint_stats().restores, 1U);
      const SimulationResult result = resumed->run();

      EXPECT_EQ(metrics::to_json(result), ref_json)
          << "cut=" << cut << ": restored run diverged";

      // Histograms and series restored mid-flight must finish byte-equal to
      // the uninterrupted registry's export.
      EXPECT_EQ(metrics::telemetry_to_json(counters.snapshot()), ref_telemetry)
          << "cut=" << cut << ": telemetry diverged after restore";

      // The resumed trace must be the uninterrupted trace's exact suffix
      // from the cut point onward.
      const std::string tail = trace_out.str();
      ASSERT_FALSE(tail.empty()) << "cut=" << cut;
      ASSERT_LE(tail.size(), ref_ndjson.size()) << "cut=" << cut;
      EXPECT_EQ(ref_ndjson.compare(ref_ndjson.size() - tail.size(),
                                   tail.size(), tail),
                0)
          << "cut=" << cut << ": trace is not a suffix of the reference";
    }

    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace dmsim
