// Checkpoint-equivalence fuzz: cut a run at randomized points, restore, and
// require the resumed run to reproduce the uninterrupted run bit for bit —
// the proof obligation of the snapshot subsystem, across every policy and
// scheduler flavour.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "metrics/json_export.hpp"
#include "monitor/monitor.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace dmsim {
namespace {

trace::Workload fuzz_workload(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  trace::Workload jobs;
  Seconds submit = 0.0;
  for (std::uint32_t i = 1; i <= n; ++i) {
    trace::JobSpec j;
    j.id = JobId{i};
    submit += rng.uniform() * 60.0;
    j.submit_time = submit;
    j.num_nodes = 1 + static_cast<int>(rng() % 4);
    j.duration = 60.0 + rng.uniform() * 500.0;
    // Mostly generous walltimes, occasionally tight enough that contention
    // slowdown pushes the job over its limit (walltime-kill path).
    j.walltime = j.duration * (rng.uniform() < 0.2 ? 1.05 : 2.0);
    const MiB peak = gib(8) + static_cast<MiB>(rng() % gib(96));
    j.usage = trace::UsageTrace(std::vector<trace::UsagePoint>{
        {0.0, peak / 4}, {0.35, peak / 2}, {0.7, peak}});
    // Under-requests trigger the OOM / restart / guaranteed-allocation
    // machinery; exact requests keep Baseline feasible and busy.
    j.requested_mem = rng.uniform() < 0.3 ? (peak * 4) / 5 : peak;
    if (i % 7 == 0 && i > 1) {
      j.preceding_job = JobId{i - 1};  // dependency-release path
      j.think_time = rng.uniform() * 30.0;
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

struct FuzzCase {
  const char* name;
  policy::PolicyKind policy;
  sched::SchedulerConfig sched;
  /// Run on a two-tier CXL-style topology: tier columns, tier-tagged borrow
  /// edges and the migration pass must all survive the cut/restore round
  /// trip bit for bit.
  bool tiered = false;
};

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  {
    FuzzCase c{"baseline_fcfs", policy::PolicyKind::Baseline, {}};
    c.sched.enable_backfill = false;
    cases.push_back(c);
  }
  {
    FuzzCase c{"static_backfill", policy::PolicyKind::Static, {}};
    c.sched.backfill_mode = sched::BackfillMode::Easy;
    cases.push_back(c);
  }
  {
    FuzzCase c{"dynamic_backfill", policy::PolicyKind::Dynamic, {}};
    c.sched.backfill_mode = sched::BackfillMode::Easy;
    c.sched.enforce_walltime = true;
    c.sched.sample_interval = 150.0;
    c.sched.update_interval = 120.0;
    cases.push_back(c);
  }
  {
    FuzzCase c{"dynamic_global_batch", policy::PolicyKind::Dynamic, {}};
    c.sched.enable_backfill = false;
    c.sched.update_mode = sched::UpdateMode::GlobalBatch;
    c.sched.update_interval = 90.0;
    c.sched.oom_handling = sched::OomHandling::CheckpointRestart;
    cases.push_back(c);
  }
  {
    FuzzCase c{"dynamic_tiered", policy::PolicyKind::Dynamic, {}};
    c.sched.backfill_mode = sched::BackfillMode::Easy;
    c.sched.update_interval = 120.0;
    c.tiered = true;
    cases.push_back(c);
  }
  {
    // Live AdaptiveMonitor state — per-job region lists, adapted periods,
    // and the noise RNG stream — must survive the cut/restore round trip
    // bit for bit, including mid-run runtime-OOM handling.
    FuzzCase c{"dynamic_adaptive_monitor", policy::PolicyKind::Dynamic, {}};
    c.sched.backfill_mode = sched::BackfillMode::Easy;
    c.sched.update_interval = 120.0;
    c.sched.monitor.kind = monitor::MonitorKind::Adaptive;
    c.sched.monitor.min_interval = 45.0;
    c.sched.monitor.max_interval = 360.0;
    c.sched.monitor.error_bound = 0.08;
    c.sched.monitor.overhead_us_per_region = 25.0;
    cases.push_back(c);
  }
  {
    // Sampled monitor with staleness: the estimate depends on counters that
    // advance once per update, so any drift after restore shows up fast.
    FuzzCase c{"dynamic_sampled_monitor", policy::PolicyKind::Dynamic, {}};
    c.sched.enable_backfill = false;
    c.sched.update_mode = sched::UpdateMode::GlobalBatch;
    c.sched.update_interval = 90.0;
    c.sched.monitor.kind = monitor::MonitorKind::Sampled;
    c.sched.monitor.relative_error = 0.15;
    c.sched.monitor.staleness = 60.0;
    c.sched.oom_handling = sched::OomHandling::CheckpointRestart;
    cases.push_back(c);
  }
  return cases;
}

SimulationConfig make_config(const FuzzCase& c) {
  SimulationConfig cfg;
  cfg.system.total_nodes = 8;
  cfg.system.pct_large_nodes = 0.5;
  cfg.policy = c.policy;
  cfg.sched = c.sched;
  if (c.tiered) {
    cfg.system.tiers = {
        cluster::MemoryTier{"local", 150.0, 90.0, cluster::TierScope::Local},
        cluster::MemoryTier{"rack", 450.0, 64.0, cluster::TierScope::Rack}};
    cfg.system.tier_fractions = {0.5, 0.5};
  }
  return cfg;
}

std::string snapshot_path(const std::string& tag) {
  return (std::filesystem::path(::testing::TempDir()) /
          ("dmsim_fuzz_" + tag + ".snap"))
      .string();
}

TEST(CheckpointFuzz, RandomCutsReproduceBitIdenticalResults) {
  const slowdown::AppPool apps = slowdown::AppPool::synthetic(util::Rng(7), 16);
  trace::Workload jobs = fuzz_workload(/*seed=*/1234, /*n=*/36);
  for (auto& j : jobs) j.app_profile = apps.match(j.num_nodes, j.duration);

  util::Rng cut_rng(99);
  for (const FuzzCase& c : fuzz_cases()) {
    const SimulationConfig cfg = make_config(c);

    // Reference: uninterrupted run.
    Simulator ref(cfg, jobs, &apps);
    const SimulationResult ref_result = ref.run();
    ASSERT_TRUE(ref_result.valid) << c.name;
    const std::string ref_json = metrics::to_json(ref_result);
    const Seconds makespan = ref_result.summary.last_end;
    ASSERT_GT(makespan, 0.0) << c.name;

    for (int trial = 0; trial < 2; ++trial) {
      const Seconds cut = (0.05 + 0.9 * cut_rng.uniform()) * makespan;
      const std::string path =
          snapshot_path(std::string(c.name) + "_" + std::to_string(trial));

      // Run with a single explicit cut; results must already match (saves
      // are side-effect-free).
      snapshot::Plan plan;
      plan.path = path;
      plan.cuts = {cut};
      Simulator saver(cfg, jobs, &apps);
      const SimulationResult saved_result = saver.run(plan);
      EXPECT_EQ(metrics::to_json(saved_result), ref_json)
          << c.name << " cut=" << cut << ": checkpointing perturbed the run";
      ASSERT_EQ(saver.checkpoint_stats().saves, 1U) << c.name << " cut=" << cut;

      // Restore and finish; the final document must match byte for byte.
      auto resumed = Simulator::restore_from(path, cfg, jobs, &apps);
      const SimulationResult res_result = resumed->run();
      EXPECT_EQ(metrics::to_json(res_result), ref_json)
          << c.name << " cut=" << cut << ": restored run diverged";
      // Full invariant suite plus the column/view parity sweep over the
      // restored ledger (bulk-rebuilt indexes, columnar or legacy layout).
      resumed->cluster().set_debug_parity(true);
      resumed->cluster().check_invariants();
      EXPECT_EQ(res_result.engine_events, ref_result.engine_events);

      std::remove(path.c_str());
    }
  }
}

TEST(CheckpointFuzz, FingerprintRejectsMismatchedConfig) {
  const slowdown::AppPool apps = slowdown::AppPool::synthetic(util::Rng(7), 16);
  trace::Workload jobs = fuzz_workload(42, 12);
  for (auto& j : jobs) j.app_profile = apps.match(j.num_nodes, j.duration);

  SimulationConfig cfg;
  cfg.system.total_nodes = 8;
  cfg.policy = policy::PolicyKind::Dynamic;

  const std::string path = snapshot_path("fingerprint");
  snapshot::Plan plan;
  plan.path = path;
  plan.every = 200.0;
  Simulator saver(cfg, jobs, &apps);
  const SimulationResult r = saver.run(plan);
  ASSERT_TRUE(r.valid);
  ASSERT_GT(saver.checkpoint_stats().saves, 0U);

  // Different scheduler config → fingerprint mismatch, loud refusal.
  SimulationConfig other = cfg;
  other.sched.sched_interval = 31.0;
  EXPECT_THROW(
      { auto s = Simulator::restore_from(path, other, jobs, &apps); },
      snapshot::SnapshotError);

  // Perturbed workload → same refusal.
  trace::Workload tweaked = jobs;
  tweaked[0].duration += 1.0;
  EXPECT_THROW(
      { auto s = Simulator::restore_from(path, cfg, tweaked, &apps); },
      snapshot::SnapshotError);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace dmsim
