# Golden-summary check for dmsim_trace: run the analyzer over the fixture
# trace in both output modes and compare byte-for-byte against the checked-in
# expected reports. Invoked by the cli.trace_golden_summary CTest.
#
# Inputs: TRACE_TOOL, FIXTURE, EXPECTED_TEXT, EXPECTED_JSON, WORK_DIR.

function(run_and_compare mode out_name expected)
  set(args "${FIXTURE}" --top 3)
  if(mode STREQUAL "json")
    list(APPEND args --json)
  endif()
  execute_process(
    COMMAND ${TRACE_TOOL} ${args}
    OUTPUT_VARIABLE actual
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dmsim_trace (${mode}) exited with ${rc}")
  endif()
  set(actual_file "${WORK_DIR}/${out_name}")
  file(WRITE "${actual_file}" "${actual}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${actual_file}" "${expected}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    file(READ "${expected}" want)
    message(FATAL_ERROR
      "dmsim_trace ${mode} report drifted from ${expected}\n"
      "--- actual ---\n${actual}\n--- expected ---\n${want}")
  endif()
endfunction()

run_and_compare(text trace_golden_actual.txt "${EXPECTED_TEXT}")
run_and_compare(json trace_golden_actual.json "${EXPECTED_JSON}")
