// dmsim_run — command-line simulation driver (the Fig. 1b "sim_mgr" role).
//
// Runs one simulation from a slurm.conf-style configuration plus either a
// synthetic workload (workload keys in the config) or an SWF job trace with
// optional per-job usage traces. Prints a summary and can export per-job
// records, system samples, and generated traces.
//
//   dmsim_run --config cluster.conf
//   dmsim_run --config cluster.conf --swf jobs.swf --usage jobs.usage
//   dmsim_run --config cluster.conf --export-swf out.swf --export-usage out.usage
//   dmsim_run --config cluster.conf --jobs-csv records.csv --samples-csv util.csv
//   dmsim_run --config cluster.conf --trace run.ndjson --counters
//   dmsim_run --config cluster.conf --trace run.json --trace-format chrome
//   dmsim_run --config cluster.conf --checkpoint run.snap --checkpoint-every 3600
//   dmsim_run --config cluster.conf --restore run.snap --json resumed.json
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dmsim.hpp"
#include "harness/config_file.hpp"
#include "metrics/json_export.hpp"
#include "slowdown/profile_io.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/image.hpp"
#include "trace/swf_validate.hpp"
#include "trace/usage_io.hpp"
#include "util/table.hpp"

// Build metadata injected by tools/CMakeLists.txt; the fallbacks keep the
// file compilable standalone.
#ifndef DMSIM_VERSION_STRING
#define DMSIM_VERSION_STRING "unknown"
#endif
#ifndef DMSIM_GIT_DESCRIBE
#define DMSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef DMSIM_BUILD_TYPE
#define DMSIM_BUILD_TYPE "unknown"
#endif

namespace {

using namespace dmsim;

struct Options {
  std::string config_path;
  std::optional<std::string> swf_path;
  std::optional<std::string> usage_path;
  std::optional<std::string> export_swf;
  std::optional<std::string> export_usage;
  std::optional<std::string> jobs_csv;
  std::optional<std::string> samples_csv;
  std::optional<std::string> json_out;
  std::optional<std::string> profiles_path;
  std::optional<std::string> export_profiles;
  std::optional<std::string> trace_path;
  obs::TraceFormat trace_format = obs::TraceFormat::Ndjson;
  std::size_t trace_flush_every = 0;
  std::optional<std::string> checkpoint_path;
  Seconds checkpoint_every = 0.0;
  std::vector<Seconds> checkpoint_at;
  std::optional<std::string> restore_path;
  std::optional<std::string> snapshot_info;
  bool counters = false;
  bool help = false;
  bool version = false;
};

void print_version(std::ostream& os) {
  os << "dmsim_run " << DMSIM_VERSION_STRING << " (" << DMSIM_GIT_DESCRIBE
     << ", " << DMSIM_BUILD_TYPE << ")\n"
     << "compiler: " << __VERSION__ << '\n'
     << "snapshot format: v" << snapshot::kFormatVersion << " (reads v"
     << snapshot::kMinFormatVersion << "+)\n";
}

void print_usage(std::ostream& os) {
  os << "usage: dmsim_run --config FILE [options]\n"
        "  --config FILE        slurm.conf-style configuration (required)\n"
        "  --swf FILE           load jobs from an SWF trace instead of the\n"
        "                       config's synthetic workload keys\n"
        "  --usage FILE         per-job usage traces to attach to SWF jobs\n"
        "  --export-swf FILE    write the simulated workload as SWF\n"
        "  --export-usage FILE  write the per-job usage traces\n"
        "  --jobs-csv FILE      write per-job records (CSV)\n"
        "  --samples-csv FILE   write system utilization samples (CSV)\n"
        "  --json FILE          write the full result document (JSON)\n"
        "  --profiles FILE      application profiles for the slowdown model\n"
        "  --export-profiles F  write the app pool used by this run\n"
        "  --trace FILE         write a structured event trace of the run\n"
        "  --trace-format FMT   trace format: ndjson (default) or chrome\n"
        "                       (chrome loads into Perfetto / chrome://tracing)\n"
        "  --trace-flush-every N flush the NDJSON trace stream every N events\n"
        "                       (0, the default, flushes only on close)\n"
        "  --counters           print the counters registry and a self-profile\n"
        "                       (phase timers, events/sec) after the summary\n"
        "  --checkpoint FILE    save simulation snapshots to FILE while running\n"
        "  --checkpoint-every N save a snapshot every N simulated seconds\n"
        "  --checkpoint-at T    save a snapshot at simulated time T (repeatable)\n"
        "  --restore FILE       resume from a snapshot saved by --checkpoint;\n"
        "                       config and workload must match the saving run\n"
        "  --snapshot-info FILE print a snapshot's header metadata (format\n"
        "                       version, fingerprint, sections) and exit —\n"
        "                       validates checksums, restores nothing\n"
        "  --version            print build/version information\n"
        "  --help               this text\n";
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options opt;
  const auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw ConfigError(std::string(flag) + " needs a value");
    return argv[++i];
  };
  const auto need_number = [&](int& i, const char* flag) -> double {
    const std::string value = need_value(i, flag);
    std::size_t used = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(value, &used);
    } catch (const std::exception&) {
      throw ConfigError(std::string(flag) + ": not a number: '" + value + "'");
    }
    if (used != value.size()) {
      throw ConfigError(std::string(flag) + ": not a number: '" + value + "'");
    }
    return parsed;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config") {
      opt.config_path = need_value(i, "--config");
    } else if (arg == "--swf") {
      opt.swf_path = need_value(i, "--swf");
    } else if (arg == "--usage") {
      opt.usage_path = need_value(i, "--usage");
    } else if (arg == "--export-swf") {
      opt.export_swf = need_value(i, "--export-swf");
    } else if (arg == "--export-usage") {
      opt.export_usage = need_value(i, "--export-usage");
    } else if (arg == "--jobs-csv") {
      opt.jobs_csv = need_value(i, "--jobs-csv");
    } else if (arg == "--samples-csv") {
      opt.samples_csv = need_value(i, "--samples-csv");
    } else if (arg == "--json") {
      opt.json_out = need_value(i, "--json");
    } else if (arg == "--profiles") {
      opt.profiles_path = need_value(i, "--profiles");
    } else if (arg == "--export-profiles") {
      opt.export_profiles = need_value(i, "--export-profiles");
    } else if (arg == "--trace") {
      opt.trace_path = need_value(i, "--trace");
    } else if (arg == "--trace-format") {
      opt.trace_format = obs::parse_trace_format(need_value(i, "--trace-format"));
    } else if (arg == "--trace-flush-every") {
      const double n = need_number(i, "--trace-flush-every");
      if (n < 0.0 || n != std::floor(n)) {
        throw ConfigError("--trace-flush-every must be a non-negative integer");
      }
      opt.trace_flush_every = static_cast<std::size_t>(n);
    } else if (arg == "--checkpoint") {
      opt.checkpoint_path = need_value(i, "--checkpoint");
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = need_number(i, "--checkpoint-every");
      if (opt.checkpoint_every <= 0.0) {
        throw ConfigError("--checkpoint-every must be positive");
      }
    } else if (arg == "--checkpoint-at") {
      const double at = need_number(i, "--checkpoint-at");
      if (at <= 0.0) throw ConfigError("--checkpoint-at must be positive");
      opt.checkpoint_at.push_back(at);
    } else if (arg == "--restore") {
      opt.restore_path = need_value(i, "--restore");
    } else if (arg == "--snapshot-info") {
      opt.snapshot_info = need_value(i, "--snapshot-info");
    } else if (arg == "--counters") {
      opt.counters = true;
    } else if (arg == "--version") {
      opt.version = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      throw ConfigError("unknown argument: " + arg);
    }
  }
  if ((opt.checkpoint_every > 0.0 || !opt.checkpoint_at.empty()) &&
      !opt.checkpoint_path) {
    throw ConfigError("--checkpoint-every/--checkpoint-at need --checkpoint");
  }
  if (opt.checkpoint_path && opt.checkpoint_every <= 0.0 &&
      opt.checkpoint_at.empty()) {
    throw ConfigError(
        "--checkpoint needs --checkpoint-every and/or --checkpoint-at");
  }
  if (!opt.help && !opt.version && !opt.snapshot_info &&
      opt.config_path.empty()) {
    throw ConfigError("--config is required");
  }
  return opt;
}

/// --snapshot-info: parse + validate the envelope (magic, version,
/// checksums, section table) without constructing any simulation state.
int print_snapshot_info(const std::string& path, std::ostream& os) {
  const std::shared_ptr<const snapshot::Image> image =
      snapshot::Image::open(path);
  const auto hex = [](std::uint64_t v) {
    char buf[17] = {};
    static constexpr char kHex[] = "0123456789abcdef";
    for (int i = 15; i >= 0; --i) {
      buf[i] = kHex[v & 0xf];
      v >>= 4;
    }
    return std::string(buf, 16);
  };
  util::TextTable table("snapshot " + path);
  table.set_header({"field", "value"});
  table.add_row({"format version", "v" + std::to_string(image->version())});
  table.add_row({"config fingerprint", hex(image->fingerprint())});
  table.add_row({"payload checksum", hex(image->payload_checksum())});
  table.add_row({"total bytes", std::to_string(image->size_bytes())});
  table.add_row({"payload bytes", std::to_string(image->payload().size())});
  table.add_row({"section table",
                 image->has_section_table() ? "yes" : "no (pre-TOC writer)"});
  table.print(os);
  if (image->has_section_table()) {
    util::TextTable sections("sections");
    sections.set_header({"name", "offset", "bytes", "checksum"});
    for (const auto& s : image->sections()) {
      sections.add_row({s.name, std::to_string(s.offset),
                        std::to_string(s.size), hex(s.checksum)});
    }
    sections.print(os);
  }
  return 0;
}

[[nodiscard]] const char* outcome_name(sched::JobOutcome outcome) {
  switch (outcome) {
    case sched::JobOutcome::Completed:
      return "completed";
    case sched::JobOutcome::AbandonedOom:
      return "abandoned_oom";
    case sched::JobOutcome::KilledWalltime:
      return "killed_walltime";
    case sched::JobOutcome::NeverStarted:
      return "never_started";
  }
  return "unknown";
}

void write_jobs_csv(const std::string& path,
                    const std::vector<sched::JobRecord>& records) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open " + path);
  out << "job,submit,first_start,end,nodes,requested_mib,peak_mib,"
         "oom_failures,guaranteed,infeasible,outcome,response,wait\n";
  for (const auto& r : records) {
    out << r.id.get() << ',' << r.submit_time << ',' << r.first_start << ','
        << r.end_time << ',' << r.num_nodes << ',' << r.requested_mem << ','
        << r.peak_usage << ',' << r.oom_failures << ',' << r.ran_guaranteed
        << ',' << r.infeasible << ',' << outcome_name(r.outcome) << ','
        << (r.outcome == sched::JobOutcome::Completed ? r.response_time() : -1.0)
        << ','
        << (r.first_start != kNoTime ? r.wait_time() : -1.0) << '\n';
  }
  out.flush();
  if (!out.good()) throw ConfigError("failed writing " + path);
}

void write_samples_csv(const std::string& path,
                       const std::vector<sched::SystemSample>& samples) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open " + path);
  out << "time,allocated_mib,used_mib,busy_nodes,pending_jobs\n";
  for (const auto& s : samples) {
    out << s.time << ',' << s.allocated << ',' << s.used << ',' << s.busy_nodes
        << ',' << s.pending_jobs << '\n';
  }
  out.flush();
  if (!out.good()) throw ConfigError("failed writing " + path);
}

int run(const Options& opt) {
  obs::Profiler prof;
  prof.begin_phase("config");
  harness::FileConfig cfg = harness::parse_config_file(opt.config_path);

  prof.begin_phase("workload");
  trace::Workload jobs;
  slowdown::AppPool apps;
  if (opt.swf_path) {
    const trace::SwfTrace swf = trace::read_swf_file(*opt.swf_path);
    const auto issues = trace::validate_swf(swf);
    constexpr std::size_t kMaxPrintedIssues = 20;
    const std::size_t printed = std::min(issues.size(), kMaxPrintedIssues);
    for (std::size_t i = 0; i < printed; ++i) {
      const auto& issue = issues[i];
      std::cerr << "swf warning (record " << issue.record_index
                << "): " << trace::to_string(issue.kind) << " — "
                << issue.message << '\n';
    }
    if (issues.size() > printed) {
      std::cerr << "… and " << issues.size() - printed << " more issues\n";
    }
    if (!trace::swf_simulatable(issues)) {
      throw ConfigError("SWF trace has blocking issues; fix them first");
    }
    jobs = trace::from_swf(swf, cfg.simulation.system.cores_per_node);
    if (opt.usage_path) {
      const auto traces = trace::read_usage_traces_file(*opt.usage_path);
      const std::size_t attached = trace::attach_usage_traces(jobs, traces);
      std::cout << "attached usage traces to " << attached << "/" << jobs.size()
                << " jobs\n";
    }
    // SWF carries no app profiles; match jobs against the supplied pool, or
    // a synthetic one for a contention-realistic default.
    apps = opt.profiles_path
               ? slowdown::read_app_pool_file(*opt.profiles_path)
               : slowdown::AppPool::synthetic(util::Rng(cfg.workload.seed), 64);
    for (auto& j : jobs) {
      j.app_profile = apps.match(j.num_nodes, j.duration);
    }
  } else if (cfg.has_workload) {
    auto generated = workload::generate_synthetic(cfg.workload);
    jobs = std::move(generated.jobs);
    apps = opt.profiles_path
               ? slowdown::read_app_pool_file(*opt.profiles_path)
               : std::move(generated.apps);
  } else {
    throw ConfigError(
        "no workload: pass --swf or add workload keys (Jobs=...) to the config");
  }

  prof.begin_phase("exports");
  if (opt.export_swf) {
    trace::write_swf_file(*opt.export_swf,
                          trace::to_swf(jobs, cfg.simulation.system.cores_per_node));
    std::cout << "wrote " << jobs.size() << " jobs to " << *opt.export_swf << '\n';
  }
  if (opt.export_usage) {
    trace::write_usage_traces_file(*opt.export_usage,
                                   trace::collect_usage_traces(jobs));
    std::cout << "wrote usage traces to " << *opt.export_usage << '\n';
  }
  if (opt.export_profiles) {
    slowdown::write_app_pool_file(*opt.export_profiles, apps);
    std::cout << "wrote " << apps.size() << " app profiles to "
              << *opt.export_profiles << '\n';
  }

  if (cfg.simulation.sched.sample_interval <= 0.0 && opt.samples_csv) {
    cfg.simulation.sched.sample_interval = 300.0;  // sensible default
  }

  std::unique_ptr<obs::TraceSink> sink;
  if (opt.trace_path) {
    sink = obs::make_file_sink(opt.trace_format, *opt.trace_path,
                               opt.trace_flush_every);
  }
  obs::Counters counters;

  prof.begin_phase("simulate");
  snapshot::Plan plan;
  if (opt.checkpoint_path) {
    plan.path = *opt.checkpoint_path;
    plan.every = opt.checkpoint_every;
    plan.cuts = opt.checkpoint_at;
  }
  std::unique_ptr<Simulator> sim;
  if (opt.restore_path) {
    sim = Simulator::restore_from(*opt.restore_path, cfg.simulation, jobs,
                                  &apps, sink.get(),
                                  opt.counters ? &counters : nullptr);
    std::cout << "restored snapshot " << *opt.restore_path << '\n';
  } else {
    sim = std::make_unique<Simulator>(cfg.simulation, jobs, &apps, sink.get(),
                                      opt.counters ? &counters : nullptr);
  }
  const SimulationResult result = plan.active() ? sim->run(plan) : sim->run();
  if (opt.checkpoint_path && sim->checkpoint_stats().saves > 0) {
    std::cout << "wrote " << sim->checkpoint_stats().saves
              << " snapshot(s) to " << *opt.checkpoint_path << '\n';
  }
  prof.begin_phase("write-results");

  if (sink) {
    sink->close();
    std::cout << "wrote event trace to " << *opt.trace_path << '\n';
  }

  util::TextTable table("dmsim_run summary");
  table.set_header({"metric", "value"});
  table.add_row({"policy", std::string(policy::to_string(cfg.simulation.policy))});
  table.add_row({"nodes", std::to_string(cfg.simulation.system.total_nodes)});
  table.add_row({"provisioned memory (GiB)",
                 util::fmt(to_gib(result.provisioned_memory), 0)});
  table.add_row({"system cost ($)", util::fmt(result.system_cost_usd, 0)});
  table.add_row({"jobs", std::to_string(jobs.size())});
  table.add_row({"valid", result.valid ? "yes" : "no (infeasible jobs)"});
  if (result.valid) {
    table.add_row({"completed", std::to_string(result.summary.completed)});
    table.add_row({"throughput (jobs/s)",
                   util::fmt_sci(result.summary.throughput, 4)});
    table.add_row({"throughput per dollar",
                   util::fmt_sci(result.summary.throughput /
                                     std::max(result.system_cost_usd, 1.0),
                                 4)});
    if (!result.summary.response_times.empty()) {
      const util::Ecdf ecdf(result.summary.response_times);
      table.add_row({"median response (s)", util::fmt(ecdf.quantile(0.5), 0)});
      table.add_row({"p90 response (s)", util::fmt(ecdf.quantile(0.9), 0)});
    }
    table.add_row({"mean wait (s)",
                   util::fmt(result.summary.wait_time.mean(), 0)});
    table.add_row({"oom events", std::to_string(result.totals.oom_events)});
    table.add_row({"oom job fraction",
                   util::fmt_pct(result.summary.oom_job_fraction(), 2)});
    table.add_row({"avg busy nodes", util::fmt(result.avg_busy_nodes, 1)});
    table.add_row(
        {"avg allocated (GiB)",
         util::fmt(to_gib(static_cast<MiB>(result.avg_allocated_mib)), 0)});
  }
  table.print(std::cout);

  if (opt.jobs_csv) {
    write_jobs_csv(*opt.jobs_csv, result.records);
    std::cout << "wrote per-job records to " << *opt.jobs_csv << '\n';
  }
  if (opt.samples_csv) {
    write_samples_csv(*opt.samples_csv, result.samples);
    std::cout << "wrote system samples to " << *opt.samples_csv << '\n';
  }
  if (opt.json_out) {
    std::ofstream out(*opt.json_out);
    if (!out) throw ConfigError("cannot open " + *opt.json_out);
    out << metrics::to_json(result) << '\n';
    out.flush();
    if (!out.good()) throw ConfigError("failed writing " + *opt.json_out);
    std::cout << "wrote JSON result to " << *opt.json_out << '\n';
  }
  prof.end_phase();

  if (opt.counters) {
    const obs::CountersSnapshot snap = counters.snapshot();
    util::TextTable ctable("counters");
    ctable.set_header({"counter", "value"});
    for (const auto& c : snap.counters) {
      ctable.add_row({c.name, std::to_string(c.value)});
    }
    for (const auto& g : snap.gauges) {
      ctable.add_row({g.name + " (high water)", std::to_string(g.high_water)});
    }
    // Checkpoint activity lives in its own registry: the sim registry is
    // embedded in the JSON document and must stay byte-identical between an
    // uninterrupted run and a restored one.
    const snapshot::Stats& ck = sim->checkpoint_stats();
    if (ck.saves > 0 || ck.restores > 0) {
      obs::Counters ck_registry;
      ck.publish(ck_registry);
      for (const auto& c : ck_registry.snapshot().counters) {
        ctable.add_row({c.name, std::to_string(c.value)});
      }
    }
    ctable.print(std::cout);

    util::TextTable ptable("self-profile");
    ptable.set_header({"phase", "wall (s)"});
    for (const auto& phase : prof.phases()) {
      ptable.add_row({phase.name, util::fmt(phase.wall_seconds, 3)});
    }
    ptable.add_row({"total", util::fmt(prof.total_seconds(), 3)});
    ptable.print(std::cout);

    const obs::ThroughputReport throughput{
        result.engine_events, result.summary.makespan(),
        prof.phase_seconds("simulate")};
    obs::print_throughput(std::cout, throughput);
  }
  return result.valid ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    if (opt.help) {
      print_usage(std::cout);
      return 0;
    }
    if (opt.version) {
      print_version(std::cout);
      return 0;
    }
    if (opt.snapshot_info) {
      return print_snapshot_info(*opt.snapshot_info, std::cout);
    }
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "dmsim_run: " << e.what() << '\n';
    print_usage(std::cerr);
    return 1;
  }
}
