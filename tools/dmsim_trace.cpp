// dmsim_trace — offline analyzer for NDJSON event traces.
//
// Reads a trace produced by `dmsim_run --trace run.ndjson` and prints a
// deterministic report: event counts, wait/run latency percentiles built
// from the causal queue/run spans, queue-depth percentiles from sched_pass
// samples, and a per-job critical-path attribution (where did each job's
// response time go — queued, running, or lost to OOM restarts).
//
//   dmsim_trace run.ndjson
//   dmsim_trace run.ndjson --json          # machine-readable report
//   dmsim_trace run.ndjson --top 5        # longest-response jobs listed
//
// The report is byte-deterministic for a given trace: inputs are sorted,
// percentiles are exact (nearest-rank on the sorted sample vector), and all
// numbers are printed through fixed explicit formats.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Flat NDJSON line parsing
// ---------------------------------------------------------------------------

/// One parsed trace event. Field names mirror the NdjsonSink schema; any
/// extra integer fields land in `fields` (insertion order preserved).
struct TraceEvent {
  double t = 0.0;
  std::string ev;
  std::int64_t job = -1;
  std::int64_t node = -1;
  std::int64_t span = -1;
  std::int64_t parent = -1;
  std::string detail;
  std::vector<std::pair<std::string, std::int64_t>> fields;

  [[nodiscard]] std::optional<std::int64_t> field(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
};

struct ParseError {
  std::size_t line_number;
  std::string message;
};

/// Parse one `{"key":value,...}` line of the flat NDJSON schema the sinks
/// emit: string values have no escapes, everything else is a number. Returns
/// false (with `err` filled) on malformed input.
bool parse_line(std::string_view line, std::size_t line_number, TraceEvent& out,
                ParseError& err) {
  const auto fail = [&](std::string message) {
    err = ParseError{line_number, std::move(message)};
    return false;
  };
  std::size_t pos = 0;
  const auto skip = [&](char c) {
    if (pos >= line.size() || line[pos] != c) return false;
    ++pos;
    return true;
  };
  if (!skip('{')) return fail("expected '{'");
  bool first = true;
  while (pos < line.size() && line[pos] != '}') {
    if (!first && !skip(',')) return fail("expected ','");
    first = false;
    if (!skip('"')) return fail("expected key quote");
    const std::size_t key_end = line.find('"', pos);
    if (key_end == std::string_view::npos) return fail("unterminated key");
    const std::string key(line.substr(pos, key_end - pos));
    pos = key_end + 1;
    if (!skip(':')) return fail("expected ':'");
    if (pos >= line.size()) return fail("missing value");
    if (line[pos] == '"') {
      ++pos;
      const std::size_t val_end = line.find('"', pos);
      if (val_end == std::string_view::npos) return fail("unterminated string");
      const std::string value(line.substr(pos, val_end - pos));
      pos = val_end + 1;
      if (key == "ev") {
        out.ev = value;
      } else if (key == "detail") {
        out.detail = value;
      }
      // Unknown string keys are ignored: the analyzer must keep working
      // when newer sinks add fields.
    } else {
      char* end = nullptr;
      const std::string buf(line.substr(pos));
      const double value = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str()) return fail("bad number for key '" + key + "'");
      pos += static_cast<std::size_t>(end - buf.c_str());
      if (key == "t") {
        out.t = value;
      } else if (key == "job") {
        out.job = static_cast<std::int64_t>(value);
      } else if (key == "node") {
        out.node = static_cast<std::int64_t>(value);
      } else if (key == "span") {
        out.span = static_cast<std::int64_t>(value);
      } else if (key == "parent") {
        out.parent = static_cast<std::int64_t>(value);
      } else if (key != "when") {
        out.fields.emplace_back(key, static_cast<std::int64_t>(value));
      }
    }
  }
  if (!skip('}')) return fail("expected '}'");
  return true;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Exact nearest-rank percentile over a sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const auto idx = static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LatencyStats {
  std::vector<double> samples;

  void add(double v) { samples.push_back(v); }
  void seal() { std::sort(samples.begin(), samples.end()); }
  [[nodiscard]] std::size_t count() const { return samples.size(); }
  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (double v : samples) s += v;
    return s;
  }
  [[nodiscard]] double mean() const {
    return samples.empty() ? 0.0 : sum() / static_cast<double>(samples.size());
  }
  [[nodiscard]] double p(double q) const { return percentile(samples, q); }
  [[nodiscard]] double max() const {
    return samples.empty() ? 0.0 : samples.back();
  }
};

/// Per-job attribution accumulated from the causal spans.
struct JobStats {
  double submit_time = -1.0;   ///< first job_submit
  double end_time = -1.0;      ///< last terminal event
  double queued_seconds = 0.0; ///< sum over all queue spans
  double run_seconds = 0.0;    ///< sum over all run spans
  double wasted_seconds = 0.0; ///< run time of incarnations that were killed
  std::int64_t requeues = 0;
  std::string outcome = "never_started";

  [[nodiscard]] double response() const {
    return (submit_time >= 0.0 && end_time >= 0.0) ? end_time - submit_time
                                                   : 0.0;
  }
  /// Span-covered share of the response time; <1.0 means the trace was cut
  /// (restore) or the job never finished.
  [[nodiscard]] double coverage() const {
    const double r = response();
    return r > 0.0 ? (queued_seconds + run_seconds) / r : 1.0;
  }
};

struct Report {
  std::map<std::string, std::uint64_t> event_counts;
  LatencyStats wait;           ///< queue-span durations (all incarnations)
  LatencyStats run;            ///< run-span durations (all incarnations)
  LatencyStats queue_depth;    ///< sched_pass pending samples
  std::map<std::int64_t, JobStats> jobs;
  std::uint64_t lines = 0;
  std::uint64_t skipped = 0;   ///< malformed lines (reported, not fatal)
  double t_min = 0.0;
  double t_max = 0.0;
};

bool is_terminal(std::string_view ev) {
  return ev == "job_complete" || ev == "job_oom_kill" ||
         ev == "job_walltime_kill";
}

void analyze_event(const TraceEvent& e, Report& r,
                   std::map<std::int64_t, double>& open_queue,
                   std::map<std::int64_t, double>& open_run) {
  ++r.event_counts[e.ev];
  if (r.lines == 1) {
    r.t_min = e.t;
    r.t_max = e.t;
  } else {
    r.t_min = std::min(r.t_min, e.t);
    r.t_max = std::max(r.t_max, e.t);
  }
  if (e.ev == "job_submit" || e.ev == "job_requeue") {
    if (e.span >= 0) open_queue[e.span] = e.t;
    if (e.job >= 0) {
      JobStats& j = r.jobs[e.job];
      if (e.ev == "job_submit") {
        j.submit_time = j.submit_time < 0.0 ? e.t : std::min(j.submit_time, e.t);
      } else {
        ++j.requeues;
      }
    }
  } else if (e.ev == "job_start" || e.ev == "backfill_start") {
    if (e.parent >= 0) {
      const auto it = open_queue.find(e.parent);
      if (it != open_queue.end()) {
        const double waited = e.t - it->second;
        r.wait.add(waited);
        if (e.job >= 0) r.jobs[e.job].queued_seconds += waited;
        open_queue.erase(it);
      }
    }
    const std::int64_t key = e.span >= 0 ? e.span : e.job;
    if (key >= 0) open_run[key] = e.t;
  } else if (is_terminal(e.ev)) {
    const std::int64_t key = e.span >= 0 ? e.span : e.job;
    const auto it = open_run.find(key);
    if (it != open_run.end()) {
      const double ran = e.t - it->second;
      r.run.add(ran);
      if (e.job >= 0) {
        JobStats& j = r.jobs[e.job];
        j.run_seconds += ran;
        if (e.ev != "job_complete") j.wasted_seconds += ran;
      }
      open_run.erase(it);
    }
    if (e.job >= 0) {
      JobStats& j = r.jobs[e.job];
      j.end_time = std::max(j.end_time, e.t);
      if (e.ev == "job_complete") {
        j.outcome = "completed";
      } else if (e.ev == "job_walltime_kill") {
        j.outcome = "killed_walltime";
      } else if (j.outcome != "completed") {
        j.outcome = "oom_killed";
      }
    }
  } else if (e.ev == "job_abandon") {
    if (e.job >= 0) {
      JobStats& j = r.jobs[e.job];
      j.outcome = "abandoned_oom";
      j.end_time = std::max(j.end_time, e.t);
    }
  } else if (e.ev == "sched_pass") {
    if (const auto pending = e.field("pending")) {
      r.queue_depth.add(static_cast<double>(*pending));
    }
  }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void print_latency_row(std::ostream& os, const char* label,
                       const LatencyStats& s) {
  os << "  " << label << ": n=" << s.count();
  if (s.count() > 0) {
    os << " mean=" << fmt(s.mean()) << " p50=" << fmt(s.p(0.50))
       << " p95=" << fmt(s.p(0.95)) << " p99=" << fmt(s.p(0.99))
       << " max=" << fmt(s.max());
  }
  os << '\n';
}

void print_text(std::ostream& os, const Report& r, std::size_t top) {
  os << "dmsim_trace report\n";
  os << "events: " << r.lines << " (skipped " << r.skipped << " malformed)\n";
  os << "sim time: [" << fmt(r.t_min) << ", " << fmt(r.t_max) << "]\n";
  os << "\nevent counts:\n";
  for (const auto& [name, count] : r.event_counts) {
    os << "  " << name << ": " << count << '\n';
  }
  os << "\nlatency (seconds):\n";
  print_latency_row(os, "wait", r.wait);
  print_latency_row(os, "run", r.run);
  os << "\nqueue depth (jobs):\n";
  print_latency_row(os, "pending", r.queue_depth);

  // Critical-path attribution: overall, then the slowest responders.
  double queued = 0.0;
  double running = 0.0;
  double wasted = 0.0;
  std::uint64_t requeues = 0;
  for (const auto& [id, j] : r.jobs) {
    queued += j.queued_seconds;
    running += j.run_seconds;
    wasted += j.wasted_seconds;
    requeues += static_cast<std::uint64_t>(j.requeues);
  }
  os << "\ncritical path (all jobs):\n";
  os << "  jobs: " << r.jobs.size() << "  requeues: " << requeues << '\n';
  os << "  queued: " << fmt(queued) << "s  running: " << fmt(running)
     << "s  wasted-by-kills: " << fmt(wasted) << "s\n";
  const double denom = queued + running;
  if (denom > 0.0) {
    os << "  wait share of response: " << fmt(100.0 * queued / denom, 1)
       << "%\n";
  }

  if (top > 0 && !r.jobs.empty()) {
    std::vector<std::pair<std::int64_t, const JobStats*>> order;
    order.reserve(r.jobs.size());
    for (const auto& [id, j] : r.jobs) order.emplace_back(id, &j);
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      if (a.second->response() != b.second->response()) {
        return a.second->response() > b.second->response();
      }
      return a.first < b.first;  // deterministic tie-break
    });
    os << "\nslowest jobs (top " << std::min(top, order.size()) << "):\n";
    os << "  job  response  queued  running  requeues  outcome\n";
    for (std::size_t i = 0; i < order.size() && i < top; ++i) {
      const auto& [id, j] = order[i];
      os << "  " << id << "  " << fmt(j->response()) << "  "
         << fmt(j->queued_seconds) << "  " << fmt(j->run_seconds) << "  "
         << j->requeues << "  " << j->outcome << '\n';
    }
  }
}

void json_latency(std::ostream& os, const char* key, const LatencyStats& s) {
  os << '"' << key << "\":{\"count\":" << s.count();
  if (s.count() > 0) {
    os << ",\"mean\":" << fmt(s.mean(), 6) << ",\"p50\":" << fmt(s.p(0.50), 6)
       << ",\"p95\":" << fmt(s.p(0.95), 6) << ",\"p99\":" << fmt(s.p(0.99), 6)
       << ",\"max\":" << fmt(s.max(), 6);
  }
  os << '}';
}

void print_json(std::ostream& os, const Report& r, std::size_t top) {
  os << "{\"events\":" << r.lines << ",\"skipped\":" << r.skipped
     << ",\"t_min\":" << fmt(r.t_min, 6) << ",\"t_max\":" << fmt(r.t_max, 6);
  os << ",\"event_counts\":{";
  bool first = true;
  for (const auto& [name, count] : r.event_counts) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << count;
  }
  os << "},";
  json_latency(os, "wait_seconds", r.wait);
  os << ',';
  json_latency(os, "run_seconds", r.run);
  os << ',';
  json_latency(os, "queue_depth", r.queue_depth);
  os << ",\"jobs\":" << r.jobs.size();
  if (top > 0 && !r.jobs.empty()) {
    std::vector<std::pair<std::int64_t, const JobStats*>> order;
    for (const auto& [id, j] : r.jobs) order.emplace_back(id, &j);
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      if (a.second->response() != b.second->response()) {
        return a.second->response() > b.second->response();
      }
      return a.first < b.first;
    });
    os << ",\"slowest\":[";
    for (std::size_t i = 0; i < order.size() && i < top; ++i) {
      const auto& [id, j] = order[i];
      if (i > 0) os << ',';
      os << "{\"job\":" << id << ",\"response\":" << fmt(j->response(), 6)
         << ",\"queued\":" << fmt(j->queued_seconds, 6)
         << ",\"running\":" << fmt(j->run_seconds, 6)
         << ",\"requeues\":" << j->requeues << ",\"outcome\":\"" << j->outcome
         << "\"}";
    }
    os << ']';
  }
  os << "}\n";
}

void print_usage(std::ostream& os) {
  os << "usage: dmsim_trace TRACE.ndjson [options]   ('-' reads stdin)\n"
        "  --json     emit the report as a single JSON object\n"
        "  --top N    list the N slowest-responding jobs (default 10)\n"
        "  --help     this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool as_json = false;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) {
        std::cerr << "dmsim_trace: --top needs a value\n";
        return 1;
      }
      top = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "-") {
      // "-" = read the trace from stdin (pipeline use:
      // `dmsim_run --trace /dev/stdout ... | dmsim_trace -`).
      if (path.empty()) {
        path = arg;
      } else {
        std::cerr << "dmsim_trace: more than one trace file given\n";
        return 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dmsim_trace: unknown argument: " << arg << '\n';
      print_usage(std::cerr);
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "dmsim_trace: more than one trace file given\n";
      return 1;
    }
  }
  if (path.empty()) {
    std::cerr << "dmsim_trace: a trace file is required\n";
    print_usage(std::cerr);
    return 1;
  }
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "dmsim_trace: cannot open " << path << '\n';
      return 1;
    }
  }
  std::istream& in = (path == "-") ? std::cin : file;

  Report report;
  std::map<std::int64_t, double> open_queue;
  std::map<std::int64_t, double> open_run;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    TraceEvent event;
    ParseError err{0, ""};
    if (!parse_line(line, line_number, event, err)) {
      ++report.skipped;
      if (report.skipped <= 5) {
        std::cerr << "dmsim_trace: line " << err.line_number << ": "
                  << err.message << '\n';
      }
      continue;
    }
    ++report.lines;
    analyze_event(event, report, open_queue, open_run);
  }
  report.wait.seal();
  report.run.seal();
  report.queue_depth.seal();
  if (report.lines == 0) {
    std::cerr << "dmsim_trace: no events in " << path << '\n';
    return 2;
  }
  if (as_json) {
    print_json(std::cout, report, top);
  } else {
    print_text(std::cout, report, top);
  }
  return 0;
}
