// dmsim_serve — what-if provisioning service over a warm snapshot image.
//
// Loads the scenario (config + synthetic workload), opens the snapshot once
// as an immutable snapshot::Image, and answers newline-delimited JSON
// queries (see src/serve/query.hpp) by forking the image: extra job
// submissions, policy races, scheduler-config swaps and topology edits,
// each simulated to completion on a shared SweepRunner pool.
//
//   dmsim_serve --config cluster.conf --snapshot run.snap --once < queries
//   dmsim_serve --config cluster.conf --snapshot run.snap --port 0
//   dmsim_serve --connect 127.0.0.1:PORT --queries q.ndjson --concurrency 64
//
// The client mode exists for tests and CI: it fires every query on its own
// connection (up to --concurrency at a time) and prints the replies in
// input order, so its output is diffable against a --once run of the same
// query file regardless of scheduling.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/config_file.hpp"
#include "serve/server.hpp"
#include "slowdown/profile_io.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dmsim;

struct Options {
  std::string config_path;
  std::string snapshot_path;
  std::optional<std::string> profiles_path;
  bool once = false;
  std::optional<int> port;
  std::optional<std::size_t> threads;
  std::optional<std::size_t> cache_images;
  // Client mode.
  std::string connect;  ///< "host:port"; non-empty selects client mode
  std::string queries_path;
  std::size_t concurrency = 16;
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: dmsim_serve --config FILE --snapshot FILE [options]\n"
        "       dmsim_serve --connect HOST:PORT --queries FILE [options]\n"
        "  --config FILE     scenario configuration (required for serving)\n"
        "  --snapshot FILE   default warm image queries fork (required)\n"
        "  --profiles FILE   application profiles for the slowdown model\n"
        "  --once            answer queries from stdin, reply on stdout, exit\n"
        "  --port N          TCP port (default: config ServePort; 0 = any)\n"
        "  --threads N       simulation pool size (default: ServeThreads)\n"
        "  --cache N         warm images kept in the LRU (default: 4)\n"
        "  --connect H:P     client mode: send queries to a running daemon\n"
        "  --queries FILE    client mode: NDJSON query file ('-' = stdin)\n"
        "  --concurrency N   client mode: parallel connections (default 16)\n"
        "  --help            this text\n";
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options opt;
  const auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw ConfigError(std::string(flag) + " needs a value");
    return argv[++i];
  };
  const auto need_int = [&](int& i, const char* flag) -> long {
    const std::string value = need_value(i, flag);
    long parsed = 0;
    const auto res =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (res.ec != std::errc{} || res.ptr != value.data() + value.size()) {
      throw ConfigError(std::string(flag) + ": not an integer: '" + value +
                        "'");
    }
    return parsed;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config") {
      opt.config_path = need_value(i, "--config");
    } else if (arg == "--snapshot") {
      opt.snapshot_path = need_value(i, "--snapshot");
    } else if (arg == "--profiles") {
      opt.profiles_path = need_value(i, "--profiles");
    } else if (arg == "--once") {
      opt.once = true;
    } else if (arg == "--port") {
      const long port = need_int(i, "--port");
      if (port < 0 || port > 65535) throw ConfigError("--port out of range");
      opt.port = static_cast<int>(port);
    } else if (arg == "--threads") {
      const long threads = need_int(i, "--threads");
      if (threads < 0) throw ConfigError("--threads must be >= 0");
      opt.threads = static_cast<std::size_t>(threads);
    } else if (arg == "--cache") {
      const long cache = need_int(i, "--cache");
      if (cache < 1) throw ConfigError("--cache must be >= 1");
      opt.cache_images = static_cast<std::size_t>(cache);
    } else if (arg == "--connect") {
      opt.connect = need_value(i, "--connect");
    } else if (arg == "--queries") {
      opt.queries_path = need_value(i, "--queries");
    } else if (arg == "--concurrency") {
      const long n = need_int(i, "--concurrency");
      if (n < 1) throw ConfigError("--concurrency must be >= 1");
      opt.concurrency = static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      throw ConfigError("unknown argument: " + arg);
    }
  }
  if (opt.help) return opt;
  if (!opt.connect.empty()) {
    if (opt.queries_path.empty()) {
      throw ConfigError("--connect needs --queries");
    }
    return opt;
  }
  if (opt.config_path.empty()) throw ConfigError("--config is required");
  if (opt.snapshot_path.empty()) throw ConfigError("--snapshot is required");
  return opt;
}

// ---------------------------------------------------------------------------
// Client mode: one connection per query, replies printed in input order.

[[nodiscard]] int connect_to(const std::string& target) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    throw ConfigError("--connect expects HOST:PORT");
  }
  const std::string host = target.substr(0, colon);
  const std::string port_text = target.substr(colon + 1);
  int port = 0;
  const auto res = std::from_chars(port_text.data(),
                                   port_text.data() + port_text.size(), port);
  if (res.ec != std::errc{} || port <= 0 || port > 65535) {
    throw ConfigError("--connect: bad port '" + port_text + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ConfigError("client: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ConfigError("client: bad host '" + host + "' (IPv4 only)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw ConfigError("client: cannot connect to " + target + " (" +
                      std::strerror(err) + ")");
  }
  return fd;
}

[[nodiscard]] std::string roundtrip(const std::string& target,
                                    const std::string& query) {
  const int fd = connect_to(target);
  const std::string out = query + "\n";
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      throw ConfigError("client: send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
    if (reply.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  const std::size_t nl = reply.find('\n');
  if (nl == std::string::npos) {
    throw ConfigError("client: no reply for query: " + query);
  }
  return reply.substr(0, nl);
}

int run_client(const Options& opt) {
  std::vector<std::string> queries;
  {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (opt.queries_path != "-") {
      file.open(opt.queries_path);
      if (!file) throw ConfigError("cannot open " + opt.queries_path);
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      if (!line.empty()) queries.push_back(line);
    }
  }
  std::vector<std::string> replies(queries.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  const std::size_t workers_needed = std::min(opt.concurrency, queries.size());
  workers.reserve(workers_needed);
  for (std::size_t w = 0; w < workers_needed; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= queries.size()) return;
        try {
          replies[i] = roundtrip(opt.connect, queries[i]);
        } catch (const std::exception& e) {
          replies[i] = std::string("client error: ") + e.what();
          failed.store(true);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (const std::string& reply : replies) std::cout << reply << '\n';
  std::cout << std::flush;
  return failed.load() ? 1 : 0;
}

// ---------------------------------------------------------------------------

int run_server(const Options& opt) {
  const harness::FileConfig cfg = harness::parse_config_file(opt.config_path);
  if (!cfg.has_workload) {
    throw ConfigError(
        "dmsim_serve needs the config's synthetic workload keys (Jobs=...): "
        "the scenario workload must match the snapshot's saving run");
  }
  auto generated = workload::generate_synthetic(cfg.workload);
  slowdown::AppPool apps =
      opt.profiles_path ? slowdown::read_app_pool_file(*opt.profiles_path)
                        : std::move(generated.apps);

  serve::ServeScenario scenario;
  scenario.system = cfg.simulation.system;
  scenario.policy = cfg.simulation.policy;
  scenario.sched = cfg.simulation.sched;
  scenario.jobs = std::move(generated.jobs);
  scenario.apps = &apps;
  scenario.snapshot_path = opt.snapshot_path;

  serve::ServerOptions options;
  options.threads = opt.threads.value_or(cfg.serve.threads);
  options.cache_images = opt.cache_images.value_or(cfg.serve.cache_images);
  options.port = opt.port.value_or(cfg.serve.port);

  serve::Server server(std::move(scenario), options);
  if (opt.once) {
    server.run_once(std::cin, std::cout);
    return 0;
  }
  server.listen_and_serve(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    if (opt.help) {
      print_usage(std::cout);
      return 0;
    }
    if (!opt.connect.empty()) return run_client(opt);
    return run_server(opt);
  } catch (const std::exception& e) {
    std::cerr << "dmsim_serve: " << e.what() << '\n';
    print_usage(std::cerr);
    return 1;
  }
}
