// Slurm-like job scheduler driving the discrete-event engine.
//
// Implements the scheduling semantics the paper's evaluation depends on
// (Table 4): FCFS with EASY backfill, a 30 s scheduling/backfill interval,
// queue and backfill depth of 100, exclusive node allocation — plus the
// dynamic-memory machinery of §2.2/2.3:
//
//   * Monitor/Decider — every update interval (default 5 min, staggered per
//     job), the job's usage trace supplies the demand for the next window,
//   * Actuator — resize_to_demand() adjusts each (job, host) slot,
//   * Executor — progress/slowdown are re-projected and the job-end event is
//     rescheduled,
//   * Out-of-memory — Fail/Restart (resubmit from scratch) or
//     Checkpoint/Restart (resubmit retaining the last monitored progress),
//     with the §2.2 fairness mitigation: after N failures the job restarts
//     with a guaranteed static allocation.
//
// Jobs run at a rate of 1/slowdown; the slowdown comes from the contention
// model and changes whenever the borrow ledger changes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "monitor/monitor.hpp"
#include "obs/observer.hpp"
#include "policy/policy.hpp"
#include "sim/engine.hpp"
#include "sim/event_payload.hpp"
#include "slowdown/model.hpp"
#include "trace/job_spec.hpp"
#include "util/units.hpp"

namespace dmsim::snapshot {
class Writer;
class Reader;
}  // namespace dmsim::snapshot

namespace dmsim::sched {

enum class OomHandling {
  FailRestart,        ///< restart from the beginning (paper's default)
  CheckpointRestart,  ///< restart from the last monitored progress
};

/// Backfill flavour. EASY reserves for the blocked head job only;
/// Conservative additionally refuses to start any job that could delay an
/// *earlier* queued job's estimated reservation (approximated with the
/// current running set, as queued-job interactions are not simulated).
enum class BackfillMode {
  Off,
  Easy,          ///< paper's configuration (Slurm sched/backfill)
  Conservative,
};

/// How Monitor updates are driven (paper §2.3: the simulator batches update
/// commands on a global timer derived from the jobs' earliest progress; a
/// real deployment monitors per node, which staggering approximates).
enum class UpdateMode {
  PerJobStaggered,  ///< one event per job, phase-staggered (default)
  GlobalBatch,      ///< one global timer updating every running job
};

struct SchedulerConfig {
  Seconds sched_interval = 30.0;   ///< min spacing between scheduling passes
  int queue_depth = 100;           ///< FCFS pass examines at most this many
  int backfill_depth = 100;        ///< backfill pass examines at most this many
  bool enable_backfill = true;     ///< false forces BackfillMode::Off
  BackfillMode backfill_mode = BackfillMode::Easy;
  Seconds update_interval = 300.0; ///< Monitor period for dynamic jobs
  UpdateMode update_mode = UpdateMode::PerJobStaggered;
  /// How demand estimates are produced (oracle / sampled / adaptive). The
  /// default oracle reproduces the pre-monitor simulator byte-for-byte.
  monitor::MonitorConfig monitor;
  OomHandling oom_handling = OomHandling::FailRestart;
  /// After this many OOM failures a job restarts with a guaranteed (static,
  /// request-sized, update-exempt) allocation. 0 disables the mitigation.
  int guaranteed_after_failures = 3;
  /// Alternative §2.2 mitigation: each OOM failure raises the job's requeue
  /// priority by this amount, moving it ahead of lower-priority pending jobs
  /// (FIFO order is kept within a priority level). 0 disables boosting.
  int priority_boost_per_failure = 0;
  /// Abandon a job outright after this many restarts (safety valve).
  int max_restarts = 100;
  bool enforce_walltime = false;   ///< kill jobs exceeding their time limit
  /// If > 0, record a (time, allocated, used, busy-nodes, pending) sample
  /// every this many seconds.
  Seconds sample_interval = 0.0;
};

enum class JobOutcome {
  NeverStarted,     ///< trace drained with the job still pending (or infeasible)
  Completed,
  AbandonedOom,     ///< exceeded max_restarts
  KilledWalltime,
};

struct JobRecord {
  JobId id{};
  Seconds submit_time = kNoTime;  ///< original submission (restarts keep it)
  Seconds first_start = kNoTime;
  Seconds last_start = kNoTime;
  Seconds end_time = kNoTime;     ///< final completion
  int num_nodes = 0;
  MiB requested_mem = 0;
  MiB peak_usage = 0;
  int oom_failures = 0;
  bool ran_guaranteed = false;    ///< finished under the fairness mitigation
  bool infeasible = false;        ///< rejected at submit: can never run here
  JobOutcome outcome = JobOutcome::NeverStarted;

  [[nodiscard]] Seconds response_time() const noexcept {
    return end_time - submit_time;
  }
  [[nodiscard]] Seconds wait_time() const noexcept {
    return first_start - submit_time;
  }
};

struct SystemSample {
  Seconds time = 0.0;
  MiB allocated = 0;
  MiB used = 0;       ///< ground-truth usage of running jobs
  int busy_nodes = 0;
  std::size_t pending_jobs = 0;
};

struct SchedulerTotals {
  std::uint64_t completed = 0;
  std::uint64_t oom_events = 0;
  std::uint64_t requeues = 0;
  std::uint64_t fcfs_starts = 0;
  std::uint64_t backfill_starts = 0;
  std::uint64_t guaranteed_starts = 0;
  std::uint64_t update_events = 0;
  std::uint64_t scheduling_passes = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t walltime_kills = 0;
};

class Scheduler : public sim::EventHandler {
 public:
  /// `pool` may be nullptr: all jobs are then contention-insensitive.
  /// `observer` (optional, must outlive the scheduler) wires structured
  /// event tracing and the sched.* counters; run() publishes the final
  /// SchedulerTotals into the registry.
  Scheduler(sim::Engine& engine, cluster::Cluster& cluster,
            policy::AllocationPolicy& policy, const slowdown::AppPool* pool,
            SchedulerConfig config, const obs::Observer* observer = nullptr);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register the workload: feasible jobs get submit events; infeasible ones
  /// are recorded (outcome NeverStarted, infeasible flag) and never queued.
  void submit_workload(trace::Workload workload);

  /// Inject additional jobs into an already-submitted (possibly restored)
  /// run — the what-if overlay's extra-submission edit. Ids must be fresh;
  /// each spec's submit time is clamped to the current clock and its
  /// dependency fields are cleared (overlay jobs are independent — the base
  /// workload's dependency graph must not grow edges mid-run). Note the
  /// config fingerprint hashes the workload as submitted; callers restoring
  /// snapshots must apply extra submissions after the restore.
  void submit_extra_jobs(std::vector<trace::JobSpec> extra);

  /// Drive the engine to completion. Afterwards every feasible job has a
  /// terminal outcome. Equivalent to run_ready(+inf) + finalize().
  void run();

  /// Fire every event with time <= until without advancing the clock past
  /// the last fired event — the checkpoint cut primitive. The simulation
  /// state afterwards is exactly the mid-run state of an uninterrupted run,
  /// so it may be snapshotted or resumed with further run_ready() calls.
  /// Returns the number of events fired.
  std::uint64_t run_ready(Seconds until);

  /// Close out a drained run: settle utilization integrals, fix the
  /// horizon, verify every feasible job reached a terminal outcome and
  /// publish the sched.* totals. Call exactly once, after the engine
  /// drains.
  void finalize();

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const trace::Workload& workload() const noexcept {
    return workload_;
  }

  /// Serialize queues, running-job lifecycle, records, samples, totals and
  /// utilization integrals. The workload itself is NOT serialized — restore
  /// requires submit_workload() to have been called with the identical
  /// workload (enforced by the checkpoint layer's config fingerprint).
  void save_state(snapshot::Writer& writer) const;

  /// Rebuild scheduler state from save_state bytes. Must be called after
  /// submit_workload() with the same workload; the slowdown cache is reset
  /// and rebuilt incrementally (bitwise-equal recompute, so replay is
  /// unaffected). Restore the engine first: pending-event handles in the
  /// snapshot must match the restored slab. `version` is the snapshot
  /// format version: sections older than v5 predate the monitor subsystem
  /// and restore with oracle-equivalent per-job monitor state.
  void restore_state(snapshot::Reader& reader, std::uint32_t version);

  [[nodiscard]] const std::vector<JobRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const SchedulerTotals& totals() const noexcept { return totals_; }
  [[nodiscard]] const std::vector<SystemSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t infeasible_count() const noexcept {
    return infeasible_count_;
  }
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::size_t running_count() const noexcept {
    return running_.size();
  }

  /// Time-weighted averages over [0, makespan] for utilization metrics.
  [[nodiscard]] double avg_allocated_mib() const noexcept;
  [[nodiscard]] double avg_busy_nodes() const noexcept;

  /// Debug audit: recompute every running job's slowdown from scratch with
  /// the contention model and compare against the cached values. Pins the
  /// invariant that no event leaves a surviving job's slowdown stale —
  /// notably a GlobalBatch update whose OOM victims' kill_and_requeue calls
  /// are relied upon to refresh the survivors. O(jobs x edges); meant for
  /// tests and fuzz audits, not the hot path.
  [[nodiscard]] bool slowdowns_fresh() const;

 private:
  /// Typed-event dispatch: every production event the engine fires lands
  /// here. The payload<->member-function mapping is the whole reason the
  /// queue is serializable, so keep it exhaustive — no default case.
  void on_event(const sim::EventPayload& event) override;

  struct PendingEntry {
    std::size_t spec_index = 0;
    int restarts = 0;
    double checkpoint = 0.0;  ///< starting progress (C/R), 0 for F/R
    bool guaranteed = false;  ///< start with a static, update-exempt allocation
    int priority = 0;         ///< higher runs first; FIFO within a level
    /// When this entry (re)entered the queue — the wait-latency histogram
    /// measures start_time - enqueue_time per incarnation, not per job.
    Seconds enqueue_time = 0.0;
    /// Cached denial: if the cluster's change epoch still matches, the
    /// policy would deterministically deny again — replay without selection.
    std::uint64_t last_deny_epoch = 0;
    const char* last_deny_reason = nullptr;  ///< nullptr = no cached denial
  };

  /// Insert an entry keeping the queue sorted by (priority desc, FIFO).
  void enqueue_pending(PendingEntry entry);

  /// Publish pending_.size() to the sched.queue_depth gauge. Must run on
  /// every enqueue AND dequeue — FCFS pops and backfill erases included —
  /// or the gauge reads stale between scheduling passes.
  void set_queue_gauge();

  struct RunningJob {
    std::size_t spec_index = 0;
    Seconds start_time = 0.0;
    double progress = 0.0;       ///< fraction of work done, in [0, 1]
    Seconds last_fold = 0.0;     ///< when `progress` was last brought current
    double slowdown = 1.0;
    sim::EventId end_event{};
    sim::EventId update_event{};
    sim::EventId walltime_event{};
    double checkpoint = 0.0;     ///< last monitored progress (C/R restart point)
    int restarts = 0;
    bool guaranteed = false;
    /// Monitoring cost folded into the execution rate: the job runs at
    /// 1 / (slowdown * monitor_overhead). Exactly 1.0 under the oracle, so
    /// the fold is bit-exact identity there (x * 1.0 == x in IEEE 754).
    double monitor_overhead = 1.0;
    /// Per-node demand the last Monitor update provisioned for (the request
    /// until the first update). Monitors that model runtime OOM compare it
    /// against each elapsed window's true maximum.
    MiB provisioned = 0;
  };

  [[nodiscard]] const trace::JobSpec& spec_of(std::size_t index) const {
    return workload_[index];
  }
  [[nodiscard]] JobRecord& record_of(JobId id);

  void request_scheduling_pass();
  void scheduling_pass();
  /// Attempt to start `entry` via the policy. On denial the reason and the
  /// cluster epoch are cached in the entry so an unchanged cluster replays
  /// the denial (identical counters and trace) without re-selecting hosts.
  [[nodiscard]] bool try_start_entry(PendingEntry& entry);
  void start_running(const PendingEntry& entry);

  /// Earliest projected time the blocked head job could start, simulating
  /// running-job completions in walltime order (nodes + memory released).
  [[nodiscard]] Seconds reservation_shadow_time(const trace::JobSpec& head) const;

  /// Release jobs waiting on `pred` (now terminal): each dependent's submit
  /// event fires at max(its submit_time, now + its think_time).
  void release_dependents(JobId pred);

  void on_job_end(JobId id);
  void on_update(JobId id);
  void on_global_update();
  /// Fold progress, ask the monitor for the next-window demand and resize
  /// every slot of one running job.
  struct UpdateResult {
    bool remote_changed = false;
    bool oom = false;
    MiB released = 0;
    /// Monitor-chosen time until the job's next update. Defaults to the
    /// configured interval so the early-return paths (job about to end)
    /// reschedule exactly as before.
    Seconds next_interval = 0.0;
  };
  UpdateResult apply_update(RunningJob& rj, JobId id);
  /// Provision the zeroth window [start, first update): the staggered first
  /// update can arrive up to 1.5x update_interval after start, and the
  /// request-sized initial allocation was the only cover for that gap. Asks
  /// the monitor for the window demand and grows (never shrinks) any slot
  /// the request under-covers; an unsatisfiable grow forces the job's first
  /// update to fire immediately, which re-detects the shortfall and applies
  /// the configured OOM handling outside the scheduling pass.
  void cover_first_window(JobId id, RunningJob& rj, Seconds first_gap);
  void on_walltime(JobId id);
  void kill_and_requeue(JobId id, bool checkpoint_restart);

  /// Execution-rate divisor: contention slowdown with the modeled
  /// monitoring cost folded in. Bitwise equal to rj.slowdown whenever the
  /// overhead factor is 1.0 (always, under the oracle).
  [[nodiscard]] static double effective_slowdown(const RunningJob& rj) noexcept {
    return rj.slowdown * rj.monitor_overhead;
  }

  void fold_progress(RunningJob& rj);
  void project_end(JobId id, RunningJob& rj);
  void refresh_slowdowns();
  void cancel_job_events(RunningJob& rj);

  void touch_utilization();
  void take_sample();
  [[nodiscard]] MiB current_used_memory() const;

  /// Emit a job lifecycle event (guarded; no-op when tracing is off). The
  /// event joins the causal span of the job's `incarnation`-th run, with the
  /// matching queued span as parent.
  void trace_job(obs::EventKind kind, JobId id, int incarnation,
                 const char* detail = nullptr);
  /// Copy the final SchedulerTotals into the counters registry.
  void publish_totals();

  sim::Engine& engine_;
  cluster::Cluster& cluster_;
  policy::AllocationPolicy& policy_;
  slowdown::ContentionModel model_;
  slowdown::IncrementalSlowdowns inc_slowdowns_{&model_};
  SchedulerConfig config_;
  std::unique_ptr<monitor::MemoryMonitor> monitor_;

  // refresh_slowdowns() scratch, reused across calls.
  std::vector<std::uint32_t> running_ids_scratch_;
  std::vector<slowdown::IncrementalSlowdowns::Update> slowdown_updates_;

  trace::Workload workload_;
  std::deque<PendingEntry> pending_;
  std::unordered_map<std::uint32_t, RunningJob> running_;
  /// SWF dependencies: predecessor id -> spec indices waiting on it.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> dependents_;
  std::unordered_map<std::uint32_t, std::size_t> record_index_;
  std::vector<JobRecord> records_;
  std::vector<SystemSample> samples_;
  SchedulerTotals totals_;
  std::size_t infeasible_count_ = 0;

  bool pass_scheduled_ = false;
  bool global_update_scheduled_ = false;
  /// Running jobs that participate in Monitor updates (dynamic policy, not
  /// guaranteed). The GlobalBatch timer chain stops when this hits zero —
  /// guaranteed jobs are update-exempt, so ticking for them is pure waste —
  /// and restarts when the next updatable job starts.
  int global_updatable_ = 0;
  Seconds last_pass_time_ = -1e18;

  // Time-weighted utilization integrals.
  Seconds util_last_touch_ = 0.0;
  double allocated_integral_ = 0.0;  // MiB * seconds
  double busy_integral_ = 0.0;       // nodes * seconds
  int busy_nodes_ = 0;
  Seconds horizon_ = 0.0;  // latest event time observed

  // Observability (all nullptr when disabled).
  const obs::Observer* obs_ = nullptr;
  std::uint64_t* c_submits_ = nullptr;
  std::uint64_t* c_backfill_attempts_ = nullptr;
  std::uint64_t* c_update_batches_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_running_ = nullptr;
  /// Wait latency (enqueue -> start) per start, simulated microseconds; the
  /// backfill variant covers backfill starts only.
  obs::Histogram* h_wait_ = nullptr;
  obs::Histogram* h_backfill_wait_ = nullptr;
  /// Actuator resize magnitudes per Monitor update (MiB grown/shrunk).
  /// Simulated quantities, not wall clock — exports must stay deterministic.
  obs::Histogram* h_grow_mib_ = nullptr;
  obs::Histogram* h_shrink_mib_ = nullptr;
  /// Tier-migration magnitude per Monitor update (MiB promoted to nearer
  /// tiers); only ever recorded on tiered topologies.
  obs::Histogram* h_migrate_mib_ = nullptr;
  /// Monitor-model instruments. Resolved only for non-oracle monitors so an
  /// oracle run's telemetry export stays byte-identical to the pre-monitor
  /// simulator (empty instruments would still create registry entries).
  obs::Histogram* h_mon_error_ = nullptr;
  obs::Histogram* h_mon_overhead_ = nullptr;
  obs::Gauge* g_mon_regions_ = nullptr;
};

}  // namespace dmsim::sched
