#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "snapshot/snapshot.hpp"
#include "util/error.hpp"

namespace dmsim::sched {

namespace {
constexpr double kProgressEps = 1e-12;
constexpr double kSlowdownEps = 1e-9;

/// Deterministic per-job phase in [0, 1) used to stagger Monitor updates so
/// they arrive "on average" every interval (§2.2) instead of in lockstep.
[[nodiscard]] double update_phase(JobId id) noexcept {
  const std::uint32_t h = id.get() * 2654435761u;
  return static_cast<double>(h % 4096u) / 4096.0;
}
}  // namespace

Scheduler::Scheduler(sim::Engine& engine, cluster::Cluster& cluster,
                     policy::AllocationPolicy& policy,
                     const slowdown::AppPool* pool, SchedulerConfig config,
                     const obs::Observer* observer)
    : engine_(engine),
      cluster_(cluster),
      policy_(policy),
      model_(pool),
      config_(std::move(config)),
      monitor_(monitor::make_monitor(config_.monitor)),
      obs_(observer) {
  DMSIM_ASSERT(config_.sched_interval >= 0.0, "negative scheduling interval");
  DMSIM_ASSERT(config_.queue_depth > 0, "queue depth must be positive");
  DMSIM_ASSERT(config_.backfill_depth >= 0, "negative backfill depth");
  DMSIM_ASSERT(config_.update_interval > 0.0, "update interval must be positive");
  DMSIM_ASSERT(config_.max_restarts > 0, "max_restarts must be positive");
  c_submits_ = obs::counter_handle(observer, "sched.submits");
  c_backfill_attempts_ = obs::counter_handle(observer, "sched.backfill_attempts");
  c_update_batches_ = obs::counter_handle(observer, "sched.update_batches");
  g_queue_depth_ = obs::gauge_handle(observer, "sched.queue_depth");
  g_running_ = obs::gauge_handle(observer, "sched.running_jobs");
  h_wait_ = obs::histogram_handle(observer, "sched.wait_us");
  h_backfill_wait_ = obs::histogram_handle(observer, "sched.backfill_wait_us");
  h_grow_mib_ = obs::histogram_handle(observer, "policy.grow_mib");
  h_shrink_mib_ = obs::histogram_handle(observer, "policy.shrink_mib");
  h_migrate_mib_ = obs::histogram_handle(observer, "policy.migrate_mib");
  // Monitor instruments exist only for non-oracle monitors: resolving a
  // handle creates the registry entry, and an oracle run's registry must
  // stay byte-identical to the pre-monitor simulator.
  if (config_.monitor.kind != monitor::MonitorKind::Oracle) {
    h_mon_error_ = obs::histogram_handle(observer, "monitor.estimate_error_mib");
    h_mon_overhead_ = obs::histogram_handle(observer, "monitor.overhead_us");
    g_mon_regions_ = obs::gauge_handle(observer, "monitor.regions");
  }
  engine_.set_handler(this);
}

void Scheduler::on_event(const sim::EventPayload& event) {
  switch (event.type) {
    case sim::EventType::JobSubmit:
      enqueue_pending(
          PendingEntry{static_cast<std::size_t>(event.index), 0, 0.0, false, 0});
      request_scheduling_pass();
      return;
    case sim::EventType::SchedPass:
      scheduling_pass();
      return;
    case sim::EventType::JobEnd:
      on_job_end(JobId{event.job});
      return;
    case sim::EventType::MonitorUpdate:
      on_update(JobId{event.job});
      return;
    case sim::EventType::GlobalBatchTick:
      on_global_update();
      return;
    case sim::EventType::WalltimeKill:
      on_walltime(JobId{event.job});
      return;
    case sim::EventType::TraceSample:
      take_sample();
      return;
    case sim::EventType::None:
      break;
  }
  DMSIM_ASSERT(false, "unhandled event payload type");
}

void Scheduler::trace_job(obs::EventKind kind, JobId id, int incarnation,
                          const char* detail) {
  if (!obs::tracing(obs_)) return;
  obs::Event e{kind, engine_.now(), id.get()};
  e.detail = detail;
  e.in_span(obs::span_id(id.get(), incarnation, obs::SpanPhase::Running),
            obs::span_id(id.get(), incarnation, obs::SpanPhase::Queued));
  obs_->sink->emit(e);
}

void Scheduler::publish_totals() {
  if (obs_ == nullptr || obs_->counters == nullptr) return;
  obs::Counters& c = *obs_->counters;
  c.counter("sched.completed") = totals_.completed;
  c.counter("sched.oom_events") = totals_.oom_events;
  c.counter("sched.requeues") = totals_.requeues;
  c.counter("sched.fcfs_starts") = totals_.fcfs_starts;
  c.counter("sched.backfill_starts") = totals_.backfill_starts;
  c.counter("sched.guaranteed_starts") = totals_.guaranteed_starts;
  c.counter("sched.update_events") = totals_.update_events;
  c.counter("sched.scheduling_passes") = totals_.scheduling_passes;
  c.counter("sched.abandoned") = totals_.abandoned;
  c.counter("sched.walltime_kills") = totals_.walltime_kills;
  c.counter("sched.infeasible") = infeasible_count_;
}

JobRecord& Scheduler::record_of(JobId id) {
  const auto it = record_index_.find(id.get());
  DMSIM_ASSERT(it != record_index_.end(), "no record for job");
  return records_[it->second];
}

void Scheduler::submit_workload(trace::Workload workload) {
  DMSIM_ASSERT(workload_.empty(), "submit_workload may only be called once");
  workload_ = std::move(workload);
  records_.reserve(workload_.size());

  // Resolve SWF dependencies: a dependent waits for its predecessor's
  // terminal event. References to ids outside the workload (or to jobs that
  // will never run here, i.e. infeasible ones) are treated as released.
  std::unordered_set<std::uint32_t> known_ids;
  known_ids.reserve(workload_.size());
  for (const auto& spec : workload_) known_ids.insert(spec.id.get());

  for (std::size_t i = 0; i < workload_.size(); ++i) {
    const trace::JobSpec& spec = workload_[i];
    DMSIM_ASSERT(spec.id.valid(), "workload job without id");
    DMSIM_ASSERT(!record_index_.contains(spec.id.get()),
                 "duplicate job id in workload");
    JobRecord rec;
    rec.id = spec.id;
    rec.submit_time = spec.submit_time;
    rec.num_nodes = spec.num_nodes;
    rec.requested_mem = spec.requested_mem;
    rec.peak_usage = spec.peak_usage();
    record_index_.emplace(spec.id.get(), records_.size());

    if (!policy_.feasible(spec, cluster_)) {
      rec.infeasible = true;
      ++infeasible_count_;
      records_.push_back(rec);
      continue;
    }
    records_.push_back(rec);
    // Only honor forward references (pred id < job id, the SWF convention):
    // this keeps the dependency graph acyclic by construction.
    if (spec.preceding_job.valid() &&
        spec.preceding_job.get() < spec.id.get() &&
        known_ids.contains(spec.preceding_job.get())) {
      dependents_[spec.preceding_job.get()].push_back(i);
      continue;  // submit event fires when the predecessor terminates
    }
    engine_.schedule_typed(spec.submit_time, sim::EventPayload::job_submit(i));
  }

  // Dependencies on infeasible predecessors can never be satisfied; release
  // those dependents at their own submit times.
  for (auto it = dependents_.begin(); it != dependents_.end();) {
    const JobRecord& pred_rec = record_of(JobId{it->first});
    if (pred_rec.infeasible) {
      for (const std::size_t i : it->second) {
        engine_.schedule_typed(workload_[i].submit_time,
                               sim::EventPayload::job_submit(i));
      }
      it = dependents_.erase(it);
    } else {
      ++it;
    }
  }
  if (config_.sample_interval > 0.0) {
    engine_.schedule_typed(0.0, sim::EventPayload::trace_sample());
  }
}

void Scheduler::submit_extra_jobs(std::vector<trace::JobSpec> extra) {
  DMSIM_ASSERT(!workload_.empty(),
               "submit_extra_jobs needs a submitted workload");
  for (trace::JobSpec& spec : extra) {
    DMSIM_ASSERT(spec.id.valid(), "extra job without id");
    DMSIM_ASSERT(!record_index_.contains(spec.id.get()),
                 "duplicate job id in extra submission");
    // A submit event in the past would violate the engine's time order.
    spec.submit_time = std::max(spec.submit_time, engine_.now());
    spec.preceding_job = JobId{};
    spec.think_time = 0.0;
    JobRecord rec;
    rec.id = spec.id;
    rec.submit_time = spec.submit_time;
    rec.num_nodes = spec.num_nodes;
    rec.requested_mem = spec.requested_mem;
    rec.peak_usage = spec.peak_usage();
    record_index_.emplace(spec.id.get(), records_.size());
    const std::size_t index = workload_.size();
    workload_.push_back(std::move(spec));
    if (!policy_.feasible(workload_[index], cluster_)) {
      rec.infeasible = true;
      ++infeasible_count_;
      records_.push_back(rec);
      continue;
    }
    records_.push_back(rec);
    engine_.schedule_typed(workload_[index].submit_time,
                           sim::EventPayload::job_submit(index));
  }
}

void Scheduler::run() {
  engine_.run();
  finalize();
}

std::uint64_t Scheduler::run_ready(Seconds until) {
  return engine_.run_ready(until);
}

void Scheduler::finalize() {
  touch_utilization();
  horizon_ = engine_.now();
  DMSIM_ASSERT(running_.empty(), "engine drained with jobs still running");
  DMSIM_ASSERT(pending_.empty(), "engine drained with jobs still pending");
  DMSIM_ASSERT(dependents_.empty(), "engine drained with unresolved dependencies");
  publish_totals();
}

// ---------------------------------------------------------------------------
// Scheduling passes
// ---------------------------------------------------------------------------

void Scheduler::enqueue_pending(PendingEntry entry) {
  entry.enqueue_time = engine_.now();
  if (entry.restarts == 0) {
    obs::bump(c_submits_);
    if (obs::tracing(obs_)) {
      const trace::JobSpec& spec = spec_of(entry.spec_index);
      obs_->sink->emit(
          obs::Event{obs::EventKind::JobSubmit, engine_.now(), spec.id.get()}
              .in_span(obs::span_id(spec.id.get(), 0, obs::SpanPhase::Queued))
              .with("nodes", spec.num_nodes)
              .with("mib", spec.requested_mem));
    }
  }
  // Queue is kept sorted by priority (descending); insertion after the last
  // entry with priority >= the new one preserves FIFO within a level.
  auto it = pending_.end();
  while (it != pending_.begin() && std::prev(it)->priority < entry.priority) {
    --it;
  }
  pending_.insert(it, entry);
  set_queue_gauge();
}

void Scheduler::set_queue_gauge() {
  if (g_queue_depth_) {
    g_queue_depth_->set(static_cast<std::int64_t>(pending_.size()));
  }
}

void Scheduler::request_scheduling_pass() {
  if (pass_scheduled_) return;
  const Seconds when =
      std::max(engine_.now(), last_pass_time_ + config_.sched_interval);
  pass_scheduled_ = true;
  engine_.schedule_typed(when, sim::EventPayload::sched_pass());
}

void Scheduler::scheduling_pass() {
  pass_scheduled_ = false;
  last_pass_time_ = engine_.now();
  ++totals_.scheduling_passes;
  if (obs::tracing(obs_)) {
    obs_->sink->emit(obs::Event{obs::EventKind::SchedPass, engine_.now()}.with(
        "pending", static_cast<std::int64_t>(pending_.size())));
  }
  if (pending_.empty()) return;
  touch_utilization();

  // FCFS: start jobs strictly in queue order until the head blocks.
  int started = 0;
  while (!pending_.empty() && started < config_.queue_depth) {
    const JobId started_id = spec_of(pending_.front().spec_index).id;
    const int incarnation = pending_.front().restarts;
    const Seconds enqueued = pending_.front().enqueue_time;
    if (!try_start_entry(pending_.front())) break;
    pending_.pop_front();
    set_queue_gauge();
    ++started;
    ++totals_.fcfs_starts;
    if (h_wait_ != nullptr) {
      h_wait_->record(obs::to_micros(engine_.now() - enqueued));
    }
    trace_job(obs::EventKind::JobStart, started_id, incarnation);
  }

  // Backfill: jobs behind the blocked head may start now if their requested
  // walltime ends before the reservation they might delay. EASY guards the
  // head's reservation only; Conservative tightens the bound to the earliest
  // reservation of every blocked job seen so far.
  const BackfillMode mode =
      config_.enable_backfill ? config_.backfill_mode : BackfillMode::Off;
  if (!pending_.empty() && mode != BackfillMode::Off &&
      config_.backfill_depth > 0) {
    const Seconds now = engine_.now();
    const trace::JobSpec& head = spec_of(pending_.front().spec_index);
    // The head's projected start. Every successful backfill start changes
    // the cluster — and, through borrowing, running jobs' slowdown-based
    // completion projections — so it is recomputed after each start rather
    // than held for the whole pass (a stale shadow admitted candidates
    // against a reservation that had already moved).
    Seconds head_shadow = reservation_shadow_time(head);
    // Conservative additionally caps candidates at the earliest projected
    // start of every blocked job examined so far; +inf under EASY.
    Seconds blocked_bound = std::numeric_limits<Seconds>::infinity();
    std::size_t examined = 0;
    for (std::size_t idx = 1;
         idx < pending_.size() &&
         examined < static_cast<std::size_t>(config_.backfill_depth);) {
      ++examined;
      obs::bump(c_backfill_attempts_);
      PendingEntry& entry = pending_[idx];
      const trace::JobSpec& spec = spec_of(entry.spec_index);
      // shadow == now means the head is blocked by fragmentation only: the
      // system has the nodes and the memory, the policy just cannot carve
      // them up. No finite walltime satisfies `now + wt <= now`, which used
      // to shut backfill off entirely in exactly the state where candidates
      // cannot delay the head's (unknowable) start. Guard such passes with
      // the blocked-job bound alone.
      const bool frag_blocked = head_shadow <= now;
      const Seconds bound =
          frag_blocked ? blocked_bound : std::min(head_shadow, blocked_bound);
      const int incarnation = entry.restarts;
      const Seconds enqueued = entry.enqueue_time;
      if (now + spec.walltime <= bound && try_start_entry(entry)) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(idx));
        set_queue_gauge();
        ++totals_.backfill_starts;
        // Counts toward the end-of-pass slowdown refresh: a backfill start
        // that borrows shifts contention exactly like an FCFS start, and a
        // backfill-only pass used to skip the refresh, leaving the new job
        // and its lenders' borrowers running on stale slowdowns until some
        // later event happened to refresh (caught by slowdowns_fresh()).
        ++started;
        if (h_wait_ != nullptr) {
          const std::int64_t waited = obs::to_micros(engine_.now() - enqueued);
          h_wait_->record(waited);
          if (h_backfill_wait_ != nullptr) h_backfill_wait_->record(waited);
        }
        trace_job(obs::EventKind::BackfillStart, spec.id, incarnation);
        head_shadow = reservation_shadow_time(head);
      } else {
        if (mode == BackfillMode::Conservative) {
          // This job stays queued: later candidates must not delay it either.
          blocked_bound = std::min(blocked_bound, reservation_shadow_time(spec));
        }
        ++idx;
      }
    }
  }

  if (started > 0) refresh_slowdowns();
}

bool Scheduler::try_start_entry(PendingEntry& entry) {
  const trace::JobSpec& spec = spec_of(entry.spec_index);
  // A policy decision is a pure function of the cluster ledger; if nothing
  // changed since this entry's last denial, replay it (same counter bump,
  // same trace event) instead of re-running host selection.
  if (entry.last_deny_reason != nullptr &&
      entry.last_deny_epoch == cluster_.change_epoch()) {
    policy_.report_denied(spec, entry.last_deny_reason);
    return false;
  }
  if (!policy_.try_start(spec, cluster_)) {
    // Cache against the post-decision epoch: a failed attempt that rolled
    // back (lenders_dry) advanced the epoch but left the state unchanged.
    entry.last_deny_reason = policy_.last_deny_reason();
    entry.last_deny_epoch = cluster_.change_epoch();
    return false;
  }
  start_running(entry);
  return true;
}

void Scheduler::start_running(const PendingEntry& entry) {
  const trace::JobSpec& spec = spec_of(entry.spec_index);
  const Seconds now = engine_.now();

  RunningJob rj;
  rj.spec_index = entry.spec_index;
  rj.start_time = now;
  rj.progress = entry.checkpoint;
  rj.checkpoint = entry.checkpoint;
  rj.last_fold = now;
  rj.slowdown = 1.0;
  rj.restarts = entry.restarts;
  rj.guaranteed = entry.guaranteed;
  rj.provisioned = spec.requested_mem;

  busy_nodes_ += spec.num_nodes;

  JobRecord& rec = record_of(spec.id);
  if (rec.first_start == kNoTime) rec.first_start = now;
  rec.last_start = now;
  if (entry.guaranteed) {
    rec.ran_guaranteed = true;
    ++totals_.guaranteed_starts;
  }

  auto [it, inserted] = running_.emplace(spec.id.get(), std::move(rj));
  DMSIM_ASSERT(inserted, "job already running");
  if (g_running_) g_running_->set(static_cast<std::int64_t>(running_.size()));
  RunningJob& job = it->second;
  project_end(spec.id, job);

  if (policy_.dynamic_updates() && !job.guaranteed) {
    ++global_updatable_;
    // The zeroth window runs from start until the first update; staggering
    // stretches it to up to 1.5x the update interval. In GlobalBatch mode
    // the next tick is at most one interval away, so the interval is a
    // conservative cover for the gap.
    Seconds first_gap = config_.update_interval;
    if (config_.update_mode == UpdateMode::PerJobStaggered) {
      first_gap = config_.update_interval * (0.5 + update_phase(spec.id));
      job.update_event = engine_.schedule_typed_after(
          first_gap, sim::EventPayload::monitor_update(spec.id.get()));
    } else if (!global_update_scheduled_) {
      global_update_scheduled_ = true;
      engine_.schedule_typed_after(config_.update_interval,
                                   sim::EventPayload::global_batch_tick());
    }
    cover_first_window(spec.id, job, first_gap);
  }
  if (config_.enforce_walltime && spec.walltime > 0.0) {
    job.walltime_event = engine_.schedule_typed_after(
        spec.walltime, sim::EventPayload::walltime_kill(spec.id.get()));
  }
}

void Scheduler::cover_first_window(JobId id, RunningJob& rj, Seconds first_gap) {
  const trace::JobSpec& spec = spec_of(rj.spec_index);
  const MiB plan = monitor_->plan_initial(id, spec, rj.progress,
                                          effective_slowdown(rj), first_gap);
  // A plan at or below the request is already covered by the initial
  // allocation; leave the ledger untouched (and the event stream unchanged).
  if (plan <= spec.requested_mem) return;

  const std::span<const NodeId> hosts = cluster_.hosts_of(id);
  bool oom = false;
  bool any_changed = false;
  MiB acquired = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const MiB current = cluster_.slot(id, hosts[i]).total();
    const MiB demand =
        std::max(current, static_cast<MiB>(std::llround(
                              static_cast<double>(plan) * spec.usage_scale(i))));
    if (demand == current) continue;  // grow-only: never shrink at start
    const policy::ResizeOutcome out =
        policy::resize_to_demand(cluster_, id, hosts[i], demand);
    acquired += out.acquired;
    any_changed = true;
    if (!out.satisfied) {
      oom = true;
      break;
    }
  }
  if (!any_changed) return;
  rj.provisioned = plan;
  if (h_grow_mib_ != nullptr && acquired > 0) h_grow_mib_->record(acquired);
  if (obs::tracing(obs_)) {
    obs_->sink->emit(
        obs::Event{obs::EventKind::MonitorUpdate, engine_.now(), id.get()}
            .in_span(obs::Event::kNone,
                     obs::span_id(id.get(), rj.restarts, obs::SpanPhase::Running))
            .with("demand_mib", plan)
            .with("released_mib", static_cast<MiB>(0))
            .with("oom", oom ? 1 : 0));
  }
  if (oom) {
    // The first window cannot be provisioned. Killing here would corrupt the
    // scheduling pass iterating pending_, so pull the job's first update to
    // "now": apply_update re-detects the shortfall and routes it through the
    // normal OOM handling once the pass has finished.
    engine_.cancel(rj.update_event);
    rj.update_event = engine_.schedule_typed_after(
        0.0, sim::EventPayload::monitor_update(id.get()));
  }
}

Seconds Scheduler::reservation_shadow_time(const trace::JobSpec& head) const {
  const Seconds now = engine_.now();
  if (running_.empty()) return now;

  struct Release {
    Seconds time;
    int nodes;
    MiB mem;
  };
  std::vector<Release> releases;
  releases.reserve(running_.size());
  for (const auto& [id_value, rj] : running_) {
    const trace::JobSpec& spec = spec_of(rj.spec_index);
    // Conservative projected end: the later of the walltime-based estimate
    // and the current slowdown-based projection. Progress must be brought
    // current (rj.progress is only folded on events).
    double progress = rj.progress;
    if (spec.duration > 0.0) {
      progress = std::min(
          1.0, progress + (now - rj.last_fold) /
                              (spec.duration * effective_slowdown(rj)));
    }
    const Seconds by_walltime = rj.start_time + std::max(spec.walltime, 0.0);
    const Seconds by_progress =
        now +
        std::max(0.0, 1.0 - progress) * spec.duration * effective_slowdown(rj);
    MiB mem = 0;
    for (const NodeId h : cluster_.hosts_of(spec.id)) {
      mem += cluster_.slot(spec.id, h).total();
    }
    releases.push_back(
        Release{std::max({now, by_walltime, by_progress}), spec.num_nodes, mem});
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.time < b.time; });

  int avail_nodes = cluster_.idle_hostable_nodes();
  MiB free_mem = cluster_.total_free();
  const MiB need_mem = static_cast<MiB>(head.num_nodes) * head.requested_mem;
  const auto satisfied = [&] {
    return avail_nodes >= head.num_nodes && free_mem >= need_mem;
  };
  if (satisfied()) return now;  // blocked by fragmentation only
  for (const Release& r : releases) {
    avail_nodes += r.nodes;
    free_mem += r.mem;
    if (satisfied()) return r.time;
  }
  // Once everything drains, lending vanishes and a feasible head can start;
  // approximate the shadow with the final release time.
  return releases.back().time;
}

// ---------------------------------------------------------------------------
// Job lifecycle events
// ---------------------------------------------------------------------------

void Scheduler::fold_progress(RunningJob& rj) {
  const Seconds now = engine_.now();
  const trace::JobSpec& spec = spec_of(rj.spec_index);
  if (spec.duration <= 0.0) {
    rj.progress = 1.0;
  } else {
    const double rate = 1.0 / (spec.duration * effective_slowdown(rj));
    rj.progress =
        std::min(1.0, rj.progress + (now - rj.last_fold) * rate);
  }
  rj.last_fold = now;
}

void Scheduler::project_end(JobId id, RunningJob& rj) {
  const trace::JobSpec& spec = spec_of(rj.spec_index);
  engine_.cancel(rj.end_event);
  const Seconds remaining =
      std::max(0.0, 1.0 - rj.progress) * spec.duration * effective_slowdown(rj);
  rj.end_event = engine_.schedule_typed_after(
      remaining, sim::EventPayload::job_end(id.get()));
}

void Scheduler::refresh_slowdowns() {
  if (running_.empty()) {
    inc_slowdowns_.reset();
    cluster_.clear_contention_dirty();
    return;
  }
  // Fast path: with no remote memory anywhere there is no contention and no
  // latency exposure — every job runs at full speed.
  if (cluster_.total_lent() == 0) {
    inc_slowdowns_.reset();
    cluster_.clear_contention_dirty();
    for (auto& [id_value, rj] : running_) {
      if (rj.slowdown != 1.0) {
        fold_progress(rj);
        rj.slowdown = 1.0;
        project_end(JobId{id_value}, rj);
      }
    }
    return;
  }
  // Incremental: only jobs whose lender pressure or slot totals moved since
  // the last refresh are re-evaluated, against a persistent pressure buffer.
  running_ids_scratch_.clear();
  for (const auto& [id_value, rj] : running_) {
    (void)rj;
    running_ids_scratch_.push_back(id_value);
  }
  slowdown_updates_.clear();
  inc_slowdowns_.refresh(
      cluster_, running_ids_scratch_,
      [this](JobId id) {
        const auto it = running_.find(id.get());
        return it == running_.end()
                   ? slowdown::IncrementalSlowdowns::kNotRunning
                   : spec_of(it->second.spec_index).app_profile;
      },
      slowdown_updates_);
  cluster_.clear_contention_dirty();
  for (const auto& update : slowdown_updates_) {
    RunningJob& rj = running_.at(update.job.get());
    if (std::abs(update.slowdown - rj.slowdown) <= kSlowdownEps) continue;
    fold_progress(rj);
    rj.slowdown = update.slowdown;
    project_end(update.job, rj);
  }
}

bool Scheduler::slowdowns_fresh() const {
  std::vector<slowdown::ContentionModel::JobInput> inputs;
  std::vector<double> cached;
  inputs.reserve(running_.size());
  cached.reserve(running_.size());
  for (const auto& [id_value, rj] : running_) {
    inputs.push_back(slowdown::ContentionModel::JobInput{
        JobId{id_value}, spec_of(rj.spec_index).app_profile});
    cached.push_back(rj.slowdown);
  }
  const std::vector<double> fresh = model_.evaluate(cluster_, inputs);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    // The incremental refresher skips re-projection inside kSlowdownEps, so
    // a cached value may sit up to that far from the model's answer.
    if (std::abs(fresh[i] - cached[i]) > kSlowdownEps) return false;
  }
  return true;
}

void Scheduler::cancel_job_events(RunningJob& rj) {
  engine_.cancel(rj.end_event);
  engine_.cancel(rj.update_event);
  engine_.cancel(rj.walltime_event);
  rj.end_event = rj.update_event = rj.walltime_event = sim::EventId{};
}

void Scheduler::release_dependents(JobId pred) {
  const auto it = dependents_.find(pred.get());
  if (it == dependents_.end()) return;
  const Seconds now = engine_.now();
  for (const std::size_t i : it->second) {
    const trace::JobSpec& spec = workload_[i];
    const Seconds when =
        std::max(spec.submit_time, now + std::max(spec.think_time, 0.0));
    engine_.schedule_typed(when, sim::EventPayload::job_submit(i));
  }
  dependents_.erase(it);
}

void Scheduler::on_job_end(JobId id) {
  const auto it = running_.find(id.get());
  DMSIM_ASSERT(it != running_.end(), "end event for a job that is not running");
  RunningJob& rj = it->second;
  touch_utilization();
  fold_progress(rj);
  DMSIM_ASSERT(rj.progress >= 1.0 - 1e-6, "job ended before completing work");

  const trace::JobSpec& spec = spec_of(rj.spec_index);
  cancel_job_events(rj);
  monitor_->on_job_stop(id);
  cluster_.finish_job(id);
  busy_nodes_ -= spec.num_nodes;

  JobRecord& rec = record_of(id);
  rec.end_time = engine_.now();
  rec.outcome = JobOutcome::Completed;
  ++totals_.completed;
  trace_job(obs::EventKind::JobComplete, id, rj.restarts);

  if (policy_.dynamic_updates() && !rj.guaranteed) --global_updatable_;
  running_.erase(it);
  if (g_running_) g_running_->set(static_cast<std::int64_t>(running_.size()));
  release_dependents(id);
  refresh_slowdowns();
  if (!pending_.empty()) request_scheduling_pass();
}

Scheduler::UpdateResult Scheduler::apply_update(RunningJob& rj, JobId id) {
  UpdateResult result;
  // Default interval so the early-return path (job about to end) reschedules
  // exactly as it always did.
  result.next_interval = config_.update_interval;
  ++totals_.update_events;
  fold_progress(rj);
  if (rj.progress >= 1.0 - kProgressEps) return result;  // end event fires now

  const double window_start = rj.checkpoint;
  rj.checkpoint = rj.progress;  // Monitor point doubles as the C/R checkpoint
  const trace::JobSpec& spec = spec_of(rj.spec_index);

  // Realistic monitors make provisioning a bet: the estimate sized the last
  // window's allocation, the trace is the truth. If true usage exceeded what
  // was provisioned, the job touched memory it never had — a runtime OOM.
  // The oracle is exempt by construction (its window estimates are exact).
  if (monitor_->models_runtime_oom()) {
    const MiB true_elapsed = spec.usage.max_in(window_start, rj.progress);
    if (true_elapsed > rj.provisioned) {
      result.oom = true;
      if (obs::tracing(obs_)) {
        obs_->sink->emit(
            obs::Event{obs::EventKind::MonitorUpdate, engine_.now(), id.get()}
                .in_span(obs::Event::kNone,
                         obs::span_id(id.get(), rj.restarts,
                                      obs::SpanPhase::Running))
                .with("demand_mib", true_elapsed)
                .with("released_mib", static_cast<MiB>(0))
                .with("oom", 1));
      }
      return result;
    }
  }

  // Demand for the coming window and the time until the next update — both
  // come from the monitor (§2.3: Monitor feeds the Decider). The look-ahead
  // is sized from the actual gap the monitor chooses, not a fixed interval.
  const monitor::Reading reading = monitor_->update(
      id, spec, rj.progress, effective_slowdown(rj), config_.update_interval,
      /*interval_locked=*/config_.update_mode == UpdateMode::GlobalBatch);
  result.next_interval = reading.next_interval;
  const MiB base_demand = reading.demand;
  rj.provisioned = base_demand;
  obs::record(h_mon_error_, reading.abs_error);
  obs::record(h_mon_overhead_, reading.overhead_us);
  if (g_mon_regions_ != nullptr) {
    g_mon_regions_->set(reading.regions);
  }

  const std::span<const NodeId> hosts = cluster_.hosts_of(id);
  MiB acquired = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    // Per-node heterogeneity: lighter nodes demand a scaled-down footprint.
    const MiB demand = static_cast<MiB>(std::llround(
        static_cast<double>(base_demand) * spec.usage_scale(i)));
    const policy::ResizeOutcome out =
        policy::resize_to_demand(cluster_, id, hosts[i], demand);
    result.released += out.released;
    acquired += out.acquired;
    result.remote_changed |= out.remote_changed;
    if (!out.satisfied) {
      result.oom = true;
      break;
    }
  }
  // After resizing, promote borrowed memory toward nearer tiers freed up by
  // the shrinks (tiered topologies only — on a flat topology this is
  // statically dead and the flat event stream is untouched).
  if (!result.oom && cluster_.tiered()) {
    MiB migrated = 0;
    for (const NodeId host : hosts) {
      const policy::MigrateOutcome moved =
          policy::migrate_to_nearest_tier(cluster_, id, host);
      migrated += moved.migrated;
      result.remote_changed |= moved.remote_changed;
    }
    if (h_migrate_mib_ != nullptr && migrated > 0) {
      h_migrate_mib_->record(migrated);
    }
  }
  // Actuator magnitude distributions (simulated MiB, so exports stay
  // deterministic — wall-clock resize latency would not).
  if (h_grow_mib_ != nullptr && acquired > 0) h_grow_mib_->record(acquired);
  if (h_shrink_mib_ != nullptr && result.released > 0) {
    h_shrink_mib_->record(result.released);
  }
  // Fold the modeled monitoring cost into the execution rate. The oracle's
  // factor is exactly 1.0 forever, so this branch never fires there and the
  // end-event stream is untouched.
  if (reading.overhead_factor != rj.monitor_overhead) {
    rj.monitor_overhead = reading.overhead_factor;
    if (!result.oom) project_end(id, rj);
  }
  if (obs::tracing(obs_)) {
    obs_->sink->emit(
        obs::Event{obs::EventKind::MonitorUpdate, engine_.now(), id.get()}
            .in_span(obs::Event::kNone,
                     obs::span_id(id.get(), rj.restarts,
                                  obs::SpanPhase::Running))
            .with("demand_mib", base_demand)
            .with("released_mib", result.released)
            .with("oom", result.oom ? 1 : 0));
  }
  return result;
}

void Scheduler::on_update(JobId id) {
  const auto it = running_.find(id.get());
  DMSIM_ASSERT(it != running_.end(), "update event for a job that is not running");
  RunningJob& rj = it->second;
  touch_utilization();
  const UpdateResult result = apply_update(rj, id);

  if (result.oom) {
    kill_and_requeue(id,
                     config_.oom_handling == OomHandling::CheckpointRestart);
    return;
  }

  // The monitor owns the cadence: the next update lands where its chosen
  // interval says, and apply_update sized its look-ahead to match. (A
  // GlobalBatch run can reach here via cover_first_window's immediate
  // update; the global tick chain keeps driving such jobs, so no per-job
  // chain is started.)
  if (config_.update_mode == UpdateMode::PerJobStaggered) {
    rj.update_event = engine_.schedule_typed_after(
        result.next_interval, sim::EventPayload::monitor_update(id.get()));
  }
  // Contention shifts not only when borrow edges change: pressure ratios
  // divide by a slot's TOTAL allocation, so a purely local resize of a
  // remote-borrowing slot moves other jobs' slowdowns too. The cluster
  // marks exactly those slots dirty — refresh whenever this update left
  // anything dirty, not just on borrow-edge changes.
  if (result.remote_changed || !cluster_.dirty_jobs().empty() ||
      !cluster_.dirty_lenders().empty()) {
    refresh_slowdowns();
  }
  if (result.released > 0 && !pending_.empty()) request_scheduling_pass();
}

void Scheduler::on_global_update() {
  // §2.3 sim_mgr mode: a single timer updates every running dynamic job.
  touch_utilization();
  obs::bump(c_update_batches_);
  std::vector<std::uint32_t> ids;
  ids.reserve(running_.size());
  for (const auto& [id_value, rj] : running_) {
    if (!rj.guaranteed) ids.push_back(id_value);
  }
  // running_ is an unordered_map: its iteration order depends on insertion
  // and rehash history, which a snapshot restore does not reproduce. The
  // batch must touch jobs in a canonical order or replay diverges.
  std::sort(ids.begin(), ids.end());
  bool any_remote_changed = false;
  MiB released = 0;
  std::vector<JobId> victims;
  for (const std::uint32_t id_value : ids) {
    const auto it = running_.find(id_value);
    if (it == running_.end()) continue;  // killed earlier in this batch
    const UpdateResult result = apply_update(it->second, JobId{id_value});
    any_remote_changed |= result.remote_changed;
    released += result.released;
    if (result.oom) victims.push_back(JobId{id_value});
  }
  for (const JobId victim : victims) {
    kill_and_requeue(victim,
                     config_.oom_handling == OomHandling::CheckpointRestart);
  }
  // With victims, the batch relies on kill_and_requeue for the survivors'
  // refresh: its unconditional refresh_slowdowns() runs after the last kill,
  // i.e. after every ledger change of this batch (the earlier apply_updates
  // included), and a refresh covers ALL dirty jobs, not just the victim.
  // Pin that reasoning: the dirty sets must be fully consumed here.
  if (!victims.empty()) {
    DMSIM_ASSERT(
        cluster_.dirty_jobs().empty() && cluster_.dirty_lenders().empty(),
        "global batch with OOM victims left slowdown inputs dirty");
  }
  if (victims.empty() &&
      (any_remote_changed || !cluster_.dirty_jobs().empty() ||
       !cluster_.dirty_lenders().empty())) {
    refresh_slowdowns();
  }
  if (released > 0 && !pending_.empty()) request_scheduling_pass();

  // Re-arm only while an update-participating job is running. Guaranteed
  // jobs are exempt from Monitor updates, so once they are all that remains
  // the chain used to tick as a pure no-op until the last of them finished
  // — dragging the engine horizon along with it. start_running() restarts
  // the chain when the next updatable job begins.
  if (global_updatable_ > 0) {
    engine_.schedule_typed_after(config_.update_interval,
                                 sim::EventPayload::global_batch_tick());
  } else {
    global_update_scheduled_ = false;
  }
}

void Scheduler::kill_and_requeue(JobId id, bool checkpoint_restart) {
  const auto it = running_.find(id.get());
  DMSIM_ASSERT(it != running_.end(), "killing a job that is not running");
  RunningJob& rj = it->second;
  const trace::JobSpec& spec = spec_of(rj.spec_index);

  ++totals_.oom_events;
  JobRecord& rec = record_of(id);
  ++rec.oom_failures;
  trace_job(obs::EventKind::JobOomKill, id, rj.restarts,
            checkpoint_restart ? "checkpoint_restart" : "fail_restart");

  cancel_job_events(rj);
  monitor_->on_job_stop(id);
  cluster_.finish_job(id);
  busy_nodes_ -= spec.num_nodes;

  const int restarts = rj.restarts + 1;
  const double checkpoint = checkpoint_restart ? rj.checkpoint : 0.0;
  const std::size_t spec_index = rj.spec_index;
  if (policy_.dynamic_updates() && !rj.guaranteed) --global_updatable_;
  running_.erase(it);
  if (g_running_) g_running_->set(static_cast<std::int64_t>(running_.size()));

  if (restarts > config_.max_restarts) {
    rec.end_time = engine_.now();
    rec.outcome = JobOutcome::AbandonedOom;
    ++totals_.abandoned;
    // Abandon opens no new span; its cause is the killed incarnation's run.
    if (obs::tracing(obs_)) {
      obs_->sink->emit(
          obs::Event{obs::EventKind::JobAbandon, engine_.now(), id.get()}
              .in_span(obs::Event::kNone,
                       obs::span_id(id.get(), restarts - 1,
                                    obs::SpanPhase::Running)));
    }
    release_dependents(id);
  } else {
    const bool guaranteed = config_.guaranteed_after_failures > 0 &&
                            restarts >= config_.guaranteed_after_failures;
    const int priority = restarts * config_.priority_boost_per_failure;
    if (obs::tracing(obs_)) {
      // The requeue opens the next incarnation's queued span, caused by the
      // run the OOM kill just ended.
      obs_->sink->emit(
          obs::Event{obs::EventKind::JobRequeue, engine_.now(), id.get()}
              .in_span(obs::span_id(id.get(), restarts, obs::SpanPhase::Queued),
                       obs::span_id(id.get(), restarts - 1,
                                    obs::SpanPhase::Running))
              .with("restarts", restarts)
              .with("guaranteed", guaranteed ? 1 : 0));
    }
    enqueue_pending(
        PendingEntry{spec_index, restarts, checkpoint, guaranteed, priority});
    ++totals_.requeues;
    request_scheduling_pass();
  }
  refresh_slowdowns();
}

void Scheduler::on_walltime(JobId id) {
  const auto it = running_.find(id.get());
  DMSIM_ASSERT(it != running_.end(), "walltime event for a job that is not running");
  RunningJob& rj = it->second;
  touch_utilization();
  const trace::JobSpec& spec = spec_of(rj.spec_index);

  cancel_job_events(rj);
  monitor_->on_job_stop(id);
  cluster_.finish_job(id);
  busy_nodes_ -= spec.num_nodes;

  JobRecord& rec = record_of(id);
  rec.end_time = engine_.now();
  rec.outcome = JobOutcome::KilledWalltime;
  ++totals_.walltime_kills;
  trace_job(obs::EventKind::JobWalltimeKill, id, rj.restarts);

  if (policy_.dynamic_updates() && !rj.guaranteed) --global_updatable_;
  running_.erase(it);
  if (g_running_) g_running_->set(static_cast<std::int64_t>(running_.size()));
  release_dependents(id);
  refresh_slowdowns();
  if (!pending_.empty()) request_scheduling_pass();
}

// ---------------------------------------------------------------------------
// Utilization accounting and sampling
// ---------------------------------------------------------------------------

void Scheduler::touch_utilization() {
  const Seconds now = engine_.now();
  const Seconds dt = now - util_last_touch_;
  if (dt > 0.0) {
    allocated_integral_ += static_cast<double>(cluster_.total_allocated()) * dt;
    busy_integral_ += static_cast<double>(busy_nodes_) * dt;
    util_last_touch_ = now;
  }
}

double Scheduler::avg_allocated_mib() const noexcept {
  const Seconds t = std::max(horizon_, util_last_touch_);
  return t > 0.0 ? allocated_integral_ / t : 0.0;
}

double Scheduler::avg_busy_nodes() const noexcept {
  const Seconds t = std::max(horizon_, util_last_touch_);
  return t > 0.0 ? busy_integral_ / t : 0.0;
}

MiB Scheduler::current_used_memory() const {
  const Seconds now = engine_.now();
  MiB used = 0;
  for (const auto& [id_value, rj] : running_) {
    const trace::JobSpec& spec = spec_of(rj.spec_index);
    double progress = rj.progress;
    if (spec.duration > 0.0) {
      progress = std::min(
          1.0, progress + (now - rj.last_fold) /
                              (spec.duration * effective_slowdown(rj)));
    }
    const MiB per_node = spec.usage.at(progress);
    double scale_sum = 0.0;
    for (int n = 0; n < spec.num_nodes; ++n) {
      scale_sum += spec.usage_scale(static_cast<std::size_t>(n));
    }
    used += static_cast<MiB>(std::llround(
        static_cast<double>(per_node) * scale_sum));
  }
  return used;
}

void Scheduler::take_sample() {
  touch_utilization();
  samples_.push_back(SystemSample{engine_.now(), cluster_.total_allocated(),
                                  current_used_memory(), busy_nodes_,
                                  pending_.size()});
  const std::uint64_t terminal = totals_.completed + totals_.abandoned +
                                 totals_.walltime_kills;
  const std::uint64_t feasible =
      static_cast<std::uint64_t>(records_.size()) - infeasible_count_;
  if (terminal < feasible) {
    engine_.schedule_typed_after(config_.sample_interval,
                                 sim::EventPayload::trace_sample());
  }
}

// ---------------------------------------------------------------------------
// Snapshot (checkpoint/restore)
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kSchedSection =
    snapshot::section_tag('S', 'C', 'H', 'D');
}  // namespace

void Scheduler::save_state(snapshot::Writer& writer) const {
  writer.section(kSchedSection);
  writer.u64(workload_.size());

  writer.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const PendingEntry& e : pending_) {
    writer.u64(e.spec_index);
    writer.i64(e.restarts);
    writer.f64(e.checkpoint);
    writer.boolean(e.guaranteed);
    writer.i64(e.priority);
    writer.f64(e.enqueue_time);
    writer.u64(e.last_deny_epoch);
    // Serialized by content; restore re-interns the static literal. The
    // cache must survive the snapshot: replaying a cached denial has
    // observable effects (counter bump, trace event) that re-running host
    // selection would not reproduce identically on the lenders_dry path.
    writer.str(e.last_deny_reason != nullptr
                   ? std::string_view(e.last_deny_reason)
                   : std::string_view{});
  }

  // Running jobs in id order: unordered_map iteration order is a function
  // of insertion/rehash history, which restore does not reproduce.
  std::vector<std::uint32_t> ids;
  ids.reserve(running_.size());
  for (const auto& [id_value, rj] : running_) {
    (void)rj;
    ids.push_back(id_value);
  }
  std::sort(ids.begin(), ids.end());
  writer.u32(static_cast<std::uint32_t>(ids.size()));
  for (const std::uint32_t id_value : ids) {
    const RunningJob& rj = running_.at(id_value);
    writer.u32(id_value);
    writer.u64(rj.spec_index);
    writer.f64(rj.start_time);
    writer.f64(rj.progress);
    writer.f64(rj.last_fold);
    writer.f64(rj.slowdown);
    writer.u64(rj.end_event.value);
    writer.u64(rj.update_event.value);
    writer.u64(rj.walltime_event.value);
    writer.f64(rj.checkpoint);
    writer.i64(rj.restarts);
    writer.boolean(rj.guaranteed);
    // Format v5: monitor fold state per running job.
    writer.f64(rj.monitor_overhead);
    writer.i64(rj.provisioned);
  }

  std::vector<std::uint32_t> preds;
  preds.reserve(dependents_.size());
  for (const auto& [pred, specs] : dependents_) {
    (void)specs;
    preds.push_back(pred);
  }
  std::sort(preds.begin(), preds.end());
  writer.u32(static_cast<std::uint32_t>(preds.size()));
  for (const std::uint32_t pred : preds) {
    const std::vector<std::size_t>& specs = dependents_.at(pred);
    writer.u32(pred);
    writer.u32(static_cast<std::uint32_t>(specs.size()));
    for (const std::size_t i : specs) writer.u64(i);
  }

  writer.u32(static_cast<std::uint32_t>(records_.size()));
  for (const JobRecord& r : records_) {
    writer.u32(r.id.get());
    writer.f64(r.submit_time);
    writer.f64(r.first_start);
    writer.f64(r.last_start);
    writer.f64(r.end_time);
    writer.i64(r.num_nodes);
    writer.i64(r.requested_mem);
    writer.i64(r.peak_usage);
    writer.i64(r.oom_failures);
    writer.boolean(r.ran_guaranteed);
    writer.boolean(r.infeasible);
    writer.u8(static_cast<std::uint8_t>(r.outcome));
  }

  writer.u32(static_cast<std::uint32_t>(samples_.size()));
  for (const SystemSample& s : samples_) {
    writer.f64(s.time);
    writer.i64(s.allocated);
    writer.i64(s.used);
    writer.i64(s.busy_nodes);
    writer.u64(s.pending_jobs);
  }

  writer.u64(totals_.completed);
  writer.u64(totals_.oom_events);
  writer.u64(totals_.requeues);
  writer.u64(totals_.fcfs_starts);
  writer.u64(totals_.backfill_starts);
  writer.u64(totals_.guaranteed_starts);
  writer.u64(totals_.update_events);
  writer.u64(totals_.scheduling_passes);
  writer.u64(totals_.abandoned);
  writer.u64(totals_.walltime_kills);
  writer.u64(infeasible_count_);

  writer.boolean(pass_scheduled_);
  writer.boolean(global_update_scheduled_);
  writer.i64(global_updatable_);
  writer.f64(last_pass_time_);
  writer.f64(util_last_touch_);
  writer.f64(allocated_integral_);
  writer.f64(busy_integral_);
  writer.i64(busy_nodes_);
  writer.f64(horizon_);

  // Format v5: per-job monitor state (noise counters / adaptive regions).
  monitor_->save_state(writer);
}

void Scheduler::restore_state(snapshot::Reader& reader, std::uint32_t version) {
  reader.expect_section(kSchedSection, "scheduler");
  if (reader.u64() != workload_.size()) {
    throw snapshot::SnapshotError(
        "snapshot: workload size mismatch — restore requires the identical "
        "workload to be submitted first");
  }
  const auto spec_index_checked = [this](std::uint64_t index) {
    if (index >= workload_.size()) {
      throw snapshot::SnapshotError("snapshot: spec index out of range");
    }
    return static_cast<std::size_t>(index);
  };

  pending_.clear();
  const std::uint32_t n_pending = reader.u32();
  for (std::uint32_t i = 0; i < n_pending; ++i) {
    PendingEntry e;
    e.spec_index = spec_index_checked(reader.u64());
    e.restarts = static_cast<int>(reader.i64());
    e.checkpoint = reader.f64();
    e.guaranteed = reader.boolean();
    e.priority = static_cast<int>(reader.i64());
    e.enqueue_time = reader.f64();
    e.last_deny_epoch = reader.u64();
    e.last_deny_reason = policy::intern_deny_reason(reader.str());
    pending_.push_back(e);
  }

  running_.clear();
  const std::uint32_t n_running = reader.u32();
  running_.reserve(n_running);
  for (std::uint32_t i = 0; i < n_running; ++i) {
    const std::uint32_t id_value = reader.u32();
    RunningJob rj;
    rj.spec_index = spec_index_checked(reader.u64());
    rj.start_time = reader.f64();
    rj.progress = reader.f64();
    rj.last_fold = reader.f64();
    rj.slowdown = reader.f64();
    rj.end_event = sim::EventId{reader.u64()};
    rj.update_event = sim::EventId{reader.u64()};
    rj.walltime_event = sim::EventId{reader.u64()};
    rj.checkpoint = reader.f64();
    rj.restarts = static_cast<int>(reader.i64());
    rj.guaranteed = reader.boolean();
    if (version >= 5) {
      rj.monitor_overhead = reader.f64();
      rj.provisioned = reader.i64();
    } else {
      // Pre-monitor snapshots were oracle runs by definition (a non-oracle
      // config changes the fingerprint): zero overhead, request provisioned.
      rj.monitor_overhead = 1.0;
      rj.provisioned = workload_[rj.spec_index].requested_mem;
    }
    if (!running_.emplace(id_value, rj).second) {
      throw snapshot::SnapshotError("snapshot: duplicate running job");
    }
  }

  dependents_.clear();
  const std::uint32_t n_deps = reader.u32();
  for (std::uint32_t i = 0; i < n_deps; ++i) {
    const std::uint32_t pred = reader.u32();
    const std::uint32_t n_specs = reader.u32();
    std::vector<std::size_t>& specs = dependents_[pred];
    specs.reserve(n_specs);
    for (std::uint32_t k = 0; k < n_specs; ++k) {
      specs.push_back(spec_index_checked(reader.u64()));
    }
  }

  // records_ / record_index_ were rebuilt deterministically by
  // submit_workload (same workload, same order); overwrite the mutable
  // fields in place, verifying the identity columns line up.
  const std::uint32_t n_records = reader.u32();
  if (n_records != records_.size()) {
    throw snapshot::SnapshotError("snapshot: job record count mismatch");
  }
  for (JobRecord& r : records_) {
    if (reader.u32() != r.id.get()) {
      throw snapshot::SnapshotError("snapshot: job record id mismatch");
    }
    r.submit_time = reader.f64();
    r.first_start = reader.f64();
    r.last_start = reader.f64();
    r.end_time = reader.f64();
    r.num_nodes = static_cast<int>(reader.i64());
    r.requested_mem = reader.i64();
    r.peak_usage = reader.i64();
    r.oom_failures = static_cast<int>(reader.i64());
    r.ran_guaranteed = reader.boolean();
    r.infeasible = reader.boolean();
    const std::uint8_t outcome = reader.u8();
    if (outcome > static_cast<std::uint8_t>(JobOutcome::KilledWalltime)) {
      throw snapshot::SnapshotError("snapshot: unknown job outcome");
    }
    r.outcome = static_cast<JobOutcome>(outcome);
  }

  samples_.clear();
  const std::uint32_t n_samples = reader.u32();
  samples_.reserve(n_samples);
  for (std::uint32_t i = 0; i < n_samples; ++i) {
    SystemSample s;
    s.time = reader.f64();
    s.allocated = reader.i64();
    s.used = reader.i64();
    s.busy_nodes = static_cast<int>(reader.i64());
    s.pending_jobs = static_cast<std::size_t>(reader.u64());
    samples_.push_back(s);
  }

  totals_.completed = reader.u64();
  totals_.oom_events = reader.u64();
  totals_.requeues = reader.u64();
  totals_.fcfs_starts = reader.u64();
  totals_.backfill_starts = reader.u64();
  totals_.guaranteed_starts = reader.u64();
  totals_.update_events = reader.u64();
  totals_.scheduling_passes = reader.u64();
  totals_.abandoned = reader.u64();
  totals_.walltime_kills = reader.u64();
  if (reader.u64() != infeasible_count_) {
    throw snapshot::SnapshotError(
        "snapshot: infeasible job count mismatch — different workload or "
        "cluster configuration");
  }

  pass_scheduled_ = reader.boolean();
  global_update_scheduled_ = reader.boolean();
  global_updatable_ = static_cast<int>(reader.i64());
  last_pass_time_ = reader.f64();
  util_last_touch_ = reader.f64();
  allocated_integral_ = reader.f64();
  busy_integral_ = reader.f64();
  busy_nodes_ = static_cast<int>(reader.i64());
  horizon_ = reader.f64();

  // Monitor state: v5 sections carry it; older sections predate the monitor
  // subsystem and restore a fresh (empty) oracle-equivalent monitor.
  monitor_ = monitor::make_monitor(config_.monitor);
  if (version >= 5) monitor_->restore_state(reader);

  // The incremental slowdown cache is intentionally NOT serialized: reset()
  // forces a full rebuild on the next refresh, which recomputes bitwise-
  // equal slowdowns for every clean job (|delta| <= kSlowdownEps skips the
  // re-projection), so replay is unaffected.
  inc_slowdowns_.reset();
  running_ids_scratch_.clear();
  slowdown_updates_.clear();
}

}  // namespace dmsim::sched
