#include "metrics/json_export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace dmsim::metrics {

void JsonWriter::comma_if_needed() {
  if (!stack_.empty() && stack_.back().second && !pending_key_) {
    out_ << ',';
  }
}

void JsonWriter::note_value() {
  started_ = true;
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) stack_.back().second = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  note_value();
  out_ << '{';
  stack_.emplace_back(Scope::Object, false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DMSIM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Object,
               "end_object without matching begin_object");
  DMSIM_ASSERT(!pending_key_, "dangling key before end_object");
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  note_value();
  out_ << '[';
  stack_.emplace_back(Scope::Array, false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DMSIM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Array,
               "end_array without matching begin_array");
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  DMSIM_ASSERT(!stack_.empty() && stack_.back().first == Scope::Object,
               "key outside of an object");
  DMSIM_ASSERT(!pending_key_, "two keys in a row");
  if (stack_.back().second) out_ << ',';
  stack_.back().second = true;
  out_ << '"' << json_escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  note_value();
  out_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  note_value();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  note_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  note_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_if_needed();
  note_value();
  out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  note_value();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  DMSIM_ASSERT(complete(), "JSON document is incomplete");
  return out_.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

const char* outcome_string(sched::JobOutcome outcome) {
  switch (outcome) {
    case sched::JobOutcome::Completed:
      return "completed";
    case sched::JobOutcome::AbandonedOom:
      return "abandoned_oom";
    case sched::JobOutcome::KilledWalltime:
      return "killed_walltime";
    case sched::JobOutcome::NeverStarted:
      return "never_started";
  }
  return "unknown";
}

/// Nearest-rank quantile over a snapshot histogram entry: walk the occupied
/// buckets to the rank'd one and clamp its lower bound into [min, max] —
/// the same rule Histogram::quantile applies to its live bucket array.
std::int64_t entry_quantile(const obs::CountersSnapshot::HistogramEntry& h,
                            double q) {
  if (h.count == 0) return 0;
  const auto rank = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(h.count))),
      1);
  std::uint64_t seen = 0;
  for (const auto& [bucket, count] : h.buckets) {
    seen += count;
    if (seen >= rank) {
      const std::int64_t lower = obs::Histogram::bucket_lower_bound(bucket);
      return std::clamp(lower, h.min, h.max);
    }
  }
  return h.max;
}

}  // namespace

void write_telemetry(JsonWriter& w, const obs::CountersSnapshot& snap) {
  w.key("counters").begin_object();
  for (const auto& c : snap.counters) {
    w.key(c.name).value(c.value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : snap.gauges) {
    w.key(g.name).begin_object();
    w.key("value").value(g.value);
    w.key("high_water").value(g.high_water);
    w.end_object();
  }
  w.end_object();
  if (!snap.histograms.empty()) {
    w.key("histograms").begin_object();
    for (const auto& h : snap.histograms) {
      w.key(h.name).begin_object();
      w.key("count").value(h.count);
      w.key("sum").value(h.sum);
      w.key("min").value(h.min);
      w.key("max").value(h.max);
      w.key("p50").value(entry_quantile(h, 0.50));
      w.key("p95").value(entry_quantile(h, 0.95));
      w.key("p99").value(entry_quantile(h, 0.99));
      w.key("buckets").begin_array();
      for (const auto& [bucket, count] : h.buckets) {
        w.begin_array();
        w.value(static_cast<std::uint64_t>(bucket));
        w.value(count);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  if (!snap.series.empty()) {
    w.key("series").begin_object();
    for (const auto& s : snap.series) {
      w.key(s.name).begin_object();
      w.key("window_width").value(s.window_width);
      w.key("points").begin_array();
      for (const auto& p : s.points) {
        w.begin_object();
        w.key("window").value(p.window);
        w.key("count").value(p.count);
        w.key("sum").value(p.sum);
        w.key("min").value(p.min);
        w.key("max").value(p.max);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
}

std::string telemetry_to_json(const obs::CountersSnapshot& snap) {
  JsonWriter w;
  w.begin_object();
  write_telemetry(w, snap);
  w.end_object();
  return w.str();
}

std::string to_json(const SimulationResult& result, bool include_records,
                    bool include_samples) {
  JsonWriter w;
  w.begin_object();
  w.key("valid").value(result.valid);
  w.key("provisioned_memory_mib").value(result.provisioned_memory);
  w.key("system_cost_usd").value(result.system_cost_usd);
  w.key("avg_allocated_mib").value(result.avg_allocated_mib);
  w.key("avg_busy_nodes").value(result.avg_busy_nodes);

  w.key("summary").begin_object();
  const auto& s = result.summary;
  w.key("total_jobs").value(static_cast<std::uint64_t>(s.total_jobs));
  w.key("completed").value(static_cast<std::uint64_t>(s.completed));
  w.key("infeasible").value(static_cast<std::uint64_t>(s.infeasible));
  w.key("abandoned").value(static_cast<std::uint64_t>(s.abandoned));
  w.key("oom_events").value(s.oom_events);
  w.key("oom_job_fraction").value(s.oom_job_fraction());
  w.key("throughput_jobs_per_s").value(s.throughput);
  w.key("makespan_s").value(s.makespan());
  w.key("mean_response_s").value(s.response_time.mean());
  w.key("mean_wait_s").value(s.wait_time.mean());
  w.end_object();

  w.key("totals").begin_object();
  const auto& t = result.totals;
  w.key("fcfs_starts").value(t.fcfs_starts);
  w.key("backfill_starts").value(t.backfill_starts);
  w.key("guaranteed_starts").value(t.guaranteed_starts);
  w.key("requeues").value(t.requeues);
  w.key("update_events").value(t.update_events);
  w.key("scheduling_passes").value(t.scheduling_passes);
  w.key("walltime_kills").value(t.walltime_kills);
  w.end_object();

  w.key("engine_events").value(result.engine_events);

  if (!result.counters.empty()) {
    write_telemetry(w, result.counters);
  }

  if (include_records) {
    w.key("jobs").begin_array();
    for (const auto& r : result.records) {
      w.begin_object();
      w.key("id").value(static_cast<std::uint64_t>(r.id.get()));
      w.key("submit").value(r.submit_time);
      w.key("first_start").value(r.first_start);
      w.key("end").value(r.end_time);
      w.key("nodes").value(r.num_nodes);
      w.key("requested_mib").value(r.requested_mem);
      w.key("peak_mib").value(r.peak_usage);
      w.key("oom_failures").value(r.oom_failures);
      w.key("guaranteed").value(r.ran_guaranteed);
      w.key("infeasible").value(r.infeasible);
      w.key("outcome").value(outcome_string(r.outcome));
      w.end_object();
    }
    w.end_array();
  }

  if (include_samples) {
    w.key("samples").begin_array();
    for (const auto& sample : result.samples) {
      w.begin_object();
      w.key("time").value(sample.time);
      w.key("allocated_mib").value(sample.allocated);
      w.key("used_mib").value(sample.used);
      w.key("busy_nodes").value(sample.busy_nodes);
      w.key("pending_jobs").value(static_cast<std::uint64_t>(sample.pending_jobs));
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
  return w.str();
}

}  // namespace dmsim::metrics
