// Timeline and scheduling-quality metrics built on top of the raw records
// and system samples: utilization over time, memory waste (allocated vs
// actually used), and the bounded-slowdown metric standard in the job
// scheduling literature (response / max(runtime, tau)).
#pragma once

#include <span>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace dmsim::metrics {

/// Utilization aggregates over a run's system samples.
struct UtilizationReport {
  double avg_allocated_fraction = 0.0;  ///< allocated / capacity
  double avg_used_fraction = 0.0;       ///< ground-truth used / capacity
  double avg_waste_fraction = 0.0;      ///< (allocated - used) / allocated
  double peak_allocated_fraction = 0.0;
  double avg_busy_node_fraction = 0.0;
  double avg_pending_jobs = 0.0;

  [[nodiscard]] bool empty() const noexcept { return samples == 0; }
  std::size_t samples = 0;
};

/// Aggregate a sample series against the system's capacity.
[[nodiscard]] UtilizationReport utilization_report(
    std::span<const sched::SystemSample> samples, MiB total_capacity,
    int total_nodes);

/// Bounded slowdown of one job: response_time / max(runtime, tau). The
/// tau floor (default 10 s, as in Feitelson's metric) keeps very short jobs
/// from dominating the average.
[[nodiscard]] double bounded_slowdown(const sched::JobRecord& record,
                                      Seconds tau = 10.0);

/// Scheduling-quality aggregates over completed jobs.
struct SlowdownReport {
  util::OnlineStats bounded;      ///< bounded slowdown distribution
  double median_bounded = 0.0;
  double p90_bounded = 0.0;
  std::size_t jobs = 0;
};

[[nodiscard]] SlowdownReport slowdown_report(
    std::span<const sched::JobRecord> records, Seconds tau = 10.0);

/// Per-interval memory waste series: (time, allocated - used) in MiB.
/// Useful for plotting what the dynamic policy reclaims.
[[nodiscard]] std::vector<std::pair<Seconds, MiB>> waste_series(
    std::span<const sched::SystemSample> samples);

}  // namespace dmsim::metrics
