#include "metrics/metrics.hpp"

#include <algorithm>

namespace dmsim::metrics {

WorkloadSummary summarize(std::span<const sched::JobRecord> records,
                          const sched::SchedulerTotals& totals) {
  WorkloadSummary out;
  out.total_jobs = records.size();
  out.oom_events = totals.oom_events;

  bool any = false;
  for (const auto& rec : records) {
    if (rec.infeasible) {
      ++out.infeasible;
      continue;
    }
    if (!any) {
      out.first_submit = rec.submit_time;
      any = true;
    } else {
      out.first_submit = std::min(out.first_submit, rec.submit_time);
    }
    if (rec.oom_failures > 0) ++out.jobs_with_oom;
    switch (rec.outcome) {
      case sched::JobOutcome::Completed: {
        ++out.completed;
        out.last_end = std::max(out.last_end, rec.end_time);
        const double response = rec.response_time();
        out.response_time.add(response);
        out.response_times.push_back(response);
        out.wait_time.add(rec.wait_time());
        break;
      }
      case sched::JobOutcome::AbandonedOom:
        ++out.abandoned;
        break;
      case sched::JobOutcome::KilledWalltime:
      case sched::JobOutcome::NeverStarted:
        break;
    }
  }
  if (out.completed > 0 && out.makespan() > 0.0) {
    out.throughput =
        static_cast<double>(out.completed) / out.makespan();
  }
  return out;
}

}  // namespace dmsim::metrics
