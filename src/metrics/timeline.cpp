#include "metrics/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dmsim::metrics {

UtilizationReport utilization_report(
    std::span<const sched::SystemSample> samples, MiB total_capacity,
    int total_nodes) {
  DMSIM_ASSERT(total_capacity > 0, "capacity must be positive");
  DMSIM_ASSERT(total_nodes > 0, "node count must be positive");
  UtilizationReport out;
  out.samples = samples.size();
  if (samples.empty()) return out;

  const auto cap = static_cast<double>(total_capacity);
  double alloc_sum = 0.0;
  double used_sum = 0.0;
  double waste_sum = 0.0;
  std::size_t waste_count = 0;
  double busy_sum = 0.0;
  double pending_sum = 0.0;
  for (const auto& s : samples) {
    const auto alloc = static_cast<double>(s.allocated);
    const auto used = static_cast<double>(s.used);
    alloc_sum += alloc / cap;
    used_sum += used / cap;
    if (alloc > 0.0) {
      waste_sum += (alloc - used) / alloc;
      ++waste_count;
    }
    out.peak_allocated_fraction =
        std::max(out.peak_allocated_fraction, alloc / cap);
    busy_sum += static_cast<double>(s.busy_nodes) / total_nodes;
    pending_sum += static_cast<double>(s.pending_jobs);
  }
  const auto n = static_cast<double>(samples.size());
  out.avg_allocated_fraction = alloc_sum / n;
  out.avg_used_fraction = used_sum / n;
  out.avg_waste_fraction =
      waste_count > 0 ? waste_sum / static_cast<double>(waste_count) : 0.0;
  out.avg_busy_node_fraction = busy_sum / n;
  out.avg_pending_jobs = pending_sum / n;
  return out;
}

double bounded_slowdown(const sched::JobRecord& record, Seconds tau) {
  DMSIM_ASSERT(tau > 0.0, "tau must be positive");
  if (record.outcome != sched::JobOutcome::Completed) return 0.0;
  const Seconds response = record.response_time();
  const Seconds runtime = record.end_time - record.last_start;
  return response / std::max(runtime, tau);
}

SlowdownReport slowdown_report(std::span<const sched::JobRecord> records,
                               Seconds tau) {
  SlowdownReport out;
  std::vector<double> values;
  for (const auto& r : records) {
    if (r.outcome != sched::JobOutcome::Completed) continue;
    const double s = bounded_slowdown(r, tau);
    out.bounded.add(s);
    values.push_back(s);
  }
  out.jobs = values.size();
  if (!values.empty()) {
    out.median_bounded = util::quantile(values, 0.5);
    out.p90_bounded = util::quantile(values, 0.9);
  }
  return out;
}

std::vector<std::pair<Seconds, MiB>> waste_series(
    std::span<const sched::SystemSample> samples) {
  std::vector<std::pair<Seconds, MiB>> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.emplace_back(s.time, s.allocated - s.used);
  }
  return out;
}

}  // namespace dmsim::metrics
