// JSON export of simulation results — the machine-readable counterpart of
// the text tables, for plotting pipelines (matplotlib/R) without parsing
// aligned columns. Hand-rolled writer, no external dependencies.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulator.hpp"

namespace dmsim::metrics {

/// Minimal streaming JSON writer. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("fig5");
///   w.key("rows").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string text = w.str();
/// The writer validates nesting with DMSIM_ASSERT.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool complete() const noexcept { return stack_.empty() && started_; }

 private:
  enum class Scope { Object, Array };
  void comma_if_needed();
  void note_value();

  std::ostringstream out_;
  std::vector<std::pair<Scope, bool>> stack_;  // (scope, has_elements)
  bool pending_key_ = false;
  bool started_ = false;
};

/// Escape a string for JSON embedding (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Full result document: config echo, summary, totals, per-job records and
/// (when sampled) the system time series.
[[nodiscard]] std::string to_json(const SimulationResult& result,
                                  bool include_records = true,
                                  bool include_samples = true);

/// Write the registry telemetry (counters, gauges, histograms with derived
/// p50/p95/p99, time series) into `w` as four key'd objects. Shared by
/// to_json and standalone telemetry dumps; entries come out name-sorted, so
/// the text is deterministic for a given snapshot.
void write_telemetry(JsonWriter& w, const obs::CountersSnapshot& snap);

/// write_telemetry wrapped in its own object — `{"counters":...,...}`.
[[nodiscard]] std::string telemetry_to_json(const obs::CountersSnapshot& snap);

}  // namespace dmsim::metrics
