// Evaluation metrics (paper §4): system throughput in jobs/second, job
// response time (waiting + running, from original submission to final
// completion), utilization, and the cost model of Table 4.
#pragma once

#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "sched/scheduler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace dmsim::metrics {

struct WorkloadSummary {
  std::size_t total_jobs = 0;
  std::size_t completed = 0;
  std::size_t infeasible = 0;
  std::size_t abandoned = 0;
  std::size_t jobs_with_oom = 0;   ///< jobs that failed at least once
  std::uint64_t oom_events = 0;

  Seconds first_submit = 0.0;
  Seconds last_end = 0.0;
  /// Jobs per second over [first_submit, last_end] (the paper's throughput).
  double throughput = 0.0;

  util::OnlineStats response_time;
  util::OnlineStats wait_time;
  std::vector<double> response_times;  ///< per completed job (for ECDFs)

  [[nodiscard]] Seconds makespan() const noexcept {
    return last_end - first_submit;
  }
  /// Fraction of feasible jobs that suffered at least one OOM failure (§2.2
  /// reports < 1% in the worst case).
  [[nodiscard]] double oom_job_fraction() const noexcept {
    const std::size_t feasible = total_jobs - infeasible;
    return feasible == 0 ? 0.0
                         : static_cast<double>(jobs_with_oom) /
                               static_cast<double>(feasible);
  }
};

/// Summarize a finished scheduler run. OOM totals are taken from `totals`.
[[nodiscard]] WorkloadSummary summarize(
    std::span<const sched::JobRecord> records,
    const sched::SchedulerTotals& totals);

/// Cost model of Table 4: a node costs $10,154 excluding memory (node,
/// network, switches, small storage), and 128 GB of memory cost $1,280.
struct CostModel {
  double node_cost_usd = 10154.0;
  double cost_per_128gb_usd = 1280.0;

  [[nodiscard]] double system_cost(std::size_t nodes, MiB total_memory) const noexcept {
    const double memory_units = to_gib(total_memory) / 128.0;
    return static_cast<double>(nodes) * node_cost_usd +
           memory_units * cost_per_128gb_usd;
  }
  [[nodiscard]] double system_cost(const cluster::Cluster& cluster) const noexcept {
    return system_cost(cluster.node_count(), cluster.total_capacity());
  }
  [[nodiscard]] double throughput_per_dollar(double throughput,
                                             double cost) const noexcept {
    return cost > 0.0 ? throughput / cost : 0.0;
  }
};

}  // namespace dmsim::metrics
