// Memory allocation policies (paper §3.5):
//
//   * Baseline — no disaggregation. A job only starts on nodes whose local
//     capacity covers its request; node memory is exclusive to the job.
//   * Static — disaggregated memory with a fixed allocation equal to the
//     submission request (Zacarias et al., ICPADS 2021). Prefers nodes with
//     enough free memory; otherwise picks the nodes with the most free
//     memory and borrows the remainder from lender nodes.
//   * Dynamic — this paper's contribution (§2.2): starts like Static, then
//     tracks actual usage, releasing over-allocation (remote first) and
//     growing on demand (local first). Out-of-memory growth is resolved by
//     the scheduler via Fail/Restart or Checkpoint/Restart.
//
// A policy's try_start() both selects hosts and performs the initial memory
// allocation; on failure the cluster is left untouched.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/observer.hpp"
#include "trace/job_spec.hpp"
#include "util/units.hpp"

namespace dmsim::policy {

enum class PolicyKind { Baseline, Static, Dynamic };

[[nodiscard]] std::string_view to_string(PolicyKind kind) noexcept;

/// Map a denial-reason's *content* back onto the static literal the policies
/// use, or nullptr for an empty view. Deny reasons are compared and cached
/// by pointer identity in the scheduler's deny-replay cache; a snapshot can
/// only carry the content, so restore re-interns it here. Throws
/// util::Error for a reason no policy produces.
[[nodiscard]] const char* intern_deny_reason(std::string_view reason);

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  [[nodiscard]] virtual PolicyKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Whether jobs under this policy receive Monitor/Decider updates.
  [[nodiscard]] virtual bool dynamic_updates() const noexcept { return false; }

  /// Attempt to place `spec` and perform its initial memory allocation.
  /// On success the cluster ledger holds the job; on failure the cluster is
  /// unchanged and the job stays pending.
  [[nodiscard]] virtual bool try_start(const trace::JobSpec& spec,
                                       cluster::Cluster& cluster) = 0;

  /// Whether the job could ever start on an *empty* instance of this
  /// cluster. Infeasible jobs would head-block the FCFS queue forever; the
  /// harness uses this to mark a whole scenario as "missing bar" (Fig. 5).
  [[nodiscard]] virtual bool feasible(const trace::JobSpec& spec,
                                      const cluster::Cluster& cluster) const = 0;

  /// Wire observability: grant/deny decision events (with a reason token)
  /// and the policy.grants / policy.denies counters. nullptr disables.
  void set_observer(const obs::Observer* observer);

  /// Reason token of the most recent denial (a static string), or nullptr
  /// if the last decision was a grant. The scheduler caches it alongside the
  /// cluster's change epoch to replay a denial without re-running selection.
  [[nodiscard]] const char* last_deny_reason() const noexcept {
    return last_deny_reason_;
  }

  /// Re-report a previously returned denial verbatim (same counters, same
  /// trace event). Only valid with a reason token this policy produced; used
  /// by the scheduler when the cluster is unchanged since the original
  /// decision, which makes re-running try_start provably redundant.
  void report_denied(const trace::JobSpec& spec, const char* reason) {
    (void)denied(spec, reason);
  }

 protected:
  /// try_start implementations report every decision through these so the
  /// trace explains *why* a job did not start (the §4 analyses hinge on it).
  bool granted(const trace::JobSpec& spec);
  bool denied(const trace::JobSpec& spec, const char* reason);

 private:
  const obs::Observer* obs_ = nullptr;
  std::uint64_t* c_grants_ = nullptr;
  std::uint64_t* c_denies_ = nullptr;
  /// Shape of granted placements: node counts and requested MiB. Simulated
  /// magnitudes only, so the distributions are deterministic by
  /// construction.
  obs::Histogram* h_grant_nodes_ = nullptr;
  obs::Histogram* h_grant_mib_ = nullptr;
  const char* last_deny_reason_ = nullptr;
};

/// Baseline: exclusive node memory, no lending.
class BaselinePolicy final : public AllocationPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::Baseline;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "baseline";
  }
  [[nodiscard]] bool try_start(const trace::JobSpec& spec,
                               cluster::Cluster& cluster) override;
  [[nodiscard]] bool feasible(const trace::JobSpec& spec,
                              const cluster::Cluster& cluster) const override;

 private:
  std::vector<NodeId> hosts_;  ///< selection scratch, reused across calls
};

/// Static disaggregated: fixed request-sized allocation with borrowing.
class StaticPolicy : public AllocationPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::Static;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "static";
  }
  [[nodiscard]] bool try_start(const trace::JobSpec& spec,
                               cluster::Cluster& cluster) override;
  [[nodiscard]] bool feasible(const trace::JobSpec& spec,
                              const cluster::Cluster& cluster) const override;

 private:
  std::vector<NodeId> hosts_;  ///< selection scratch, reused across calls
};

/// Dynamic disaggregated: Static initial allocation + usage-driven resizing.
class DynamicPolicy final : public StaticPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::Dynamic;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dynamic";
  }
  [[nodiscard]] bool dynamic_updates() const noexcept override { return true; }
};

/// Outcome of a Decider/Actuator resize step on one (job, host) slot.
struct ResizeOutcome {
  bool satisfied = false;     ///< allocation now covers the demand
  bool remote_changed = false;///< borrow edges changed (contention must be re-evaluated)
  MiB allocated = 0;          ///< slot total after the attempt
  MiB released = 0;           ///< memory given back (shrink path)
  MiB acquired = 0;           ///< memory obtained (grow path)
};

/// Actuator primitive (§2.2): bring the slot's allocation to `demand`.
/// Shrinks release remote memory before local; grows take local memory
/// before remote. On an unsatisfiable grow the slot keeps whatever it
/// obtained and `satisfied` is false — the caller (scheduler) then applies
/// the configured out-of-memory handling.
[[nodiscard]] ResizeOutcome resize_to_demand(cluster::Cluster& cluster,
                                             JobId job, NodeId host,
                                             MiB demand);

/// Outcome of a tier-migration pass over one (job, host) slot.
struct MigrateOutcome {
  MiB migrated = 0;            ///< MiB moved to a strictly nearer tier
  bool remote_changed = false; ///< borrow edges changed
};

/// Tier-migration primitive (Dynamic policy, tiered topologies only):
/// promote the slot's borrowed memory toward the nearest tiers. Edges are
/// visited farthest tier first; each is moved only as far as strictly
/// lower-latency tiers have free capacity (grow_remote's nearest-first
/// spill guarantees the refill lands there). Demotion needs no action of
/// its own — when near tiers are full, new grows spill outward, and later
/// promotion pulls them back in as capacity frees up. A no-op (all zeros)
/// on flat topologies.
[[nodiscard]] MigrateOutcome migrate_to_nearest_tier(cluster::Cluster& cluster,
                                                     JobId job, NodeId host);

[[nodiscard]] std::unique_ptr<AllocationPolicy> make_policy(PolicyKind kind);

}  // namespace dmsim::policy
