#include "policy/policy.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dmsim::policy {

std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::Baseline:
      return "baseline";
    case PolicyKind::Static:
      return "static";
    case PolicyKind::Dynamic:
      return "dynamic";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Decision reporting
// ---------------------------------------------------------------------------

void AllocationPolicy::set_observer(const obs::Observer* observer) {
  obs_ = observer;
  c_grants_ = obs::counter_handle(observer, "policy.grants");
  c_denies_ = obs::counter_handle(observer, "policy.denies");
}

bool AllocationPolicy::granted(const trace::JobSpec& spec) {
  obs::bump(c_grants_);
  if (obs::tracing(obs_)) {
    obs_->sink->emit(
        obs::Event{obs::EventKind::PolicyGrant, obs_->now(), spec.id.get()}
            .with("nodes", spec.num_nodes)
            .with("mib", spec.requested_mem));
  }
  return true;
}

bool AllocationPolicy::denied(const trace::JobSpec& spec, const char* reason) {
  obs::bump(c_denies_);
  if (obs::tracing(obs_)) {
    obs::Event e{obs::EventKind::PolicyDeny, obs_->now(), spec.id.get()};
    e.detail = reason;
    obs_->sink->emit(e.with("nodes", spec.num_nodes)
                         .with("mib", spec.requested_mem));
  }
  return false;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

bool BaselinePolicy::try_start(const trace::JobSpec& spec,
                               cluster::Cluster& cluster) {
  DMSIM_ASSERT(spec.num_nodes > 0, "job must request at least one node");
  // Baseline nodes never lend, so an idle node has its whole capacity free.
  std::vector<NodeId> candidates;
  for (const auto& n : cluster.nodes()) {
    if (n.idle() && n.capacity >= spec.requested_mem) {
      candidates.push_back(n.id);
    }
  }
  if (std::cmp_less(candidates.size(), spec.num_nodes)) {
    return denied(spec, "not_enough_fitting_idle_nodes");
  }
  // Best fit: smallest sufficient node first, saving large nodes for large
  // jobs (deterministic id tie-break).
  std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    const MiB ca = cluster.node(a).capacity;
    const MiB cb = cluster.node(b).capacity;
    if (ca != cb) return ca < cb;
    return a < b;
  });
  candidates.resize(static_cast<std::size_t>(spec.num_nodes));
  cluster.assign_job(spec.id, candidates);
  for (NodeId h : candidates) {
    const MiB local = cluster.grow_local(spec.id, h, spec.requested_mem);
    DMSIM_ASSERT(local == spec.requested_mem,
                 "baseline host unexpectedly short of memory");
  }
  return granted(spec);
}

bool BaselinePolicy::feasible(const trace::JobSpec& spec,
                              const cluster::Cluster& cluster) const {
  int fitting = 0;
  for (const auto& n : cluster.nodes()) {
    if (n.capacity >= spec.requested_mem) ++fitting;
  }
  return fitting >= spec.num_nodes;
}

// ---------------------------------------------------------------------------
// Static (and Dynamic's initial placement)
// ---------------------------------------------------------------------------

bool StaticPolicy::try_start(const trace::JobSpec& spec,
                             cluster::Cluster& cluster) {
  DMSIM_ASSERT(spec.num_nodes > 0, "job must request at least one node");
  // Hosts must be idle and not memory nodes (§2.1 half-capacity rule).
  std::vector<NodeId> hostable;
  for (const auto& n : cluster.nodes()) {
    if (n.idle() && !n.memory_node()) hostable.push_back(n.id);
  }
  if (std::cmp_less(hostable.size(), spec.num_nodes)) {
    return denied(spec, "not_enough_hostable_nodes");
  }

  // The policy "tries to run the job on nodes with enough free memory. If
  // this is not possible, then it will choose nodes with the most free
  // memory and borrow the remaining memory from other nodes" (§2.1).
  // Among sufficient nodes we take the tightest fit so large-memory nodes
  // stay available for large jobs.
  std::vector<NodeId> sufficient;
  std::vector<NodeId> insufficient;
  for (NodeId id : hostable) {
    (cluster.node(id).free() >= spec.requested_mem ? sufficient : insufficient)
        .push_back(id);
  }
  std::sort(sufficient.begin(), sufficient.end(), [&](NodeId a, NodeId b) {
    const MiB fa = cluster.node(a).free();
    const MiB fb = cluster.node(b).free();
    if (fa != fb) return fa < fb;  // tightest fit first
    return a < b;
  });
  std::sort(insufficient.begin(), insufficient.end(), [&](NodeId a, NodeId b) {
    const MiB fa = cluster.node(a).free();
    const MiB fb = cluster.node(b).free();
    if (fa != fb) return fa > fb;  // most free first
    return a < b;
  });

  std::vector<NodeId> hosts;
  hosts.reserve(static_cast<std::size_t>(spec.num_nodes));
  for (NodeId id : sufficient) {
    if (std::cmp_equal(hosts.size(), spec.num_nodes)) break;
    hosts.push_back(id);
  }
  for (NodeId id : insufficient) {
    if (std::cmp_equal(hosts.size(), spec.num_nodes)) break;
    hosts.push_back(id);
  }
  DMSIM_ASSERT(std::cmp_equal(hosts.size(), spec.num_nodes),
               "hostable count checked above");

  // Fast reject: the whole allocation can never exceed system free memory.
  const MiB total_need =
      static_cast<MiB>(spec.num_nodes) * spec.requested_mem;
  if (total_need > cluster.total_free()) {
    return denied(spec, "exceeds_total_free");
  }

  cluster.assign_job(spec.id, hosts);
  for (NodeId h : hosts) {
    MiB need = spec.requested_mem;
    need -= cluster.grow_local(spec.id, h, need);
    if (need > 0) need -= cluster.grow_remote(spec.id, h, need);
    if (need > 0) {
      // Lenders ran dry (free memory was fragmented into host-local shares
      // we already consumed). Roll the whole job back.
      cluster.finish_job(spec.id);
      return denied(spec, "lenders_dry");
    }
  }
  return granted(spec);
}

bool StaticPolicy::feasible(const trace::JobSpec& spec,
                            const cluster::Cluster& cluster) const {
  if (std::cmp_less(cluster.node_count(), spec.num_nodes)) return false;
  const MiB total_need =
      static_cast<MiB>(spec.num_nodes) * spec.requested_mem;
  return total_need <= cluster.total_capacity();
}

// ---------------------------------------------------------------------------
// Resize primitive (Dynamic's Actuator, §2.2)
// ---------------------------------------------------------------------------

ResizeOutcome resize_to_demand(cluster::Cluster& cluster, JobId job,
                               NodeId host, MiB demand) {
  DMSIM_ASSERT(demand >= 0, "demand must be non-negative");
  ResizeOutcome out;
  const cluster::AllocationSlot& slot = cluster.slot(job, host);
  const MiB current = slot.total();
  if (demand <= current) {
    // Shrink: deallocate remote memory before local (§2.2).
    MiB excess = current - demand;
    const MiB from_remote = cluster.shrink_remote(job, host, excess);
    excess -= from_remote;
    const MiB from_local = cluster.shrink_local(job, host, excess);
    out.released = from_remote + from_local;
    out.remote_changed = from_remote > 0;
    out.satisfied = true;
  } else {
    // Grow: allocate locally if possible, then remotely (§2.2).
    MiB need = demand - current;
    const MiB local = cluster.grow_local(job, host, need);
    need -= local;
    const MiB remote = need > 0 ? cluster.grow_remote(job, host, need) : 0;
    need -= remote;
    out.acquired = local + remote;
    out.remote_changed = remote > 0;
    out.satisfied = (need == 0);
  }
  out.allocated = cluster.slot(job, host).total();
  return out;
}

std::unique_ptr<AllocationPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Baseline:
      return std::make_unique<BaselinePolicy>();
    case PolicyKind::Static:
      return std::make_unique<StaticPolicy>();
    case PolicyKind::Dynamic:
      return std::make_unique<DynamicPolicy>();
  }
  DMSIM_ASSERT(false, "unknown policy kind");
  return nullptr;
}

}  // namespace dmsim::policy
