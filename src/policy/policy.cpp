#include "policy/policy.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dmsim::policy {

std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::Baseline:
      return "baseline";
    case PolicyKind::Static:
      return "static";
    case PolicyKind::Dynamic:
      return "dynamic";
  }
  return "unknown";
}

const char* intern_deny_reason(std::string_view reason) {
  // The full deny-reason vocabulary. Keep in sync with the literals passed
  // to denied() below — the scheduler serializes cached denials by content
  // and re-interns them here on snapshot restore.
  static constexpr const char* kReasons[] = {
      "not_enough_fitting_idle_nodes",
      "not_enough_hostable_nodes",
      "exceeds_total_free",
      "lenders_dry",
  };
  if (reason.empty()) return nullptr;
  for (const char* r : kReasons) {
    if (reason == r) return r;
  }
  throw Error("unknown deny reason: '" + std::string(reason) + "'");
}

// ---------------------------------------------------------------------------
// Decision reporting
// ---------------------------------------------------------------------------

void AllocationPolicy::set_observer(const obs::Observer* observer) {
  obs_ = observer;
  c_grants_ = obs::counter_handle(observer, "policy.grants");
  c_denies_ = obs::counter_handle(observer, "policy.denies");
  h_grant_nodes_ = obs::histogram_handle(observer, "policy.grant_nodes");
  h_grant_mib_ = obs::histogram_handle(observer, "policy.grant_mib");
}

bool AllocationPolicy::granted(const trace::JobSpec& spec) {
  last_deny_reason_ = nullptr;
  obs::bump(c_grants_);
  obs::record(h_grant_nodes_, spec.num_nodes);
  obs::record(h_grant_mib_, static_cast<std::int64_t>(spec.requested_mem));
  if (obs::tracing(obs_)) {
    obs_->sink->emit(
        obs::Event{obs::EventKind::PolicyGrant, obs_->now(), spec.id.get()}
            .with("nodes", spec.num_nodes)
            .with("mib", spec.requested_mem));
  }
  return true;
}

bool AllocationPolicy::denied(const trace::JobSpec& spec, const char* reason) {
  last_deny_reason_ = reason;
  obs::bump(c_denies_);
  if (obs::tracing(obs_)) {
    obs::Event e{obs::EventKind::PolicyDeny, obs_->now(), spec.id.get()};
    e.detail = reason;
    obs_->sink->emit(e.with("nodes", spec.num_nodes)
                         .with("mib", spec.requested_mem));
  }
  return false;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

bool BaselinePolicy::try_start(const trace::JobSpec& spec,
                               cluster::Cluster& cluster) {
  DMSIM_ASSERT(spec.num_nodes > 0, "job must request at least one node");
  // Baseline nodes never lend, so an idle node has its whole capacity free.
  // Best fit: smallest sufficient node first, saving large nodes for large
  // jobs (deterministic id tie-break) — the capacity index is already in
  // that order, so take the first num_nodes idle entries.
  hosts_.clear();
  for (NodeId id : cluster.nodes_by_capacity_at_least(spec.requested_mem)) {
    if (!cluster.is_idle(id)) continue;
    hosts_.push_back(id);
    if (std::cmp_equal(hosts_.size(), spec.num_nodes)) break;
  }
  if (std::cmp_less(hosts_.size(), spec.num_nodes)) {
    return denied(spec, "not_enough_fitting_idle_nodes");
  }
  cluster.assign_job(spec.id, hosts_);
  for (NodeId h : hosts_) {
    const MiB local = cluster.grow_local(spec.id, h, spec.requested_mem);
    DMSIM_ASSERT(local == spec.requested_mem,
                 "baseline host unexpectedly short of memory");
  }
  return granted(spec);
}

bool BaselinePolicy::feasible(const trace::JobSpec& spec,
                              const cluster::Cluster& cluster) const {
  return std::cmp_greater_equal(
      cluster.nodes_by_capacity_at_least(spec.requested_mem).size(),
      spec.num_nodes);
}

// ---------------------------------------------------------------------------
// Static (and Dynamic's initial placement)
// ---------------------------------------------------------------------------

bool StaticPolicy::try_start(const trace::JobSpec& spec,
                             cluster::Cluster& cluster) {
  DMSIM_ASSERT(spec.num_nodes > 0, "job must request at least one node");
  // Hosts must be idle and not memory nodes (§2.1 half-capacity rule).
  // The hostable count is an O(1) index size now.
  if (cluster.idle_hostable_nodes() < spec.num_nodes) {
    return denied(spec, "not_enough_hostable_nodes");
  }

  // Fast reject before any host selection: the whole allocation can never
  // exceed system free memory, so a hopeless job is denied in O(1).
  const MiB total_need =
      static_cast<MiB>(spec.num_nodes) * spec.requested_mem;
  if (total_need > cluster.total_free()) {
    return denied(spec, "exceeds_total_free");
  }

  // The policy "tries to run the job on nodes with enough free memory. If
  // this is not possible, then it will choose nodes with the most free
  // memory and borrow the remaining memory from other nodes" (§2.1).
  // Among sufficient nodes we take the tightest fit so large-memory nodes
  // stay available for large jobs. The cluster's hostable index serves both
  // orders directly — (free asc, id asc) at or above the request, then
  // (free desc, id asc) below it — replacing the former scan + two sorts.
  hosts_.clear();
  const auto want_more = [this, &spec](NodeId id) {
    hosts_.push_back(id);
    return std::cmp_less(hosts_.size(), spec.num_nodes);
  };
  cluster.visit_hostable_at_least(spec.requested_mem, want_more);
  if (std::cmp_less(hosts_.size(), spec.num_nodes)) {
    cluster.visit_hostable_below_desc(spec.requested_mem, want_more);
  }
  DMSIM_ASSERT(std::cmp_equal(hosts_.size(), spec.num_nodes),
               "hostable count checked above");

  cluster.assign_job(spec.id, hosts_);
  for (NodeId h : hosts_) {
    MiB need = spec.requested_mem;
    need -= cluster.grow_local(spec.id, h, need);
    if (need > 0) need -= cluster.grow_remote(spec.id, h, need);
    if (need > 0) {
      // Lenders ran dry (free memory was fragmented into host-local shares
      // we already consumed). Roll the whole job back.
      cluster.finish_job(spec.id);
      return denied(spec, "lenders_dry");
    }
  }
  return granted(spec);
}

bool StaticPolicy::feasible(const trace::JobSpec& spec,
                            const cluster::Cluster& cluster) const {
  if (std::cmp_less(cluster.node_count(), spec.num_nodes)) return false;
  const MiB total_need =
      static_cast<MiB>(spec.num_nodes) * spec.requested_mem;
  return total_need <= cluster.total_capacity();
}

// ---------------------------------------------------------------------------
// Resize primitive (Dynamic's Actuator, §2.2)
// ---------------------------------------------------------------------------

ResizeOutcome resize_to_demand(cluster::Cluster& cluster, JobId job,
                               NodeId host, MiB demand) {
  DMSIM_ASSERT(demand >= 0, "demand must be non-negative");
  ResizeOutcome out;
  const cluster::AllocationSlot& slot = cluster.slot(job, host);
  const MiB current = slot.total();
  if (demand <= current) {
    // Shrink: deallocate remote memory before local (§2.2).
    MiB excess = current - demand;
    const MiB from_remote = cluster.shrink_remote(job, host, excess);
    excess -= from_remote;
    const MiB from_local = cluster.shrink_local(job, host, excess);
    out.released = from_remote + from_local;
    out.remote_changed = from_remote > 0;
    out.satisfied = true;
  } else {
    // Grow: allocate locally if possible, then remotely (§2.2).
    MiB need = demand - current;
    const MiB local = cluster.grow_local(job, host, need);
    need -= local;
    const MiB remote = need > 0 ? cluster.grow_remote(job, host, need) : 0;
    need -= remote;
    out.acquired = local + remote;
    out.remote_changed = remote > 0;
    out.satisfied = (need == 0);
  }
  out.allocated = cluster.slot(job, host).total();
  return out;
}

// ---------------------------------------------------------------------------
// Tier-migration primitive (tiered topologies only)
// ---------------------------------------------------------------------------

MigrateOutcome migrate_to_nearest_tier(cluster::Cluster& cluster, JobId job,
                                       NodeId host) {
  MigrateOutcome out;
  if (!cluster.tiered()) return out;
  const cluster::AllocationSlot& slot = cluster.slot(job, host);
  if (slot.remote.empty()) return out;

  // Free lendable capacity in every tier strictly nearer than tier `t`
  // (tier_order_ walks latency ascending). Ties in latency are "equally
  // near": not worth a move. The host's own free memory is excluded —
  // grow_remote never lends a slot memory from its own host, so it cannot
  // absorb the refill.
  const std::span<const std::uint8_t> order = cluster.tier_order();
  const std::span<const cluster::MemoryTier> tiers = cluster.tiers();
  const std::uint8_t host_tier = cluster.tier_of(host);
  const MiB host_free = cluster.free_of(host);
  const auto nearer_free = [&](std::uint8_t t) {
    MiB free = 0;
    for (const std::uint8_t o : order) {
      if (tiers[o].latency_ns >= tiers[t].latency_ns) break;
      free += cluster.tier_free(o);
      if (o == host_tier) free -= host_free;
    }
    return free;
  };

  // Snapshot the edges farthest tier first (latency desc, lender id asc) —
  // the mutation loop below rewrites slot.remote, so it cannot iterate the
  // live vector, and the worst-placed memory should claim near-tier
  // capacity first.
  std::vector<std::pair<NodeId, MiB>> edges(slot.remote.begin(),
                                            slot.remote.end());
  std::sort(edges.begin(), edges.end(),
            [&](const auto& a, const auto& b) {
              const double la = tiers[cluster.tier_of(a.first)].latency_ns;
              const double lb = tiers[cluster.tier_of(b.first)].latency_ns;
              if (la != lb) return la > lb;
              return a.first < b.first;
            });
  for (const auto& [lender, amount] : edges) {
    const std::uint8_t t = cluster.tier_of(lender);
    // Capped by what strictly-nearer tiers can absorb *before* the shrink:
    // shrinking frees memory in tier t itself, which must not count, and
    // grow_remote's nearest-first walk then provably lands every MiB in a
    // nearer tier.
    const MiB take = std::min(amount, nearer_free(t));
    if (take <= 0) continue;
    const MiB released = cluster.shrink_remote_edge(job, host, lender, take);
    DMSIM_ASSERT(released == take, "migration shrink released a short amount");
    const MiB granted = cluster.grow_remote(job, host, take);
    DMSIM_ASSERT(granted == take, "migration grow landed short");
    out.migrated += take;
    out.remote_changed = true;
  }
  return out;
}

std::unique_ptr<AllocationPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Baseline:
      return std::make_unique<BaselinePolicy>();
    case PolicyKind::Static:
      return std::make_unique<StaticPolicy>();
    case PolicyKind::Dynamic:
      return std::make_unique<DynamicPolicy>();
  }
  DMSIM_ASSERT(false, "unknown policy kind");
  return nullptr;
}

}  // namespace dmsim::policy
