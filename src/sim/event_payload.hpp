// Typed, serializable event descriptors.
//
// The engine historically stored every pending event as an opaque closure,
// which made simulation state impossible to externalize: a closure cannot
// be saved to disk or inspected. Production code (the scheduler) now
// schedules *typed payloads* — a small POD naming the action and its
// operands — dispatched through a single EventHandler. Closures remain
// supported for tests and benchmarks, but a snapshot refuses to serialize
// them, so the production path staying payload-only is machine-checked by
// the checkpoint tests.
#pragma once

#include <cstdint>

namespace dmsim::sim {

/// What a pending event does when it fires. Values are part of the snapshot
/// format: append new types at the end, never renumber.
enum class EventType : std::uint8_t {
  None = 0,         ///< closure-backed slot (tests/benches only; not serializable)
  JobSubmit,        ///< workload spec (by index) enters the pending queue
  SchedPass,        ///< scheduling / backfill pass
  JobEnd,           ///< projected completion of a running job
  MonitorUpdate,    ///< per-job staggered Monitor tick (§2.2)
  GlobalBatchTick,  ///< global batched Monitor timer
  WalltimeKill,     ///< walltime-limit enforcement for a running job
  TraceSample,      ///< periodic system-state sample
};

/// A pending event: the action plus its operands. `job` carries a raw JobId
/// for per-job events; `index` carries a workload spec index for submits.
/// Unused operands stay zero so payload equality is well-defined.
struct EventPayload {
  EventType type = EventType::None;
  std::uint32_t job = 0;
  std::uint64_t index = 0;

  [[nodiscard]] static constexpr EventPayload job_submit(
      std::uint64_t spec_index) noexcept {
    return EventPayload{EventType::JobSubmit, 0, spec_index};
  }
  [[nodiscard]] static constexpr EventPayload sched_pass() noexcept {
    return EventPayload{EventType::SchedPass, 0, 0};
  }
  [[nodiscard]] static constexpr EventPayload job_end(
      std::uint32_t job_id) noexcept {
    return EventPayload{EventType::JobEnd, job_id, 0};
  }
  [[nodiscard]] static constexpr EventPayload monitor_update(
      std::uint32_t job_id) noexcept {
    return EventPayload{EventType::MonitorUpdate, job_id, 0};
  }
  [[nodiscard]] static constexpr EventPayload global_batch_tick() noexcept {
    return EventPayload{EventType::GlobalBatchTick, 0, 0};
  }
  [[nodiscard]] static constexpr EventPayload walltime_kill(
      std::uint32_t job_id) noexcept {
    return EventPayload{EventType::WalltimeKill, job_id, 0};
  }
  [[nodiscard]] static constexpr EventPayload trace_sample() noexcept {
    return EventPayload{EventType::TraceSample, 0, 0};
  }

  friend constexpr bool operator==(const EventPayload&,
                                   const EventPayload&) noexcept = default;
};

/// Receiver for typed events. One handler serves the whole engine — the
/// scheduler owns every production event type, so a dispatch table heavier
/// than a switch in its on_event would buy nothing.
class EventHandler {
 public:
  virtual void on_event(const EventPayload& event) = 0;

 protected:
  ~EventHandler() = default;
};

}  // namespace dmsim::sim
