// Discrete-event simulation engine.
//
// A single time-ordered event queue drives the whole simulator. Events are
// closures scheduled at an absolute simulated time; ties are broken by
// schedule order, which makes runs fully deterministic.
//
// Hot-path layout: callbacks live in a generation-tagged slot slab instead
// of hash containers. Scheduling pops a free slot (or grows the slab —
// amortized, no per-event allocation once warm), firing and cancelling are
// O(1) array accesses with no hashing, and small callbacks (captures up to
// 48 bytes, i.e. every scheduler closure) are stored inline with no heap
// traffic at all. An EventId packs {slot index, slot generation}; a stale
// handle — the slot was fired or cancelled and possibly reused — simply
// fails the generation check, so cancel-after-fire stays a safe no-op.
// The heap holds plain {time, seq, slot, generation} records; entries whose
// generation no longer matches the slab are dropped lazily when they
// surface, exactly like the old cancelled-set design but without the set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/observer.hpp"
#include "sim/event_payload.hpp"
#include "util/error.hpp"
#include "util/small_function.hpp"
#include "util/units.hpp"

namespace dmsim::snapshot {
class Writer;
class Reader;
}  // namespace dmsim::snapshot

namespace dmsim::sim {

/// Opaque handle for a scheduled event; used only for cancellation.
/// Packs {generation, slot + 1}: value 0 (default) is never a live event.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  friend constexpr bool operator==(EventId, EventId) noexcept = default;
};

class Engine : public obs::Clock {
 public:
  /// Capacity covers every closure the scheduler creates; larger captures
  /// fall back to one boxed allocation, never a failure.
  using Callback = util::SmallFunction<void(), 48>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Seconds now() const noexcept { return now_; }
  [[nodiscard]] Seconds sim_now() const noexcept override { return now_; }

  /// Wire observability: trace schedule/fire/cancel and register the
  /// engine.* counters. Pass nullptr to disable (the default); disabled
  /// instrumentation is one branch on a null pointer per site.
  void set_observer(const obs::Observer* observer);

  /// Install the receiver for typed events. Must outlive the engine (or be
  /// reset). Required before any schedule_typed() event fires.
  void set_handler(EventHandler* handler) noexcept { handler_ = handler; }

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  EventId schedule(Seconds when, Callback fn);

  /// Schedule `fn` after a relative delay (must be >= 0).
  EventId schedule_after(Seconds delay, Callback fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  /// Schedule a typed payload at absolute time `when` (must be >= now()).
  /// Typed events are serializable (see save_state) and dispatch through
  /// the installed EventHandler; otherwise they behave exactly like
  /// closure events — same ids, same trace records, same tie-breaking.
  EventId schedule_typed(Seconds when, const EventPayload& payload);

  /// Schedule a typed payload after a relative delay (must be >= 0).
  EventId schedule_typed_after(Seconds delay, const EventPayload& payload) {
    return schedule_typed(now_ + delay, payload);
  }

  /// Cancel a pending event. Cancelling an already-fired, stale (slot since
  /// reused) or invalid handle is a no-op, so callers need not track firing
  /// themselves.
  void cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains (or `max_events` fire — a runaway guard).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run all events with time <= until (events exactly at `until` included).
  /// Afterwards now() == max(now, until).
  std::uint64_t run_until(Seconds until);

  /// Run all events with time <= until WITHOUT advancing the clock past the
  /// last fired event. This is the checkpoint cut primitive: unlike
  /// run_until, it leaves now() exactly where an uninterrupted run would
  /// have it mid-stream, so the saved state is indistinguishable from a run
  /// that was never paused.
  std::uint64_t run_ready(Seconds until);

  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// Serialize clock, counters, the slot slab (occupancy, generations, free
  /// list — exact order, so slot reuse and tie-breaking replay identically)
  /// and every live heap entry. Throws snapshot::SnapshotError if any
  /// pending event is closure-backed: closures are not serializable, and
  /// production code must schedule typed payloads only.
  void save_state(snapshot::Writer& writer) const;

  /// Rebuild engine state from save_state bytes. Existing state is
  /// discarded; the observer wiring and handler are kept. Heap entries are
  /// re-pushed in saved order — pop order is a total order on unique
  /// (time, seq) keys, so the replayed fire sequence is identical.
  void restore_state(snapshot::Reader& reader);

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint32_t slot;
    std::uint32_t generation;
    /// Strict ordering: earlier time first, then schedule order. The key is
    /// unique (seq is monotonic), so the pop sequence is a total order and
    /// independent of the heap's internal layout.
    [[nodiscard]] bool before(const Entry& other) const noexcept {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  /// 4-ary min-heap over Entry. Shallower than a binary heap and the four
  /// children of a node share a cache line pair, which measurably cuts the
  /// per-event sift cost in the engine's steady-state churn.
  class EventHeap {
   public:
    [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
    [[nodiscard]] const Entry& top() const noexcept { return v_.front(); }

    void push(const Entry& e) {
      std::size_t i = v_.size();
      v_.push_back(e);
      while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!v_[i].before(v_[parent])) break;
        std::swap(v_[i], v_[parent]);
        i = parent;
      }
    }

    void pop() {
      v_.front() = v_.back();
      v_.pop_back();
      const std::size_t n = v_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
          if (v_[c].before(v_[best])) best = c;
        }
        if (!v_[best].before(v_[i])) break;
        std::swap(v_[i], v_[best]);
        i = best;
      }
    }

    /// Raw entries in heap-internal order, for slab-order-preserving
    /// serialization. Re-pushing them in this order is not required for
    /// correctness (pop order is a total order) but keeps snapshots stable.
    [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
      return v_;
    }

    void clear() noexcept { v_.clear(); }

   private:
    static constexpr std::size_t kArity = 4;
    std::vector<Entry> v_;
  };

  struct Slot {
    Callback fn;
    EventPayload payload;        // type == None for closure-backed slots
    std::uint64_t trace_id = 0;  // stable 1-based schedule number, for traces
    std::uint32_t generation = 1;
    bool occupied = false;
  };

  [[nodiscard]] static constexpr std::uint64_t pack(
      std::uint32_t slot, std::uint32_t generation) noexcept {
    return (static_cast<std::uint64_t>(generation) << 32) |
           (static_cast<std::uint64_t>(slot) + 1);
  }

  /// True when a heap entry still refers to the live occupant of its slot.
  [[nodiscard]] bool entry_live(const Entry& e) const noexcept {
    const Slot& s = slots_[e.slot];
    return s.occupied && s.generation == e.generation;
  }

  /// Free a slot: drop the callback, advance the generation (stale handles
  /// and heap entries die here) and recycle the index.
  void release_slot(std::uint32_t slot);

  /// Claim a free (or freshly grown) slot and fill the common bookkeeping;
  /// shared tail of schedule() and schedule_typed().
  EventId enqueue_slot(Seconds when, std::uint32_t slot);

  EventHandler* handler_ = nullptr;
  EventHeap queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;  // scheduled, not yet fired or cancelled
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;

  // Observability (all nullptr when disabled).
  obs::TraceSink* trace_ = nullptr;
  std::uint64_t* c_scheduled_ = nullptr;
  std::uint64_t* c_fired_ = nullptr;
  std::uint64_t* c_cancelled_ = nullptr;
  /// Fired events per simulated-time window — the event-rate profile of the
  /// run. Sim-time only, so the series is identical across hosts/threads.
  obs::TimeSeries* s_events_ = nullptr;
  /// Slab occupancy high-water marks: live events and total slots grown.
  obs::Gauge* g_slab_live_ = nullptr;
  obs::Gauge* g_slab_slots_ = nullptr;
};

}  // namespace dmsim::sim
