// Discrete-event simulation engine.
//
// A single time-ordered event queue drives the whole simulator. Events are
// closures scheduled at an absolute simulated time; ties are broken by
// schedule order, which makes runs fully deterministic. Cancellation is by
// handle: a rescheduled job-end invalidates its stale event in O(1) and the
// queue drops cancelled entries lazily when they surface.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/observer.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace dmsim::sim {

/// Opaque handle for a scheduled event; used only for cancellation.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  friend constexpr bool operator==(EventId, EventId) noexcept = default;
};

class Engine : public obs::Clock {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Seconds now() const noexcept { return now_; }
  [[nodiscard]] Seconds sim_now() const noexcept override { return now_; }

  /// Wire observability: trace schedule/fire/cancel and register the
  /// engine.* counters. Pass nullptr to disable (the default); disabled
  /// instrumentation is one branch on a null pointer per site.
  void set_observer(const obs::Observer* observer);

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  EventId schedule(Seconds when, Callback fn);

  /// Schedule `fn` after a relative delay (must be >= 0).
  EventId schedule_after(Seconds delay, Callback fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or invalid handle
  /// is a no-op, so callers need not track firing themselves.
  void cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept {
    return queue_.size() == cancelled_.size();
  }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size() - cancelled_.size();
  }

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains (or `max_events` fire — a runaway guard).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run all events with time <= until (events exactly at `until` included).
  /// Afterwards now() == max(now, until).
  std::uint64_t run_until(Seconds until);

  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint64_t id;
    // Ordering for a min-heap via std::priority_queue (which is a max-heap).
    [[nodiscard]] bool operator<(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Callbacks live beside the heap so Entry stays trivially movable.
  std::priority_queue<Entry> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;

  // Observability (all nullptr when disabled).
  obs::TraceSink* trace_ = nullptr;
  std::uint64_t* c_scheduled_ = nullptr;
  std::uint64_t* c_fired_ = nullptr;
  std::uint64_t* c_cancelled_ = nullptr;
};

}  // namespace dmsim::sim
