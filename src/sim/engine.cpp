#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace dmsim::sim {

void Engine::set_observer(const obs::Observer* observer) {
  trace_ = observer != nullptr ? observer->sink : nullptr;
  c_scheduled_ = obs::counter_handle(observer, "engine.scheduled");
  c_fired_ = obs::counter_handle(observer, "engine.fired");
  c_cancelled_ = obs::counter_handle(observer, "engine.cancelled");
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.occupied = false;
  // Generation 0 is reserved so a default EventId never matches; skip it on
  // the (theoretical) 2^32 wrap-around of a single slot.
  if (++s.generation == 0) ++s.generation;
  free_slots_.push_back(slot);
}

EventId Engine::schedule(Seconds when, Callback fn) {
  DMSIM_ASSERT(when >= now_, "cannot schedule an event in the past");
  DMSIM_ASSERT(fn != nullptr, "event callback must be callable");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.occupied = true;
  const std::uint64_t seq = next_seq_++;
  s.trace_id = seq + 1;  // matches the pre-slab engine's monotonic event ids
  queue_.push(Entry{when, seq, slot, s.generation});
  ++live_;
  obs::bump(c_scheduled_);
  if (trace_) {
    obs::Event e{obs::EventKind::EngineSchedule, now_};
    e.when = when;
    trace_->emit(e.with("id", static_cast<std::int64_t>(s.trace_id)));
  }
  return EventId{pack(slot, s.generation)};
}

void Engine::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint64_t slot_plus_one = id.value & 0xffffffffULL;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return;
  const auto slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  const auto generation = static_cast<std::uint32_t>(id.value >> 32);
  Slot& s = slots_[slot];
  if (!s.occupied || s.generation != generation) return;  // fired or stale
  const std::uint64_t trace_id = s.trace_id;
  release_slot(slot);
  --live_;
  obs::bump(c_cancelled_);
  if (trace_) {
    trace_->emit(obs::Event{obs::EventKind::EngineCancel, now_}.with(
        "id", static_cast<std::int64_t>(trace_id)));
  }
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    if (!entry_live(top)) continue;  // lazily drop a cancelled entry
    Slot& s = slots_[top.slot];
    Callback fn = std::move(s.fn);
    const std::uint64_t trace_id = s.trace_id;
    release_slot(top.slot);
    --live_;
    DMSIM_ASSERT(top.time >= now_, "event queue went backwards in time");
    now_ = top.time;
    ++executed_;
    obs::bump(c_fired_);
    if (trace_) {
      trace_->emit(obs::Event{obs::EventKind::EngineFire, now_}.with(
          "id", static_cast<std::int64_t>(trace_id)));
    }
    fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Seconds until) {
  std::uint64_t n = 0;
  for (;;) {
    // Peek past cancelled entries without firing anything late.
    while (!queue_.empty() && !entry_live(queue_.top())) queue_.pop();
    if (queue_.empty() || queue_.top().time > until) break;
    if (step()) ++n;
  }
  now_ = std::max(now_, until);
  return n;
}

}  // namespace dmsim::sim
