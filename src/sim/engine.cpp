#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace dmsim::sim {

void Engine::set_observer(const obs::Observer* observer) {
  trace_ = observer != nullptr ? observer->sink : nullptr;
  c_scheduled_ = obs::counter_handle(observer, "engine.scheduled");
  c_fired_ = obs::counter_handle(observer, "engine.fired");
  c_cancelled_ = obs::counter_handle(observer, "engine.cancelled");
}

EventId Engine::schedule(Seconds when, Callback fn) {
  DMSIM_ASSERT(when >= now_, "cannot schedule an event in the past");
  DMSIM_ASSERT(fn != nullptr, "event callback must be callable");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  obs::bump(c_scheduled_);
  if (trace_) {
    obs::Event e{obs::EventKind::EngineSchedule, now_};
    e.when = when;
    trace_->emit(e.with("id", static_cast<std::int64_t>(id)));
  }
  return EventId{id};
}

void Engine::cancel(EventId id) {
  if (!id.valid()) return;
  const auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return;  // already fired or cancelled+drained
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  obs::bump(c_cancelled_);
  if (trace_) {
    trace_->emit(obs::Event{obs::EventKind::EngineCancel, now_}.with(
        "id", static_cast<std::int64_t>(id.value)));
  }
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    if (const auto cit = cancelled_.find(top.id); cit != cancelled_.end()) {
      cancelled_.erase(cit);
      continue;  // lazily drop a cancelled entry
    }
    const auto it = callbacks_.find(top.id);
    DMSIM_ASSERT(it != callbacks_.end(), "live event lost its callback");
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    DMSIM_ASSERT(top.time >= now_, "event queue went backwards in time");
    now_ = top.time;
    ++executed_;
    obs::bump(c_fired_);
    if (trace_) {
      trace_->emit(obs::Event{obs::EventKind::EngineFire, now_}.with(
          "id", static_cast<std::int64_t>(top.id)));
    }
    fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Seconds until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Peek past cancelled entries without firing anything late.
    while (!queue_.empty() && cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().time > until) break;
    if (step()) ++n;
  }
  now_ = std::max(now_, until);
  return n;
}

}  // namespace dmsim::sim
