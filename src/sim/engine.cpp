#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/snapshot.hpp"

namespace dmsim::sim {

namespace {
constexpr std::uint32_t kEngineSection =
    snapshot::section_tag('E', 'N', 'G', 'I');
constexpr auto kMaxEventType = static_cast<std::uint8_t>(EventType::TraceSample);
}  // namespace

void Engine::set_observer(const obs::Observer* observer) {
  trace_ = observer != nullptr ? observer->sink : nullptr;
  c_scheduled_ = obs::counter_handle(observer, "engine.scheduled");
  c_fired_ = obs::counter_handle(observer, "engine.fired");
  c_cancelled_ = obs::counter_handle(observer, "engine.cancelled");
  s_events_ = obs::series_handle(observer, "engine.events_per_window");
  g_slab_live_ = obs::gauge_handle(observer, "engine.slab_live");
  g_slab_slots_ = obs::gauge_handle(observer, "engine.slab_slots");
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.payload = EventPayload{};  // a reused slot must not inherit a stale type
  s.occupied = false;
  // Generation 0 is reserved so a default EventId never matches; skip it on
  // the (theoretical) 2^32 wrap-around of a single slot.
  if (++s.generation == 0) ++s.generation;
  free_slots_.push_back(slot);
}

EventId Engine::enqueue_slot(Seconds when, std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.occupied = true;
  const std::uint64_t seq = next_seq_++;
  s.trace_id = seq + 1;  // matches the pre-slab engine's monotonic event ids
  queue_.push(Entry{when, seq, slot, s.generation});
  ++live_;
  obs::bump(c_scheduled_);
  if (g_slab_live_ != nullptr) {
    g_slab_live_->set(static_cast<std::int64_t>(live_));
    g_slab_slots_->set(static_cast<std::int64_t>(slots_.size()));
  }
  if (trace_) {
    obs::Event e{obs::EventKind::EngineSchedule, now_};
    e.when = when;
    trace_->emit(e.with("id", static_cast<std::int64_t>(s.trace_id)));
  }
  return EventId{pack(slot, s.generation)};
}

EventId Engine::schedule(Seconds when, Callback fn) {
  DMSIM_ASSERT(when >= now_, "cannot schedule an event in the past");
  DMSIM_ASSERT(fn != nullptr, "event callback must be callable");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  return enqueue_slot(when, slot);
}

EventId Engine::schedule_typed(Seconds when, const EventPayload& payload) {
  DMSIM_ASSERT(when >= now_, "cannot schedule an event in the past");
  DMSIM_ASSERT(payload.type != EventType::None,
               "typed events must carry a concrete EventType");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].payload = payload;
  return enqueue_slot(when, slot);
}

void Engine::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint64_t slot_plus_one = id.value & 0xffffffffULL;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return;
  const auto slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  const auto generation = static_cast<std::uint32_t>(id.value >> 32);
  Slot& s = slots_[slot];
  if (!s.occupied || s.generation != generation) return;  // fired or stale
  const std::uint64_t trace_id = s.trace_id;
  release_slot(slot);
  --live_;
  obs::bump(c_cancelled_);
  if (trace_) {
    trace_->emit(obs::Event{obs::EventKind::EngineCancel, now_}.with(
        "id", static_cast<std::int64_t>(trace_id)));
  }
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    if (!entry_live(top)) continue;  // lazily drop a cancelled entry
    Slot& s = slots_[top.slot];
    Callback fn = std::move(s.fn);
    // Copy out before releasing: the handler may schedule into this slot.
    const EventPayload payload = s.payload;
    const std::uint64_t trace_id = s.trace_id;
    release_slot(top.slot);
    --live_;
    DMSIM_ASSERT(top.time >= now_, "event queue went backwards in time");
    now_ = top.time;
    ++executed_;
    obs::bump(c_fired_);
    obs::record(s_events_, now_, 1);
    if (trace_) {
      trace_->emit(obs::Event{obs::EventKind::EngineFire, now_}.with(
          "id", static_cast<std::int64_t>(trace_id)));
    }
    if (payload.type != EventType::None) {
      DMSIM_ASSERT(handler_ != nullptr,
                   "typed event fired with no handler installed");
      handler_->on_event(payload);
    } else {
      fn();
    }
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Engine::run_ready(Seconds until) {
  std::uint64_t n = 0;
  for (;;) {
    // Peek past cancelled entries without firing anything late.
    while (!queue_.empty() && !entry_live(queue_.top())) queue_.pop();
    if (queue_.empty() || queue_.top().time > until) break;
    if (step()) ++n;
  }
  return n;
}

std::uint64_t Engine::run_until(Seconds until) {
  const std::uint64_t n = run_ready(until);
  now_ = std::max(now_, until);
  return n;
}

void Engine::save_state(snapshot::Writer& writer) const {
  writer.section(kEngineSection);
  writer.f64(now_);
  writer.u64(next_seq_);
  writer.u64(executed_);
  writer.u64(static_cast<std::uint64_t>(live_));
  writer.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const Slot& s : slots_) {
    writer.boolean(s.occupied);
    writer.u32(s.generation);
    if (!s.occupied) continue;
    if (s.payload.type == EventType::None) {
      throw snapshot::SnapshotError(
          "snapshot: pending closure event (trace id " +
          std::to_string(s.trace_id) +
          ") is not serializable — production code must use "
          "schedule_typed()");
    }
    writer.u64(s.trace_id);
    writer.u8(static_cast<std::uint8_t>(s.payload.type));
    writer.u32(s.payload.job);
    writer.u64(s.payload.index);
  }
  writer.u32(static_cast<std::uint32_t>(free_slots_.size()));
  for (std::uint32_t f : free_slots_) writer.u32(f);
  // Live heap entries in internal heap order. Stale entries (cancelled, not
  // yet lazily popped) are skipped: dropping them now is exactly what the
  // running engine would eventually do, and fire order is unaffected
  // because pop order is a total order on the unique (time, seq) key.
  std::uint32_t n_live = 0;
  for (const Entry& e : queue_.entries()) {
    if (entry_live(e)) ++n_live;
  }
  DMSIM_ASSERT(n_live == live_, "heap live entries out of sync with slab");
  writer.u32(n_live);
  for (const Entry& e : queue_.entries()) {
    if (!entry_live(e)) continue;
    writer.f64(e.time);
    writer.u64(e.seq);
    writer.u32(e.slot);
    writer.u32(e.generation);
  }
}

void Engine::restore_state(snapshot::Reader& reader) {
  reader.expect_section(kEngineSection, "engine");
  now_ = reader.f64();
  next_seq_ = reader.u64();
  executed_ = reader.u64();
  const std::uint64_t live = reader.u64();
  const std::uint32_t n_slots = reader.u32();
  slots_.clear();
  slots_.resize(n_slots);
  std::uint64_t occupied = 0;
  for (Slot& s : slots_) {
    s.occupied = reader.boolean();
    s.generation = reader.u32();
    if (s.generation == 0) {
      throw snapshot::SnapshotError("snapshot: slot generation 0 is reserved");
    }
    if (!s.occupied) continue;
    ++occupied;
    s.trace_id = reader.u64();
    const std::uint8_t type = reader.u8();
    if (type == 0 || type > kMaxEventType) {
      throw snapshot::SnapshotError("snapshot: unknown event type " +
                                    std::to_string(int{type}));
    }
    s.payload.type = static_cast<EventType>(type);
    s.payload.job = reader.u32();
    s.payload.index = reader.u64();
  }
  if (occupied != live) {
    throw snapshot::SnapshotError(
        "snapshot: occupied slot count does not match live event count");
  }
  free_slots_.clear();
  const std::uint32_t n_free = reader.u32();
  free_slots_.reserve(n_free);
  for (std::uint32_t i = 0; i < n_free; ++i) {
    const std::uint32_t f = reader.u32();
    if (f >= n_slots || slots_[f].occupied) {
      throw snapshot::SnapshotError("snapshot: free list names a live slot");
    }
    free_slots_.push_back(f);
  }
  queue_.clear();
  live_ = 0;
  const std::uint32_t n_entries = reader.u32();
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    Entry e{};
    e.time = reader.f64();
    e.seq = reader.u64();
    e.slot = reader.u32();
    e.generation = reader.u32();
    if (e.slot >= n_slots || !entry_live(e)) {
      throw snapshot::SnapshotError(
          "snapshot: heap entry refers to a dead slot");
    }
    if (e.time < now_) {
      throw snapshot::SnapshotError("snapshot: pending event in the past");
    }
    queue_.push(e);
    ++live_;
  }
  if (live_ != live) {
    throw snapshot::SnapshotError(
        "snapshot: heap entry count does not match live event count");
  }
}

}  // namespace dmsim::sim
