#include "serve/query.hpp"

#include <limits>
#include <string>

#include "harness/config_file.hpp"
#include "serve/json.hpp"
#include "trace/usage_trace.hpp"
#include "util/units.hpp"

namespace dmsim::serve {

std::string_view to_string(QueryOp op) noexcept {
  switch (op) {
    case QueryOp::Info:
      return "info";
    case QueryOp::Baseline:
      return "baseline";
    case QueryOp::Submit:
      return "submit";
    case QueryOp::Policy:
      return "policy";
    case QueryOp::Topology:
      return "topology";
    case QueryOp::Shutdown:
      return "shutdown";
  }
  return "?";
}

namespace {

[[nodiscard]] QueryOp parse_op(const std::string& name) {
  if (name == "info") return QueryOp::Info;
  if (name == "baseline") return QueryOp::Baseline;
  if (name == "submit") return QueryOp::Submit;
  if (name == "policy") return QueryOp::Policy;
  if (name == "topology") return QueryOp::Topology;
  if (name == "shutdown") return QueryOp::Shutdown;
  throw ServeError("query: unknown op '" + name + "'");
}

[[nodiscard]] trace::JobSpec parse_job(const JsonValue& obj) {
  if (!obj.is_object()) throw ServeError("query: jobs[] entries are objects");
  const std::int64_t id = obj.int_or("id", -1);
  if (id < 0 || id >= std::numeric_limits<std::uint32_t>::max()) {
    throw ServeError("query: job needs an \"id\" in [0, 2^32-1)");
  }
  trace::JobSpec spec;
  spec.id = JobId{static_cast<std::uint32_t>(id)};
  spec.submit_time = obj.num_or("submit_time", 0.0);
  spec.num_nodes = static_cast<int>(obj.int_or("num_nodes", 1));
  spec.requested_mem = static_cast<MiB>(obj.int_or("mem_mib", 0));
  spec.duration = obj.num_or("duration", 0.0);
  spec.walltime = obj.num_or("walltime", 2.0 * spec.duration);
  const MiB used =
      static_cast<MiB>(obj.int_or("used_mib", spec.requested_mem));
  spec.usage = trace::UsageTrace::constant(used);
  if (spec.num_nodes < 1) throw ServeError("query: job num_nodes must be >= 1");
  if (spec.requested_mem <= 0) {
    throw ServeError("query: job mem_mib must be > 0");
  }
  if (used <= 0 || used > spec.requested_mem) {
    throw ServeError("query: job used_mib must be in (0, mem_mib]");
  }
  if (spec.duration <= 0.0) throw ServeError("query: job duration must be > 0");
  if (spec.walltime < spec.duration) {
    throw ServeError("query: job walltime must be >= duration");
  }
  return spec;
}

[[nodiscard]] sched::SchedulerConfig parse_sched_swap(
    const JsonValue& obj, const sched::SchedulerConfig& base) {
  if (!obj.is_object()) throw ServeError("query: \"sched\" must be an object");
  sched::SchedulerConfig sc = base;
  sc.sched_interval = obj.num_or("sched_interval", sc.sched_interval);
  sc.update_interval = obj.num_or("update_interval", sc.update_interval);
  sc.queue_depth = static_cast<int>(obj.int_or("queue_depth", sc.queue_depth));
  sc.backfill_depth =
      static_cast<int>(obj.int_or("backfill_depth", sc.backfill_depth));
  sc.enable_backfill = obj.bool_or("backfill", sc.enable_backfill);
  if (sc.sched_interval <= 0.0 || sc.update_interval <= 0.0 ||
      sc.queue_depth < 1 || sc.backfill_depth < 0) {
    throw ServeError("query: sched swap values out of range");
  }
  return sc;
}

}  // namespace

Query parse_query(std::string_view line,
                  const sched::SchedulerConfig& base_sched) {
  const JsonValue doc = json_parse(line);
  if (!doc.is_object()) throw ServeError("query: expected a JSON object");

  Query q;
  q.op = parse_op(doc.str_or("op", ""));
  q.id = doc.str_or("id", "");
  q.snapshot = doc.str_or("snapshot", "");
  if (const JsonValue* sched = doc.find("sched"); sched != nullptr) {
    q.sched = parse_sched_swap(*sched, base_sched);
  }

  switch (q.op) {
    case QueryOp::Submit: {
      const JsonValue* jobs = doc.find("jobs");
      if (jobs == nullptr || !jobs->is_array() || jobs->array.empty()) {
        throw ServeError("query: submit needs a non-empty \"jobs\" array");
      }
      q.extra_jobs.reserve(jobs->array.size());
      for (const JsonValue& j : jobs->array) q.extra_jobs.push_back(parse_job(j));
      break;
    }
    case QueryOp::Policy: {
      const JsonValue* policies = doc.find("policies");
      if (policies == nullptr || !policies->is_array() ||
          policies->array.empty()) {
        throw ServeError("query: policy needs a non-empty \"policies\" array");
      }
      q.policies.reserve(policies->array.size());
      for (const JsonValue& p : policies->array) {
        if (p.kind != JsonValue::Kind::String) {
          throw ServeError("query: policies[] entries are strings");
        }
        try {
          q.policies.push_back(harness::parse_policy(p.string));
        } catch (const Error& e) {
          throw ServeError(std::string("query: ") + e.what());
        }
      }
      break;
    }
    case QueryOp::Topology: {
      const std::int64_t count = doc.int_or("add_nodes", 0);
      if (count < 1 || count > 1'000'000) {
        throw ServeError("query: topology needs \"add_nodes\" in [1, 1e6]");
      }
      cluster::NodeConfig node;
      node.capacity = static_cast<MiB>(doc.int_or("capacity_mib", 0));
      node.cores = static_cast<int>(doc.int_or("cores", node.cores));
      node.large = doc.bool_or("large", true);
      node.tier = static_cast<std::uint8_t>(doc.int_or("tier", 0));
      node.rack = static_cast<std::uint16_t>(doc.int_or("rack", 0));
      if (node.capacity <= 0) {
        throw ServeError("query: topology needs \"capacity_mib\" > 0");
      }
      if (node.cores < 1) throw ServeError("query: topology cores must be >= 1");
      q.extra_nodes.assign(static_cast<std::size_t>(count), node);
      break;
    }
    case QueryOp::Info:
    case QueryOp::Baseline:
    case QueryOp::Shutdown:
      break;
  }
  return q;
}

}  // namespace dmsim::serve
