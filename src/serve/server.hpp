// What-if serving daemon: answer provisioning queries against a warm image.
//
// The server holds one base scenario (system, policy, scheduler config,
// workload, app pool) and a snapshot of that scenario mid-run. Every
// query forks the parsed-once snapshot::Image — shared, refcounted, never
// re-read — applies the query's overlay (extra jobs, policy or scheduler
// swaps, topology edits) and simulates the remainder of the run.
//
// Concurrency model:
//   * connection threads parse queries and block on a future each;
//   * admissions are batched: a dispatcher thread drains the admission
//     queue in arrival order and runs each batch as one SweepRunner round,
//     so concurrent queries share the simulation thread pool instead of
//     oversubscribing it — and a policy race lands its variants in one
//     round;
//   * images are served from an LRU ImageCache keyed by path.
//
// Determinism: a cell result is a pure function of the forked cell, replies
// serialize results with the deterministic harness::cell_result_to_json,
// and volatile data (cache hit rates, wall timings) never enters a reply —
// so the same query against the same image yields a byte-identical reply
// at any thread count and under any interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "serve/image_cache.hpp"
#include "serve/query.hpp"

namespace dmsim::serve {

/// The base scenario every query forks from. The snapshot image(s) served
/// must have been taken under exactly this configuration — the server
/// computes the base fingerprint once and refuses mismatched images.
struct ServeScenario {
  harness::SystemConfig system;
  policy::PolicyKind policy = policy::PolicyKind::Dynamic;
  sched::SchedulerConfig sched;
  trace::Workload jobs;
  const slowdown::AppPool* apps = nullptr;
  std::string snapshot_path;  ///< default image for queries without "snapshot"
};

struct ServerOptions {
  std::size_t threads = 0;       ///< simulation pool size (0 = hardware)
  std::size_t cache_images = 4;  ///< LRU capacity in warm images
  int port = 0;                  ///< TCP port for listen_and_serve (0 = any)
};

class Server {
 public:
  Server(ServeScenario scenario, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Answer one query line with one reply line (no trailing newline).
  /// Never throws: protocol and snapshot errors become "status":"error"
  /// replies. Thread-safe.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// --once mode: drain newline-delimited queries from `in`, write one
  /// reply line each to `out` (flushed per line, so the stream can be a
  /// pipe). Stops at EOF or after a shutdown query. Returns the number of
  /// queries answered.
  std::size_t run_once(std::istream& in, std::ostream& out);

  /// Serve on 127.0.0.1:options.port (0 = kernel-assigned; see port()).
  /// Writes "dmsim_serve: listening on 127.0.0.1:<port>" to `log` once
  /// bound, then blocks until a shutdown query (or request_shutdown()).
  /// One thread per connection; each connection may pipeline queries.
  void listen_and_serve(std::ostream& log);

  /// Stop listen_and_serve from any thread. Idempotent.
  void request_shutdown();

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }
  /// Port actually bound (valid once listen_and_serve has logged).
  [[nodiscard]] int port() const noexcept {
    return bound_port_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t base_fingerprint() const noexcept {
    return base_fp_;
  }
  [[nodiscard]] ImageCache& cache() noexcept { return cache_; }

 private:
  struct Admission {
    harness::CellConfig cell;
    std::promise<harness::CellResult> reply;
  };

  /// Base fork of the scenario onto the query's image: resolves the image
  /// through the cache, validates its fingerprint against the base, and
  /// seeds the overlay with the query's scheduler swap. Throws ServeError.
  [[nodiscard]] harness::CellConfig make_fork(const Query& query);

  /// Admit cells (one batch) and wait for their results, arrival order.
  [[nodiscard]] std::vector<harness::CellResult> run_batched(
      std::vector<harness::CellConfig> cells);

  [[nodiscard]] std::string reply_info(const Query& query);
  void dispatcher_loop();
  void serve_connection(int fd);

  ServeScenario scenario_;
  ServerOptions options_;
  std::uint64_t base_fp_ = 0;
  std::unordered_set<std::uint32_t> base_job_ids_;
  ImageCache cache_;

  std::mutex adm_mutex_;
  std::condition_variable adm_cv_;
  std::deque<Admission> admissions_;
  bool stop_dispatcher_ = false;
  harness::SweepRunner runner_;  ///< touched only by the dispatcher thread
  std::thread dispatcher_;

  std::atomic<bool> shutdown_{false};
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> bound_port_{0};
};

}  // namespace dmsim::serve
