#include "serve/image_cache.hpp"

#include "util/error.hpp"

namespace dmsim::serve {

ImageCache::ImageCache(std::size_t capacity) : capacity_(capacity) {
  DMSIM_ASSERT(capacity >= 1, "image cache needs capacity >= 1");
}

std::shared_ptr<const snapshot::Image> ImageCache::get(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(path);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->image;
    }
  }
  // Parse outside the lock: opening a multi-megabyte snapshot must not
  // stall cache hits on other connections.
  std::shared_ptr<const snapshot::Image> image = snapshot::Image::open(path);
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  const auto it = index_.find(path);
  if (it != index_.end()) {
    // A racing miss beat us; keep its entry (ours is equivalent).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->image;
  }
  lru_.push_front(Entry{path, image});
  index_.emplace(path, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().path);
    lru_.pop_back();
    ++evictions_;
  }
  return image;
}

std::size_t ImageCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t ImageCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ImageCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ImageCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace dmsim::serve
