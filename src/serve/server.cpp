#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "cluster/cluster.hpp"
#include "serve/json.hpp"
#include "snapshot/checkpoint.hpp"
#include "util/error.hpp"

namespace dmsim::serve {

namespace {

[[nodiscard]] std::string hex_u64(std::uint64_t v) {
  char buf[17] = {};
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[v & 0xf];
    v >>= 4;
  }
  return std::string(buf, 16);
}

/// Reply prefix `{"id":...,"op":...` — the id is echoed only when given.
[[nodiscard]] std::string reply_head(const std::string& id,
                                     std::string_view op) {
  std::string head = "{";
  if (!id.empty()) {
    head += "\"id\":\"" + json_escape(id) + "\",";
  }
  head += "\"op\":\"";
  head += op;
  head += "\"";
  return head;
}

[[nodiscard]] std::string error_reply(const std::string& id,
                                      std::string_view op,
                                      std::string_view message) {
  return reply_head(id, op) + ",\"status\":\"error\",\"error\":\"" +
         json_escape(message) + "\"}";
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

[[nodiscard]] bool is_blank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Server::Server(ServeScenario scenario, ServerOptions options)
    : scenario_(std::move(scenario)),
      options_(options),
      cache_(options.cache_images),
      runner_(options.threads) {
  DMSIM_ASSERT(scenario_.apps != nullptr, "serve scenario needs an app pool");
  DMSIM_ASSERT(!scenario_.jobs.empty(), "serve scenario needs a workload");
  // Hash the base configuration exactly once; every fork afterwards is a
  // 64-bit compare (materialize_trusted).
  const cluster::Cluster base_cluster(scenario_.system.to_cluster_config());
  base_fp_ =
      snapshot::config_fingerprint(base_cluster, scenario_.sched, scenario_.jobs);
  base_job_ids_.reserve(scenario_.jobs.size());
  for (const trace::JobSpec& job : scenario_.jobs) {
    base_job_ids_.insert(job.id.get());
  }
  dispatcher_ = std::thread(&Server::dispatcher_loop, this);
}

Server::~Server() {
  request_shutdown();
  {
    std::lock_guard<std::mutex> lock(adm_mutex_);
    stop_dispatcher_ = true;
  }
  adm_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

harness::CellConfig Server::make_fork(const Query& query) {
  const std::string& path =
      query.snapshot.empty() ? scenario_.snapshot_path : query.snapshot;
  if (path.empty()) {
    throw ServeError(
        "serve: no snapshot image (start with --snapshot or put a "
        "\"snapshot\" path in the query)");
  }
  std::shared_ptr<const snapshot::Image> image = cache_.get(path);
  if (image->fingerprint() != base_fp_) {
    throw ServeError("serve: snapshot '" + path +
                     "' was taken under a different configuration "
                     "(fingerprint " +
                     hex_u64(image->fingerprint()) + ", scenario " +
                     hex_u64(base_fp_) + ")");
  }
  harness::CellConfig cell;
  cell.system = scenario_.system;
  cell.policy = scenario_.policy;
  cell.sched = scenario_.sched;
  cell.restore_image = std::move(image);
  cell.trusted_fingerprint = base_fp_;
  if (query.sched.has_value()) {
    harness::WhatIfOverlay overlay;
    overlay.sched = query.sched;
    cell.overlay = std::move(overlay);
  }
  return cell;
}

std::vector<harness::CellResult> Server::run_batched(
    std::vector<harness::CellConfig> cells) {
  std::vector<std::future<harness::CellResult>> futures;
  futures.reserve(cells.size());
  {
    std::lock_guard<std::mutex> lock(adm_mutex_);
    if (stop_dispatcher_) throw ServeError("serve: server is shutting down");
    // One lock hold per query: a policy race's variants enter the queue
    // adjacent and land in the same dispatcher batch.
    for (harness::CellConfig& cell : cells) {
      Admission adm;
      adm.cell = std::move(cell);
      futures.push_back(adm.reply.get_future());
      admissions_.push_back(std::move(adm));
    }
  }
  adm_cv_.notify_one();
  std::vector<harness::CellResult> results;
  results.reserve(futures.size());
  for (std::future<harness::CellResult>& f : futures) {
    results.push_back(f.get());
  }
  return results;
}

void Server::dispatcher_loop() {
  for (;;) {
    std::vector<Admission> batch;
    {
      std::unique_lock<std::mutex> lock(adm_mutex_);
      adm_cv_.wait(lock,
                   [this] { return stop_dispatcher_ || !admissions_.empty(); });
      if (admissions_.empty()) return;  // stop requested, queue drained
      batch.reserve(admissions_.size());
      while (!admissions_.empty()) {
        batch.push_back(std::move(admissions_.front()));
        admissions_.pop_front();
      }
    }
    std::vector<std::size_t> handles;
    handles.reserve(batch.size());
    try {
      for (Admission& adm : batch) {
        handles.push_back(
            runner_.add(std::move(adm.cell), scenario_.jobs, *scenario_.apps));
      }
      runner_.run_all();
    } catch (...) {
      for (Admission& adm : batch) {
        adm.reply.set_exception(std::current_exception());
      }
      continue;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].reply.set_value(runner_.result(handles[i]).cell);
    }
  }
}

std::string Server::reply_info(const Query& query) {
  const std::string& path =
      query.snapshot.empty() ? scenario_.snapshot_path : query.snapshot;
  std::string body = reply_head(query.id, "info") + ",\"status\":\"ok\"";
  body += ",\"result\":{";
  body += "\"base_fingerprint\":\"" + hex_u64(base_fp_) + "\"";
  body += ",\"policy\":\"" + std::string(policy::to_string(scenario_.policy)) +
          "\"";
  body += ",\"workload_jobs\":" + std::to_string(scenario_.jobs.size());
  if (!path.empty()) {
    const std::shared_ptr<const snapshot::Image> image = cache_.get(path);
    body += ",\"snapshot\":{";
    body += "\"path\":\"" + json_escape(path) + "\"";
    body += ",\"format_version\":" + std::to_string(image->version());
    body += ",\"fingerprint\":\"" + hex_u64(image->fingerprint()) + "\"";
    body += ",\"payload_checksum\":\"" + hex_u64(image->payload_checksum()) +
            "\"";
    body += ",\"total_bytes\":" + std::to_string(image->size_bytes());
    body += ",\"payload_bytes\":" + std::to_string(image->payload().size());
    body += ",\"sections\":[";
    bool first = true;
    for (const snapshot::SectionInfo& s : image->sections()) {
      if (!first) body += ",";
      first = false;
      body += "{\"name\":\"" + json_escape(s.name) + "\"";
      body += ",\"offset\":" + std::to_string(s.offset);
      body += ",\"size\":" + std::to_string(s.size);
      body += ",\"checksum\":\"" + hex_u64(s.checksum) + "\"}";
    }
    body += "]}";
  }
  body += "}}";
  return body;
}

std::string Server::handle_line(const std::string& line) {
  std::string id;
  std::string_view op = "?";
  try {
    Query query = parse_query(line, scenario_.sched);
    id = query.id;
    op = to_string(query.op);
    switch (query.op) {
      case QueryOp::Info:
        return reply_info(query);
      case QueryOp::Shutdown:
        request_shutdown();
        return reply_head(id, op) +
               ",\"status\":\"ok\",\"result\":{\"stopping\":true}}";
      case QueryOp::Baseline:
      case QueryOp::Submit:
      case QueryOp::Topology: {
        // Reject id collisions here with an error reply; deeper in the
        // stack they are invariant violations (submit_extra_jobs asserts).
        std::unordered_set<std::uint32_t> seen;
        for (const trace::JobSpec& job : query.extra_jobs) {
          if (base_job_ids_.contains(job.id.get()) ||
              !seen.insert(job.id.get()).second) {
            throw ServeError("query: job id " + std::to_string(job.id.get()) +
                             " collides with the base workload or the query");
          }
        }
        const std::size_t tier_count =
            scenario_.system.tiers.empty() ? 1 : scenario_.system.tiers.size();
        for (const cluster::NodeConfig& node : query.extra_nodes) {
          if (node.tier >= tier_count) {
            throw ServeError("query: node tier " + std::to_string(node.tier) +
                             " out of range (scenario has " +
                             std::to_string(tier_count) + " tier(s))");
          }
        }
        harness::CellConfig cell = make_fork(query);
        if (!query.extra_jobs.empty() || !query.extra_nodes.empty()) {
          harness::WhatIfOverlay overlay =
              cell.overlay.value_or(harness::WhatIfOverlay{});
          overlay.extra_jobs = std::move(query.extra_jobs);
          overlay.extra_nodes = std::move(query.extra_nodes);
          cell.overlay = std::move(overlay);
        }
        std::vector<harness::CellConfig> cells;
        cells.push_back(std::move(cell));
        const std::vector<harness::CellResult> results =
            run_batched(std::move(cells));
        return reply_head(id, op) + ",\"status\":\"ok\",\"result\":" +
               harness::cell_result_to_json(results.front()) + "}";
      }
      case QueryOp::Policy: {
        // Race the variants: one fork per policy, admitted as one batch so
        // they share a SweepRunner round; replies keep input order.
        std::vector<harness::CellConfig> cells;
        cells.reserve(query.policies.size());
        for (const policy::PolicyKind kind : query.policies) {
          harness::CellConfig cell = make_fork(query);
          harness::WhatIfOverlay overlay =
              cell.overlay.value_or(harness::WhatIfOverlay{});
          overlay.policy = kind;
          cell.overlay = std::move(overlay);
          cells.push_back(std::move(cell));
        }
        const std::vector<harness::CellResult> results =
            run_batched(std::move(cells));
        std::string body =
            reply_head(id, op) + ",\"status\":\"ok\",\"results\":[";
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (i > 0) body += ",";
          body += "{\"policy\":\"" +
                  std::string(policy::to_string(query.policies[i])) +
                  "\",\"result\":" +
                  harness::cell_result_to_json(results[i]) + "}";
        }
        body += "]}";
        return body;
      }
    }
    return error_reply(id, op, "unhandled op");
  } catch (const Error& e) {
    return error_reply(id, op, e.what());
  } catch (const std::exception& e) {
    return error_reply(id, op, e.what());
  }
}

std::size_t Server::run_once(std::istream& in, std::ostream& out) {
  std::size_t handled = 0;
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (is_blank(line)) continue;
    out << handle_line(line) << '\n' << std::flush;
    ++handled;
  }
  return handled;
}

void Server::request_shutdown() {
  shutdown_.store(true, std::memory_order_release);
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // Unblock accept(); the serve loop sees shutdown_ and drains.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (is_blank(line)) continue;
      const std::string reply = handle_line(line) + "\n";
      if (!send_all(fd, reply)) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

void Server::listen_and_serve(std::ostream& log) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ServeError("serve: cannot create socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw ServeError("serve: cannot bind 127.0.0.1:" +
                     std::to_string(options_.port) + " (" +
                     std::strerror(err) + ")");
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    throw ServeError("serve: getsockname failed");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw ServeError("serve: listen failed");
  }
  bound_port_.store(ntohs(addr.sin_port), std::memory_order_release);
  listen_fd_.store(fd, std::memory_order_release);
  log << "dmsim_serve: listening on 127.0.0.1:" << port() << "\n"
      << std::flush;

  std::vector<std::thread> connections;
  while (!shutdown_requested()) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd closed by request_shutdown (or fatal error)
    }
    connections.emplace_back(&Server::serve_connection, this, conn);
  }
  request_shutdown();  // closes the listen fd if still open
  for (std::thread& t : connections) t.join();
}

}  // namespace dmsim::serve
