// LRU cache of warm snapshot images.
//
// The serve daemon answers every query by forking a parsed-once
// snapshot::Image; this cache keys warm images by path so repeated queries
// against the same snapshot never re-read or re-parse bytes. Eviction drops
// only the cache's reference — images are refcounted, so forks in flight
// keep an evicted image alive until they finish, and a re-query after
// eviction simply re-opens the file.
//
// Thread-safe: get() may be called from every connection handler
// concurrently. The file read on a miss happens OUTSIDE the lock (two
// racing misses may both parse; one result wins, the other is dropped —
// wasted work, never inconsistency).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "snapshot/image.hpp"

namespace dmsim::serve {

class ImageCache {
 public:
  /// `capacity` = max images kept warm (>= 1).
  explicit ImageCache(std::size_t capacity);

  /// The image for `path`: cached when warm, opened (and cached, evicting
  /// the least-recently-used entry past capacity) on a miss. Throws
  /// SnapshotError for unreadable/corrupt files — nothing is cached then.
  [[nodiscard]] std::shared_ptr<const snapshot::Image> get(
      const std::string& path);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string path;
    std::shared_ptr<const snapshot::Image> image;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dmsim::serve
