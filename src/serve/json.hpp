// Minimal JSON value parser for the what-if serve protocol.
//
// Queries arrive as newline-delimited JSON objects; this parser covers the
// full value grammar (objects, arrays, strings with the common escapes,
// numbers, booleans, null) with object keys kept in insertion order, so a
// parsed query can be re-serialized or diffed deterministically. It is a
// deliberately small recursive-descent parser — the serve protocol's
// payloads are one line each, never documents — and throws ServeError with
// a byte offset on malformed input.
//
// Reply *writing* goes through metrics::JsonWriter; this header is the read
// side only.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dmsim::serve {

/// Thrown on malformed queries and serve-protocol violations.
class ServeError : public Error {
 public:
  using Error::Error;
};

struct JsonValue {
  enum class Kind { Null, Boolean, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Typed member accessors. The *_or forms default when the key is absent;
  /// all of them throw ServeError when the key holds the wrong type.
  [[nodiscard]] double num_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string str_or(std::string_view key,
                                   std::string fallback) const;
};

/// Parse one complete JSON value; trailing non-whitespace is an error.
/// Throws ServeError with the byte offset of the first problem.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Escape a string for embedding in a JSON document (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace dmsim::serve
