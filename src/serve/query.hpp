// What-if query protocol: one JSON object per line.
//
//   {"op":"info"}                               image + cache metadata
//   {"op":"baseline"}                           run the warm image unmodified
//   {"op":"submit","jobs":[{"id":9001,"num_nodes":2,"mem_mib":4096,
//                           "duration":600}]}   inject extra jobs
//   {"op":"policy","policies":["baseline","static","dynamic"]}
//                                               race policy variants
//   {"op":"topology","add_nodes":4,"capacity_mib":65536}
//                                               add idle memory-pool nodes
//   {"op":"shutdown"}                           stop the daemon
//
// Every query may carry:
//   "id"       — client correlation token, echoed verbatim in the reply,
//   "snapshot" — image path (default: the daemon's --snapshot),
//   "sched"    — scheduler-config swap object (keys: sched_interval,
//                update_interval, queue_depth, backfill_depth, backfill).
//
// Replies are single JSON lines; for a given query against a given image
// they are byte-identical at any thread count (simulation results are pure
// functions of the forked cell, and reply serialization is deterministic).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "trace/job_spec.hpp"

namespace dmsim::serve {

enum class QueryOp { Info, Baseline, Submit, Policy, Topology, Shutdown };

[[nodiscard]] std::string_view to_string(QueryOp op) noexcept;

struct Query {
  QueryOp op = QueryOp::Baseline;
  std::string id;        ///< echoed in the reply; empty = none given
  std::string snapshot;  ///< image path; empty = server default
  std::vector<trace::JobSpec> extra_jobs;        ///< Submit
  std::vector<policy::PolicyKind> policies;      ///< Policy (raced variants)
  std::vector<cluster::NodeConfig> extra_nodes;  ///< Topology
  /// Scheduler-config swap: base config with the query's overrides applied.
  std::optional<sched::SchedulerConfig> sched;
};

/// Parse one query line. `base_sched` seeds the "sched" swap (overrides
/// apply on top of the daemon's base scheduler config). Throws ServeError
/// on malformed JSON, unknown ops/keys, or out-of-range values.
[[nodiscard]] Query parse_query(std::string_view line,
                                const sched::SchedulerConfig& base_sched);

}  // namespace dmsim::serve
