#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace dmsim::serve {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ServeError("json: " + message + " at offset " +
                     std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("bad literal (expected '" + std::string(lit) + "')");
    }
    pos_ += lit.size();
  }

  [[nodiscard]] JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        expect_literal("true");
        JsonValue v;
        v.kind = JsonValue::Kind::Boolean;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        JsonValue v;
        v.kind = JsonValue::Kind::Boolean;
        v.boolean = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  [[nodiscard]] JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  [[nodiscard]] JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          // Queries are job ids and policy names — plain ASCII. Decode the
          // BMP escape to a single byte when it fits, refuse otherwise
          // rather than emit mangled UTF-8.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  [[nodiscard]] JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     v.number);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void wrong_type(std::string_view key) {
  throw ServeError("json: field '" + std::string(key) +
                   "' has the wrong type");
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != Kind::Number) wrong_type(key);
  return v->number;
}

std::int64_t JsonValue::int_or(std::string_view key,
                               std::int64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != Kind::Number) wrong_type(key);
  return static_cast<std::int64_t>(v->number);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != Kind::Boolean) wrong_type(key);
  return v->boolean;
}

std::string JsonValue::str_or(std::string_view key,
                              std::string fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != Kind::String) wrong_type(key);
  return v->string;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dmsim::serve
