#include "monitor/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "snapshot/snapshot.hpp"
#include "util/error.hpp"

namespace dmsim::monitor {

namespace {

/// SplitMix64 finalizer: a well-mixed 64-bit hash for the noise sequence.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform in [0, 1) from (seed, job, update counter).
[[nodiscard]] double uniform01(std::uint64_t seed, std::uint32_t job,
                               std::uint64_t counter) noexcept {
  const std::uint64_t h =
      mix64(seed ^ mix64((static_cast<std::uint64_t>(job) << 32) ^ counter));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[nodiscard]] MiB clamp_mib(double value) noexcept {
  if (!(value > 0.0)) return 0;
  return static_cast<MiB>(std::llround(value));
}

/// Relative error of `est` against `truth`, with a 1-MiB floor so tiny
/// truths do not blow the ratio up.
[[nodiscard]] double relative_miss(MiB est, MiB truth) noexcept {
  const MiB diff = est > truth ? est - truth : truth - est;
  return static_cast<double>(diff) /
         static_cast<double>(std::max<MiB>(truth, 1));
}

}  // namespace

const char* to_string(MonitorKind kind) noexcept {
  switch (kind) {
    case MonitorKind::Oracle:
      return "oracle";
    case MonitorKind::Sampled:
      return "sampled";
    case MonitorKind::Adaptive:
      return "adaptive";
  }
  return "unknown";
}

double demand_window_end(double progress, Seconds lookahead, Seconds duration,
                         double slowdown) noexcept {
  if (!(duration > 0.0) || !(lookahead > 0.0)) return 1.0;
  const double end = progress + lookahead / (duration * slowdown);
  // NaN compares false, catching both poisoned inputs and inverted windows;
  // an overflowed (infinite) window degrades to "the rest of the job".
  if (!(end >= progress) || !std::isfinite(end)) return 1.0;
  return end;
}

MiB MemoryMonitor::plan_initial(JobId /*id*/, const trace::JobSpec& /*spec*/,
                                double /*progress*/, double /*slowdown*/,
                                Seconds /*first_gap*/) {
  return 0;  // no opinion before the first real sample: the request stands
}

void MemoryMonitor::on_job_stop(JobId /*id*/) {}

void MemoryMonitor::save_state(snapshot::Writer& /*writer*/) const {}

void MemoryMonitor::restore_state(snapshot::Reader& /*reader*/) {}

// ---------------------------------------------------------------------------
// OracleMonitor
// ---------------------------------------------------------------------------

Reading OracleMonitor::update(JobId /*id*/, const trace::JobSpec& spec,
                              double progress, double slowdown,
                              Seconds base_interval, bool /*interval_locked*/) {
  Reading r;
  r.next_interval = base_interval;
  const double end =
      demand_window_end(progress, base_interval, spec.duration, slowdown);
  r.demand = spec.usage.max_in(progress, end);
  return r;
}

MiB OracleMonitor::plan_initial(JobId /*id*/, const trace::JobSpec& spec,
                                double progress, double slowdown,
                                Seconds first_gap) {
  return spec.usage.max_in(
      progress, demand_window_end(progress, first_gap, spec.duration, slowdown));
}

// ---------------------------------------------------------------------------
// SampledMonitor
// ---------------------------------------------------------------------------

Reading SampledMonitor::update(JobId id, const trace::JobSpec& spec,
                               double progress, double slowdown,
                               Seconds base_interval, bool /*interval_locked*/) {
  Reading r;
  r.next_interval = base_interval;
  const double end =
      demand_window_end(progress, base_interval, spec.duration, slowdown);
  const MiB truth = spec.usage.max_in(progress, end);

  // Staleness: the estimate describes the window as it looked `staleness`
  // seconds ago, i.e. shifted back along the progress axis by the distance
  // the job covered in that time.
  double from = progress;
  double to = end;
  if (config_.staleness > 0.0 && spec.duration > 0.0) {
    const double shift = config_.staleness / (spec.duration * slowdown);
    if (std::isfinite(shift)) {
      from = std::max(0.0, progress - shift);
      to = std::max(from, end - shift);
    } else {
      from = 0.0;
      to = 0.0;
    }
  }
  const MiB observed = spec.usage.max_in(from, to);

  std::uint64_t& counter = counters_[id.get()];
  const double u = uniform01(config_.seed, id.get(), counter);
  ++counter;
  const double factor = 1.0 + config_.relative_error * (2.0 * u - 1.0);
  const MiB estimate = clamp_mib(static_cast<double>(observed) * factor);
  // Provision to the estimate's upper confidence bound: a monitor that knows
  // its error model adds that much headroom, so runtime OOMs happen only
  // when the actual miss (noise compounded with staleness) exceeds the
  // advertised bound — not on every coin-flip underestimate.
  r.demand = clamp_mib(static_cast<double>(estimate) *
                       (1.0 + config_.relative_error));
  r.abs_error = estimate > truth ? estimate - truth : truth - estimate;
  return r;
}

void SampledMonitor::on_job_stop(JobId id) { counters_.erase(id.get()); }

void SampledMonitor::save_state(snapshot::Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(counters_.size()));
  for (const auto& [job, counter] : counters_) {  // std::map: id-sorted
    writer.u32(job);
    writer.u64(counter);
  }
}

void SampledMonitor::restore_state(snapshot::Reader& reader) {
  counters_.clear();
  const std::uint32_t n = reader.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t job = reader.u32();
    counters_[job] = reader.u64();
  }
}

// ---------------------------------------------------------------------------
// AdaptiveMonitor
// ---------------------------------------------------------------------------

namespace {
/// Regions narrower than this are never split further: the progress axis is
/// [0, 1], so 2^-20 of it is far below any real usage-trace feature.
constexpr double kMinRegionWidth = 1e-6;
}  // namespace

AdaptiveMonitor::AdaptiveMonitor(MonitorConfig config) : config_(config) {
  DMSIM_ASSERT(config_.min_interval > 0.0,
               "adaptive monitor: min_interval must be positive");
  DMSIM_ASSERT(config_.max_interval >= config_.min_interval,
               "adaptive monitor: max_interval < min_interval");
  DMSIM_ASSERT(config_.error_bound > 0.0,
               "adaptive monitor: error_bound must be positive");
  DMSIM_ASSERT(config_.overhead_us_per_region >= 0.0,
               "adaptive monitor: negative overhead");
}

AdaptiveMonitor::JobState& AdaptiveMonitor::state_of(JobId id,
                                                     Seconds base_interval) {
  auto [it, inserted] = jobs_.try_emplace(id.get());
  if (inserted) {
    it->second.regions.push_back(Region{0.0, 1.0, 0});
    it->second.interval = std::clamp(base_interval, config_.min_interval,
                                     config_.max_interval);
  }
  return it->second;
}

Reading AdaptiveMonitor::update(JobId id, const trace::JobSpec& spec,
                                double progress, double slowdown,
                                Seconds base_interval, bool interval_locked) {
  JobState& st = state_of(id, base_interval);
  // In GlobalBatch mode a single timer drives every job, so the elapsed
  // period is always base_interval regardless of what the regions want.
  const Seconds period = interval_locked ? base_interval : st.interval;

  const double end =
      demand_window_end(progress, period, spec.duration, slowdown);
  const MiB truth = spec.usage.max_in(progress, end);

  // Probe every region overlapping the window at the overlap midpoint; the
  // probe becomes the region's belief and the window estimate is the maximum
  // belief across the overlap. Coarse regions blur narrow spikes — exactly
  // DAMON's accuracy/overhead trade.
  MiB estimate = 0;
  int touched = 0;
  bool any_overlap = false;
  for (Region& region : st.regions) {
    const double lo = std::max(region.from, progress);
    const double hi = std::min(region.to, std::min(end, 1.0));
    if (hi < lo) continue;
    region.est = spec.usage.at((lo + hi) * 0.5);
    estimate = std::max(estimate, region.est);
    ++touched;
    any_overlap = true;
  }
  if (!any_overlap) {
    estimate = spec.usage.at(std::clamp(progress, 0.0, 1.0));
    touched = 1;
  }

  // Split / merge and period adaptation.
  if (relative_miss(estimate, truth) > config_.error_bound) {
    std::vector<Region> next;
    next.reserve(std::min(st.regions.size() * 2, kMaxRegionsPerJob));
    std::size_t remaining = st.regions.size();
    for (const Region& region : st.regions) {
      --remaining;
      const bool overlaps = region.to >= progress && region.from <= end;
      const double width = region.to - region.from;
      // Split only while the final count (each unvisited region contributes
      // at least one) stays within the cap.
      if (overlaps && width > kMinRegionWidth &&
          next.size() + 2 + remaining <= kMaxRegionsPerJob) {
        const double mid = region.from + width * 0.5;
        next.push_back(Region{region.from, mid, region.est});
        next.push_back(Region{mid, region.to, region.est});
      } else {
        next.push_back(region);
      }
    }
    st.regions = std::move(next);
    st.agreements = 0;
    st.interval = std::max(config_.min_interval, st.interval * 0.5);
  } else {
    ++st.agreements;
    if (st.agreements >= 2) {
      // Merge adjacent regions whose beliefs agree within the bound.
      std::vector<Region>& regions = st.regions;
      std::size_t out = 0;
      for (std::size_t i = 1; i < regions.size(); ++i) {
        Region& prev = regions[out];
        const Region& cur = regions[i];
        if (relative_miss(prev.est, cur.est) <= config_.error_bound) {
          prev.to = cur.to;
          prev.est = std::max(prev.est, cur.est);
        } else {
          regions[++out] = cur;
        }
      }
      regions.resize(out + 1);
      st.interval = std::min(config_.max_interval, st.interval * 2.0);
      st.agreements = 0;
    }
  }

  Reading r;
  r.next_interval = interval_locked ? base_interval : st.interval;
  // Provision to the error bound the split/merge loop maintains: misses
  // beyond it (a spike thinner than the finest region, a stale belief)
  // surface as runtime OOMs.
  r.demand =
      clamp_mib(static_cast<double>(estimate) * (1.0 + config_.error_bound));
  r.abs_error = estimate > truth ? estimate - truth : truth - estimate;
  r.regions = static_cast<int>(st.regions.size());
  r.overhead_us = static_cast<std::int64_t>(
      std::llround(static_cast<double>(touched) * config_.overhead_us_per_region));
  // The charge is amortized over the period it bought: overhead seconds per
  // period seconds of useful work.
  const Seconds next_period = std::max(r.next_interval, config_.min_interval);
  r.overhead_factor =
      1.0 + (static_cast<double>(r.overhead_us) * 1e-6) / next_period;
  return r;
}

void AdaptiveMonitor::on_job_stop(JobId id) { jobs_.erase(id.get()); }

std::size_t AdaptiveMonitor::region_count(JobId id) const noexcept {
  const auto it = jobs_.find(id.get());
  return it == jobs_.end() ? 0 : it->second.regions.size();
}

void AdaptiveMonitor::save_state(snapshot::Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(jobs_.size()));
  for (const auto& [job, st] : jobs_) {  // std::map: id-sorted
    writer.u32(job);
    writer.f64(st.interval);
    writer.u32(st.agreements);
    writer.u32(static_cast<std::uint32_t>(st.regions.size()));
    for (const Region& region : st.regions) {
      writer.f64(region.from);
      writer.f64(region.to);
      writer.i64(region.est);
    }
  }
}

void AdaptiveMonitor::restore_state(snapshot::Reader& reader) {
  jobs_.clear();
  const std::uint32_t n = reader.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t job = reader.u32();
    JobState st;
    st.interval = reader.f64();
    st.agreements = reader.u32();
    const std::uint32_t n_regions = reader.u32();
    st.regions.reserve(n_regions);
    for (std::uint32_t k = 0; k < n_regions; ++k) {
      Region region;
      region.from = reader.f64();
      region.to = reader.f64();
      region.est = reader.i64();
      st.regions.push_back(region);
    }
    jobs_.emplace(job, std::move(st));
  }
}

std::unique_ptr<MemoryMonitor> make_monitor(const MonitorConfig& config) {
  switch (config.kind) {
    case MonitorKind::Oracle:
      return std::make_unique<OracleMonitor>();
    case MonitorKind::Sampled:
      return std::make_unique<SampledMonitor>(config);
    case MonitorKind::Adaptive:
      return std::make_unique<AdaptiveMonitor>(config);
  }
  DMSIM_ASSERT(false, "unknown monitor kind");
  return nullptr;
}

}  // namespace dmsim::monitor
