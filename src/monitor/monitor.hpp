// MemoryMonitor: the abstraction between a job's ground-truth usage trace
// and the demand estimate the scheduler's Decider acts on (paper §2.2/2.3).
//
// Today's simulator reads the exact future maximum straight from the trace
// every update interval — a perfect, free, always-fresh monitor. That is one
// point in a three-dimensional design space (interval × accuracy × overhead)
// the paper leaves unexplored: how cheap and how stale can monitoring get
// before dynamic provisioning stops paying?
//
// Three implementations span the space:
//
//   * OracleMonitor — the identity default. Exact window maximum, fixed
//     period, zero overhead. A run configured with the oracle is
//     byte-identical to a run built before this subsystem existed (pinned
//     by tests/harness/monitor_golden_test).
//   * SampledMonitor — fixed-period estimates with configurable relative
//     error (deterministic pseudo-noise) and staleness lag (the estimate
//     describes the window as it looked `staleness` seconds ago).
//   * AdaptiveMonitor — DAMON-style region-based tracking: each job's usage
//     timeline is covered by regions that split when the estimate misses the
//     truth by more than an error bound and merge back when adjacent regions
//     agree; the sampling period adapts between a min and max interval, and
//     every update charges a per-region overhead that is folded into the
//     job's slowdown, so monitoring cost is a modeled quantity, not free.
//
// Estimation error is not merely cosmetic: a non-oracle monitor that
// under-provisions a window makes the job touch memory it was never
// allocated — a *runtime* OOM, detected at the next update by comparing the
// elapsed window's true maximum against what was provisioned
// (models_runtime_oom()). The oracle is exempt: its window estimates are
// exact by construction, and exempting it keeps the identity rule airtight.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "trace/job_spec.hpp"
#include "util/units.hpp"

namespace dmsim::snapshot {
class Writer;
class Reader;
}  // namespace dmsim::snapshot

namespace dmsim::monitor {

enum class MonitorKind : std::uint8_t {
  Oracle = 0,
  Sampled = 1,
  Adaptive = 2,
};

[[nodiscard]] const char* to_string(MonitorKind kind) noexcept;

struct MonitorConfig {
  MonitorKind kind = MonitorKind::Oracle;

  // --- Sampled ------------------------------------------------------------
  /// Relative estimation error: each estimate is scaled by a deterministic
  /// pseudo-random factor in [1 - relative_error, 1 + relative_error].
  double relative_error = 0.1;
  /// Staleness lag: the estimate describes the usage window as it looked
  /// this many simulated seconds in the past.
  Seconds staleness = 0.0;

  // --- Adaptive -----------------------------------------------------------
  Seconds min_interval = 60.0;   ///< fastest adaptive sampling period
  Seconds max_interval = 600.0;  ///< slowest adaptive sampling period
  /// Relative error bound: estimates missing the truth by more than this
  /// split the covering regions and halve the period; agreement merges
  /// regions and stretches the period.
  double error_bound = 0.1;
  /// Modeled cost of touching one region during one update, in microseconds.
  /// Folded into the job's slowdown as a fraction of the sampling period.
  double overhead_us_per_region = 10.0;

  /// Seed for the Sampled monitor's deterministic pseudo-noise.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  friend bool operator==(const MonitorConfig&, const MonitorConfig&) = default;
};

/// One Monitor reading for one job: the demand estimate for the coming
/// window, the monitor-chosen time until the next update, and the modeled
/// cost of producing it.
struct Reading {
  MiB demand = 0;               ///< estimated per-node demand for the window
  Seconds next_interval = 0.0;  ///< time until the next update
  double overhead_factor = 1.0; ///< multiplies the job's slowdown (>= 1)
  MiB abs_error = 0;            ///< |estimate - ground truth| over the window
  std::int64_t overhead_us = 0; ///< modeled monitoring cost of this update
  int regions = 0;              ///< live regions for this job (adaptive only)
};

/// Demand look-ahead window end in progress space: where the job will be
/// after `lookahead` seconds at its current effective rate. Guarded against
/// degenerate inputs — zero-duration specs, non-positive look-aheads and
/// overflowing divisions all yield 1.0 (the window covers the rest of the
/// job, the conservative answer) so UsageTrace::max_in never sees an
/// inverted or NaN window.
[[nodiscard]] double demand_window_end(double progress, Seconds lookahead,
                                       Seconds duration,
                                       double slowdown) noexcept;

class MemoryMonitor {
 public:
  virtual ~MemoryMonitor() = default;

  [[nodiscard]] virtual MonitorKind kind() const noexcept = 0;

  /// Whether estimation error can make a job touch unallocated memory: the
  /// scheduler then checks each elapsed window's true maximum against the
  /// provisioned amount and treats an excess as an out-of-memory event.
  /// False for the oracle (its window estimates are exact by construction).
  [[nodiscard]] virtual bool models_runtime_oom() const noexcept {
    return false;
  }

  /// Produce the demand estimate for the window starting at `progress` and
  /// the time until the next update. `base_interval` is the scheduler's
  /// configured update period; when `interval_locked` (GlobalBatch mode,
  /// where a single timer updates every job) the returned next_interval is
  /// pinned to it and only the estimate adapts.
  [[nodiscard]] virtual Reading update(JobId id, const trace::JobSpec& spec,
                                       double progress, double slowdown,
                                       Seconds base_interval,
                                       bool interval_locked) = 0;

  /// Demand to provision for the zeroth window [job start, first update),
  /// which the staggered update schedule can stretch to 1.5x the update
  /// interval. Returns 0 when the monitor has no opinion (the request-sized
  /// initial allocation stands); the oracle returns the true window maximum
  /// so the uncovered tail of the first window is provisioned like every
  /// later one.
  [[nodiscard]] virtual MiB plan_initial(JobId id, const trace::JobSpec& spec,
                                         double progress, double slowdown,
                                         Seconds first_gap);

  /// Drop per-job state (job completed, was killed, or requeued).
  virtual void on_job_stop(JobId id);

  /// Serialize / restore per-job monitor state (regions, periods, noise
  /// counters). Stateless monitors write nothing.
  virtual void save_state(snapshot::Writer& writer) const;
  virtual void restore_state(snapshot::Reader& reader);
};

/// Perfect monitor: exact window maximum, fixed period, zero overhead.
class OracleMonitor final : public MemoryMonitor {
 public:
  [[nodiscard]] MonitorKind kind() const noexcept override {
    return MonitorKind::Oracle;
  }
  [[nodiscard]] Reading update(JobId id, const trace::JobSpec& spec,
                               double progress, double slowdown,
                               Seconds base_interval,
                               bool interval_locked) override;
  [[nodiscard]] MiB plan_initial(JobId id, const trace::JobSpec& spec,
                                 double progress, double slowdown,
                                 Seconds first_gap) override;
};

/// Fixed-period monitor with deterministic noise and staleness lag.
class SampledMonitor final : public MemoryMonitor {
 public:
  explicit SampledMonitor(MonitorConfig config) : config_(config) {}

  [[nodiscard]] MonitorKind kind() const noexcept override {
    return MonitorKind::Sampled;
  }
  [[nodiscard]] bool models_runtime_oom() const noexcept override {
    return true;
  }
  [[nodiscard]] Reading update(JobId id, const trace::JobSpec& spec,
                               double progress, double slowdown,
                               Seconds base_interval,
                               bool interval_locked) override;
  void on_job_stop(JobId id) override;
  void save_state(snapshot::Writer& writer) const override;
  void restore_state(snapshot::Reader& reader) override;

 private:
  MonitorConfig config_;
  /// Per-job update counter driving the noise sequence. Ordered map so
  /// serialization is canonical without sorting.
  std::map<std::uint32_t, std::uint64_t> counters_;
};

/// DAMON-style region-based adaptive monitor.
class AdaptiveMonitor final : public MemoryMonitor {
 public:
  explicit AdaptiveMonitor(MonitorConfig config);

  [[nodiscard]] MonitorKind kind() const noexcept override {
    return MonitorKind::Adaptive;
  }
  [[nodiscard]] bool models_runtime_oom() const noexcept override {
    return true;
  }
  [[nodiscard]] Reading update(JobId id, const trace::JobSpec& spec,
                               double progress, double slowdown,
                               Seconds base_interval,
                               bool interval_locked) override;
  void on_job_stop(JobId id) override;
  void save_state(snapshot::Writer& writer) const override;
  void restore_state(snapshot::Reader& reader) override;

  /// Live region count for a job (testing hook); 0 if the job is unknown.
  [[nodiscard]] std::size_t region_count(JobId id) const noexcept;

 private:
  /// One monitoring region over the progress axis. `est` is the usage the
  /// monitor believes the region has — the value of its last probe.
  struct Region {
    double from = 0.0;
    double to = 1.0;
    MiB est = 0;
  };
  struct JobState {
    std::vector<Region> regions;
    Seconds interval = 0.0;  ///< current sampling period
    std::uint32_t agreements = 0;  ///< consecutive in-bound updates
  };

  JobState& state_of(JobId id, Seconds base_interval);

  MonitorConfig config_;
  std::map<std::uint32_t, JobState> jobs_;
};

/// Maximum regions the adaptive monitor keeps per job (split stops there).
inline constexpr std::size_t kMaxRegionsPerJob = 64;

[[nodiscard]] std::unique_ptr<MemoryMonitor> make_monitor(
    const MonitorConfig& config);

}  // namespace dmsim::monitor
