#include "core/simulator.hpp"

#include <utility>

#include "util/error.hpp"

namespace dmsim {

Simulator::Simulator(const SimulationConfig& config, trace::Workload workload,
                     const slowdown::AppPool* apps, obs::TraceSink* sink,
                     obs::Counters* counters)
    : config_(config),
      engine_(std::make_unique<sim::Engine>()),
      cluster_(std::make_unique<cluster::Cluster>(
          config.system.to_cluster_config())),
      policy_(policy::make_policy(config.policy)),
      observer_{sink, counters, engine_.get()} {
  if (sink != nullptr || counters != nullptr) {
    engine_->set_observer(&observer_);
    cluster_->set_observer(&observer_);
    policy_->set_observer(&observer_);
  }
  const obs::Observer* obs_ptr =
      (sink != nullptr || counters != nullptr) ? &observer_ : nullptr;
  scheduler_ = std::make_unique<sched::Scheduler>(*engine_, *cluster_, *policy_,
                                                  apps, config.sched, obs_ptr);
  scheduler_->submit_workload(std::move(workload));
  infeasible_ = scheduler_->infeasible_count();
}

SimulationResult Simulator::run() {
  DMSIM_ASSERT(!ran_, "Simulator::run may only be called once");
  ran_ = true;

  SimulationResult result;
  result.provisioned_memory = cluster_->total_capacity();
  result.system_cost_usd = metrics::CostModel{}.system_cost(*cluster_);
  result.valid = (infeasible_ == 0);
  if (!result.valid) {
    result.records = scheduler_->records();
    return result;
  }
  scheduler_->run();
  result.summary = metrics::summarize(scheduler_->records(), scheduler_->totals());
  result.totals = scheduler_->totals();
  result.records = scheduler_->records();
  result.samples = scheduler_->samples();
  result.avg_allocated_mib = scheduler_->avg_allocated_mib();
  result.avg_busy_nodes = scheduler_->avg_busy_nodes();
  result.engine_events = engine_->executed_events();
  if (observer_.counters != nullptr) {
    result.counters = observer_.counters->snapshot();
  }
  return result;
}

}  // namespace dmsim
