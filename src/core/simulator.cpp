#include "core/simulator.hpp"

#include <utility>

#include "util/error.hpp"

namespace dmsim {

Simulator::Simulator(const SimulationConfig& config, trace::Workload workload,
                     const slowdown::AppPool* apps, obs::TraceSink* sink,
                     obs::Counters* counters)
    : Simulator(config, std::move(workload), apps, sink, counters,
                /*defer_sink=*/false) {}

Simulator::Simulator(const SimulationConfig& config, trace::Workload workload,
                     const slowdown::AppPool* apps, obs::TraceSink* sink,
                     obs::Counters* counters, bool defer_sink)
    : config_(config),
      engine_(std::make_unique<sim::Engine>()),
      cluster_(std::make_unique<cluster::Cluster>(
          config.system.to_cluster_config())),
      policy_(policy::make_policy(config.policy)),
      observer_{defer_sink ? nullptr : sink, counters, engine_.get()} {
  // With a deferred sink the observer is still wired through every layer
  // (components hold its address), but traces nothing until restore_from
  // attaches the sink post-restore.
  const bool wired = sink != nullptr || counters != nullptr;
  if (wired) {
    engine_->set_observer(&observer_);
    cluster_->set_observer(&observer_);
    policy_->set_observer(&observer_);
  }
  const obs::Observer* obs_ptr = wired ? &observer_ : nullptr;
  scheduler_ = std::make_unique<sched::Scheduler>(*engine_, *cluster_, *policy_,
                                                  apps, config.sched, obs_ptr);
  scheduler_->submit_workload(std::move(workload));
  infeasible_ = scheduler_->infeasible_count();
}

std::unique_ptr<Simulator> Simulator::restore_from(
    const std::string& snapshot_path, const SimulationConfig& config,
    trace::Workload workload, const slowdown::AppPool* apps,
    obs::TraceSink* sink, obs::Counters* counters) {
  // Construct with the sink deferred: workload submission replays engine
  // schedule events whose trace records the saving run already emitted, and
  // the resumed trace must be exactly the uninterrupted run's suffix.
  auto sim = std::unique_ptr<Simulator>(new Simulator(
      config, std::move(workload), apps, sink, counters, /*defer_sink=*/true));
  snapshot::restore_file(snapshot_path, sim->components(), &sim->ck_stats_);
  if (sink != nullptr) {
    sim->observer_.sink = sink;
    // The engine caches the sink pointer at set_observer time; re-wire now
    // that the sink is live. Cluster/policy/scheduler read it dynamically.
    sim->engine_->set_observer(&sim->observer_);
  }
  return sim;
}

std::unique_ptr<Simulator> Simulator::restore_from(
    std::shared_ptr<const snapshot::Image> image,
    const SimulationConfig& config, trace::Workload workload,
    const slowdown::AppPool* apps, obs::TraceSink* sink,
    obs::Counters* counters) {
  DMSIM_ASSERT(image != nullptr, "restore_from needs an image");
  auto sim = std::unique_ptr<Simulator>(new Simulator(
      config, std::move(workload), apps, sink, counters, /*defer_sink=*/true));
  image->materialize(sim->components());
  ++sim->ck_stats_.restores;
  sim->ck_stats_.bytes_read += image->size_bytes();
  if (sink != nullptr) {
    sim->observer_.sink = sink;
    sim->engine_->set_observer(&sim->observer_);
  }
  return sim;
}

snapshot::Components Simulator::components() noexcept {
  return snapshot::Components{engine_.get(), cluster_.get(), scheduler_.get(),
                              observer_.counters};
}

SimulationResult Simulator::run() { return run_impl(nullptr); }

SimulationResult Simulator::run(const snapshot::Plan& plan) {
  return run_impl(&plan);
}

SimulationResult Simulator::run_impl(const snapshot::Plan* plan) {
  DMSIM_ASSERT(!ran_, "Simulator::run may only be called once");
  ran_ = true;

  SimulationResult result;
  result.provisioned_memory = cluster_->total_capacity();
  result.system_cost_usd = metrics::CostModel{}.system_cost(*cluster_);
  result.valid = (infeasible_ == 0);
  if (!result.valid) {
    result.records = scheduler_->records();
    return result;
  }
  if (plan != nullptr && plan->active()) {
    snapshot::run_with_checkpoints(components(), *plan, &ck_stats_);
    scheduler_->finalize();
  } else {
    scheduler_->run();
  }
  result.summary = metrics::summarize(scheduler_->records(), scheduler_->totals());
  result.totals = scheduler_->totals();
  result.records = scheduler_->records();
  result.samples = scheduler_->samples();
  result.avg_allocated_mib = scheduler_->avg_allocated_mib();
  result.avg_busy_nodes = scheduler_->avg_busy_nodes();
  result.engine_events = engine_->executed_events();
  if (observer_.counters != nullptr) {
    result.counters = observer_.counters->snapshot();
  }
  return result;
}

}  // namespace dmsim
