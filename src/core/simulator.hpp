// dmsim public facade.
//
// Simulator bundles the engine, cluster, policy and scheduler behind a
// two-call API:
//
//   dmsim::Simulator sim(config, workload, &apps);
//   dmsim::SimulationResult result = sim.run();
//
// For parameter sweeps across many configurations prefer the stateless
// harness (harness/scenario.hpp), which this class shares its internals
// with.
#pragma once

#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "harness/scenario.hpp"
#include "metrics/metrics.hpp"
#include "obs/observer.hpp"
#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "slowdown/model.hpp"
#include "snapshot/checkpoint.hpp"
#include "trace/job_spec.hpp"

namespace dmsim {

struct SimulationConfig {
  harness::SystemConfig system;
  policy::PolicyKind policy = policy::PolicyKind::Dynamic;
  sched::SchedulerConfig sched;
};

struct SimulationResult {
  bool valid = false;  ///< false: workload contains jobs this system can never run
  metrics::WorkloadSummary summary;
  sched::SchedulerTotals totals;
  std::vector<sched::JobRecord> records;
  std::vector<sched::SystemSample> samples;
  double avg_allocated_mib = 0.0;
  double avg_busy_nodes = 0.0;
  MiB provisioned_memory = 0;
  double system_cost_usd = 0.0;
  std::uint64_t engine_events = 0;  ///< discrete events executed by the run
  /// Name-sorted dump of the counters registry (empty when none was wired).
  obs::CountersSnapshot counters;
};

class Simulator {
 public:
  /// `apps` may be nullptr (contention-insensitive jobs); when non-null it
  /// must outlive the Simulator. `sink` / `counters` (both optional,
  /// caller-owned, must outlive the Simulator) wire structured event
  /// tracing and the central counters registry through every layer; run()
  /// copies the registry snapshot into the result.
  Simulator(const SimulationConfig& config, trace::Workload workload,
            const slowdown::AppPool* apps, obs::TraceSink* sink = nullptr,
            obs::Counters* counters = nullptr);

  /// Run to completion. May only be called once.
  [[nodiscard]] SimulationResult run();

  /// Run to completion, saving checkpoints per `plan` (explicit cut times
  /// and/or a periodic interval). Results are byte-identical to a plain
  /// run(): checkpoint saves are side-effect-free observations.
  [[nodiscard]] SimulationResult run(const snapshot::Plan& plan);

  /// Resume a simulation from a snapshot file. `config`/`workload` must be
  /// identical to the run that saved the snapshot (enforced via the
  /// snapshot's configuration fingerprint). The trace sink is attached only
  /// after state is restored, so the NDJSON trace of the resumed run is
  /// exactly the uninterrupted run's suffix from the cut point onward.
  [[nodiscard]] static std::unique_ptr<Simulator> restore_from(
      const std::string& snapshot_path, const SimulationConfig& config,
      trace::Workload workload, const slowdown::AppPool* apps,
      obs::TraceSink* sink = nullptr, obs::Counters* counters = nullptr);

  /// Resume from a shared, parsed-once snapshot image instead of a file —
  /// the fork primitive: a thousand Simulators may materialize the same
  /// warm image concurrently without re-reading or re-parsing bytes. Same
  /// fingerprint contract and deferred-sink semantics as the file overload.
  [[nodiscard]] static std::unique_ptr<Simulator> restore_from(
      std::shared_ptr<const snapshot::Image> image,
      const SimulationConfig& config, trace::Workload workload,
      const slowdown::AppPool* apps, obs::TraceSink* sink = nullptr,
      obs::Counters* counters = nullptr);

  /// Checkpoint activity of run(plan)/restore_from. Deliberately not part
  /// of SimulationResult: restored runs checkpoint differently than the
  /// uninterrupted runs they must match byte for byte.
  [[nodiscard]] const snapshot::Stats& checkpoint_stats() const noexcept {
    return ck_stats_;
  }

  [[nodiscard]] const cluster::Cluster& cluster() const noexcept {
    return *cluster_;
  }
  /// Mutable ledger access for harness-level toggles (debug parity sweeps);
  /// production callers mutate the cluster only through the scheduler.
  [[nodiscard]] cluster::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] const sched::Scheduler& scheduler() const noexcept {
    return *scheduler_;
  }

 private:
  Simulator(const SimulationConfig& config, trace::Workload workload,
            const slowdown::AppPool* apps, obs::TraceSink* sink,
            obs::Counters* counters, bool defer_sink);

  [[nodiscard]] SimulationResult run_impl(const snapshot::Plan* plan);
  [[nodiscard]] snapshot::Components components() noexcept;

  SimulationConfig config_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<policy::AllocationPolicy> policy_;
  obs::Observer observer_;  ///< stable address; components keep a pointer
  std::unique_ptr<sched::Scheduler> scheduler_;
  snapshot::Stats ck_stats_;
  std::size_t infeasible_ = 0;
  bool ran_ = false;
};

}  // namespace dmsim
