// dmsim public facade.
//
// Simulator bundles the engine, cluster, policy and scheduler behind a
// two-call API:
//
//   dmsim::Simulator sim(config, workload, &apps);
//   dmsim::SimulationResult result = sim.run();
//
// For parameter sweeps across many configurations prefer the stateless
// harness (harness/scenario.hpp), which this class shares its internals
// with.
#pragma once

#include <memory>

#include "cluster/cluster.hpp"
#include "harness/scenario.hpp"
#include "metrics/metrics.hpp"
#include "obs/observer.hpp"
#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "slowdown/model.hpp"
#include "trace/job_spec.hpp"

namespace dmsim {

struct SimulationConfig {
  harness::SystemConfig system;
  policy::PolicyKind policy = policy::PolicyKind::Dynamic;
  sched::SchedulerConfig sched;
};

struct SimulationResult {
  bool valid = false;  ///< false: workload contains jobs this system can never run
  metrics::WorkloadSummary summary;
  sched::SchedulerTotals totals;
  std::vector<sched::JobRecord> records;
  std::vector<sched::SystemSample> samples;
  double avg_allocated_mib = 0.0;
  double avg_busy_nodes = 0.0;
  MiB provisioned_memory = 0;
  double system_cost_usd = 0.0;
  std::uint64_t engine_events = 0;  ///< discrete events executed by the run
  /// Name-sorted dump of the counters registry (empty when none was wired).
  obs::CountersSnapshot counters;
};

class Simulator {
 public:
  /// `apps` may be nullptr (contention-insensitive jobs); when non-null it
  /// must outlive the Simulator. `sink` / `counters` (both optional,
  /// caller-owned, must outlive the Simulator) wire structured event
  /// tracing and the central counters registry through every layer; run()
  /// copies the registry snapshot into the result.
  Simulator(const SimulationConfig& config, trace::Workload workload,
            const slowdown::AppPool* apps, obs::TraceSink* sink = nullptr,
            obs::Counters* counters = nullptr);

  /// Run to completion. May only be called once.
  [[nodiscard]] SimulationResult run();

  [[nodiscard]] const cluster::Cluster& cluster() const noexcept {
    return *cluster_;
  }
  [[nodiscard]] const sched::Scheduler& scheduler() const noexcept {
    return *scheduler_;
  }

 private:
  SimulationConfig config_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<policy::AllocationPolicy> policy_;
  obs::Observer observer_;  ///< stable address; components keep a pointer
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::size_t infeasible_ = 0;
  bool ran_ = false;
};

}  // namespace dmsim
