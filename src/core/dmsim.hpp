// Umbrella header: the full dmsim public API.
//
// dmsim reproduces "Dynamic Memory Provisioning on Disaggregated HPC
// Systems" (Zacarias, Carpenter, Petrucci — SC-W 2023): a Slurm-like
// discrete-event scheduler simulator with Baseline / Static / Dynamic
// disaggregated-memory allocation policies, a contention-aware slowdown
// model, and the paper's complete trace-generation methodology.
#pragma once

#include "cluster/cluster.hpp"        // nodes, disaggregated memory ledger
#include "core/simulator.hpp"         // Simulator facade
#include "harness/scenario.hpp"       // sweeps: systems x policies x workloads
#include "harness/sweep.hpp"          // parallel sweep runner (heterogeneous cells)
#include "metrics/metrics.hpp"        // throughput, response time, cost model
#include "metrics/timeline.hpp"       // utilization/waste/bounded-slowdown
#include "obs/counters.hpp"           // central counters registry
#include "obs/observer.hpp"           // observability bundle (sink+counters+clock)
#include "obs/profiler.hpp"           // wall-clock phase timers, throughput
#include "obs/trace_sink.hpp"         // NDJSON / Chrome trace-event sinks
#include "policy/policy.hpp"          // Baseline / Static / Dynamic policies
#include "sched/scheduler.hpp"        // FCFS + backfill, dynamic updates
#include "sim/engine.hpp"             // discrete-event core
#include "slowdown/model.hpp"         // sensitivity curves, contention
#include "trace/job_spec.hpp"         // jobs and usage traces
#include "trace/swf.hpp"              // Standard Workload Format I/O
#include "trace/usage_trace.hpp"      // progress-indexed usage, RDP
#include "workload/archer.hpp"        // Table 2 memory distributions
#include "workload/cirne.hpp"         // CIRNE comprehensive model
#include "workload/filter.hpp"        // mix resampling (Fig. 3 step 7)
#include "workload/generator.hpp"     // Fig. 3 synthetic pipeline
#include "workload/google_usage.hpp"  // usage-shape library
#include "workload/grizzly.hpp"       // Grizzly-style traces (Fig. 2)
#include "workload/stats.hpp"         // Table 1/3-style characterization

// Opt-in extras (not pulled in by default to keep the umbrella light):
//   harness/config_file.hpp   slurm.conf-style configuration files
//   metrics/json_export.hpp   JSON result documents
//   slowdown/profile_io.hpp   app-profile files
//   trace/swf_validate.hpp    SWF trace linting
//   trace/usage_io.hpp        per-job usage-trace files
