// Plain-text table and CSV emission for the bench harness. Every figure/table
// reproduction prints through these helpers so output formats stay uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dmsim::util {

/// A column-aligned text table with an optional title, printed to a stream.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;
  /// Comma-separated form (no alignment padding), suitable for re-plotting.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("0.123", "12.3%", "4.56e-08").
[[nodiscard]] std::string fmt(double v, int precision = 3);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);
[[nodiscard]] std::string fmt_sci(double v, int precision = 2);

}  // namespace dmsim::util
