#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dmsim::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> sample, double q) {
  DMSIM_ASSERT(!sample.empty(), "quantile of empty sample");
  DMSIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile level out of [0,1]");
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  const double h = q * (static_cast<double>(v.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(h);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

Quartiles quartiles(std::span<const double> sample) {
  DMSIM_ASSERT(!sample.empty(), "quartiles of empty sample");
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  const auto at = [&](double q) {
    const double h = q * (static_cast<double>(v.size()) - 1.0);
    const auto lo = static_cast<std::size_t>(h);
    const auto hi = std::min(lo + 1, v.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  };
  return Quartiles{v.front(), at(0.25), at(0.5), at(0.75), v.back()};
}

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  DMSIM_ASSERT(!sorted_.empty(), "quantile of empty ECDF");
  DMSIM_ASSERT(p > 0.0 && p <= 1.0, "ECDF quantile level out of (0,1]");
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

double Ecdf::ks_distance(const Ecdf& a, const Ecdf& b) {
  DMSIM_ASSERT(!a.empty() && !b.empty(), "KS distance of empty ECDF");
  double d = 0.0;
  for (double x : a.sorted_) d = std::max(d, std::abs(a.at(x) - b.at(x)));
  for (double x : b.sorted_) d = std::max(d, std::abs(a.at(x) - b.at(x)));
  return d;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  DMSIM_ASSERT(edges_.size() >= 2, "histogram needs at least two edges");
  DMSIM_ASSERT(std::is_sorted(edges_.begin(), edges_.end()),
               "histogram edges must be sorted");
  counts_.assign(edges_.size() - 1, 0.0);
}

void Histogram::add(double x, double weight) noexcept {
  if (x < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bucket] += weight;
}

double Histogram::count(std::size_t bucket) const {
  DMSIM_ASSERT(bucket < counts_.size(), "histogram bucket out of range");
  return counts_[bucket];
}

double Histogram::total() const noexcept {
  double t = underflow_ + overflow_;
  for (double c : counts_) t += c;
  return t;
}

double Histogram::fraction(std::size_t bucket) const {
  const double t = total();
  if (t == 0.0) return 0.0;
  return count(bucket) / t;
}

}  // namespace dmsim::util
