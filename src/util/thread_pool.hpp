// Minimal fixed-size thread pool used by the experiment harness to run
// independent simulation cells in parallel. Each task is a self-contained
// closure; results flow back through std::future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace dmsim::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  ///
  /// Exception guarantee: every iteration runs to completion regardless of
  /// failures elsewhere, and if one or more iterations throw, the exception
  /// of the LOWEST-index failing iteration is rethrown. The choice is
  /// deterministic — it never depends on thread interleaving — so a failing
  /// sweep reports the same error on every run.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dmsim::util
