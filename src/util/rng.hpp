// Deterministic, splittable random number generation.
//
// Every stochastic component of dmsim (trace generators, the CIRNE model,
// usage-trace phase machines, the app pool) draws from a *named child* of a
// master Rng. Children are derived by hashing the parent's seed with the
// child name, so:
//   * the same (master seed, name) pair always yields the same stream,
//   * adding a new consumer never perturbs existing streams, and
//   * parallel sweep cells are reproducible independent of execution order.
//
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded via
// SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dmsim::util {

/// SplitMix64 step: used for seeding and for hashing names into seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a 64-bit hash of a string, used to fold child names into seeds.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// xoshiro256** engine with named-child splitting.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  [[nodiscard]] result_type operator()() noexcept;

  /// Derive an independent child stream. The child depends only on this
  /// generator's original seed and the name (and index), not on how many
  /// numbers have been drawn from the parent.
  [[nodiscard]] Rng child(std::string_view name, std::uint64_t index = 0) const noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
  /// Exponential with given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;
  /// Weibull with shape k > 0 and scale lambda > 0.
  [[nodiscard]] double weibull(double shape, double scale) noexcept;
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  [[nodiscard]] double gamma(double shape, double scale) noexcept;
  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Index drawn from unnormalized non-negative weights. Requires sum > 0.
  [[nodiscard]] std::size_t discrete(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Full serializable generator state: the original seed (child derivation
  /// depends on it) plus the four xoshiro256** words (the stream position).
  /// restore_state(state()) round-trips exactly, so a snapshotted stream
  /// resumes bit-for-bit where it left off.
  struct State {
    std::uint64_t seed = 0;
    std::array<std::uint64_t, 4> words{};
    friend constexpr bool operator==(const State&, const State&) noexcept =
        default;
  };

  [[nodiscard]] State state() const noexcept { return State{seed_, s_}; }

  void restore_state(const State& state) noexcept {
    seed_ = state.seed;
    s_ = state.words;
  }

 private:
  std::uint64_t seed_;
  std::array<std::uint64_t, 4> s_;
};

}  // namespace dmsim::util
