// Move-only callable wrapper with small-buffer inline storage.
//
// The simulation engine schedules millions of short-lived closures; storing
// them as std::function costs a heap allocation whenever the capture spills
// the implementation's tiny inline buffer (16 bytes on libstdc++). A
// SmallFunction<void(), 48> keeps captures up to 48 bytes inline — every
// scheduler callback in this codebase fits — and only boxes larger ones.
// Move-only by design: event callbacks are consumed exactly once, and
// dropping copyability admits move-only captures (unique_ptr and friends).
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>

namespace dmsim::util {

template <typename Signature, std::size_t Capacity = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
  static_assert(Capacity >= sizeof(void*), "capacity must hold a pointer");

 public:
  /// True when a callable of type D lives in the inline buffer (no heap).
  template <typename D>
  static constexpr bool stores_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (stores_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &BoxedOps<D>::ops;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  /// Destroy the held callable (if any); *this becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  friend bool operator==(const SmallFunction& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }

  /// Invoke the held callable. Precondition: non-empty.
  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static R invoke(void* s, Args&&... args) {
      return std::invoke(*static_cast<D*>(s), std::forward<Args>(args)...);
    }
    static void relocate(void* src, void* dst) noexcept {
      D* p = static_cast<D*>(src);
      ::new (dst) D(std::move(*p));
      p->~D();
    }
    static void destroy(void* s) noexcept { static_cast<D*>(s)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct BoxedOps {
    static D* ptr(void* s) noexcept { return *static_cast<D**>(s); }
    static R invoke(void* s, Args&&... args) {
      return std::invoke(*ptr(s), std::forward<Args>(args)...);
    }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) D*(ptr(src));  // steal the box: a pointer copy
    }
    static void destroy(void* s) noexcept { delete ptr(s); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(SmallFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.buf_, buf_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace dmsim::util
