#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dmsim::util {

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::child(std::string_view name, std::uint64_t index) const noexcept {
  std::uint64_t mix = seed_ ^ fnv1a(name);
  mix ^= 0x94D049BB133111EBULL * (index + 1);
  // One extra splitmix pass decorrelates children with related names/indices.
  std::uint64_t sm = mix;
  return Rng(splitmix64(sm));
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  DMSIM_ASSERT(lo <= hi, "uniform_int requires lo <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's nearly-divisionless bounded integers would be faster; rejection
  // sampling keeps the distribution exactly uniform with simpler code.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t x = (*this)();
  while (x >= limit) x = (*this)();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box–Muller; u1 in (0,1] so log() is finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  DMSIM_ASSERT(rate > 0.0, "exponential rate must be positive");
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::weibull(double shape, double scale) noexcept {
  DMSIM_ASSERT(shape > 0.0 && scale > 0.0, "weibull parameters must be positive");
  return scale * std::pow(-std::log(1.0 - uniform()), 1.0 / shape);
}

double Rng::gamma(double shape, double scale) noexcept {
  DMSIM_ASSERT(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
  if (shape < 1.0) {
    // Boost to shape+1 and apply the standard power correction.
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    DMSIM_ASSERT(w >= 0.0, "discrete weights must be non-negative");
    total += w;
  }
  DMSIM_ASSERT(total > 0.0, "discrete weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

}  // namespace dmsim::util
