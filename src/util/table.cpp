#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace dmsim::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  DMSIM_ASSERT(header_.empty() || row.size() == header_.size(),
               "table row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  const auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return ss.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace dmsim::util
