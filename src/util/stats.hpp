// Statistics primitives used by the metrics layer and the trace generators:
// online moments (Welford), quantiles, ECDF, and fixed-bucket histograms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dmsim::util {

/// Numerically stable online mean / variance / extrema accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation quantile of an unsorted sample (type-7, as in R).
/// q in [0, 1]. Requires a non-empty sample.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

/// All five-number-summary quartiles in one sort: {min, q1, median, q3, max}.
struct Quartiles {
  double min = 0.0, q1 = 0.0, median = 0.0, q3 = 0.0, max = 0.0;
};
[[nodiscard]] Quartiles quartiles(std::span<const double> sample);

/// Empirical cumulative distribution function over a fixed sample.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> sample);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const noexcept;
  /// Inverse ECDF: smallest sample value v with P(X <= v) >= p, p in (0, 1].
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

  /// Largest vertical distance between two ECDFs (Kolmogorov–Smirnov statistic).
  [[nodiscard]] static double ks_distance(const Ecdf& a, const Ecdf& b);

 private:
  std::vector<double> sorted_;
};

/// Histogram over caller-supplied right-open buckets [edge[i], edge[i+1]).
/// Values below the first edge or at/above the last edge are counted in
/// underflow/overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double count(std::size_t bucket) const;
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  [[nodiscard]] double overflow() const noexcept { return overflow_; }
  [[nodiscard]] double total() const noexcept;
  /// Fraction of the total mass (incl. under/overflow) in a bucket.
  [[nodiscard]] double fraction(std::size_t bucket) const;
  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace dmsim::util
