// Error handling for dmsim.
//
// Library errors are reported with dmsim::Error (invalid configuration,
// malformed traces). Internal invariant violations use DMSIM_ASSERT, which is
// active in all build types: a simulator whose ledger goes inconsistent must
// stop rather than publish wrong results.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dmsim {

/// Base exception for user-facing dmsim errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a configuration is invalid (negative capacity, empty trace, ...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an input trace file cannot be parsed.
class TraceError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const std::string& msg,
                              std::source_location loc);
}  // namespace detail

}  // namespace dmsim

/// Always-on invariant check. `msg` may use string concatenation.
#define DMSIM_ASSERT(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::dmsim::detail::assert_fail(#expr, (msg),                            \
                                   std::source_location::current());        \
    }                                                                       \
  } while (false)
