// Units and fundamental scalar types used across dmsim.
//
// Conventions (see DESIGN.md §6):
//   * memory is measured in MiB and carried as std::int64_t (MiB),
//   * simulated time is measured in seconds and carried as double (Seconds),
//   * node/job identifiers are strongly typed wrappers to prevent mixing.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>

namespace dmsim {

/// Memory quantity in mebibytes. 64-bit: a 1490-node x 128 GiB system is
/// ~195M MiB, far below the 2^63 limit even when aggregated over time.
using MiB = std::int64_t;

/// Simulated time in seconds since the start of the simulation.
using Seconds = double;

inline constexpr MiB kMiBPerGiB = 1024;

/// Convert whole GiB to MiB.
[[nodiscard]] constexpr MiB gib(std::int64_t g) noexcept { return g * kMiBPerGiB; }

/// Convert MiB to (fractional) GiB for reporting.
[[nodiscard]] constexpr double to_gib(MiB m) noexcept {
  return static_cast<double>(m) / static_cast<double>(kMiBPerGiB);
}

/// Time helpers for readability in configs and tests.
[[nodiscard]] constexpr Seconds minutes(double m) noexcept { return m * 60.0; }
[[nodiscard]] constexpr Seconds hours(double h) noexcept { return h * 3600.0; }
[[nodiscard]] constexpr Seconds days(double d) noexcept { return d * 86400.0; }

/// Sentinel for "no time" / unset timestamps.
inline constexpr Seconds kNoTime = -1.0;

/// Strongly typed integer id. Tag types keep NodeId and JobId incompatible.
template <typename Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();

  constexpr Id() noexcept = default;
  constexpr explicit Id(std::uint32_t v) noexcept : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] constexpr std::uint32_t get() const noexcept { return value; }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;
};

struct NodeTag {};
struct JobTag {};

using NodeId = Id<NodeTag>;
using JobId = Id<JobTag>;

}  // namespace dmsim

template <typename Tag>
struct std::hash<dmsim::Id<Tag>> {
  [[nodiscard]] std::size_t operator()(dmsim::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
