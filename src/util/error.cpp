#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace dmsim::detail {

void assert_fail(const char* expr, const std::string& msg,
                 std::source_location loc) {
  std::fprintf(stderr, "dmsim invariant violated: %s\n  at %s:%u (%s)\n  %s\n",
               expr, loc.file_name(), loc.line(), loc.function_name(),
               msg.c_str());
  std::abort();
}

}  // namespace dmsim::detail
