#include "harness/experiments.hpp"

#include "harness/sweep.hpp"
#include "util/error.hpp"

namespace dmsim::harness {

namespace {

[[nodiscard]] CellConfig make_cell(const SystemConfig& system,
                                   policy::PolicyKind kind,
                                   const sched::SchedulerConfig& sched_config) {
  CellConfig cell;
  cell.system = system;
  cell.policy = kind;
  cell.sched = sched_config;
  return cell;
}

[[nodiscard]] std::optional<double> normalized(const CellResult& result,
                                               double reference) {
  if (!result.valid) return std::nullopt;
  if (reference > 0.0) return result.throughput() / reference;
  return result.throughput();
}

void merge_tally(obs::ThroughputReport* tally, const SweepRunner& runner) {
  if (tally == nullptr) return;
  const obs::ThroughputReport report = runner.report();
  tally->engine_events += report.engine_events;
  tally->sim_seconds += report.sim_seconds;
  tally->wall_seconds += report.wall_seconds;
}

}  // namespace

std::vector<ThroughputPoint> throughput_vs_memory(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, double reference,
    const sched::SchedulerConfig& sched_config, std::size_t threads,
    obs::ThroughputReport* tally) {
  SweepRunner runner(threads);
  constexpr policy::PolicyKind kKinds[] = {policy::PolicyKind::Baseline,
                                           policy::PolicyKind::Static,
                                           policy::PolicyKind::Dynamic};
  for (const SystemConfig& system : systems) {
    for (const policy::PolicyKind kind : kKinds) {
      (void)runner.add(make_cell(system, kind, sched_config), jobs, apps);
    }
  }
  runner.run_all();

  std::vector<ThroughputPoint> out;
  out.reserve(systems.size());
  std::size_t handle = 0;
  for (const SystemConfig& system : systems) {
    ThroughputPoint point;
    point.system = system;
    point.memory_fraction = system.memory_fraction();
    point.baseline = normalized(runner.result(handle++).cell, reference);
    point.static_policy = normalized(runner.result(handle++).cell, reference);
    const CellResult& dynamic_cell = runner.result(handle++).cell;
    point.dynamic_policy = normalized(dynamic_cell, reference);
    if (dynamic_cell.valid) {
      point.dynamic_oom_job_fraction = dynamic_cell.summary.oom_job_fraction();
    }
    out.push_back(point);
  }
  merge_tally(tally, runner);
  return out;
}

double reference_throughput(const trace::Workload& jobs,
                            const slowdown::AppPool& apps, int total_nodes,
                            obs::ThroughputReport* tally) {
  SystemConfig full;
  full.total_nodes = total_nodes;
  full.pct_large_nodes = 1.0;
  SweepRunner runner(1);
  const std::size_t handle =
      runner.add(make_cell(full, policy::PolicyKind::Baseline, {}), jobs, apps);
  runner.run_all();
  merge_tally(tally, runner);
  const CellResult& result = runner.result(handle).cell;
  return result.valid ? result.throughput() : 0.0;
}

std::optional<double> min_memory_for_threshold(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, policy::PolicyKind policy,
    double reference, const sched::SchedulerConfig& sched_config,
    double threshold, std::size_t threads, obs::ThroughputReport* tally) {
  DMSIM_ASSERT(reference > 0.0, "need a positive reference throughput");
  SweepRunner runner(threads);
  for (const SystemConfig& system : systems) {
    (void)runner.add(make_cell(system, policy, sched_config), jobs, apps);
  }
  runner.run_all();
  merge_tally(tally, runner);
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const auto value = normalized(runner.result(i).cell, reference);
    if (value.has_value() && *value >= threshold) {
      return systems[i].memory_fraction();
    }
  }
  return std::nullopt;
}

}  // namespace dmsim::harness
