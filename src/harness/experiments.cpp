#include "harness/experiments.hpp"

#include "util/error.hpp"

namespace dmsim::harness {

namespace {

[[nodiscard]] std::optional<double> run_policy_normalized(
    const SystemConfig& system, policy::PolicyKind kind,
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const sched::SchedulerConfig& sched_config, double reference,
    double* oom_fraction = nullptr) {
  CellConfig cell;
  cell.system = system;
  cell.policy = kind;
  cell.sched = sched_config;
  const CellResult result = run_cell(cell, jobs, apps);
  if (!result.valid) return std::nullopt;
  if (oom_fraction != nullptr) {
    *oom_fraction = result.summary.oom_job_fraction();
  }
  if (reference > 0.0) return result.throughput() / reference;
  return result.throughput();
}

}  // namespace

std::vector<ThroughputPoint> throughput_vs_memory(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, double reference,
    const sched::SchedulerConfig& sched_config) {
  std::vector<ThroughputPoint> out;
  out.reserve(systems.size());
  for (const SystemConfig& system : systems) {
    ThroughputPoint point;
    point.system = system;
    point.memory_fraction = system.memory_fraction();
    point.baseline = run_policy_normalized(
        system, policy::PolicyKind::Baseline, jobs, apps, sched_config,
        reference);
    point.static_policy = run_policy_normalized(
        system, policy::PolicyKind::Static, jobs, apps, sched_config,
        reference);
    point.dynamic_policy = run_policy_normalized(
        system, policy::PolicyKind::Dynamic, jobs, apps, sched_config,
        reference, &point.dynamic_oom_job_fraction);
    out.push_back(point);
  }
  return out;
}

double reference_throughput(const trace::Workload& jobs,
                            const slowdown::AppPool& apps, int total_nodes) {
  SystemConfig full;
  full.total_nodes = total_nodes;
  full.pct_large_nodes = 1.0;
  CellConfig cell;
  cell.system = full;
  cell.policy = policy::PolicyKind::Baseline;
  const CellResult result = run_cell(cell, jobs, apps);
  return result.valid ? result.throughput() : 0.0;
}

std::optional<double> min_memory_for_threshold(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, policy::PolicyKind policy,
    double reference, double threshold) {
  DMSIM_ASSERT(reference > 0.0, "need a positive reference throughput");
  for (const SystemConfig& system : systems) {
    const auto normalized = run_policy_normalized(system, policy, jobs, apps,
                                                  {}, reference);
    if (normalized.has_value() && *normalized >= threshold) {
      return system.memory_fraction();
    }
  }
  return std::nullopt;
}

}  // namespace dmsim::harness
