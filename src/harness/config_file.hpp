// slurm.conf-style configuration files for dmsim (paper Fig. 1b: the
// simulator is driven by a slurm.conf plus a job trace).
//
// Format: `Key=Value` lines, `#` comments, blank lines ignored. Keys are
// case-insensitive; values accept human units (memory: `64G`, `2048M`;
// durations: `30s`, `5min`, `2h`; booleans: yes/no/true/false/1/0).
//
//     # system (Table 4)
//     Nodes            = 1024
//     PctLargeNodes    = 0.25
//     NormalCapacity   = 64G
//     LargeCapacity    = 128G
//     CoresPerNode     = 32
//     LenderPolicy     = memory_nodes_first   # most_free | least_free
//
//     # scheduling
//     AllocationPolicy = dynamic               # baseline | static | dynamic
//     SchedulerInterval = 30s
//     QueueDepth       = 100
//     BackfillDepth    = 100
//     UpdateInterval   = 5min
//     Monitor          = oracle                # sampled:ERR:LAG | adaptive:MIN:MAX:ERR[:US]
//     OomHandling      = fail_restart          # checkpoint_restart
//     GuaranteedAfterFailures = 3
//     PriorityBoostPerFailure = 1
//
//     # optional synthetic workload (otherwise supply SWF + usage traces)
//     Jobs             = 1000
//     TargetLoad       = 0.85
//     PctLargeJobs     = 0.5
//     Overestimation   = 0.6
//     MaxJobNodes      = 128
//     Seed             = 42
//
//     # optional what-if serving (dmsim_serve)
//     ServeThreads     = 4        # simulation pool size (0 = hardware)
//     ServeCacheImages = 4        # warm snapshot images kept in the LRU
//     ServePort        = 0        # TCP port (0 = kernel-assigned)
#pragma once

#include <iosfwd>
#include <string>

#include "core/simulator.hpp"
#include "workload/generator.hpp"

namespace dmsim::harness {

/// dmsim_serve settings (Serve* keys). Other tools ignore them, so one
/// config file can drive a run, a sweep and the serve daemon.
struct ServeFileConfig {
  std::size_t threads = 0;       ///< simulation pool size (0 = hardware)
  std::size_t cache_images = 4;  ///< warm images kept by the LRU cache
  int port = 0;                  ///< TCP port (0 = kernel-assigned)
};

struct FileConfig {
  SimulationConfig simulation;
  workload::SyntheticWorkloadConfig workload;
  bool has_workload = false;  ///< true if any workload key was present
  ServeFileConfig serve;
};

/// Parse a configuration stream/file. Throws ConfigError on unknown keys or
/// malformed values (typos must not silently fall back to defaults).
[[nodiscard]] FileConfig parse_config(std::istream& in);
[[nodiscard]] FileConfig parse_config_file(const std::string& path);

/// Value parsing helpers (exposed for reuse and direct testing).
[[nodiscard]] MiB parse_memory(const std::string& value);        // "64G", "512M", "1024"
[[nodiscard]] Seconds parse_duration(const std::string& value);  // "30s", "5min", "2h", "300"
[[nodiscard]] bool parse_bool(const std::string& value);         // yes/no/true/false/1/0
[[nodiscard]] policy::PolicyKind parse_policy(const std::string& value);
[[nodiscard]] cluster::LenderPolicy parse_lender_policy(const std::string& value);
[[nodiscard]] sched::OomHandling parse_oom_handling(const std::string& value);
[[nodiscard]] monitor::MonitorConfig parse_monitor(const std::string& value);

}  // namespace dmsim::harness
