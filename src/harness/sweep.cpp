#include "harness/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "metrics/json_export.hpp"
#include "util/error.hpp"

namespace dmsim::harness {

namespace {

/// Process peak RSS in MiB (0 where getrusage is unavailable). ru_maxrss is
/// KiB on Linux, bytes on macOS.
long peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / (1024 * 1024);
#else
  return usage.ru_maxrss / 1024;
#endif
#else
  return 0;
#endif
}

}  // namespace

std::size_t SweepRunner::add(CellConfig config, const trace::Workload& jobs,
                             const slowdown::AppPool& apps) {
  cells_.push_back(PendingCell{std::move(config), &jobs, &apps});
  return cells_.size() - 1;
}

void SweepRunner::run_all() {
  const std::size_t first = executed_;
  const std::size_t count = cells_.size() - first;
  if (count == 0) return;
  results_.resize(cells_.size());
  progress_done_ = 0;
  const auto batch_start = std::chrono::steady_clock::now();
  // Each iteration writes only its own slot, so no synchronization is
  // needed beyond the pool's completion barrier (progress reporting has its
  // own mutex).
  pool_.parallel_for(count, [this, first, count, batch_start](std::size_t i) {
    const PendingCell& cell = cells_[first + i];
    const auto start = std::chrono::steady_clock::now();
    SweepCellResult& out = results_[first + i];
    out.cell = run_cell(cell.config, *cell.jobs, *cell.apps);
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (progress_ != nullptr) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - batch_start)
                                 .count();
      note_progress(cell, out, count, elapsed);
    }
  });
  executed_ = cells_.size();
  report_.wall_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - batch_start)
                              .count();
  for (std::size_t i = first; i < executed_; ++i) {
    const CellResult& cell = results_[i].cell;
    report_.engine_events += cell.engine_events;
    if (cell.valid) report_.sim_seconds += cell.summary.makespan();
  }
}

void SweepRunner::note_progress(const PendingCell& cell,
                                const SweepCellResult& result,
                                std::size_t batch_size,
                                double batch_elapsed_seconds) {
  const std::lock_guard<std::mutex> lock(progress_mutex_);
  ++progress_done_;
  // ETA assumes the remaining cells cost what the finished ones averaged —
  // crude, but it converges as the batch drains.
  const double eta =
      batch_elapsed_seconds / static_cast<double>(progress_done_) *
      static_cast<double>(batch_size - progress_done_);
  const double events_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.cell.engine_events) / result.wall_seconds
          : 0.0;
  char line[256];
  std::snprintf(line, sizeof line,
                "[sweep %zu/%zu] %s: %.2fs, %.3g events/s, elapsed %.1fs, "
                "eta %.1fs, peak rss %ld MiB\n",
                progress_done_, batch_size,
                cell.config.label.empty() ? "cell" : cell.config.label.c_str(),
                result.wall_seconds, events_per_sec, batch_elapsed_seconds,
                eta, peak_rss_mib());
  *progress_ << line;
  progress_->flush();
}

const SweepCellResult& SweepRunner::result(std::size_t handle) const {
  DMSIM_ASSERT(handle < executed_, "cell has not been run yet");
  return results_[handle];
}

std::string cell_result_to_json(const CellResult& result) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("valid").value(result.valid);
  w.key("infeasible_jobs").value(static_cast<std::uint64_t>(result.infeasible_jobs));
  w.key("summary").begin_object();
  {
    const auto& s = result.summary;
    w.key("total_jobs").value(static_cast<std::uint64_t>(s.total_jobs));
    w.key("completed").value(static_cast<std::uint64_t>(s.completed));
    w.key("abandoned").value(static_cast<std::uint64_t>(s.abandoned));
    w.key("jobs_with_oom").value(static_cast<std::uint64_t>(s.jobs_with_oom));
    w.key("oom_events").value(s.oom_events);
    w.key("first_submit").value(s.first_submit);
    w.key("last_end").value(s.last_end);
    w.key("throughput").value(s.throughput);
    w.key("mean_response_time").value(s.response_time.mean());
    w.key("mean_wait_time").value(s.wait_time.mean());
  }
  w.end_object();
  w.key("totals").begin_object();
  {
    const auto& t = result.totals;
    w.key("completed").value(t.completed);
    w.key("oom_events").value(t.oom_events);
    w.key("requeues").value(t.requeues);
    w.key("fcfs_starts").value(t.fcfs_starts);
    w.key("backfill_starts").value(t.backfill_starts);
    w.key("guaranteed_starts").value(t.guaranteed_starts);
    w.key("update_events").value(t.update_events);
    w.key("scheduling_passes").value(t.scheduling_passes);
    w.key("abandoned").value(t.abandoned);
    w.key("walltime_kills").value(t.walltime_kills);
  }
  w.end_object();
  w.key("avg_allocated_mib").value(result.avg_allocated_mib);
  w.key("avg_busy_nodes").value(result.avg_busy_nodes);
  w.key("provisioned_memory_mib").value(static_cast<std::uint64_t>(result.provisioned_memory));
  w.key("system_cost_usd").value(result.system_cost_usd);
  w.key("engine_events").value(result.engine_events);
  w.end_object();
  return w.str();
}

}  // namespace dmsim::harness
