#include "harness/sweep.hpp"

#include <chrono>
#include <utility>

#include "metrics/json_export.hpp"
#include "util/error.hpp"

namespace dmsim::harness {

std::size_t SweepRunner::add(CellConfig config, const trace::Workload& jobs,
                             const slowdown::AppPool& apps) {
  cells_.push_back(PendingCell{std::move(config), &jobs, &apps});
  return cells_.size() - 1;
}

void SweepRunner::run_all() {
  const std::size_t first = executed_;
  const std::size_t count = cells_.size() - first;
  if (count == 0) return;
  results_.resize(cells_.size());
  const auto batch_start = std::chrono::steady_clock::now();
  // Each iteration writes only its own slot, so no synchronization is
  // needed beyond the pool's completion barrier.
  pool_.parallel_for(count, [this, first](std::size_t i) {
    const PendingCell& cell = cells_[first + i];
    const auto start = std::chrono::steady_clock::now();
    SweepCellResult& out = results_[first + i];
    out.cell = run_cell(cell.config, *cell.jobs, *cell.apps);
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  });
  executed_ = cells_.size();
  report_.wall_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - batch_start)
                              .count();
  for (std::size_t i = first; i < executed_; ++i) {
    const CellResult& cell = results_[i].cell;
    report_.engine_events += cell.engine_events;
    if (cell.valid) report_.sim_seconds += cell.summary.makespan();
  }
}

const SweepCellResult& SweepRunner::result(std::size_t handle) const {
  DMSIM_ASSERT(handle < executed_, "cell has not been run yet");
  return results_[handle];
}

std::string cell_result_to_json(const CellResult& result) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("valid").value(result.valid);
  w.key("infeasible_jobs").value(static_cast<std::uint64_t>(result.infeasible_jobs));
  w.key("summary").begin_object();
  {
    const auto& s = result.summary;
    w.key("total_jobs").value(static_cast<std::uint64_t>(s.total_jobs));
    w.key("completed").value(static_cast<std::uint64_t>(s.completed));
    w.key("abandoned").value(static_cast<std::uint64_t>(s.abandoned));
    w.key("jobs_with_oom").value(static_cast<std::uint64_t>(s.jobs_with_oom));
    w.key("oom_events").value(s.oom_events);
    w.key("first_submit").value(s.first_submit);
    w.key("last_end").value(s.last_end);
    w.key("throughput").value(s.throughput);
    w.key("mean_response_time").value(s.response_time.mean());
    w.key("mean_wait_time").value(s.wait_time.mean());
  }
  w.end_object();
  w.key("totals").begin_object();
  {
    const auto& t = result.totals;
    w.key("completed").value(t.completed);
    w.key("oom_events").value(t.oom_events);
    w.key("requeues").value(t.requeues);
    w.key("fcfs_starts").value(t.fcfs_starts);
    w.key("backfill_starts").value(t.backfill_starts);
    w.key("guaranteed_starts").value(t.guaranteed_starts);
    w.key("update_events").value(t.update_events);
    w.key("scheduling_passes").value(t.scheduling_passes);
    w.key("abandoned").value(t.abandoned);
    w.key("walltime_kills").value(t.walltime_kills);
  }
  w.end_object();
  w.key("avg_allocated_mib").value(result.avg_allocated_mib);
  w.key("avg_busy_nodes").value(result.avg_busy_nodes);
  w.key("provisioned_memory_mib").value(static_cast<std::uint64_t>(result.provisioned_memory));
  w.key("system_cost_usd").value(result.system_cost_usd);
  w.key("engine_events").value(result.engine_events);
  w.end_object();
  return w.str();
}

}  // namespace dmsim::harness
