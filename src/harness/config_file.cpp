#include "harness/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>

#include "util/error.hpp"

namespace dmsim::harness {

namespace {

[[nodiscard]] std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[nodiscard]] std::string strip(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

[[nodiscard]] double parse_number(const std::string& value, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw ConfigError(std::string("invalid ") + what + ": '" + value + "'");
  }
}

/// Split a "<number><suffix>" value; suffix may be empty.
[[nodiscard]] std::pair<double, std::string> split_unit(const std::string& value,
                                                        const char* what) {
  std::size_t pos = 0;
  while (pos < value.size() &&
         (std::isdigit(static_cast<unsigned char>(value[pos])) ||
          value[pos] == '.' || value[pos] == '-' || value[pos] == '+')) {
    ++pos;
  }
  if (pos == 0) {
    throw ConfigError(std::string("invalid ") + what + ": '" + value + "'");
  }
  const double number = parse_number(value.substr(0, pos), what);
  return {number, lower(strip(value.substr(pos)))};
}

}  // namespace

MiB parse_memory(const std::string& value) {
  const auto [number, unit] = split_unit(strip(value), "memory size");
  double mib = 0.0;
  if (unit.empty() || unit == "m" || unit == "mb" || unit == "mib") {
    mib = number;
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    mib = number * 1024.0;
  } else if (unit == "t" || unit == "tb" || unit == "tib") {
    mib = number * 1024.0 * 1024.0;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    mib = number / 1024.0;
  } else {
    throw ConfigError("unknown memory unit: '" + unit + "'");
  }
  if (mib < 0) throw ConfigError("memory size must be non-negative: " + value);
  return static_cast<MiB>(std::llround(mib));
}

Seconds parse_duration(const std::string& value) {
  const auto [number, unit] = split_unit(strip(value), "duration");
  double seconds = 0.0;
  if (unit.empty() || unit == "s" || unit == "sec" || unit == "secs" ||
      unit == "seconds") {
    seconds = number;
  } else if (unit == "m" || unit == "min" || unit == "mins" ||
             unit == "minutes") {
    seconds = number * 60.0;
  } else if (unit == "h" || unit == "hr" || unit == "hours") {
    seconds = number * 3600.0;
  } else if (unit == "d" || unit == "days") {
    seconds = number * 86400.0;
  } else {
    throw ConfigError("unknown duration unit: '" + unit + "'");
  }
  if (seconds < 0) throw ConfigError("duration must be non-negative: " + value);
  return seconds;
}

bool parse_bool(const std::string& value) {
  const std::string v = lower(strip(value));
  if (v == "yes" || v == "true" || v == "1" || v == "on") return true;
  if (v == "no" || v == "false" || v == "0" || v == "off") return false;
  throw ConfigError("invalid boolean: '" + value + "'");
}

policy::PolicyKind parse_policy(const std::string& value) {
  const std::string v = lower(strip(value));
  if (v == "baseline") return policy::PolicyKind::Baseline;
  if (v == "static") return policy::PolicyKind::Static;
  if (v == "dynamic") return policy::PolicyKind::Dynamic;
  throw ConfigError("unknown allocation policy: '" + value + "'");
}

cluster::LenderPolicy parse_lender_policy(const std::string& value) {
  const std::string v = lower(strip(value));
  if (v == "memory_nodes_first" || v == "memorynodesfirst") {
    return cluster::LenderPolicy::MemoryNodesFirst;
  }
  if (v == "most_free" || v == "mostfree") return cluster::LenderPolicy::MostFree;
  if (v == "least_free" || v == "leastfree") {
    return cluster::LenderPolicy::LeastFree;
  }
  throw ConfigError("unknown lender policy: '" + value + "'");
}

monitor::MonitorConfig parse_monitor(const std::string& value) {
  std::vector<std::string> fields;
  std::istringstream parts(strip(value));
  std::string field;
  while (std::getline(parts, field, ':')) fields.push_back(strip(field));
  if (fields.empty()) throw ConfigError("empty Monitor value");
  const std::string kind = lower(fields[0]);

  monitor::MonitorConfig cfg;
  if (kind == "oracle") {
    if (fields.size() != 1) {
      throw ConfigError("Monitor=oracle takes no parameters: '" + value + "'");
    }
    return cfg;
  }
  if (kind == "sampled") {
    if (fields.size() != 3) {
      throw ConfigError("invalid Monitor value '" + value +
                        "' (want sampled:relative_error:staleness)");
    }
    cfg.kind = monitor::MonitorKind::Sampled;
    cfg.relative_error = parse_number(fields[1], "monitor relative error");
    cfg.staleness = parse_duration(fields[2]);
    if (cfg.relative_error < 0.0 || cfg.relative_error >= 1.0) {
      throw ConfigError("monitor relative error must be in [0, 1): '" + value +
                        "'");
    }
    return cfg;
  }
  if (kind == "adaptive") {
    if (fields.size() < 4 || fields.size() > 5) {
      throw ConfigError(
          "invalid Monitor value '" + value +
          "' (want adaptive:min_interval:max_interval:error_bound"
          "[:overhead_us_per_region])");
    }
    cfg.kind = monitor::MonitorKind::Adaptive;
    cfg.min_interval = parse_duration(fields[1]);
    cfg.max_interval = parse_duration(fields[2]);
    cfg.error_bound = parse_number(fields[3], "monitor error bound");
    if (fields.size() == 5) {
      cfg.overhead_us_per_region =
          parse_number(fields[4], "monitor overhead");
    }
    if (cfg.min_interval <= 0.0 || cfg.max_interval < cfg.min_interval) {
      throw ConfigError("monitor intervals must satisfy 0 < min <= max: '" +
                        value + "'");
    }
    if (cfg.error_bound <= 0.0) {
      throw ConfigError("monitor error bound must be positive: '" + value +
                        "'");
    }
    if (cfg.overhead_us_per_region < 0.0) {
      throw ConfigError("monitor overhead must be non-negative: '" + value +
                        "'");
    }
    return cfg;
  }
  throw ConfigError("unknown monitor kind: '" + fields[0] + "'");
}

sched::OomHandling parse_oom_handling(const std::string& value) {
  const std::string v = lower(strip(value));
  if (v == "fail_restart" || v == "failrestart" || v == "f/r") {
    return sched::OomHandling::FailRestart;
  }
  if (v == "checkpoint_restart" || v == "checkpointrestart" || v == "c/r") {
    return sched::OomHandling::CheckpointRestart;
  }
  throw ConfigError("unknown OOM handling: '" + value + "'");
}

namespace {

[[nodiscard]] cluster::TierScope parse_tier_scope(const std::string& value) {
  const std::string v = lower(strip(value));
  if (v == "local") return cluster::TierScope::Local;
  if (v == "rack") return cluster::TierScope::Rack;
  if (v == "crossrack" || v == "cross_rack" || v == "cross-rack") {
    return cluster::TierScope::CrossRack;
  }
  throw ConfigError("unknown tier scope: '" + value + "'");
}

/// MemoryTiers = name:latency_ns:bandwidth_gbs:fraction[:scope], ...
/// e.g. "local:150:90:0.6, rack-cxl:450:64:0.4:rack". Fractions must sum
/// to ~1; scope defaults to rack.
void parse_memory_tiers(const std::string& value, SystemConfig& sys) {
  sys.tiers.clear();
  sys.tier_fractions.clear();
  std::istringstream list(value);
  std::string entry;
  double sum = 0.0;
  while (std::getline(list, entry, ',')) {
    entry = strip(entry);
    if (entry.empty()) continue;
    std::vector<std::string> fields;
    std::istringstream parts(entry);
    std::string field;
    while (std::getline(parts, field, ':')) fields.push_back(strip(field));
    if (fields.size() < 4 || fields.size() > 5) {
      throw ConfigError(
          "invalid MemoryTiers entry '" + entry +
          "' (want name:latency_ns:bandwidth_gbs:fraction[:scope])");
    }
    cluster::MemoryTier tier;
    tier.name = fields[0];
    tier.latency_ns = parse_number(fields[1], "tier latency");
    tier.bandwidth_gbs = parse_number(fields[2], "tier bandwidth");
    const double fraction = parse_number(fields[3], "tier fraction");
    if (fields.size() == 5) tier.scope = parse_tier_scope(fields[4]);
    if (tier.name.empty()) {
      throw ConfigError("MemoryTiers entry needs a name: '" + entry + "'");
    }
    if (tier.latency_ns <= 0 || tier.bandwidth_gbs <= 0) {
      throw ConfigError("tier latency/bandwidth must be positive: '" + entry +
                        "'");
    }
    if (fraction <= 0.0 || fraction > 1.0) {
      throw ConfigError("tier fraction must be in (0, 1]: '" + entry + "'");
    }
    sum += fraction;
    sys.tiers.push_back(std::move(tier));
    sys.tier_fractions.push_back(fraction);
  }
  if (sys.tiers.empty()) {
    throw ConfigError("MemoryTiers must name at least one tier");
  }
  if (sys.tiers.size() > 255) {
    throw ConfigError("MemoryTiers supports at most 255 tiers");
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw ConfigError("MemoryTiers fractions must sum to 1 (got " +
                      std::to_string(sum) + ")");
  }
}

}  // namespace

FileConfig parse_config(std::istream& in) {
  FileConfig out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing comments, then whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string text = strip(line);
    if (text.empty()) continue;
    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("config line " + std::to_string(line_no) +
                        ": expected Key=Value, got '" + text + "'");
    }
    const std::string key = lower(strip(text.substr(0, eq)));
    const std::string value = strip(text.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw ConfigError("config line " + std::to_string(line_no) +
                        ": empty key or value");
    }

    auto& sys = out.simulation.system;
    auto& sch = out.simulation.sched;
    auto& wl = out.workload;

    if (key == "nodes") {
      sys.total_nodes = static_cast<int>(parse_number(value, "Nodes"));
      wl.cirne.system_nodes = sys.total_nodes;
    } else if (key == "pctlargenodes") {
      sys.pct_large_nodes = parse_number(value, "PctLargeNodes");
    } else if (key == "normalcapacity") {
      sys.normal_capacity = parse_memory(value);
    } else if (key == "largecapacity") {
      sys.large_capacity = parse_memory(value);
    } else if (key == "corespernode") {
      sys.cores_per_node = static_cast<int>(parse_number(value, "CoresPerNode"));
    } else if (key == "lenderpolicy") {
      sys.lender_policy = parse_lender_policy(value);
    } else if (key == "memorytiers") {
      parse_memory_tiers(value, sys);
    } else if (key == "allocationpolicy") {
      out.simulation.policy = parse_policy(value);
    } else if (key == "schedulerinterval") {
      sch.sched_interval = parse_duration(value);
    } else if (key == "queuedepth") {
      sch.queue_depth = static_cast<int>(parse_number(value, "QueueDepth"));
    } else if (key == "backfilldepth") {
      sch.backfill_depth = static_cast<int>(parse_number(value, "BackfillDepth"));
    } else if (key == "enablebackfill") {
      sch.enable_backfill = parse_bool(value);
    } else if (key == "backfillmode") {
      const std::string v = lower(strip(value));
      if (v == "off") {
        sch.backfill_mode = sched::BackfillMode::Off;
      } else if (v == "easy") {
        sch.backfill_mode = sched::BackfillMode::Easy;
      } else if (v == "conservative") {
        sch.backfill_mode = sched::BackfillMode::Conservative;
      } else {
        throw ConfigError("unknown backfill mode: '" + value + "'");
      }
    } else if (key == "updatemode") {
      const std::string v = lower(strip(value));
      if (v == "per_job" || v == "staggered" || v == "per_job_staggered") {
        sch.update_mode = sched::UpdateMode::PerJobStaggered;
      } else if (v == "global" || v == "global_batch") {
        sch.update_mode = sched::UpdateMode::GlobalBatch;
      } else {
        throw ConfigError("unknown update mode: '" + value + "'");
      }
    } else if (key == "updateinterval") {
      sch.update_interval = parse_duration(value);
    } else if (key == "monitor") {
      sch.monitor = parse_monitor(value);
    } else if (key == "oomhandling") {
      sch.oom_handling = parse_oom_handling(value);
    } else if (key == "guaranteedafterfailures") {
      sch.guaranteed_after_failures =
          static_cast<int>(parse_number(value, "GuaranteedAfterFailures"));
    } else if (key == "priorityboostperfailure") {
      sch.priority_boost_per_failure =
          static_cast<int>(parse_number(value, "PriorityBoostPerFailure"));
    } else if (key == "maxrestarts") {
      sch.max_restarts = static_cast<int>(parse_number(value, "MaxRestarts"));
    } else if (key == "enforcewalltime") {
      sch.enforce_walltime = parse_bool(value);
    } else if (key == "sampleinterval") {
      sch.sample_interval = parse_duration(value);
    } else if (key == "jobs") {
      wl.cirne.num_jobs = static_cast<std::size_t>(parse_number(value, "Jobs"));
      out.has_workload = true;
    } else if (key == "targetload") {
      wl.cirne.target_load = parse_number(value, "TargetLoad");
      out.has_workload = true;
    } else if (key == "pctlargejobs") {
      wl.pct_large_jobs = parse_number(value, "PctLargeJobs");
      out.has_workload = true;
    } else if (key == "overestimation") {
      wl.overestimation = parse_number(value, "Overestimation");
      out.has_workload = true;
    } else if (key == "maxjobnodes") {
      wl.cirne.max_job_nodes =
          static_cast<int>(parse_number(value, "MaxJobNodes"));
      out.has_workload = true;
    } else if (key == "seed") {
      wl.seed = static_cast<std::uint64_t>(parse_number(value, "Seed"));
      out.has_workload = true;
    } else if (key == "servethreads") {
      const double n = parse_number(value, "ServeThreads");
      if (n < 0.0) throw ConfigError("ServeThreads must be >= 0");
      out.serve.threads = static_cast<std::size_t>(n);
    } else if (key == "servecacheimages") {
      const double n = parse_number(value, "ServeCacheImages");
      if (n < 1.0) throw ConfigError("ServeCacheImages must be >= 1");
      out.serve.cache_images = static_cast<std::size_t>(n);
    } else if (key == "serveport") {
      const double n = parse_number(value, "ServePort");
      if (n < 0.0 || n > 65535.0) {
        throw ConfigError("ServePort must be in [0, 65535]");
      }
      out.serve.port = static_cast<int>(n);
    } else {
      throw ConfigError("config line " + std::to_string(line_no) +
                        ": unknown key '" + key + "'");
    }
  }
  // Memory-class boundaries of the workload follow the system's node sizes.
  out.workload.normal_capacity = out.simulation.system.normal_capacity;
  out.workload.large_capacity = out.simulation.system.large_capacity;
  return out;
}

FileConfig parse_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  return parse_config(in);
}

}  // namespace dmsim::harness
