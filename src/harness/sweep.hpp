// Parallel sweep runner: the engine behind every figure reproduction.
//
// A paper evaluation is a large grid of independent simulation cells
// (workload mix x memory ladder x policy). run_cells() covers the
// single-workload case; SweepRunner generalizes it to heterogeneous cells
// spanning multiple workloads — each cell carries its own (workload, app
// pool) reference — fanned out over a util::ThreadPool and returned in
// submission order, so a sweep's output is byte-identical at any thread
// count. The runner also times each cell and aggregates an
// obs::ThroughputReport (events, simulated seconds, wall seconds), which is
// what the bench binaries' throughput tally and --json perf reports feed on.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace dmsim::harness {

/// One executed cell: the simulation result plus its wall-clock cost.
/// `wall_seconds` is the only nondeterministic field; everything else is a
/// pure function of the cell config and workload.
struct SweepCellResult {
  CellResult cell;
  double wall_seconds = 0.0;
};

class SweepRunner {
 public:
  /// `threads == 0` selects hardware_concurrency (min 1).
  explicit SweepRunner(std::size_t threads = 0) : pool_(threads) {}

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Enqueue a cell. `jobs` and `apps` are borrowed and must outlive
  /// run_all(). Returns the cell's handle: its index in results order.
  std::size_t add(CellConfig config, const trace::Workload& jobs,
                  const slowdown::AppPool& apps);

  /// Run every cell enqueued since the last run_all() across the pool.
  /// Results land in submission order regardless of completion order.
  /// Incremental: add() / run_all() rounds may alternate.
  void run_all();

  /// Result of the cell `handle` (valid after the run_all() covering it).
  [[nodiscard]] const SweepCellResult& result(std::size_t handle) const;

  /// All executed results, in submission order.
  [[nodiscard]] const std::vector<SweepCellResult>& results() const noexcept {
    return results_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }

  /// Aggregate throughput across all executed cells. Events and simulated
  /// seconds are deterministic; wall_seconds is the real elapsed time spent
  /// inside run_all() (so events/sec reflects the parallel speedup).
  [[nodiscard]] obs::ThroughputReport report() const noexcept {
    return report_;
  }

  /// Live progress: one line per completed cell (done/total, elapsed, ETA,
  /// the cell's events/s, process peak RSS) written to `out` as cells
  /// finish. Wall-clock telemetry only — it never touches the results, so
  /// deterministic outputs are unaffected. The tools point it at stderr;
  /// nullptr (the default) disables. The stream must outlive run_all().
  void set_progress(std::ostream* out) noexcept { progress_ = out; }

 private:
  struct PendingCell {
    CellConfig config;
    const trace::Workload* jobs;
    const slowdown::AppPool* apps;
  };

  void note_progress(const PendingCell& cell, const SweepCellResult& result,
                     std::size_t batch_size, double batch_elapsed_seconds);

  util::ThreadPool pool_;
  std::vector<PendingCell> cells_;
  std::vector<SweepCellResult> results_;
  std::size_t executed_ = 0;  // cells_[0, executed_) have results
  obs::ThroughputReport report_;
  std::ostream* progress_ = nullptr;
  std::mutex progress_mutex_;
  std::size_t progress_done_ = 0;  // cells finished in the current batch
};

/// Serialize the deterministic fields of a CellResult (summary, totals,
/// resource averages, engine events) as a JSON object. Used by the sweep
/// tests to assert serial and parallel runs are byte-identical, and by
/// plotting pipelines that want per-cell data without the text tables.
[[nodiscard]] std::string cell_result_to_json(const CellResult& result);

}  // namespace dmsim::harness
