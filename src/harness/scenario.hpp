// Experiment harness: simulated-system descriptions (Table 4), simulation
// cells (one workload x system x policy run), and parallel sweep execution.
// Every bench binary reproducing a paper table/figure is built on this.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/metrics.hpp"
#include "obs/observer.hpp"
#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/image.hpp"
#include "workload/generator.hpp"

namespace dmsim::harness {

/// A simulated system in the style of Table 4: `total_nodes` nodes split
/// into normal and large classes, large nodes having double capacity.
struct SystemConfig {
  int total_nodes = 1024;
  double pct_large_nodes = 0.5;  ///< fraction of large-capacity nodes
  MiB normal_capacity = gib(64);
  MiB large_capacity = gib(128);
  int cores_per_node = 32;
  cluster::LenderPolicy lender_policy = cluster::LenderPolicy::MemoryNodesFirst;
  /// Memory-tier topology. Empty (the default) is the paper's flat single
  /// remote pool and changes nothing. When set, `tier_fractions` must be the
  /// same length and sum to ~1: nodes are assigned to tiers as contiguous
  /// id blocks by cumulative fraction, and each node's rack is its tier
  /// index (nearest-tier == same-rack in this simplified topology).
  std::vector<cluster::MemoryTier> tiers;
  std::vector<double> tier_fractions;

  [[nodiscard]] int large_count() const noexcept {
    return static_cast<int>(pct_large_nodes * total_nodes + 0.5);
  }
  [[nodiscard]] int normal_count() const noexcept {
    return total_nodes - large_count();
  }
  [[nodiscard]] MiB total_memory() const noexcept {
    return static_cast<MiB>(normal_count()) * normal_capacity +
           static_cast<MiB>(large_count()) * large_capacity;
  }
  /// Memory normalized to a 100%-large reference system (the figures'
  /// x-axis: "% of total system memory").
  [[nodiscard]] double memory_fraction(MiB reference_capacity = gib(128)) const noexcept {
    return static_cast<double>(total_memory()) /
           static_cast<double>(static_cast<MiB>(total_nodes) * reference_capacity);
  }
  [[nodiscard]] cluster::ClusterConfig to_cluster_config() const;
};

/// The memory-provisioning ladder of Figs. 5 & 8: both node families of
/// Table 4 — (normal 32 GiB, large 64 GiB) and (normal 64 GiB, large 128 GiB)
/// — across the paper's %-large-node mixes, sorted by memory fraction.
/// Yields x-axis points {25,29,31,37,43,50,57,62,75,87,100}%.
[[nodiscard]] std::vector<SystemConfig> memory_ladder(int total_nodes);

/// Per-cell checkpointing: save snapshots to `path` while the cell runs
/// and, when `resume` is set and `path` already exists, restore from it
/// first instead of starting over. Each cell needs its own path — sweeps
/// run cells concurrently and the file is overwritten on every save.
struct CheckpointSpec {
  std::string path;
  Seconds every = 0.0;         ///< periodic save interval; 0 disables
  std::vector<Seconds> cuts;   ///< additional explicit cut times
  bool resume = false;         ///< restore from `path` if present
};

/// What-if deltas a fork applies on top of a restored image (or a fresh
/// run). All deltas apply AFTER the snapshot materializes — the snapshot's
/// fingerprint covers the BASE configuration, so the base cell fields must
/// match the saving run while the overlay diverges from it:
///   * extra_jobs are injected at >= the restored clock with fresh ids,
///   * extra_nodes append idle nodes to the cluster,
///   * policy / sched swap the allocation policy or scheduler configuration
///     for the remainder of the run (the cell's base `policy`/`sched` stay
///     what the fingerprint is checked against).
struct WhatIfOverlay {
  std::vector<trace::JobSpec> extra_jobs;
  std::vector<cluster::NodeConfig> extra_nodes;
  std::optional<policy::PolicyKind> policy;
  std::optional<sched::SchedulerConfig> sched;

  [[nodiscard]] bool empty() const noexcept {
    return extra_jobs.empty() && extra_nodes.empty() && !policy.has_value() &&
           !sched.has_value();
  }
};

/// One simulation cell: run `workload` on `system` under `policy`.
struct CellConfig {
  SystemConfig system;
  policy::PolicyKind policy = policy::PolicyKind::Dynamic;
  sched::SchedulerConfig sched;
  std::string label;
  std::optional<CheckpointSpec> checkpoint;
  /// Wire a private counters registry through the cell and snapshot it into
  /// CellResult::telemetry. Safe under sweeps (each cell gets its own
  /// registry), and deterministic: the snapshot only aggregates
  /// simulated-time quantities, so it is identical at any thread count.
  bool collect_telemetry = false;
  /// Fork-from-image restore: materialize this shared warm image instead of
  /// starting from time zero. The image is never re-read or re-parsed —
  /// a thousand cells may share one pointer across sweep threads.
  std::shared_ptr<const snapshot::Image> restore_image;
  /// Precomputed base-configuration fingerprint for the restore (see
  /// snapshot::config_fingerprint(cluster, sched, workload)). When unset,
  /// run_cell computes it from the cell's base config — correct but it
  /// re-hashes the full workload per fork; a serve loop sets it once.
  std::optional<std::uint64_t> trusted_fingerprint;
  /// What-if deltas, applied after the restore (or right after submission
  /// for a fresh run).
  std::optional<WhatIfOverlay> overlay;
};

struct CellResult {
  bool valid = false;  ///< false: some job can never run (missing bar)
  std::size_t infeasible_jobs = 0;
  metrics::WorkloadSummary summary;
  sched::SchedulerTotals totals;
  double avg_allocated_mib = 0.0;
  double avg_busy_nodes = 0.0;
  MiB provisioned_memory = 0;
  double system_cost_usd = 0.0;
  std::uint64_t engine_events = 0;  ///< discrete events executed by the run
  /// Checkpoint activity (zero unless the cell carried a CheckpointSpec).
  /// Not part of the deterministic JSON serialization: a resumed cell saves
  /// and restores differently than the uninterrupted run it reproduces.
  snapshot::Stats checkpoint;
  /// Counters/gauges/histograms/series snapshot, populated when the cell
  /// asked for collect_telemetry (or the caller supplied a registry). Kept
  /// out of cell_result_to_json so existing byte-identity goldens hold;
  /// export it with metrics::telemetry_to_json when needed.
  obs::CountersSnapshot telemetry;

  [[nodiscard]] double throughput() const noexcept { return summary.throughput; }
  [[nodiscard]] double throughput_per_dollar() const noexcept {
    return system_cost_usd > 0.0 ? summary.throughput / system_cost_usd : 0.0;
  }
};

/// Run one cell. The workload (and its app pool) are shared, read-only.
/// `sink` / `counters` (optional, caller-owned) wire observability through
/// the cell's engine, cluster, policy and scheduler — not thread-safe, so
/// only for single-cell runs, never run_cells sweeps.
[[nodiscard]] CellResult run_cell(const CellConfig& cell,
                                  const trace::Workload& jobs,
                                  const slowdown::AppPool& apps,
                                  obs::TraceSink* sink = nullptr,
                                  obs::Counters* counters = nullptr);

/// Run many cells against the same workload on a thread pool.
[[nodiscard]] std::vector<CellResult> run_cells(
    const std::vector<CellConfig>& cells, const trace::Workload& jobs,
    const slowdown::AppPool& apps, std::size_t threads = 0);

}  // namespace dmsim::harness
