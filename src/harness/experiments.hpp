// Reusable experiment drivers: the paper's figure sweeps as library
// functions returning structured data. The bench binaries print the same
// quantities; these entry points let library users (and the test suite) run
// the sweeps programmatically.
//
// Every driver fans its cells out over a SweepRunner: `threads` selects the
// worker count (1 = serial, 0 = hardware concurrency) and the results are
// identical at any setting — cells are independent and collected in
// submission order. Pass `tally` to accumulate the sweep's engine
// throughput (events, simulated seconds, wall seconds) into a caller-owned
// report; the merge happens on the calling thread after the sweep.
#pragma once

#include <optional>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/profiler.hpp"

namespace dmsim::harness {

/// One x-axis point of a Fig. 5/8-style sweep: normalized throughput per
/// policy at one memory provisioning. std::nullopt = missing bar (the
/// system cannot run the mix under that policy).
struct ThroughputPoint {
  SystemConfig system;
  double memory_fraction = 0.0;
  std::optional<double> baseline;
  std::optional<double> static_policy;
  std::optional<double> dynamic_policy;
  double dynamic_oom_job_fraction = 0.0;
};

/// Sweep the given systems under all three policies, normalizing by
/// `reference_throughput` (Fig. 5's baseline-at-100% convention; pass 0 to
/// report raw jobs/s).
[[nodiscard]] std::vector<ThroughputPoint> throughput_vs_memory(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, double reference_throughput,
    const sched::SchedulerConfig& sched_config = {}, std::size_t threads = 1,
    obs::ThroughputReport* tally = nullptr);

/// Baseline throughput on the fully provisioned (100% large) system — the
/// normalization reference of Figs. 5 and 8.
[[nodiscard]] double reference_throughput(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    int total_nodes, obs::ThroughputReport* tally = nullptr);

/// Fig. 9 search: the smallest memory fraction in `systems` (assumed sorted
/// ascending) whose normalized throughput reaches `threshold` under
/// `policy`, honoring the caller's scheduler configuration. std::nullopt if
/// no point qualifies. The whole ladder is evaluated (in parallel when
/// `threads` > 1), so the answer — and any accumulated tally — is the same
/// at every thread count.
[[nodiscard]] std::optional<double> min_memory_for_threshold(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, policy::PolicyKind policy,
    double reference, const sched::SchedulerConfig& sched_config = {},
    double threshold = 0.95, std::size_t threads = 1,
    obs::ThroughputReport* tally = nullptr);

}  // namespace dmsim::harness
