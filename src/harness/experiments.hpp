// Reusable experiment drivers: the paper's figure sweeps as library
// functions returning structured data. The bench binaries print the same
// quantities; these entry points let library users (and the test suite) run
// the sweeps programmatically.
#pragma once

#include <optional>
#include <vector>

#include "harness/scenario.hpp"

namespace dmsim::harness {

/// One x-axis point of a Fig. 5/8-style sweep: normalized throughput per
/// policy at one memory provisioning. std::nullopt = missing bar (the
/// system cannot run the mix under that policy).
struct ThroughputPoint {
  SystemConfig system;
  double memory_fraction = 0.0;
  std::optional<double> baseline;
  std::optional<double> static_policy;
  std::optional<double> dynamic_policy;
  double dynamic_oom_job_fraction = 0.0;
};

/// Sweep the given systems under all three policies, normalizing by
/// `reference_throughput` (Fig. 5's baseline-at-100% convention; pass 0 to
/// report raw jobs/s).
[[nodiscard]] std::vector<ThroughputPoint> throughput_vs_memory(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, double reference_throughput,
    const sched::SchedulerConfig& sched_config = {});

/// Baseline throughput on the fully provisioned (100% large) system — the
/// normalization reference of Figs. 5 and 8.
[[nodiscard]] double reference_throughput(const trace::Workload& jobs,
                                          const slowdown::AppPool& apps,
                                          int total_nodes);

/// Fig. 9 search: the smallest memory fraction in `systems` (assumed sorted
/// ascending) whose normalized throughput reaches `threshold` under
/// `policy`. std::nullopt if no point qualifies.
[[nodiscard]] std::optional<double> min_memory_for_threshold(
    const trace::Workload& jobs, const slowdown::AppPool& apps,
    const std::vector<SystemConfig>& systems, policy::PolicyKind policy,
    double reference, double threshold = 0.95);

}  // namespace dmsim::harness
