#include "harness/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>

#include "harness/sweep.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace dmsim::harness {

cluster::ClusterConfig SystemConfig::to_cluster_config() const {
  DMSIM_ASSERT(total_nodes > 0, "system must have nodes");
  DMSIM_ASSERT(pct_large_nodes >= 0.0 && pct_large_nodes <= 1.0,
               "pct_large_nodes must be a fraction");
  cluster::ClusterConfig cfg = cluster::make_cluster_config(
      normal_count(), normal_capacity, large_count(), large_capacity,
      cores_per_node);
  cfg.lender_policy = lender_policy;
  if (!tiers.empty()) {
    DMSIM_ASSERT(tier_fractions.size() == tiers.size(),
                 "tier_fractions must match tiers");
    cfg.tiers = tiers;
    // Contiguous id blocks by cumulative fraction: tier t owns node ids
    // [round(cum_{t-1} * N), round(cum_t * N)). llround keeps the split
    // deterministic, and the final tier absorbs rounding remainders.
    double cum = 0.0;
    std::size_t begin = 0;
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      cum += tier_fractions[t];
      DMSIM_ASSERT(tier_fractions[t] >= 0.0, "tier fraction must be >= 0");
      std::size_t end =
          t + 1 == tiers.size()
              ? cfg.nodes.size()
              : static_cast<std::size_t>(std::llround(
                    cum * static_cast<double>(cfg.nodes.size())));
      end = std::min(end, cfg.nodes.size());
      for (std::size_t i = begin; i < end; ++i) {
        cfg.nodes[i].tier = static_cast<std::uint8_t>(t);
        cfg.nodes[i].rack = static_cast<std::uint16_t>(t);
      }
      begin = std::max(begin, end);
    }
    DMSIM_ASSERT(std::abs(cum - 1.0) < 1e-6, "tier fractions must sum to 1");
  }
  return cfg;
}

std::vector<SystemConfig> memory_ladder(int total_nodes) {
  const double mixes[] = {0.0, 0.15, 0.25, 0.50, 0.75, 1.00};
  std::vector<SystemConfig> out;
  for (const auto& [normal, large] :
       {std::pair<MiB, MiB>{gib(32), gib(64)}, {gib(64), gib(128)}}) {
    for (double mix : mixes) {
      SystemConfig sys;
      sys.total_nodes = total_nodes;
      sys.pct_large_nodes = mix;
      sys.normal_capacity = normal;
      sys.large_capacity = large;
      out.push_back(sys);
    }
  }
  std::sort(out.begin(), out.end(), [](const SystemConfig& a, const SystemConfig& b) {
    return a.memory_fraction() < b.memory_fraction();
  });
  // The two families meet at 50% (all-large 64 GiB == all-normal 64 GiB);
  // drop duplicate memory fractions, keeping the first.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const SystemConfig& a, const SystemConfig& b) {
                          return std::abs(a.memory_fraction() -
                                          b.memory_fraction()) < 1e-9;
                        }),
            out.end());
  return out;
}

CellResult run_cell(const CellConfig& cell, const trace::Workload& jobs,
                    const slowdown::AppPool& apps, obs::TraceSink* sink,
                    obs::Counters* counters) {
  const CheckpointSpec* ck =
      cell.checkpoint.has_value() ? &*cell.checkpoint : nullptr;
  const bool forking = cell.restore_image != nullptr;
  const bool resuming_file = !forking && ck != nullptr && ck->resume &&
                             std::filesystem::exists(ck->path);
  const bool resuming = resuming_file || forking;
  const WhatIfOverlay* overlay =
      cell.overlay.has_value() ? &*cell.overlay : nullptr;
  // Overlay swaps take effect for the whole (remaining) run; the cell's
  // base policy/sched stay what a restored image's fingerprint is checked
  // against.
  const policy::PolicyKind effective_policy =
      overlay != nullptr && overlay->policy.has_value() ? *overlay->policy
                                                        : cell.policy;
  const sched::SchedulerConfig& effective_sched =
      overlay != nullptr && overlay->sched.has_value() ? *overlay->sched
                                                       : cell.sched;

  cluster::Cluster cluster(cell.system.to_cluster_config());
  const auto policy = policy::make_policy(effective_policy);
  sim::Engine engine;
  // A cell-private registry when telemetry was requested without one: each
  // sweep cell then aggregates independently, so sweeps stay thread-safe.
  obs::Counters local_counters;
  if (cell.collect_telemetry && counters == nullptr) {
    counters = &local_counters;
  }
  // When resuming, defer the sink: workload submission replays schedule
  // events whose trace records the original run already emitted.
  obs::Observer observer{resuming ? nullptr : sink, counters, &engine};
  const obs::Observer* obs_ptr =
      (sink != nullptr || counters != nullptr) ? &observer : nullptr;
  if (obs_ptr != nullptr) {
    engine.set_observer(obs_ptr);
    cluster.set_observer(obs_ptr);
    policy->set_observer(obs_ptr);
  }
  sched::Scheduler scheduler(engine, cluster, *policy, &apps, effective_sched,
                             obs_ptr);
  scheduler.submit_workload(jobs);

  CellResult result;
  result.infeasible_jobs = scheduler.infeasible_count();
  result.valid = (result.infeasible_jobs == 0);
  result.provisioned_memory = cluster.total_capacity();
  result.system_cost_usd = metrics::CostModel{}.system_cost(cluster);
  if (!result.valid) {
    // The paper leaves the bar out entirely: the system cannot run the mix.
    if (cell.collect_telemetry && counters != nullptr) {
      result.telemetry = counters->snapshot();
    }
    return result;
  }
  const snapshot::Components components{&engine, &cluster, &scheduler,
                                        counters};
  if (forking) {
    // Fork from the shared warm image: no file read, no envelope re-parse,
    // and the fingerprint check is one 64-bit compare when the caller
    // precomputed it. The fingerprint always covers the BASE configuration
    // (cell.sched, the un-edited cluster, the base workload); overlay
    // deltas apply below, after the restore.
    const std::uint64_t base_fp =
        cell.trusted_fingerprint.has_value()
            ? *cell.trusted_fingerprint
            : snapshot::config_fingerprint(cluster, cell.sched, jobs);
    cell.restore_image->materialize_trusted(components, base_fp);
    ++result.checkpoint.restores;
    result.checkpoint.bytes_read += cell.restore_image->size_bytes();
  } else if (resuming_file) {
    snapshot::restore_file(ck->path, components, &result.checkpoint);
  }
  if (resuming && sink != nullptr) {
    observer.sink = sink;
    engine.set_observer(&observer);  // the engine caches the sink pointer
  }
  if (overlay != nullptr) {
    if (!overlay->extra_nodes.empty()) cluster.add_nodes(overlay->extra_nodes);
    if (!overlay->extra_jobs.empty()) {
      scheduler.submit_extra_jobs(overlay->extra_jobs);
    }
    result.provisioned_memory = cluster.total_capacity();
    result.system_cost_usd = metrics::CostModel{}.system_cost(cluster);
    result.infeasible_jobs = scheduler.infeasible_count();
    result.valid = (result.infeasible_jobs == 0);
    if (!result.valid) {
      if (cell.collect_telemetry && counters != nullptr) {
        result.telemetry = counters->snapshot();
      }
      return result;
    }
  }
  if (ck != nullptr && (ck->every > 0.0 || !ck->cuts.empty())) {
    snapshot::Plan plan{ck->path, ck->every, ck->cuts};
    snapshot::run_with_checkpoints(components, plan, &result.checkpoint);
    scheduler.finalize();
  } else {
    scheduler.run();
  }
  result.summary = metrics::summarize(scheduler.records(), scheduler.totals());
  result.totals = scheduler.totals();
  result.avg_allocated_mib = scheduler.avg_allocated_mib();
  result.avg_busy_nodes = scheduler.avg_busy_nodes();
  result.engine_events = engine.executed_events();
  if (cell.collect_telemetry && counters != nullptr) {
    result.telemetry = counters->snapshot();
  }
  return result;
}

std::vector<CellResult> run_cells(const std::vector<CellConfig>& cells,
                                  const trace::Workload& jobs,
                                  const slowdown::AppPool& apps,
                                  std::size_t threads) {
  SweepRunner runner(threads);
  for (const CellConfig& cell : cells) runner.add(cell, jobs, apps);
  runner.run_all();
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const SweepCellResult& r : runner.results()) results.push_back(r.cell);
  return results;
}

}  // namespace dmsim::harness
