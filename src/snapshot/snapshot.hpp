// Binary snapshot primitives.
//
// A snapshot is a flat byte string built from little-endian fixed-width
// scalars and length-prefixed strings. Writer appends, Reader consumes in
// the same order; every read is bounds-checked and throws SnapshotError on
// truncation, so a corrupt or mismatched file fails loudly instead of
// restoring garbage state.
//
// Doubles travel as their IEEE-754 bit pattern (std::bit_cast), never
// through text formatting — restore must be *bitwise* exact for the
// deterministic-replay guarantee, including -0.0 and subnormals.
//
// This layer depends only on util so that sim/cluster/sched can each
// implement save_state(Writer&)/restore_state(Reader&) without pulling in
// the checkpoint orchestration (snapshot/checkpoint.hpp) that stitches the
// per-component sections into a versioned, checksummed file.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace dmsim::snapshot {

/// Thrown on malformed, truncated, or incompatible snapshot bytes.
class SnapshotError : public Error {
 public:
  using Error::Error;
};

/// Four-character section tags make truncation/misalignment failures
/// self-describing: a reader that drifts off a section boundary reports
/// which section it expected instead of silently misparsing scalars.
[[nodiscard]] constexpr std::uint32_t section_tag(char a, char b, char c,
                                                  char d) noexcept {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(a))) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

/// Append-only little-endian byte builder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// u32 byte length + raw bytes (no terminator).
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.append(v.data(), v.size());
  }

  void section(std::uint32_t tag) { u32(tag); }

  [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a snapshot byte string. The viewed bytes must
/// outlive the Reader (str() returns views into them).
class Reader {
 public:
  explicit Reader(std::string_view bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) {
      throw SnapshotError("snapshot: boolean field holds " +
                          std::to_string(int{v}));
    }
    return v != 0;
  }

  [[nodiscard]] std::string_view str() {
    const std::uint32_t n = u32();
    need(n);
    const std::string_view v = bytes_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  /// Consume a section tag and verify it matches; `name` labels the error.
  void expect_section(std::uint32_t tag, const char* name) {
    const std::uint32_t got = u32();
    if (got != tag) {
      throw SnapshotError(std::string("snapshot: expected section '") + name +
                          "', found tag 0x" + hex(got) + " at offset " +
                          std::to_string(pos_ - 4));
    }
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw SnapshotError("snapshot: truncated — need " + std::to_string(n) +
                          " byte(s) at offset " + std::to_string(pos_) +
                          ", have " + std::to_string(bytes_.size() - pos_));
    }
  }

  [[nodiscard]] static std::string hex(std::uint32_t v) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string s(8, '0');
    for (int i = 7; i >= 0; --i) {
      s[static_cast<std::size_t>(i)] = kDigits[v & 0xfU];
      v >>= 4;
    }
    return s;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace dmsim::snapshot
