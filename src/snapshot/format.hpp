// Internal snapshot envelope constants and the counters-section codec,
// shared between the checkpoint orchestration (checkpoint.cpp) and the
// parsed-once image layer (image.cpp). Not part of the public snapshot API:
// tools should go through checkpoint.hpp / image.hpp.
#pragma once

#include <cstdint>
#include <string_view>

#include "snapshot/snapshot.hpp"

namespace dmsim::obs {
class Counters;
}

namespace dmsim::snapshot::detail {

inline constexpr std::string_view kMagic = "DMSIMSNP";

inline constexpr std::uint32_t kCountersSection = section_tag('C', 'N', 'T', 'R');
inline constexpr std::uint32_t kEndSection = section_tag('E', 'N', 'D', '.');

/// Optional section-table trailer appended AFTER the payload checksum:
///
///   u32 'TOC.' | u32 count | count x (u32 tag, u64 offset, u64 size,
///   u64 FNV-1a(section)) | u64 FNV-1a(trailer bytes before this field)
///
/// It is self-describing and self-checksummed, so readers that predate it
/// never see it (they stop at the payload checksum) and envelope parsing can
/// tell a valid trailer from trailing garbage. Living outside the payload
/// keeps the format version at 5 and every pre-trailer file readable.
inline constexpr std::uint32_t kTocSection = section_tag('T', 'O', 'C', '.');

/// Counters-registry section codec (section kCountersSection). Defined in
/// checkpoint.cpp; image.cpp reuses it for Image::materialize.
void save_counters_section(Writer& w, const obs::Counters* counters);
void restore_counters_section(Reader& r, obs::Counters* counters);

}  // namespace dmsim::snapshot::detail
