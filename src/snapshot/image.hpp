// Immutable, shareable snapshot images.
//
// snapshot::Image is the read side of the two-level snapshot model: the
// envelope (magic, version, fingerprint, payload checksum, optional section
// table) is parsed and validated ONCE at open time, after which the image is
// an immutable, refcounted byte container that any number of threads may
// materialize concurrently. A what-if service forking the same warm image a
// thousand times pays the file read, the checksum sweep and the envelope
// parse exactly once; each fork is just a component restore over the shared
// payload bytes.
//
// Fingerprint checking splits accordingly: materialize() recomputes the
// configuration fingerprint from the target components (the restore_bytes
// behaviour — correct but it re-hashes the full workload on every call),
// while materialize_trusted() compares the image's fingerprint against a
// caller-precomputed value, so a server validates a scenario once and every
// subsequent fork is a 64-bit compare. Both paths refuse mismatches loudly.
//
// Images are created through shared_ptr factories only — the pointer is the
// sharing contract (an LRU cache may drop its reference while forks in
// flight keep theirs alive).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/checkpoint.hpp"

namespace dmsim::snapshot {

/// One payload section as described by the envelope's section table.
struct SectionInfo {
  std::string name;            ///< decoded 4CC tag, e.g. "ENGI", "CLUS"
  std::uint32_t tag = 0;       ///< raw section tag
  std::uint64_t offset = 0;    ///< byte offset within the payload
  std::uint64_t size = 0;      ///< section length in bytes
  std::uint64_t checksum = 0;  ///< FNV-1a of the section bytes
};

class Image {
 public:
  /// Read + parse + validate a snapshot file. Throws SnapshotError (with the
  /// path in the message) on I/O errors, corruption, truncation or
  /// unsupported versions. The returned image is immutable and thread-safe.
  [[nodiscard]] static std::shared_ptr<const Image> open(
      const std::string& path);

  /// Parse + validate in-memory snapshot bytes (takes ownership).
  [[nodiscard]] static std::shared_ptr<const Image> from_bytes(
      std::string bytes);

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  [[nodiscard]] std::uint64_t payload_checksum() const noexcept {
    return payload_checksum_;
  }
  /// The component payload (envelope stripped), validated at parse time.
  [[nodiscard]] std::string_view payload() const noexcept {
    return std::string_view(bytes_).substr(payload_offset_, payload_size_);
  }
  /// Whole-envelope size — what a file restore would have read.
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return bytes_.size();
  }
  /// Section table from the envelope trailer. Empty for files written
  /// before the trailer existed (has_section_table() distinguishes).
  [[nodiscard]] const std::vector<SectionInfo>& sections() const noexcept {
    return sections_;
  }
  [[nodiscard]] bool has_section_table() const noexcept { return has_toc_; }

  /// Restore the image's state onto freshly constructed components, with the
  /// full fingerprint recomputation of restore_bytes (hashes topology,
  /// scheduler config and the entire workload). Correct anywhere, but the
  /// slow path — a serve loop should use materialize_trusted.
  void materialize(const Components& components) const;

  /// Restore with the fingerprint check reduced to one 64-bit compare
  /// against `expected_fingerprint`, which the caller computed ONCE (via
  /// config_fingerprint) for the base configuration this fork family shares.
  /// Throws SnapshotError when the image was taken under a different
  /// configuration.
  void materialize_trusted(const Components& components,
                           std::uint64_t expected_fingerprint) const;

 private:
  Image() = default;
  void parse_envelope();
  void restore_components(const Components& components) const;

  std::string bytes_;
  std::uint32_t version_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t payload_checksum_ = 0;
  std::size_t payload_offset_ = 0;
  std::size_t payload_size_ = 0;
  std::vector<SectionInfo> sections_;
  bool has_toc_ = false;
};

}  // namespace dmsim::snapshot
