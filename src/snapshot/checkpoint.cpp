#include "snapshot/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "cluster/cluster.hpp"
#include "obs/counters.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "snapshot/format.hpp"
#include "snapshot/image.hpp"
#include "snapshot/snapshot.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dmsim::snapshot {

namespace {

// Version history lives with the public constants in checkpoint.hpp.
constexpr std::uint32_t kVersion = kFormatVersion;

[[nodiscard]] double elapsed_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void check_components(const Components& c) {
  DMSIM_ASSERT(c.engine != nullptr && c.cluster != nullptr &&
                   c.scheduler != nullptr,
               "checkpoint components must name engine, cluster and scheduler");
}

// Little-endian u32 at `offset` — the section tag each payload section
// leads with, lifted back out for the section table.
[[nodiscard]] std::uint32_t tag_at(std::string_view payload,
                                   std::size_t offset) {
  std::uint32_t tag = 0;
  for (int i = 0; i < 4; ++i) {
    tag |= static_cast<std::uint32_t>(static_cast<unsigned char>(
               payload[offset + static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  return tag;
}

}  // namespace

namespace detail {

void save_counters_section(Writer& w, const obs::Counters* counters) {
  w.section(kCountersSection);
  w.boolean(counters != nullptr);
  if (counters == nullptr) return;
  const obs::CountersSnapshot snap = counters->snapshot();
  w.u32(static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& c : snap.counters) {
    w.str(c.name);
    w.u64(c.value);
  }
  w.u32(static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& g : snap.gauges) {
    w.str(g.name);
    w.i64(g.value);
    w.i64(g.high_water);
  }
  w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& h : snap.histograms) {
    w.str(h.name);
    w.u64(h.count);
    w.i64(h.sum);
    w.i64(h.min);
    w.i64(h.max);
    w.u32(static_cast<std::uint32_t>(h.buckets.size()));
    for (const auto& [bucket, n] : h.buckets) {
      w.u32(bucket);
      w.u64(n);
    }
  }
  w.u32(static_cast<std::uint32_t>(snap.series.size()));
  for (const auto& s : snap.series) {
    w.str(s.name);
    w.f64(s.window_width);
    w.u32(static_cast<std::uint32_t>(s.points.size()));
    for (const auto& p : s.points) {
      w.i64(p.window);
      w.u64(p.count);
      w.i64(p.sum);
      w.i64(p.min);
      w.i64(p.max);
    }
  }
}

void restore_counters_section(Reader& r, obs::Counters* counters) {
  r.expect_section(kCountersSection, "counters");
  const bool present = r.boolean();
  if (!present) {
    // The saving run carried no registry. Zero ours so replay-time bumps
    // (workload submission) do not linger as phantom counts.
    if (counters != nullptr) counters->restore(obs::CountersSnapshot{});
    return;
  }
  obs::CountersSnapshot snap;
  const std::uint32_t n_counters = r.u32();
  snap.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    obs::CountersSnapshot::Counter c;
    c.name = std::string(r.str());
    c.value = r.u64();
    snap.counters.push_back(std::move(c));
  }
  const std::uint32_t n_gauges = r.u32();
  snap.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    obs::CountersSnapshot::GaugeEntry g;
    g.name = std::string(r.str());
    g.value = r.i64();
    g.high_water = r.i64();
    snap.gauges.push_back(std::move(g));
  }
  const std::uint32_t n_histograms = r.u32();
  snap.histograms.reserve(n_histograms);
  for (std::uint32_t i = 0; i < n_histograms; ++i) {
    obs::CountersSnapshot::HistogramEntry h;
    h.name = std::string(r.str());
    h.count = r.u64();
    h.sum = r.i64();
    h.min = r.i64();
    h.max = r.i64();
    const std::uint32_t n_buckets = r.u32();
    h.buckets.reserve(n_buckets);
    for (std::uint32_t b = 0; b < n_buckets; ++b) {
      const std::uint32_t bucket = r.u32();
      const std::uint64_t count = r.u64();
      h.buckets.emplace_back(bucket, count);
    }
    snap.histograms.push_back(std::move(h));
  }
  const std::uint32_t n_series = r.u32();
  snap.series.reserve(n_series);
  for (std::uint32_t i = 0; i < n_series; ++i) {
    obs::CountersSnapshot::SeriesEntry s;
    s.name = std::string(r.str());
    s.window_width = r.f64();
    const std::uint32_t n_points = r.u32();
    s.points.reserve(n_points);
    for (std::uint32_t p = 0; p < n_points; ++p) {
      obs::TimeSeries::Point point;
      point.window = r.i64();
      point.count = r.u64();
      point.sum = r.i64();
      point.min = r.i64();
      point.max = r.i64();
      s.points.push_back(point);
    }
    snap.series.push_back(std::move(s));
  }
  // A restore target without a registry simply drops the section.
  if (counters != nullptr) counters->restore(snap);
}

}  // namespace detail

void Stats::publish(obs::Counters& registry) const {
  registry.counter("sim.checkpoint.saves") = saves;
  registry.counter("sim.checkpoint.restores") = restores;
  registry.counter("sim.checkpoint.bytes_written") = bytes_written;
  registry.counter("sim.checkpoint.bytes_read") = bytes_read;
  // Phase timers, exported at microsecond resolution like the profiler.
  registry.counter("sim.checkpoint.save_micros") =
      static_cast<std::uint64_t>(save_seconds * 1e6);
  registry.counter("sim.checkpoint.restore_micros") =
      static_cast<std::uint64_t>(restore_seconds * 1e6);
  // Per-save high-water marks as gauges: the largest snapshot written and
  // the slowest single save, invisible in the accumulated totals above.
  registry.gauge("sim.checkpoint.bytes")
      .set(static_cast<std::int64_t>(max_save_bytes));
  registry.gauge("sim.checkpoint.save_us")
      .set(static_cast<std::int64_t>(max_save_seconds * 1e6));
}

std::uint64_t config_fingerprint(const cluster::Cluster& cl,
                                 const sched::SchedulerConfig& sc,
                                 const trace::Workload& jobs) {
  Writer w;
  // Cluster topology + lender policy. Byte-for-byte the same hash input as
  // before the columnar ledger: node count, then (capacity, cores, large)
  // per node in id order — so v2-era fingerprints keep matching.
  w.u32(static_cast<std::uint32_t>(cl.node_count()));
  for (const cluster::Node& n : cl.nodes()) {
    w.i64(n.capacity);
    w.i64(n.cores);
    w.boolean(n.large);
  }
  w.u8(static_cast<std::uint8_t>(cl.lender_policy()));
  // Memory-tier topology — appended ONLY when non-degenerate, so every
  // fingerprint computed before tiers existed (necessarily flat) still
  // matches byte for byte and v2/v3-era snapshots keep restoring.
  if (cl.tiered()) {
    w.u32(static_cast<std::uint32_t>(cl.tiers().size()));
    for (const cluster::MemoryTier& t : cl.tiers()) {
      w.str(t.name);
      w.f64(t.latency_ns);
      w.f64(t.bandwidth_gbs);
      w.u8(static_cast<std::uint8_t>(t.scope));
    }
    for (const std::uint8_t t : cl.tier_column()) w.u8(t);
    for (const std::uint16_t rk : cl.rack_column()) w.u32(rk);
  }
  // Scheduler configuration.
  w.f64(sc.sched_interval);
  w.i64(sc.queue_depth);
  w.i64(sc.backfill_depth);
  w.boolean(sc.enable_backfill);
  w.u8(static_cast<std::uint8_t>(sc.backfill_mode));
  w.f64(sc.update_interval);
  w.u8(static_cast<std::uint8_t>(sc.update_mode));
  w.u8(static_cast<std::uint8_t>(sc.oom_handling));
  w.i64(sc.guaranteed_after_failures);
  w.i64(sc.priority_boost_per_failure);
  w.i64(sc.max_restarts);
  w.boolean(sc.enforce_walltime);
  w.f64(sc.sample_interval);
  // Monitor model — appended ONLY for non-oracle monitors, so every
  // fingerprint computed before the monitor subsystem existed (necessarily
  // oracle) still matches byte for byte and v2..v4 snapshots keep restoring.
  if (sc.monitor.kind != monitor::MonitorKind::Oracle) {
    w.u8(static_cast<std::uint8_t>(sc.monitor.kind));
    w.f64(sc.monitor.relative_error);
    w.f64(sc.monitor.staleness);
    w.f64(sc.monitor.min_interval);
    w.f64(sc.monitor.max_interval);
    w.f64(sc.monitor.error_bound);
    w.f64(sc.monitor.overhead_us_per_region);
    w.u64(sc.monitor.seed);
  }
  // The full workload: any perturbation (different seed, different trace)
  // changes every downstream decision, so it all goes into the hash.
  w.u64(jobs.size());
  for (const trace::JobSpec& spec : jobs) {
    w.u32(spec.id.get());
    w.f64(spec.submit_time);
    w.i64(spec.num_nodes);
    w.i64(spec.requested_mem);
    w.f64(spec.duration);
    w.f64(spec.walltime);
    w.u32(static_cast<std::uint32_t>(spec.usage.size()));
    for (const trace::UsagePoint& p : spec.usage.points()) {
      w.f64(p.progress);
      w.i64(p.mem);
    }
    w.u32(static_cast<std::uint32_t>(spec.node_usage_scale.size()));
    for (const double s : spec.node_usage_scale) w.f64(s);
    w.i64(spec.app_profile);
    w.u32(spec.preceding_job.get());
    w.f64(spec.think_time);
  }
  return util::fnv1a(w.buffer());
}

std::uint64_t config_fingerprint(const Components& components) {
  check_components(components);
  return config_fingerprint(*components.cluster,
                            components.scheduler->config(),
                            components.scheduler->workload());
}

std::string save_bytes(const Components& components) {
  check_components(components);
  Writer payload;
  // Section boundaries, recorded as each component writes so the envelope
  // trailer can index the payload without re-parsing it.
  std::size_t offsets[5];
  offsets[0] = payload.buffer().size();
  components.engine->save_state(payload);
  offsets[1] = payload.buffer().size();
  components.cluster->save_state(payload);
  offsets[2] = payload.buffer().size();
  components.scheduler->save_state(payload);
  offsets[3] = payload.buffer().size();
  detail::save_counters_section(payload, components.counters);
  offsets[4] = payload.buffer().size();
  payload.section(detail::kEndSection);

  Writer out;
  for (const char c : detail::kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(kVersion);
  out.u64(config_fingerprint(components));
  out.u64(payload.buffer().size());
  const std::uint64_t checksum = util::fnv1a(payload.buffer());
  std::string bytes = out.take();
  bytes += payload.buffer();
  Writer tail;
  tail.u64(checksum);
  // Section table: self-checksummed trailer AFTER the payload checksum (see
  // detail::kTocSection). Readers that predate it stop at the checksum.
  tail.section(detail::kTocSection);
  constexpr std::uint32_t kSectionCount = 5;
  tail.u32(kSectionCount);
  const std::string_view view = payload.buffer();
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const std::size_t begin = offsets[i];
    const std::size_t end = i + 1 < kSectionCount ? offsets[i + 1]
                                                  : payload.buffer().size();
    tail.u32(tag_at(view, begin));
    tail.u64(begin);
    tail.u64(end - begin);
    tail.u64(util::fnv1a(view.substr(begin, end - begin)));
  }
  // Trailer checksum covers the trailer bytes only (the payload checksum
  // field precedes the trailer and already guards the payload).
  tail.u64(util::fnv1a(std::string_view(tail.buffer()).substr(8)));
  bytes += tail.buffer();
  return bytes;
}

void restore_bytes(std::string_view bytes, const Components& components) {
  check_components(components);
  Image::from_bytes(std::string(bytes))->materialize(components);
}

void save_file(const std::string& path, const Components& components,
               Stats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const std::string bytes = save_bytes(components);
  // Write-then-rename so an interrupted save never clobbers the previous
  // (complete) snapshot with a truncated one. The temp file is fsynced
  // before the rename and the directory after it — otherwise a crash right
  // after "success" can surface a renamed-but-unwritten (truncated) file.
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      throw SnapshotError("snapshot: cannot open '" + tmp + "' for writing");
    }
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      if (n < 0) {
        ::close(fd);
        throw SnapshotError("snapshot: short write to '" + tmp + "'");
      }
      written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      throw SnapshotError("snapshot: cannot fsync '" + tmp + "'");
    }
    if (::close(fd) != 0) {
      throw SnapshotError("snapshot: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw SnapshotError("snapshot: cannot rename '" + tmp + "' to '" + path +
                        "'");
  }
  {
    // Durability of the rename itself requires fsyncing the directory.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      // Some filesystems reject directory fsync; the rename is still atomic
      // there, so failure downgrades durability rather than the save.
      (void)::fsync(dfd);
      ::close(dfd);
    }
  }
  if (stats != nullptr) {
    ++stats->saves;
    stats->bytes_written += bytes.size();
    const double elapsed = elapsed_since(start);
    stats->save_seconds += elapsed;
    if (bytes.size() > stats->max_save_bytes) {
      stats->max_save_bytes = bytes.size();
    }
    if (elapsed > stats->max_save_seconds) stats->max_save_seconds = elapsed;
  }
}

void restore_file(const std::string& path, const Components& components,
                  Stats* stats) {
  const auto start = std::chrono::steady_clock::now();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("snapshot: cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw SnapshotError("snapshot: read error on '" + path + "'");
  }
  const std::size_t total_bytes = bytes.size();
  try {
    check_components(components);
    Image::from_bytes(std::move(bytes))->materialize(components);
  } catch (const SnapshotError& e) {
    // Restores are usually several layers from the CLI flag that named the
    // file; without the path a "checksum mismatch" is unactionable.
    throw SnapshotError("restoring '" + path + "': " + e.what());
  }
  if (stats != nullptr) {
    ++stats->restores;
    stats->bytes_read += total_bytes;
    stats->restore_seconds += elapsed_since(start);
  }
}

void run_with_checkpoints(const Components& components, const Plan& plan,
                          Stats* stats) {
  check_components(components);
  DMSIM_ASSERT(!plan.path.empty() || !plan.active(),
               "checkpoint plan with cuts needs a path");
  constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
  std::vector<Seconds> cuts = plan.cuts;
  std::sort(cuts.begin(), cuts.end());
  std::size_t ci = 0;
  // Cuts at or before the clock were already taken by the run this one
  // resumed from; re-saving would capture the post-restore state and, worse,
  // loop forever on a cut that no event ever advances past.
  while (ci < cuts.size() && cuts[ci] <= components.engine->now()) ++ci;
  Seconds periodic = kInf;
  if (plan.every > 0.0) {
    periodic =
        (std::floor(components.engine->now() / plan.every) + 1.0) * plan.every;
  }
  for (;;) {
    const Seconds next_cut = ci < cuts.size() ? cuts[ci] : kInf;
    const Seconds target = std::min(next_cut, periodic);
    if (!std::isfinite(target)) {
      components.scheduler->run_ready(kInf);
      return;
    }
    // run_ready leaves the clock at the last fired event (<= target), which
    // is exactly the mid-run state of an uninterrupted run — the snapshot
    // below is indistinguishable from one cut by luck at this moment.
    components.scheduler->run_ready(target);
    if (next_cut <= target) ++ci;
    while (periodic <= target) periodic += plan.every;
    if (components.engine->empty()) return;  // drained: nothing to resume
    save_file(plan.path, components, stats);
  }
}

}  // namespace dmsim::snapshot
