#include "snapshot/image.hpp"

#include <fstream>
#include <iterator>

#include "cluster/cluster.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "snapshot/format.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dmsim::snapshot {

namespace {

[[nodiscard]] std::string decode_tag(std::uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xffU);
    // Keep the decoded name printable; unexpected tags stay visible as '?'.
    name[static_cast<std::size_t>(i)] =
        (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return name;
}

}  // namespace

std::shared_ptr<const Image> Image::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("snapshot: cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw SnapshotError("snapshot: read error on '" + path + "'");
  }
  try {
    return from_bytes(std::move(bytes));
  } catch (const SnapshotError& e) {
    throw SnapshotError("opening snapshot '" + path + "': " + e.what());
  }
}

std::shared_ptr<const Image> Image::from_bytes(std::string bytes) {
  // make_shared needs a public constructor; the factory keeps it private.
  auto image = std::shared_ptr<Image>(new Image());
  image->bytes_ = std::move(bytes);
  image->parse_envelope();
  return image;
}

void Image::parse_envelope() {
  Reader header(bytes_);
  for (const char c : detail::kMagic) {
    if (header.remaining() == 0 ||
        header.u8() != static_cast<std::uint8_t>(c)) {
      throw SnapshotError("snapshot: bad magic — not a dmsim snapshot");
    }
  }
  version_ = header.u32();
  if (version_ < kMinFormatVersion || version_ > kFormatVersion) {
    throw SnapshotError("snapshot: unsupported version " +
                        std::to_string(version_) + " (expected " +
                        std::to_string(kMinFormatVersion) + ".." +
                        std::to_string(kFormatVersion) + ")");
  }
  fingerprint_ = header.u64();
  payload_size_ = header.u64();
  if (header.remaining() < payload_size_ + 8) {
    throw SnapshotError("snapshot: truncated payload");
  }
  payload_offset_ = header.position();
  Reader tail(std::string_view(bytes_).substr(payload_offset_ + payload_size_));
  payload_checksum_ = tail.u64();
  if (payload_checksum_ != util::fnv1a(payload())) {
    throw SnapshotError("snapshot: payload checksum mismatch — corrupt file");
  }
  if (tail.at_end()) {
    // Pre-trailer file: valid, just not indexable without a full parse.
    has_toc_ = false;
    return;
  }
  // Anything after the payload checksum must be a complete, self-checksummed
  // section table; otherwise the file is corrupt (the historical behaviour
  // for unexpected trailing bytes, which a cut-off trailer also hits).
  const std::string_view trailer =
      std::string_view(bytes_).substr(payload_offset_ + payload_size_ + 8);
  try {
    Reader toc(trailer);
    toc.expect_section(detail::kTocSection, "section table");
    const std::uint32_t count = toc.u32();
    std::vector<SectionInfo> sections;
    sections.reserve(count);
    std::uint64_t expected_next = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      SectionInfo info;
      info.tag = toc.u32();
      info.offset = toc.u64();
      info.size = toc.u64();
      info.checksum = toc.u64();
      info.name = decode_tag(info.tag);
      // Entries must tile the payload exactly: contiguous, in order, ending
      // at the payload boundary.
      if (info.offset != expected_next ||
          info.size > payload_size_ - info.offset) {
        throw SnapshotError("snapshot: section table out of bounds");
      }
      expected_next = info.offset + info.size;
      sections.push_back(std::move(info));
    }
    if (expected_next != payload_size_) {
      throw SnapshotError("snapshot: section table does not cover payload");
    }
    const std::uint64_t toc_checksum =
        util::fnv1a(trailer.substr(0, toc.position()));
    if (toc.u64() != toc_checksum) {
      throw SnapshotError("snapshot: section table checksum mismatch");
    }
    if (!toc.at_end()) {
      throw SnapshotError("snapshot: bytes after section table");
    }
    sections_ = std::move(sections);
    has_toc_ = true;
  } catch (const SnapshotError&) {
    throw SnapshotError("snapshot: trailing bytes after checksum");
  }
}

void Image::restore_components(const Components& components) const {
  DMSIM_ASSERT(components.engine != nullptr && components.cluster != nullptr &&
                   components.scheduler != nullptr,
               "image restore needs engine, cluster and scheduler");
  Reader r(payload());
  components.engine->restore_state(r);
  components.cluster->restore_state(r, version_);
  components.scheduler->restore_state(r, version_);
  detail::restore_counters_section(r, components.counters);
  r.expect_section(detail::kEndSection, "end");
  if (!r.at_end()) {
    throw SnapshotError("snapshot: unconsumed payload bytes");
  }
}

void Image::materialize(const Components& components) const {
  const std::uint64_t expected = config_fingerprint(components);
  if (fingerprint_ != expected) {
    throw SnapshotError(
        "snapshot: configuration fingerprint mismatch — the snapshot was "
        "taken under a different cluster/scheduler/workload configuration");
  }
  restore_components(components);
}

void Image::materialize_trusted(const Components& components,
                                std::uint64_t expected_fingerprint) const {
  if (fingerprint_ != expected_fingerprint) {
    throw SnapshotError(
        "snapshot: configuration fingerprint mismatch — the snapshot was "
        "taken under a different cluster/scheduler/workload configuration");
  }
  restore_components(components);
}

}  // namespace dmsim::snapshot
