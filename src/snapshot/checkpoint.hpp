// Checkpoint/restore orchestration.
//
// Stitches the per-component save_state/restore_state sections (engine,
// cluster, scheduler, counters) into one versioned, checksummed snapshot:
//
//   "DMSIMSNP" | u32 version | u64 config fingerprint | u64 payload size |
//   payload sections | u64 FNV-1a(payload)
//
// The workload and system configuration are deliberately NOT serialized —
// they are regenerated deterministically from the run configuration, and
// the fingerprint (a hash over cluster topology, policy, scheduler config
// and every job spec) refuses a restore against anything else. This keeps
// snapshots small and makes "restore under a silently different config"
// a loud error instead of a divergent replay.
//
// Determinism contract: restoring a snapshot cut at time T and running to
// completion produces byte-identical results (JSON document, metrics,
// counters) to the uninterrupted run, and an NDJSON trace identical from
// the cut point onward. Saves are side-effect-free — every save path is
// const — so checkpointing cannot perturb the simulation it observes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/job_spec.hpp"
#include "util/units.hpp"

namespace dmsim::obs {
class Counters;
}
namespace dmsim::sim {
class Engine;
}
namespace dmsim::cluster {
class Cluster;
}
namespace dmsim::sched {
class Scheduler;
struct SchedulerConfig;
}

namespace dmsim::snapshot {

/// Snapshot envelope format version written by save_bytes, and the oldest
/// version restore_bytes still reads. Exposed so tools (dmsim_run
/// --version) report the real format instead of a hardcoded string.
///   v2: counters section gained histogram and time-series state.
///   v3: cluster occupancy ledger stored as whole columns.
///   v4: cluster section carries the memory-tier table plus per-node
///       tier/rack columns (v3/v2 files predate tiers and can only describe
///       flat topologies, so they stay readable).
///   v5: scheduler section carries per-running-job monitor fold state
///       (overhead factor, provisioned MiB) plus the memory-monitor's
///       per-job state (noise counters / adaptive regions). Older files
///       predate the monitor subsystem — necessarily oracle runs — and
///       restore with oracle-equivalent defaults.
inline constexpr std::uint32_t kFormatVersion = 5;
inline constexpr std::uint32_t kMinFormatVersion = 2;

/// The simulation objects a checkpoint spans. All pointers are borrowed;
/// `counters` may be nullptr (counter state is then neither saved nor
/// restored).
struct Components {
  sim::Engine* engine = nullptr;
  cluster::Cluster* cluster = nullptr;
  sched::Scheduler* scheduler = nullptr;
  obs::Counters* counters = nullptr;
};

/// Checkpoint activity counters + wall-clock phase timers. Kept OUT of the
/// simulation's counters registry: the registry is embedded in the JSON
/// result document, and a restored run performs a different number of
/// checkpoint operations than the uninterrupted run it must match byte for
/// byte.
struct Stats {
  std::uint64_t saves = 0;
  std::uint64_t restores = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  double save_seconds = 0.0;
  double restore_seconds = 0.0;
  /// Largest single snapshot and slowest single save seen so far; exported
  /// as gauge high-water marks (per-save visibility the totals can't give).
  std::uint64_t max_save_bytes = 0;
  double max_save_seconds = 0.0;

  /// Export as sim.checkpoint.* into a (separate) counters registry:
  /// totals as counters plus `sim.checkpoint.bytes` / `sim.checkpoint.save_us`
  /// gauges carrying the per-save high-water marks.
  void publish(obs::Counters& registry) const;
};

/// When to cut checkpoints while driving a run (see run_with_checkpoints).
struct Plan {
  std::string path;            ///< snapshot file, overwritten on each save
  Seconds every = 0.0;         ///< periodic save interval; 0 disables
  std::vector<Seconds> cuts;   ///< additional explicit cut times

  [[nodiscard]] bool active() const noexcept {
    return every > 0.0 || !cuts.empty();
  }
};

/// Hash of everything a snapshot assumes but does not carry: cluster
/// topology + lender policy, scheduler config, and the full workload.
[[nodiscard]] std::uint64_t config_fingerprint(const Components& components);

/// Same hash computed from the raw configuration pieces, without live
/// components. Lets a serve loop fingerprint a scenario ONCE (cluster built
/// from config, base scheduler config, base workload) and fork images with
/// the cheap trusted compare instead of re-hashing per fork.
[[nodiscard]] std::uint64_t config_fingerprint(
    const cluster::Cluster& cluster, const sched::SchedulerConfig& config,
    const trace::Workload& workload);

/// Serialize the full simulation state to snapshot bytes (envelope
/// included). Const in effect: the simulation is not perturbed.
[[nodiscard]] std::string save_bytes(const Components& components);

/// Restore simulation state from save_bytes output. The components must be
/// freshly constructed from the identical configuration with the workload
/// already submitted (fingerprint-enforced). Throws SnapshotError on
/// corruption, truncation, version or fingerprint mismatch.
void restore_bytes(std::string_view bytes, const Components& components);

/// save_bytes + atomic-ish file write (write temp, rename). Updates
/// `stats` (saves, bytes, timing) when non-null.
void save_file(const std::string& path, const Components& components,
               Stats* stats = nullptr);

/// Read + restore_bytes. Updates `stats` when non-null.
void restore_file(const std::string& path, const Components& components,
                  Stats* stats = nullptr);

/// Drive the scheduler to completion, saving a checkpoint to plan.path at
/// each cut: explicit `cuts` plus every `every` seconds of sim time. Cuts
/// at or before the current clock (e.g. the cut a restore resumed from) are
/// skipped, as is a save after the engine drains (there is nothing left to
/// resume). The caller must still call scheduler->finalize() afterwards.
void run_with_checkpoints(const Components& components, const Plan& plan,
                          Stats* stats = nullptr);

}  // namespace dmsim::snapshot
