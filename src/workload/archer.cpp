#include "workload/archer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dmsim::workload {

namespace {

// Table 2 of the paper, percentages by column. Order matches kMemoryBucketsGb.
constexpr std::array<double, 5> kSyntheticAll = {61.0, 18.6, 11.5, 6.9, 2.0};
constexpr std::array<double, 5> kSyntheticSmall = {69.5, 19.4, 7.7, 3.0, 0.4};
constexpr std::array<double, 5> kSyntheticLarge = {53.0, 16.9, 14.8, 11.2, 4.2};
constexpr std::array<double, 5> kGrizzlyAll = {73.3, 12.4, 8.2, 5.7, 0.5};
constexpr std::array<double, 5> kGrizzlySmall = {63.5, 20.2, 8.5, 7.0, 0.8};
constexpr std::array<double, 5> kGrizzlyLarge = {77.8, 8.9, 8.0, 5.0, 0.3};

}  // namespace

std::span<const double> memory_bucket_percentages(
    TraceFamily family, SizeClass size_class) noexcept {
  switch (family) {
    case TraceFamily::Synthetic:
      switch (size_class) {
        case SizeClass::All:
          return kSyntheticAll;
        case SizeClass::Small:
          return kSyntheticSmall;
        case SizeClass::Large:
          return kSyntheticLarge;
      }
      break;
    case TraceFamily::Grizzly:
      switch (size_class) {
        case SizeClass::All:
          return kGrizzlyAll;
        case SizeClass::Small:
          return kGrizzlySmall;
        case SizeClass::Large:
          return kGrizzlyLarge;
      }
      break;
  }
  return kSyntheticAll;
}

MiB sample_peak_memory(util::Rng& rng, TraceFamily family,
                       SizeClass size_class, MiB cap) {
  const auto weights = memory_bucket_percentages(family, size_class);
  const std::size_t bucket = rng.discrete(weights);
  const auto [lo_gb, hi_gb] = kMemoryBucketsGb[bucket];
  // Log-uniform within the bucket; the lowest bucket starts at 256 MiB to
  // keep the logarithm finite (jobs always use some memory).
  const double lo = std::max(256.0, lo_gb * 1024.0);
  const double hi = hi_gb * 1024.0;
  const double value = std::exp(rng.uniform(std::log(lo), std::log(hi)));
  MiB mem = static_cast<MiB>(std::llround(value));
  if (cap > 0) mem = std::min(mem, cap);
  return std::max<MiB>(1, mem);
}

MiB sample_normal_class_peak(util::Rng& rng, MiB normal_capacity_mib) {
  DMSIM_ASSERT(normal_capacity_mib > 0, "normal capacity must be positive");
  // Log-normal fit of Table 3's normal-memory quartiles (values in MiB):
  // median 8089 -> mu = ln(8089) ~ 9.0; (q3 - q1) in log space -> sigma ~ 0.99.
  const double value = rng.lognormal(9.0, 0.99);
  const MiB capped =
      std::min<MiB>(static_cast<MiB>(std::llround(value)), normal_capacity_mib);
  return std::max<MiB>(64, capped);
}

MiB sample_large_class_peak(util::Rng& rng, MiB normal_capacity_mib,
                            MiB large_capacity_mib) {
  DMSIM_ASSERT(large_capacity_mib > normal_capacity_mib,
               "large capacity must exceed normal capacity");
  // Log-normal fit of Table 3's large-memory quartiles: median 86961 MiB ->
  // mu ~ 11.37, sigma ~ 0.20; clamped into (normal, large] so the job truly
  // needs a large node under the baseline policy.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const MiB value = static_cast<MiB>(std::llround(rng.lognormal(11.37, 0.20)));
    if (value > normal_capacity_mib && value <= large_capacity_mib) return value;
  }
  // Degenerate capacities (e.g. 32/64 GiB family): fall back to log-uniform
  // across the valid range.
  const double lo = std::log(static_cast<double>(normal_capacity_mib + 1));
  const double hi = std::log(static_cast<double>(large_capacity_mib));
  const double value = std::exp(rng.uniform(lo, hi));
  return std::clamp<MiB>(static_cast<MiB>(std::llround(value)),
                         normal_capacity_mib + 1, large_capacity_mib);
}

}  // namespace dmsim::workload
