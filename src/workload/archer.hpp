// Per-node peak-memory distributions (paper Table 2).
//
// The paper generates memory requests following the Archer supercomputer's
// memory-request distribution (Turner & McIntosh-Smith) and reports the
// resulting buckets in Table 2, for both the synthetic trace and the Grizzly
// trace, split by *job size* (small <= 32 nodes, large > 32 nodes). This
// module encodes that table and samples per-node peak memory from it
// (log-uniform within a bucket).
#pragma once

#include <array>
#include <span>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace dmsim::workload {

/// Job-size class used by Table 2 (note: this is by node count, unlike the
/// normal/large *memory* classes of Table 3).
enum class SizeClass { All, Small, Large };

/// Which trace's column of Table 2 to use.
enum class TraceFamily { Synthetic, Grizzly };

/// Table 2 buckets, GB per node, right-open: [lo, hi).
inline constexpr std::array<std::pair<double, double>, 5> kMemoryBucketsGb = {{
    {0.0, 12.0},
    {12.0, 24.0},
    {24.0, 48.0},
    {48.0, 96.0},
    {96.0, 128.0},
}};

/// Bucket probabilities (percent of jobs) straight from Table 2.
[[nodiscard]] std::span<const double> memory_bucket_percentages(
    TraceFamily family, SizeClass size_class) noexcept;

/// Sample a per-node peak memory (MiB) from the Table 2 distribution,
/// log-uniform within the chosen bucket, optionally clamped to `cap`.
[[nodiscard]] MiB sample_peak_memory(util::Rng& rng, TraceFamily family,
                                     SizeClass size_class, MiB cap = 0);

/// Table 3 memory-class distributions: per-node peak memory conditioned on
/// the normal/large *memory* class. Calibrated log-normal fits of the paper's
/// quartiles (normal: q1 4037 / med 8089 / q3 15341 MB, max 65532;
/// large: q1 76176 / med 86961 / q3 99956 MB, range [65538, 130046]).
[[nodiscard]] MiB sample_normal_class_peak(util::Rng& rng,
                                           MiB normal_capacity_mib);
[[nodiscard]] MiB sample_large_class_peak(util::Rng& rng,
                                          MiB normal_capacity_mib,
                                          MiB large_capacity_mib);

}  // namespace dmsim::workload
