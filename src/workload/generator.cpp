#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "workload/archer.hpp"

namespace dmsim::workload {

SyntheticWorkload generate_synthetic(const SyntheticWorkloadConfig& config) {
  DMSIM_ASSERT(config.pct_large_jobs >= 0.0 && config.pct_large_jobs <= 1.0,
               "pct_large_jobs must be a fraction");
  DMSIM_ASSERT(config.overestimation >= 0.0,
               "overestimation must be non-negative");
  DMSIM_ASSERT(config.large_capacity > config.normal_capacity,
               "large capacity must exceed normal capacity");

  util::Rng master(config.seed);

  // Step 1: CIRNE skeleton (arrivals, sizes, runtimes, walltimes).
  CirneConfig cirne_cfg = config.cirne;
  cirne_cfg.seed = master.child("generator.cirne").seed();
  const CirneTrace skeleton = generate_cirne(cirne_cfg);

  // Step 2: pools of profiled apps and usage shapes.
  SyntheticWorkload out;
  out.apps = slowdown::AppPool::synthetic(master.child("generator.apps"),
                                          config.app_pool_size);
  out.usage_library = GoogleUsageLibrary::synthetic(
      master.child("generator.usage"), config.usage_library_size);
  out.horizon = skeleton.horizon;
  out.offered_load = skeleton.offered_load;

  // Steps 3-7: per job, match an app profile, draw the memory class and
  // peak, match a usage shape, and apply the overestimation factor.
  util::Rng class_rng = master.child("generator.class");
  util::Rng mem_rng = master.child("generator.mem");
  util::Rng hetero_rng = master.child("generator.hetero");
  out.jobs.reserve(skeleton.jobs.size());
  std::uint32_t next_id = 1;
  for (const CirneJob& cj : skeleton.jobs) {
    trace::JobSpec job;
    job.id = JobId{next_id++};
    job.submit_time = cj.arrival;
    job.num_nodes = cj.nodes;
    job.duration = cj.runtime;

    // Step 7 (mix filter) folded into generation: draw the memory class in
    // the target proportion, then the class-conditional peak (Table 3 fits).
    const bool large = class_rng.bernoulli(config.pct_large_jobs);
    const MiB peak =
        large ? sample_large_class_peak(mem_rng, config.normal_capacity,
                                        config.large_capacity)
              : sample_normal_class_peak(mem_rng, config.normal_capacity);

    // Step 3: nearest profiled app by (size, runtime).
    job.app_profile = out.apps.match(static_cast<double>(cj.nodes), cj.runtime);

    // Step 6: nearest Google-style usage shape by (size, runtime, memory),
    // instantiated at the job's peak and RDP-compressed.
    const std::size_t shape = out.usage_library.match(
        static_cast<double>(cj.nodes), cj.runtime, peak);
    job.usage =
        out.usage_library.instantiate(shape, peak, config.rdp_epsilon_frac);

    // Step 5 + overestimation sweep (§3.2.1): the user's request equals the
    // true peak inflated by the overestimation factor.
    job.requested_mem = static_cast<MiB>(std::llround(
        static_cast<double>(job.peak_usage()) * (1.0 + config.overestimation)));

    // Walltime must cover the padded runtime; keep the CIRNE padding.
    job.walltime = cj.walltime;

    // Per-node heterogeneity: some multi-node jobs are rank-0 heavy — the
    // head node carries the full footprint, the rest a fraction of it.
    if (cj.nodes > 1 && hetero_rng.bernoulli(config.rank0_heavy_fraction)) {
      job.node_usage_scale.resize(static_cast<std::size_t>(cj.nodes), 1.0);
      for (std::size_t n = 1; n < job.node_usage_scale.size(); ++n) {
        job.node_usage_scale[n] = hetero_rng.uniform(0.5, 0.9);
      }
    }

    out.jobs.push_back(std::move(job));
  }
  return out;
}

}  // namespace dmsim::workload
