#include "workload/filter.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "workload/generator.hpp"

namespace dmsim::workload {

trace::Workload resample_mix(const trace::Workload& jobs,
                             double target_large_fraction, MiB normal_capacity,
                             util::Rng& rng) {
  DMSIM_ASSERT(target_large_fraction >= 0.0 && target_large_fraction <= 1.0,
               "target large fraction must be in [0,1]");
  // Partition indices by memory class.
  std::vector<std::size_t> normal;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    (is_large_memory_job(jobs[i], normal_capacity) ? large : normal)
        .push_back(i);
  }

  std::size_t want_large = 0;
  std::size_t want_normal = 0;
  if (target_large_fraction >= 1.0) {
    want_large = large.size();
  } else if (target_large_fraction <= 0.0) {
    want_normal = normal.size();
  } else {
    // Output size limited by whichever class budget binds first.
    const double by_large =
        static_cast<double>(large.size()) / target_large_fraction;
    const double by_normal =
        static_cast<double>(normal.size()) / (1.0 - target_large_fraction);
    const auto total =
        static_cast<std::size_t>(std::floor(std::min(by_large, by_normal)));
    want_large = static_cast<std::size_t>(
        std::llround(static_cast<double>(total) * target_large_fraction));
    want_large = std::min(want_large, large.size());
    want_normal = std::min(total - want_large, normal.size());
  }

  rng.shuffle(normal);
  rng.shuffle(large);
  normal.resize(want_normal);
  large.resize(want_large);

  std::vector<std::size_t> chosen;
  chosen.reserve(want_normal + want_large);
  chosen.insert(chosen.end(), normal.begin(), normal.end());
  chosen.insert(chosen.end(), large.begin(), large.end());
  std::sort(chosen.begin(), chosen.end());  // preserve arrival order

  trace::Workload out;
  out.reserve(chosen.size());
  for (const std::size_t idx : chosen) out.push_back(jobs[idx]);
  return out;
}

trace::Workload rescale_arrivals(const trace::Workload& jobs,
                                 double time_scale) {
  DMSIM_ASSERT(time_scale > 0.0, "time scale must be positive");
  trace::Workload out = jobs;
  if (out.empty()) return out;
  Seconds first = out.front().submit_time;
  for (const auto& j : out) first = std::min(first, j.submit_time);
  for (auto& j : out) {
    j.submit_time = (j.submit_time - first) * time_scale;
  }
  return out;
}

trace::Workload with_overestimation(const trace::Workload& jobs,
                                    double overestimation) {
  DMSIM_ASSERT(overestimation >= 0.0, "overestimation must be non-negative");
  trace::Workload out = jobs;
  for (auto& j : out) {
    j.requested_mem = static_cast<MiB>(std::llround(
        static_cast<double>(j.peak_usage()) * (1.0 + overestimation)));
  }
  return out;
}

}  // namespace dmsim::workload
