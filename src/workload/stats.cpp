#include "workload/stats.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace dmsim::workload {

WorkloadStats characterize(std::span<const trace::JobSpec> jobs,
                           MiB normal_capacity) {
  DMSIM_ASSERT(normal_capacity > 0, "normal capacity must be positive");
  WorkloadStats out;
  out.total_jobs = jobs.size();
  if (jobs.empty()) return out;

  std::vector<double> submits;
  std::vector<double> normal_mem, large_mem, normal_ns, large_ns;
  submits.reserve(jobs.size());

  bool first = true;
  for (const auto& j : jobs) {
    if (first) {
      out.first_submit = j.submit_time;
      out.last_submit = j.submit_time;
      first = false;
    } else {
      out.first_submit = std::min(out.first_submit, j.submit_time);
      out.last_submit = std::max(out.last_submit, j.submit_time);
    }
    submits.push_back(j.submit_time);
    out.nodes.add(static_cast<double>(j.num_nodes));
    out.runtime.add(j.duration);
    out.total_node_seconds += j.node_seconds();

    const MiB peak = j.peak_usage();
    if (peak > 0) {
      out.request_ratio.add(static_cast<double>(j.requested_mem) /
                            static_cast<double>(peak));
    }
    const bool large = peak > normal_capacity;
    ClassSummary& cls = large ? out.large : out.normal;
    if (large) ++out.large_memory_jobs;
    ++cls.jobs;
    (large ? large_mem : normal_mem).push_back(static_cast<double>(peak));
    (large ? large_ns : normal_ns).push_back(j.node_seconds());
    if (peak > 0) {
      cls.avg_peak_ratio.add(j.usage.average() / static_cast<double>(peak));
    }
  }

  std::sort(submits.begin(), submits.end());
  for (std::size_t i = 1; i < submits.size(); ++i) {
    out.interarrival.add(submits[i] - submits[i - 1]);
  }
  if (!normal_mem.empty()) {
    out.normal.peak_memory_mib = util::quartiles(normal_mem);
    out.normal.node_seconds = util::quartiles(normal_ns);
  }
  if (!large_mem.empty()) {
    out.large.peak_memory_mib = util::quartiles(large_mem);
    out.large.node_seconds = util::quartiles(large_ns);
  }
  return out;
}

}  // namespace dmsim::workload
