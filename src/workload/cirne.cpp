#include "workload/cirne.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dmsim::workload {

namespace {

/// Relative submission intensity by hour of day: the Cirne–Berman model's
/// daily cycle peaks in working hours and bottoms out at night.
[[nodiscard]] double daily_weight(double t_seconds) noexcept {
  const double hour = std::fmod(t_seconds, 86400.0) / 3600.0;
  // Smooth bimodal-ish day: low at 4am, peak around 2pm.
  return 1.0 + 0.8 * std::sin((hour - 8.0) / 24.0 * 2.0 * std::numbers::pi);
}

[[nodiscard]] int sample_size(util::Rng& rng, const CirneConfig& cfg) {
  if (rng.bernoulli(cfg.serial_fraction)) return 1;
  const int max_exp = static_cast<int>(std::floor(std::log2(cfg.max_job_nodes)));
  if (rng.bernoulli(cfg.power_of_two_fraction)) {
    // Power of two, smaller sizes more likely (geometric-ish weights).
    std::vector<double> weights;
    weights.reserve(static_cast<std::size_t>(max_exp));
    for (int e = 1; e <= max_exp; ++e) {
      weights.push_back(std::pow(0.72, e));
    }
    const auto pick = rng.discrete(weights);
    return 1 << (static_cast<int>(pick) + 1);
  }
  // Non-power-of-two: log-uniform over [2, max_nodes].
  const double v = std::exp(rng.uniform(std::log(2.0),
                                        std::log(static_cast<double>(cfg.max_job_nodes))));
  return std::clamp(static_cast<int>(std::llround(v)), 2, cfg.max_job_nodes);
}

}  // namespace

CirneTrace generate_cirne(const CirneConfig& cfg) {
  DMSIM_ASSERT(cfg.num_jobs > 0, "cirne: need at least one job");
  DMSIM_ASSERT(cfg.system_nodes > 0, "cirne: system must have nodes");
  DMSIM_ASSERT(cfg.max_job_nodes >= 1 &&
                   cfg.max_job_nodes <= cfg.system_nodes,
               "cirne: max job size must fit the system");
  DMSIM_ASSERT(cfg.target_load > 0.0 && cfg.target_load <= 1.5,
               "cirne: implausible target load");

  util::Rng master(cfg.seed);
  util::Rng size_rng = master.child("cirne.size");
  util::Rng runtime_rng = master.child("cirne.runtime");
  util::Rng wall_rng = master.child("cirne.walltime");
  util::Rng arrival_rng = master.child("cirne.arrival");

  CirneTrace out;
  out.jobs.resize(cfg.num_jobs);

  double total_node_seconds = 0.0;
  for (auto& job : out.jobs) {
    job.nodes = sample_size(size_rng, cfg);
    job.runtime = std::clamp(runtime_rng.lognormal(cfg.runtime_mu, cfg.runtime_sigma),
                             60.0, days(7));
    job.walltime = job.runtime * wall_rng.uniform(cfg.walltime_factor_lo,
                                                  cfg.walltime_factor_hi);
    total_node_seconds += static_cast<double>(job.nodes) * job.runtime;
  }

  // Horizon giving the requested offered load.
  out.horizon = total_node_seconds /
                (static_cast<double>(cfg.system_nodes) * cfg.target_load);
  out.offered_load = total_node_seconds /
                     (static_cast<double>(cfg.system_nodes) * out.horizon);

  // Arrivals: rejection-sample the daily-cycle density over [0, horizon).
  constexpr double kMaxWeight = 1.8;
  for (auto& job : out.jobs) {
    for (;;) {
      const double t = arrival_rng.uniform(0.0, out.horizon);
      if (arrival_rng.uniform(0.0, kMaxWeight) <= daily_weight(t)) {
        job.arrival = t;
        break;
      }
    }
  }
  std::sort(out.jobs.begin(), out.jobs.end(),
            [](const CirneJob& a, const CirneJob& b) {
              return a.arrival < b.arrival;
            });
  return out;
}

}  // namespace dmsim::workload
