// Workload characterization: the Table 1/Table 3-style summaries the paper
// uses to describe its traces, computed for any dmsim workload.
#pragma once

#include <span>

#include "trace/job_spec.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace dmsim::workload {

struct ClassSummary {
  std::size_t jobs = 0;
  util::Quartiles peak_memory_mib{};   ///< per-node peak usage
  util::Quartiles node_seconds{};
  util::OnlineStats avg_peak_ratio;    ///< usage.average() / peak per job
};

struct WorkloadStats {
  std::size_t total_jobs = 0;
  Seconds first_submit = 0.0;
  Seconds last_submit = 0.0;
  double total_node_seconds = 0.0;

  util::OnlineStats nodes;          ///< job sizes
  util::OnlineStats runtime;        ///< full-speed durations
  util::OnlineStats interarrival;   ///< gaps between successive submits
  util::OnlineStats request_ratio;  ///< requested / peak (1 + overestimation)

  std::size_t large_memory_jobs = 0;  ///< peak > normal capacity
  ClassSummary normal;
  ClassSummary large;

  /// Offered load against a system of `nodes` over the submission window.
  [[nodiscard]] double offered_load(int system_nodes) const noexcept {
    const Seconds window = last_submit - first_submit;
    if (window <= 0.0 || system_nodes <= 0) return 0.0;
    return total_node_seconds / (static_cast<double>(system_nodes) * window);
  }
  [[nodiscard]] double large_fraction() const noexcept {
    return total_jobs == 0
               ? 0.0
               : static_cast<double>(large_memory_jobs) /
                     static_cast<double>(total_jobs);
  }
};

/// Characterize a workload; `normal_capacity` sets the Table 3 class split.
[[nodiscard]] WorkloadStats characterize(std::span<const trace::JobSpec> jobs,
                                         MiB normal_capacity);

}  // namespace dmsim::workload
