// CIRNE comprehensive workload model (Cirne & Berman, WWC-4 2001), as used
// by the paper to synthesize HPC job arrival patterns, node counts, runtimes
// and time limits (§3.1.2). Parameters are adapted to the published model:
//
//   * arrivals follow a daily cycle (more submissions during working hours),
//     with the trace horizon derived from a target offered load,
//   * job sizes are power-of-two biased, between 1 and max_nodes,
//   * runtimes are log-normal with a heavy tail, clipped to [1 min, 7 days],
//   * requested time limits overestimate the runtime (users pad their
//     walltime), which is what EASY backfill reservations consume.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace dmsim::workload {

/// A job skeleton before memory information is attached (Fig. 3 step 1).
struct CirneJob {
  Seconds arrival = 0.0;
  int nodes = 1;
  Seconds runtime = 0.0;   ///< actual (full-speed) runtime
  Seconds walltime = 0.0;  ///< user-requested limit (>= runtime)
};

struct CirneConfig {
  std::size_t num_jobs = 1000;
  int system_nodes = 1024;
  int max_job_nodes = 128;
  /// Offered load: sum(nodes * runtime) / (system_nodes * horizon). The
  /// horizon is derived from this; >= 0.7 matches the representative weeks
  /// the paper simulates (§3.2.1).
  double target_load = 0.8;
  /// Fraction of serial (1-node) jobs.
  double serial_fraction = 0.24;
  /// Probability that a parallel job's size is a power of two.
  double power_of_two_fraction = 0.75;
  /// Log-normal runtime parameters (log-seconds).
  double runtime_mu = 8.9;
  double runtime_sigma = 1.4;
  /// Walltime padding factor range: walltime = runtime * U[lo, hi].
  double walltime_factor_lo = 1.1;
  double walltime_factor_hi = 2.5;
  std::uint64_t seed = 42;
};

struct CirneTrace {
  std::vector<CirneJob> jobs;  ///< sorted by arrival (Fig. 3 step 4)
  Seconds horizon = 0.0;       ///< derived submission window
  double offered_load = 0.0;   ///< realized load over the horizon
};

[[nodiscard]] CirneTrace generate_cirne(const CirneConfig& config);

}  // namespace dmsim::workload
