// exa-Grizzly: deterministic scaling of the Grizzly system + trace to
// arbitrary node counts (10k / 100k / 1M and anything in between).
//
// The paper tops out at Grizzly scale (1490 nodes, one simulated system of
// 1024 x 64 GiB + 466 x 128 GiB nodes); the roadmap's north star is 100k-1M
// nodes. This module scales both halves of the experiment:
//
//   * topology: a cluster of `target_nodes` nodes preserving the paper's
//     normal:large mix ratio (1024:466) and capacities, and
//   * workload: one simulated week whose arrival process is K independent
//     Grizzly-week replicas (K = ceil(target / 1490)), each drawn through
//     the same detail::draw_week_jobs generator under a distinct child seed,
//     merged by arrival time. Load therefore scales linearly with the node
//     count while every per-job marginal (size classes, runtimes, Table-2
//     memory peaks) matches the original trace.
//
// Everything is a pure function of the config: the same (target_nodes, seed)
// always produces byte-identical topology and jobs, across calls and across
// thread counts — the property the scale_sweep golden tests pin.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "trace/job_spec.hpp"
#include "workload/grizzly.hpp"

namespace dmsim::workload {

struct ExaGrizzlyConfig {
  /// Total node count of the scaled system (>= 1).
  int target_nodes = 10'000;
  /// Node mix to replicate — defaults to the paper's simulated SC system
  /// (1024 normal 64 GiB + 466 large 128 GiB nodes).
  int mix_normal = 1024;
  int mix_large = 466;
  MiB normal_capacity = gib(64);
  MiB large_capacity = gib(128);
  /// Per-replica arrival-process parameters; `base.seed` is the master seed
  /// and `base.system_nodes` the replica granularity (1490 = one Grizzly).
  GrizzlyConfig base;
};

/// A scaled system plus one simulated week of jobs for it.
struct ExaGrizzlyScale {
  cluster::ClusterConfig topology;  ///< normal nodes first, then large
  trace::Workload week_jobs;        ///< merged replicas, sorted by submit time
  slowdown::AppPool apps;           ///< shared across replicas
  GoogleUsageLibrary usage_library; ///< shared across replicas
  int replicas = 0;                 ///< Grizzly-week replicas drawn
  int normal_nodes = 0;
  int large_nodes = 0;
};

/// Scale Grizzly to `config.target_nodes` nodes. Deterministic: topology
/// and jobs depend only on the config.
[[nodiscard]] ExaGrizzlyScale exa_grizzly(const ExaGrizzlyConfig& config);

/// Convenience overload with default mix/capacities/arrival parameters.
[[nodiscard]] ExaGrizzlyScale exa_grizzly(int target_nodes);

}  // namespace dmsim::workload
