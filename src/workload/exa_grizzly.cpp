#include "workload/exa_grizzly.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dmsim::workload {

ExaGrizzlyScale exa_grizzly(const ExaGrizzlyConfig& cfg) {
  DMSIM_ASSERT(cfg.target_nodes > 0, "exa_grizzly: need at least one node");
  DMSIM_ASSERT(cfg.mix_normal > 0 && cfg.mix_large >= 0,
               "exa_grizzly: node mix must have normal nodes");
  DMSIM_ASSERT(cfg.base.system_nodes > 0,
               "exa_grizzly: replica granularity must be positive");

  ExaGrizzlyScale out;

  // --- topology: preserve the normal:large ratio at the target count -------
  const double large_share =
      static_cast<double>(cfg.mix_large) /
      static_cast<double>(cfg.mix_normal + cfg.mix_large);
  out.large_nodes = static_cast<int>(std::llround(
      static_cast<double>(cfg.target_nodes) * large_share));
  out.large_nodes = std::clamp(out.large_nodes, 0, cfg.target_nodes);
  out.normal_nodes = cfg.target_nodes - out.large_nodes;
  // A scaled system still needs hosts; at tiny targets rounding could
  // produce all-large or all-normal, which is fine, but never zero total.
  out.topology = cluster::make_cluster_config(
      out.normal_nodes, cfg.normal_capacity, out.large_nodes,
      cfg.large_capacity, cfg.base.cores_per_node);

  // --- workload: K Grizzly-week replicas merged by arrival -----------------
  const int granularity = cfg.base.system_nodes;
  out.replicas = (cfg.target_nodes + granularity - 1) / granularity;

  util::Rng master(cfg.base.seed);
  out.apps = slowdown::AppPool::synthetic(master.child("exa.apps"),
                                          cfg.base.app_pool_size);
  out.usage_library = GoogleUsageLibrary::synthetic(
      master.child("exa.usage"), cfg.base.usage_library_size);

  util::Rng util_rng = master.child("exa.utilization");
  struct Tagged {
    detail::RawGrizzlyJob job;
    int replica = 0;
    std::size_t seq = 0;  ///< position within the replica's arrival order
  };
  std::vector<Tagged> merged;
  int nodes_left = cfg.target_nodes;
  for (int r = 0; r < out.replicas; ++r) {
    // Representative-week load (paper keeps weeks >= the utilization floor
    // for simulation), drawn per replica so machines don't repeat each
    // other's week.
    const double utilization = std::max(
        std::clamp(util_rng.normal(cfg.base.utilization_mean,
                                   cfg.base.utilization_stddev),
                   0.15, 0.95),
        cfg.base.utilization_floor);
    // The final replica may cover only part of a Grizzly's worth of nodes;
    // shrink its system so total load stays proportional to target_nodes.
    GrizzlyConfig rc = cfg.base;
    rc.system_nodes = std::min(granularity, nodes_left);
    rc.max_job_nodes = std::min(rc.max_job_nodes, rc.system_nodes);
    nodes_left -= rc.system_nodes;
    const auto raw = detail::draw_week_jobs(
        rc, master.child("exa.week", static_cast<std::uint64_t>(r)),
        utilization);
    merged.reserve(merged.size() + raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      merged.push_back(Tagged{raw[i], r, i});
    }
  }
  // Arrival order across replicas; (replica, seq) breaks exact-arrival ties
  // deterministically.
  std::sort(merged.begin(), merged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.job.arrival != b.job.arrival) return a.job.arrival < b.job.arrival;
    if (a.replica != b.replica) return a.replica < b.replica;
    return a.seq < b.seq;
  });

  out.week_jobs.reserve(merged.size());
  std::uint32_t next_id = 1;
  for (const Tagged& t : merged) {
    const detail::RawGrizzlyJob& rj = t.job;
    trace::JobSpec job;
    job.id = JobId{next_id++};
    job.submit_time = rj.arrival;
    job.num_nodes = rj.nodes;
    job.duration = rj.runtime;
    job.walltime = rj.walltime;
    job.app_profile =
        out.apps.match(static_cast<double>(rj.nodes), rj.runtime);
    const std::size_t shape = out.usage_library.match(
        static_cast<double>(rj.nodes), rj.runtime, rj.peak);
    job.usage = out.usage_library.instantiate(shape, rj.peak);
    job.requested_mem = static_cast<MiB>(std::llround(
        static_cast<double>(job.peak_usage()) *
        (1.0 + cfg.base.overestimation)));
    out.week_jobs.push_back(std::move(job));
  }
  DMSIM_ASSERT(std::is_sorted(out.week_jobs.begin(), out.week_jobs.end(),
                              [](const trace::JobSpec& a,
                                 const trace::JobSpec& b) {
                                return a.submit_time < b.submit_time;
                              }),
               "exa_grizzly: merged week must be arrival-sorted");
  return out;
}

ExaGrizzlyScale exa_grizzly(int target_nodes) {
  ExaGrizzlyConfig cfg;
  cfg.target_nodes = target_nodes;
  return exa_grizzly(cfg);
}

}  // namespace dmsim::workload
