// Workload filtering and resampling utilities (paper Fig. 3 step 7: "filter
// trace into a specific system memory ratio").
//
// The synthetic generator draws memory classes in the target proportion
// directly; these utilities implement the paper's alternative path — start
// from an existing trace and reshape it — and are what you would use on an
// imported SWF trace.
#pragma once

#include "trace/job_spec.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dmsim::workload {

/// Keep only jobs matching `keep` (stable). Ids and submit times are
/// preserved.
template <typename Pred>
[[nodiscard]] trace::Workload filter_jobs(const trace::Workload& jobs,
                                          Pred keep) {
  trace::Workload out;
  for (const auto& j : jobs) {
    if (keep(j)) out.push_back(j);
  }
  return out;
}

/// Resample (without replacement) to the target large-memory job fraction,
/// preserving arrival order. The result is as large as the class budgets
/// allow: with L large and N normal jobs available, the output holds
/// min(L / target, N / (1 - target)) jobs split in the target proportion.
/// target 0 or 1 selects only the respective class. Deterministic in `rng`.
[[nodiscard]] trace::Workload resample_mix(const trace::Workload& jobs,
                                           double target_large_fraction,
                                           MiB normal_capacity,
                                           util::Rng& rng);

/// Shift all submit times so the first job arrives at 0 and optionally
/// compress/stretch interarrival gaps by `time_scale` (> 1 stretches the
/// trace, lowering offered load). Durations are untouched.
[[nodiscard]] trace::Workload rescale_arrivals(const trace::Workload& jobs,
                                               double time_scale = 1.0);

/// Apply a new overestimation factor: request := peak * (1 + overestimation).
[[nodiscard]] trace::Workload with_overestimation(const trace::Workload& jobs,
                                                  double overestimation);

}  // namespace dmsim::workload
