#include "workload/grizzly.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "workload/archer.hpp"

namespace dmsim::workload {

namespace {
constexpr Seconds kWeek = 7.0 * 86400.0;
}  // namespace

namespace detail {

/// Draw the jobs of one week: node-seconds accumulate until the week's
/// utilization target is met. Memory peaks follow Table 2's Grizzly columns
/// by size class.
std::vector<RawGrizzlyJob> draw_week_jobs(const GrizzlyConfig& cfg,
                                          util::Rng rng, double utilization) {
  using RawJob = RawGrizzlyJob;
  const double target_node_seconds =
      utilization * static_cast<double>(cfg.system_nodes) * kWeek;
  std::vector<RawJob> jobs;
  double acc = 0.0;
  while (acc < target_node_seconds) {
    RawJob j;
    j.arrival = rng.uniform(0.0, kWeek);
    // Grizzly sizes skew small; a few capability jobs span hundreds of nodes.
    const double u = rng.uniform();
    if (u < 0.35) {
      j.nodes = 1;
    } else if (u < 0.85 || cfg.max_job_nodes <= 32) {
      j.nodes = static_cast<int>(
          std::pow(2.0, static_cast<double>(rng.uniform_int(1, 5))));
    } else {
      // Capability jobs (> 32 nodes) only exist when the cap allows them.
      j.nodes = static_cast<int>(rng.uniform_int(33, cfg.max_job_nodes));
    }
    j.nodes = std::min({j.nodes, cfg.system_nodes, cfg.max_job_nodes});
    j.runtime = std::clamp(rng.lognormal(9.3, 1.3), 120.0, kWeek);
    j.walltime = j.runtime * rng.uniform(1.1, 2.5);
    const SizeClass size_class =
        j.nodes > 32 ? SizeClass::Large : SizeClass::Small;
    j.peak = sample_peak_memory(rng, TraceFamily::Grizzly, size_class,
                                cfg.node_capacity);
    acc += static_cast<double>(j.nodes) * j.runtime;
    jobs.push_back(j);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const RawJob& a, const RawJob& b) { return a.arrival < b.arrival; });
  return jobs;
}

}  // namespace detail

GrizzlyTrace generate_grizzly(const GrizzlyConfig& cfg) {
  DMSIM_ASSERT(cfg.weeks > 0, "grizzly: need at least one week");
  DMSIM_ASSERT(cfg.system_nodes > 0, "grizzly: system must have nodes");
  DMSIM_ASSERT(cfg.sample_weeks > 0, "grizzly: must sample at least one week");

  util::Rng master(cfg.seed);
  GrizzlyTrace out;
  out.apps = slowdown::AppPool::synthetic(master.child("grizzly.apps"),
                                          cfg.app_pool_size);
  out.usage_library = GoogleUsageLibrary::synthetic(
      master.child("grizzly.usage"), cfg.usage_library_size);

  util::Rng util_rng = master.child("grizzly.utilization");
  out.weeks.reserve(static_cast<std::size_t>(cfg.weeks));
  for (int w = 0; w < cfg.weeks; ++w) {
    const double utilization = std::clamp(
        util_rng.normal(cfg.utilization_mean, cfg.utilization_stddev), 0.15,
        0.95);
    const auto jobs = detail::draw_week_jobs(
        cfg, master.child("grizzly.week", static_cast<std::uint64_t>(w)),
        utilization);
    GrizzlyWeek week;
    week.index = w;
    week.target_utilization = utilization;
    week.job_count = jobs.size();
    double node_seconds = 0.0;
    for (const detail::RawGrizzlyJob& j : jobs) {
      node_seconds += static_cast<double>(j.nodes) * j.runtime;
      week.max_job_node_hours =
          std::max(week.max_job_node_hours,
                   static_cast<double>(j.nodes) * j.runtime / 3600.0);
      week.max_job_memory = std::max(week.max_job_memory, j.peak);
    }
    week.cpu_utilization =
        node_seconds / (static_cast<double>(cfg.system_nodes) * kWeek);
    out.weeks.push_back(week);
  }

  // Fig. 2: random sample among the representative (>= 70% util) weeks.
  std::vector<int> eligible;
  for (const auto& w : out.weeks) {
    if (w.cpu_utilization >= cfg.utilization_floor) {
      eligible.push_back(w.index);
    }
  }
  util::Rng pick_rng = master.child("grizzly.pick");
  pick_rng.shuffle(eligible);
  const std::size_t take =
      std::min<std::size_t>(eligible.size(),
                            static_cast<std::size_t>(cfg.sample_weeks));
  for (std::size_t i = 0; i < take; ++i) {
    out.weeks[static_cast<std::size_t>(eligible[i])].selected = true;
  }
  return out;
}

trace::Workload materialize_grizzly_week(const GrizzlyConfig& cfg,
                                         const GrizzlyTrace& trace,
                                         int week_index) {
  DMSIM_ASSERT(week_index >= 0 &&
                   static_cast<std::size_t>(week_index) < trace.weeks.size(),
               "grizzly week index out of range");
  util::Rng master(cfg.seed);
  const GrizzlyWeek& week = trace.weeks[static_cast<std::size_t>(week_index)];
  // Re-draw the identical raw jobs (same child seed as generate_grizzly).
  const auto raw = detail::draw_week_jobs(
      cfg, master.child("grizzly.week", static_cast<std::uint64_t>(week_index)),
      week.target_utilization);

  trace::Workload jobs;
  jobs.reserve(raw.size());
  std::uint32_t next_id = 1;
  for (const detail::RawGrizzlyJob& rj : raw) {
    trace::JobSpec job;
    job.id = JobId{next_id++};
    job.submit_time = rj.arrival;
    job.num_nodes = rj.nodes;
    job.duration = rj.runtime;
    job.walltime = rj.walltime;
    job.app_profile =
        trace.apps.match(static_cast<double>(rj.nodes), rj.runtime);
    const std::size_t shape = trace.usage_library.match(
        static_cast<double>(rj.nodes), rj.runtime, rj.peak);
    job.usage = trace.usage_library.instantiate(shape, rj.peak);
    job.requested_mem = static_cast<MiB>(std::llround(
        static_cast<double>(job.peak_usage()) * (1.0 + cfg.overestimation)));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace dmsim::workload
