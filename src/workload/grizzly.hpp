// Grizzly-style trace synthesizer (paper §3.1.1, §3.2.1).
//
// LANL's Grizzly release covers ~6 months of LDMS memory samples on 1490
// nodes x 128 GB. The raw dataset (53.4 GB) is not redistributable here, so
// this module synthesizes an equivalent: a set of one-week periods whose CPU
// utilization, job node-hours and per-node peak-memory marginals follow the
// published characterization (78% average CPU utilization, Table 2's Grizzly
// memory distribution, a large gap between worst-case and common-case memory
// use). The paper's week-sampling methodology (Fig. 2) is reproduced:
// characterize every week, keep those with >= 70% utilization, and randomly
// pick a handful to simulate.
#pragma once

#include <cstdint>
#include <vector>

#include "slowdown/model.hpp"
#include "trace/job_spec.hpp"
#include "util/rng.hpp"
#include "workload/google_usage.hpp"

namespace dmsim::workload {

struct GrizzlyConfig {
  int weeks = 52;
  int system_nodes = 1490;
  MiB node_capacity = gib(128);
  int cores_per_node = 36;       ///< Grizzly: Xeon E5-2695v4, 2x18 cores
  int max_job_nodes = 256;
  /// Weekly CPU utilization is drawn from N(mean, stddev), clipped.
  double utilization_mean = 0.66;
  double utilization_stddev = 0.18;
  /// Weeks below this utilization are not representative (paper uses 70%).
  double utilization_floor = 0.70;
  int sample_weeks = 7;          ///< number of representative weeks to pick
  double overestimation = 0.0;   ///< request inflation for materialized jobs
  std::size_t app_pool_size = 64;
  std::size_t usage_library_size = 256;
  std::uint64_t seed = 7;
};

/// Characterization of one one-week period (the axes of Fig. 2).
struct GrizzlyWeek {
  int index = 0;
  double cpu_utilization = 0.0;     ///< node-hours of jobs / system node-hours
  double target_utilization = 0.0;  ///< generator input (realized may differ)
  double max_job_node_hours = 0.0;  ///< largest single-job node-hours
  MiB max_job_memory = 0;           ///< largest per-node peak memory
  std::size_t job_count = 0;
  bool selected = false;            ///< chosen for simulation (Fig. 2 triangles)
};

struct GrizzlyTrace {
  std::vector<GrizzlyWeek> weeks;
  slowdown::AppPool apps;
  GoogleUsageLibrary usage_library;
};

/// Generate and characterize all weeks, then mark `sample_weeks` random
/// weeks with utilization >= floor as selected.
[[nodiscard]] GrizzlyTrace generate_grizzly(const GrizzlyConfig& config);

namespace detail {

/// One job as drawn by the Grizzly arrival process, before materialization
/// into a trace::JobSpec (no usage curve or app profile attached yet).
struct RawGrizzlyJob {
  Seconds arrival = 0.0;
  int nodes = 1;
  Seconds runtime = 0.0;
  Seconds walltime = 0.0;
  MiB peak = 0;
};

/// Draw one week of jobs for a `config.system_nodes`-node system at the
/// given utilization target, sorted by arrival. This is THE Grizzly arrival
/// process: generate_grizzly / materialize_grizzly_week and the exa_grizzly
/// replica scaler all draw through it, so a replica's trace is exactly a
/// Grizzly week under a different child seed.
[[nodiscard]] std::vector<RawGrizzlyJob> draw_week_jobs(
    const GrizzlyConfig& config, util::Rng rng, double utilization);

}  // namespace detail

/// Materialize the jobs of one week as a simulator-ready workload. The same
/// (config, week) pair always yields the same jobs; `trace` must come from
/// generate_grizzly() with the same config.
[[nodiscard]] trace::Workload materialize_grizzly_week(
    const GrizzlyConfig& config, const GrizzlyTrace& trace, int week_index);

}  // namespace dmsim::workload
