// End-to-end synthetic workload assembly (paper Fig. 3).
//
// Combines the CIRNE skeleton (step 1), the profiled app pool and
// size/runtime matching (steps 2-4), memory requests (step 5), Google-style
// usage-shape matching and RDP compression (step 6), the large-job-mix
// filter (step 7) and the overestimation factor into a ready-to-simulate
// Workload (steps 8-9).
#pragma once

#include <cstdint>

#include "slowdown/model.hpp"
#include "trace/job_spec.hpp"
#include "workload/cirne.hpp"
#include "workload/google_usage.hpp"

namespace dmsim::workload {

struct SyntheticWorkloadConfig {
  CirneConfig cirne;             ///< arrival/size/runtime model
  double pct_large_jobs = 0.5;   ///< fraction of large-memory jobs (Table 3 classes)
  double overestimation = 0.0;   ///< request = peak * (1 + overestimation)
  MiB normal_capacity = gib(64); ///< memory-class boundary (normal node size)
  MiB large_capacity = gib(128); ///< upper clamp for large-class peaks
  std::size_t app_pool_size = 64;
  std::size_t usage_library_size = 256;
  double rdp_epsilon_frac = 0.02;
  /// Fraction of multi-node jobs that are rank-0 heavy: their non-head
  /// nodes use a scaled-down footprint (LDMS traces show per-node spread).
  /// 0 disables per-node heterogeneity.
  double rank0_heavy_fraction = 0.3;
  std::uint64_t seed = 42;       ///< master seed (also reseeds cirne)
};

struct SyntheticWorkload {
  trace::Workload jobs;          ///< sorted by submit time, ids assigned
  slowdown::AppPool apps;        ///< matched app profiles (jobs reference it)
  GoogleUsageLibrary usage_library;
  Seconds horizon = 0.0;
  double offered_load = 0.0;
};

[[nodiscard]] SyntheticWorkload generate_synthetic(
    const SyntheticWorkloadConfig& config);

/// The memory class a job belongs to given the capacity boundary
/// (Table 3: large-memory jobs cannot run on a normal node under Baseline).
[[nodiscard]] inline bool is_large_memory_job(const trace::JobSpec& job,
                                              MiB normal_capacity) noexcept {
  return job.peak_usage() > normal_capacity;
}

}  // namespace dmsim::workload
