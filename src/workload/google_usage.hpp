// Google-style per-job memory-usage shape library (paper §3.1.3, §3.2.2).
//
// The paper mines the 2019 Google Borg cell-b trace for per-job memory usage
// over time: best-effort batch jobs, 5-minute windows carrying average and
// maximum usage, runtimes scaled to the job's wallclock, and memory
// denormalized against a 12 TB ceiling. That dataset is not redistributable
// here, so this module synthesizes an equivalent *library of usage shapes*
// with the properties the evaluation relies on (DESIGN.md substitution 3):
//
//   * multi-phase plateaus with a ramp-up and occasional spikes,
//   * exactly one phase touching the peak, so average usage is well below
//     the maximum (the reclaimable gap of Table 3 / Fig. 4),
//   * 5-minute-window granularity, compressed with RDP as in Fig. 3 step 6.
//
// Synthetic jobs are matched to a shape by Euclidean distance over
// (log nodes, log runtime, log memory) — the same similarity the paper uses
// to map a synthetic job onto a Google job.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/usage_trace.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dmsim::workload {

/// One normalized usage shape. The trace's peak is exactly kShapeScale;
/// instantiate() rescales it to a job's actual peak memory.
struct UsageShape {
  trace::UsageTrace shape;
  double avg_peak_ratio = 0.0;  ///< average / peak of the normalized shape

  // Matching features of the (synthetic) Google job this shape came from.
  double typical_nodes = 1.0;
  double typical_runtime_s = 3600.0;
  MiB typical_mem = 0;
};

class GoogleUsageLibrary {
 public:
  static constexpr MiB kShapeScale = 1 << 16;

  GoogleUsageLibrary() = default;
  explicit GoogleUsageLibrary(std::vector<UsageShape> shapes)
      : shapes_(std::move(shapes)) {}

  /// Deterministically synthesize a library of `count` shapes.
  [[nodiscard]] static GoogleUsageLibrary synthetic(const util::Rng& rng,
                                                    std::size_t count);

  [[nodiscard]] std::size_t size() const noexcept { return shapes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return shapes_.empty(); }
  [[nodiscard]] const UsageShape& shape(std::size_t index) const;

  /// Nearest shape by Euclidean distance over (log nodes, log runtime,
  /// log memory) — Fig. 3 step 6.
  [[nodiscard]] std::size_t match(double nodes, double runtime_s, MiB mem) const;

  /// Scale a shape to a job's peak memory and compress it with RDP
  /// (epsilon = `rdp_epsilon_frac` of the peak; 0 disables compression).
  [[nodiscard]] trace::UsageTrace instantiate(std::size_t shape_index, MiB peak,
                                              double rdp_epsilon_frac = 0.02) const;

 private:
  std::vector<UsageShape> shapes_;
};

}  // namespace dmsim::workload
