#include "workload/google_usage.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dmsim::workload {

namespace {

[[nodiscard]] double log_dist2(double a, double b) noexcept {
  const double d = std::log(std::max(a, 1e-9)) - std::log(std::max(b, 1e-9));
  return d * d;
}

/// Build one normalized multi-phase shape out of `windows` 5-minute samples.
[[nodiscard]] trace::UsageTrace make_shape(util::Rng& rng, int windows) {
  const int phases = static_cast<int>(rng.uniform_int(1, 6));
  // Phase boundaries: sorted uniform cut points over the window range.
  std::vector<int> cuts = {0, windows};
  for (int i = 1; i < phases; ++i) {
    cuts.push_back(static_cast<int>(rng.uniform_int(1, windows - 1)));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  const int real_phases = static_cast<int>(cuts.size()) - 1;
  // Exactly one phase carries the peak; the rest sit well below it, giving
  // the avg << max property that dynamic provisioning exploits.
  const int peak_phase = static_cast<int>(rng.uniform_int(0, real_phases - 1));
  std::vector<double> level(static_cast<std::size_t>(real_phases));
  for (int p = 0; p < real_phases; ++p) {
    if (p == peak_phase) {
      level[static_cast<std::size_t>(p)] = 1.0;
    } else {
      const double u = rng.uniform();
      level[static_cast<std::size_t>(p)] = 0.08 + 0.55 * u * u;
    }
  }

  const double scale = static_cast<double>(GoogleUsageLibrary::kShapeScale);
  std::vector<trace::UsagePoint> points;
  points.reserve(static_cast<std::size_t>(windows));
  for (int w = 0; w < windows; ++w) {
    // Locate the phase of this window.
    int p = 0;
    while (p + 1 < real_phases && w >= cuts[static_cast<std::size_t>(p) + 1]) ++p;
    double value = level[static_cast<std::size_t>(p)];
    // Ramp-up across the first phase: memory grows as the job initializes.
    if (p == 0) {
      const int phase_len = std::max(1, cuts[1] - cuts[0]);
      const double ramp = static_cast<double>(w + 1) / phase_len;
      value *= 0.3 + 0.7 * std::min(1.0, ramp);
    }
    // Small within-phase wobble (sampling noise), sparing the peak window
    // so the shape's maximum stays exactly at the scale.
    value *= 1.0 - 0.04 * rng.uniform();
    points.push_back(trace::UsagePoint{
        static_cast<double>(w) / windows,
        std::max<MiB>(1, static_cast<MiB>(std::llround(value * scale)))});
  }
  // Pin the peak: ensure some window in the peak phase hits exactly scale.
  const int peak_start = cuts[static_cast<std::size_t>(peak_phase)];
  points[static_cast<std::size_t>(peak_start)].mem =
      GoogleUsageLibrary::kShapeScale;
  return trace::UsageTrace(std::move(points));
}

}  // namespace

GoogleUsageLibrary GoogleUsageLibrary::synthetic(const util::Rng& rng,
                                                 std::size_t count) {
  std::vector<UsageShape> shapes;
  shapes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng r = rng.child("google_shape", i);
    UsageShape s;
    // Number of 5-min windows the original "Google job" spanned.
    const int windows = static_cast<int>(r.uniform_int(6, 400));
    s.shape = make_shape(r, windows);
    s.avg_peak_ratio = s.shape.average() / static_cast<double>(kShapeScale);
    s.typical_nodes = std::pow(2.0, static_cast<double>(r.uniform_int(0, 7)));
    s.typical_runtime_s = static_cast<double>(windows) * 300.0;
    s.typical_mem =
        static_cast<MiB>(std::clamp(r.lognormal(9.2, 1.3), 128.0, 131072.0));
    shapes.push_back(std::move(s));
  }
  return GoogleUsageLibrary(std::move(shapes));
}

const UsageShape& GoogleUsageLibrary::shape(std::size_t index) const {
  DMSIM_ASSERT(index < shapes_.size(), "usage shape index out of range");
  return shapes_[index];
}

std::size_t GoogleUsageLibrary::match(double nodes, double runtime_s,
                                      MiB mem) const {
  DMSIM_ASSERT(!shapes_.empty(), "matching against an empty usage library");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < shapes_.size(); ++i) {
    const UsageShape& s = shapes_[i];
    const double d = log_dist2(nodes, s.typical_nodes) +
                     log_dist2(runtime_s, s.typical_runtime_s) +
                     log_dist2(static_cast<double>(mem),
                               static_cast<double>(s.typical_mem));
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

trace::UsageTrace GoogleUsageLibrary::instantiate(std::size_t shape_index,
                                                  MiB peak,
                                                  double rdp_epsilon_frac) const {
  DMSIM_ASSERT(peak > 0, "job peak memory must be positive");
  const UsageShape& s = shape(shape_index);
  const double factor =
      static_cast<double>(peak) / static_cast<double>(kShapeScale);
  trace::UsageTrace scaled = s.shape.scaled(factor);
  if (rdp_epsilon_frac <= 0.0) return scaled;
  return scaled.compressed(rdp_epsilon_frac * static_cast<double>(peak));
}

}  // namespace dmsim::workload
