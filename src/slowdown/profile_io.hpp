// On-disk format for application profiles (the "pool of executed apps" of
// Fig. 3 step 2), so a profiled pool can be shared between trace generation
// and replay runs.
//
// Line-oriented text, one block per app:
//
//     app <name>
//     bw_demand <GB/s>
//     remote_penalty <fraction>
//     features <typical_nodes> <typical_runtime_s> <typical_mem_mib>
//     curve <n> <pressure0> <slowdown0> ... <pressureN-1> <slowdownN-1>
//
// `#` comments and blank lines are ignored. Names must not contain spaces.
#pragma once

#include <iosfwd>
#include <string>

#include "slowdown/model.hpp"

namespace dmsim::slowdown {

void write_app_pool(std::ostream& out, const AppPool& pool);
void write_app_pool_file(const std::string& path, const AppPool& pool);

/// Throws dmsim::TraceError on malformed input.
[[nodiscard]] AppPool read_app_pool(std::istream& in);
[[nodiscard]] AppPool read_app_pool_file(const std::string& path);

}  // namespace dmsim::slowdown
