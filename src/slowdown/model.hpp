// Contention-aware slowdown model for disaggregated memory.
//
// Reimplementation of the performance model the paper inherits from
// Zacarias et al. (Computing Frontiers 2020, ICPADS 2021): each application
// is characterized by
//   * a contentiousness figure — the remote memory bandwidth it drives at
//     full performance (GB/s per node), and
//   * a sensitivity curve — slowdown as a function of the aggregate remote
//     memory bandwidth contending at the memory pool it uses.
// Remote accesses additionally pay a latency exposure proportional to the
// fraction of the job's allocation that is remote. Only *remote* bandwidth
// enters contention, as remote accesses bypass local caches in the paper's
// system model (§2.1).
//
// The model is simulation-side only: production policies never see it
// (paper §2.1, "profiling is not an input to the resource management
// policy").
//
// Substitution note (DESIGN.md §1.4): the authors' profiled curves are not
// public, so AppPool::synthetic() generates profiles spanning the published
// ranges (slowdowns up to ~2.5x under full contention, bandwidth demands of
// 1-20 GB/s/node).
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dmsim::slowdown {

/// Piecewise-linear, monotonically non-decreasing slowdown curve.
/// x: aggregate remote bandwidth pressure (GB/s) at a lender node;
/// y: multiplicative slowdown (>= 1).
class SensitivityCurve {
 public:
  struct Knot {
    double pressure_gbs = 0.0;
    double slowdown = 1.0;
  };

  SensitivityCurve() = default;
  /// Knots must be sorted by strictly increasing pressure with the first at
  /// pressure 0, and non-decreasing slowdown >= 1.
  explicit SensitivityCurve(std::vector<Knot> knots);

  /// Linear interpolation; clamps to the last knot beyond the curve.
  [[nodiscard]] double at(double pressure_gbs) const noexcept;

  [[nodiscard]] std::span<const Knot> knots() const noexcept { return knots_; }

  /// A flat curve (slowdown 1 everywhere) — an insensitive application.
  [[nodiscard]] static SensitivityCurve flat();

 private:
  std::vector<Knot> knots_ = {Knot{0.0, 1.0}};
};

/// Profiled application characteristics (paper Fig. 3 step 2's "pool of
/// executed apps"). typical_* features drive Euclidean matching.
struct AppProfile {
  std::string name;
  double bw_demand_gbs = 0.0;   ///< contentiousness at full performance
  double remote_penalty = 0.0;  ///< extra slowdown per unit remote fraction
  SensitivityCurve sensitivity;

  // Features used for trace -> app matching (Fig. 3 step 3).
  double typical_nodes = 1.0;
  double typical_runtime_s = 3600.0;
  MiB typical_mem = 0;
};

/// The pool of profiled applications plus Euclidean-distance matching.
class AppPool {
 public:
  AppPool() = default;
  explicit AppPool(std::vector<AppProfile> apps) : apps_(std::move(apps)) {}

  /// Deterministically generate `count` profiles spanning the published
  /// parameter ranges. Same rng seed => same pool.
  [[nodiscard]] static AppPool synthetic(const util::Rng& rng, std::size_t count);

  [[nodiscard]] std::size_t size() const noexcept { return apps_.size(); }
  [[nodiscard]] bool empty() const noexcept { return apps_.empty(); }
  [[nodiscard]] const AppProfile& app(int index) const;

  /// Nearest profile by Euclidean distance over (log nodes, log runtime)
  /// (paper Fig. 3 step 3 matches on size and runtime). Returns -1 on an
  /// empty pool.
  [[nodiscard]] int match(double nodes, double runtime_s) const noexcept;

  /// Nearest profile also considering memory demand (Fig. 3 step 6 matches
  /// on size, runtime, *and* memory similarity).
  [[nodiscard]] int match(double nodes, double runtime_s, MiB mem) const noexcept;

 private:
  std::vector<AppProfile> apps_;
};

/// Computes per-job slowdowns from the cluster's borrow ledger.
class ContentionModel {
 public:
  struct JobInput {
    JobId job{};
    int app_profile = -1;  ///< -1 => insensitive (slowdown from remoteness only)
  };

  explicit ContentionModel(const AppPool* pool) : pool_(pool) {}

  /// Slowdown (>= 1) for every job in `jobs`, given the current ledger.
  ///
  /// pressure(L) = sum over borrow edges e=(job j, host h -> L) of
  ///               bw_demand(j) * amount(e) / total_alloc(j, h)
  /// slowdown(j) = max over j's slots s of
  ///               sensitivity_j(max pressure at s's lenders)
  ///               * (1 + remote_penalty_j * remote_fraction(s))
  ///
  /// The max over slots models bulk-synchronous HPC jobs running at the pace
  /// of their slowest node.
  [[nodiscard]] std::vector<double> evaluate(
      const cluster::Cluster& cluster, std::span<const JobInput> jobs) const;

  /// Convenience: slowdown of a single job.
  [[nodiscard]] double evaluate_one(const cluster::Cluster& cluster, JobId job,
                                    int app_profile) const;

  // --- incremental building blocks ---------------------------------------
  // evaluate() is composed of exactly these two passes; exposing them lets
  // the scheduler keep a persistent pressure buffer and re-run only the
  // parts the ledger actually changed.

  /// Pass-1 contribution of one job: add bw * amount / total for each of its
  /// borrow edges into `pressure` (indexed by lender node id).
  void add_pressure(const cluster::Cluster& cluster, JobId job,
                    int app_profile, std::span<double> pressure) const;

  /// Pass-1 pressure at a single lender, summing `borrowers`' contributions
  /// in the given order. `app_of(job)` resolves a borrower's profile index.
  [[nodiscard]] double lender_pressure(
      const cluster::Cluster& cluster,
      std::span<const cluster::Cluster::BorrowEdge> borrowers,
      const std::function<int(JobId)>& app_of) const;

  /// Pass-2 slowdown of one job given a pressure buffer (>= 1).
  [[nodiscard]] double job_slowdown(const cluster::Cluster& cluster, JobId job,
                                    int app_profile,
                                    std::span<const double> pressure) const;

 private:
  [[nodiscard]] const AppProfile* profile(int index) const noexcept;

  const AppPool* pool_;  // non-owning; may be nullptr (all jobs insensitive)
};

/// Incremental slowdown refresher: owns the persistent per-lender pressure
/// buffer and consumes the cluster's contention dirty sets, so bringing
/// slowdowns current after ledger churn costs O(edges touched + affected
/// jobs) instead of a full two-pass model evaluation — with no per-call
/// allocation after warm-up.
///
/// Summation order is canonical (ascending borrower job id, then slot
/// assignment order) in both the full rebuild and the per-lender recompute,
/// so a lender's pressure is bit-reproducible regardless of which path
/// produced it.
class IncrementalSlowdowns {
 public:
  struct Update {
    JobId job{};
    double slowdown = 1.0;
  };

  /// app_of() return value marking a job that is no longer running (its
  /// pending update is dropped). Distinct from -1 (= insensitive app).
  static constexpr int kNotRunning = std::numeric_limits<int>::min();

  explicit IncrementalSlowdowns(const ContentionModel* model) : model_(model) {}

  /// Drop all cached pressure state; the next refresh() rebuilds in full.
  /// Call when the ledger goes quiet (nothing lent) or nothing is running.
  void reset() noexcept { primed_ = false; }

  /// Bring slowdowns current. `running_ids` is the full running set (any
  /// order; only consulted on a full rebuild); `app_of` maps a job id to its
  /// app-profile index, or kNotRunning. Appends an Update for every job
  /// whose slowdown was recomputed, in ascending job-id order. The caller
  /// must clear the cluster's dirty sets afterwards.
  void refresh(const cluster::Cluster& cluster,
               std::span<const std::uint32_t> running_ids,
               const std::function<int(JobId)>& app_of,
               std::vector<Update>& out);

 private:
  const ContentionModel* model_;
  bool primed_ = false;
  std::vector<double> pressure_;                       // per-node, persistent
  std::vector<std::uint32_t> eval_ids_;                // scratch
  std::vector<cluster::Cluster::BorrowEdge> edges_;    // scratch
};

}  // namespace dmsim::slowdown
