#include "slowdown/profile_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"

namespace dmsim::slowdown {

void write_app_pool(std::ostream& out, const AppPool& pool) {
  out << "# dmsim application profiles (" << pool.size() << " apps)\n";
  out.precision(17);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const AppProfile& app = pool.app(static_cast<int>(i));
    DMSIM_ASSERT(app.name.find_first_of(" \t\n") == std::string::npos,
                 "app names must not contain whitespace");
    out << "app " << (app.name.empty() ? "unnamed_" + std::to_string(i)
                                       : app.name)
        << '\n';
    out << "bw_demand " << app.bw_demand_gbs << '\n';
    out << "remote_penalty " << app.remote_penalty << '\n';
    out << "features " << app.typical_nodes << ' ' << app.typical_runtime_s
        << ' ' << app.typical_mem << '\n';
    const auto knots = app.sensitivity.knots();
    out << "curve " << knots.size();
    for (const auto& k : knots) {
      out << ' ' << k.pressure_gbs << ' ' << k.slowdown;
    }
    out << '\n';
  }
}

void write_app_pool_file(const std::string& path, const AppPool& pool) {
  std::ofstream out(path);
  if (!out) throw TraceError("cannot open profile file for writing: " + path);
  write_app_pool(out, pool);
}

AppPool read_app_pool(std::istream& in) {
  std::vector<AppProfile> apps;
  std::unordered_set<std::string> seen_names;
  AppProfile current;
  bool in_app = false;
  std::string line;
  std::size_t line_no = 0;

  const auto flush = [&] {
    if (in_app) {
      apps.push_back(std::move(current));
      current = AppProfile{};
      in_app = false;
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    const auto fail = [&](const std::string& what) {
      throw TraceError("profile line " + std::to_string(line_no) + ": " + what);
    };
    if (head == "app") {
      flush();
      if (!(fields >> current.name)) fail("missing app name");
      // A repeated name would silently shadow the earlier block on lookup
      // (matching is by pool index, but exports key on the name), so a
      // duplicate is always an authoring error — reject it at its line.
      if (!seen_names.insert(current.name).second) {
        fail("duplicate app '" + current.name + "'");
      }
      in_app = true;
    } else if (!in_app) {
      fail("field outside an app block");
    } else if (head == "bw_demand") {
      if (!(fields >> current.bw_demand_gbs) || current.bw_demand_gbs < 0) {
        fail("bad bw_demand");
      }
    } else if (head == "remote_penalty") {
      if (!(fields >> current.remote_penalty) || current.remote_penalty < 0) {
        fail("bad remote_penalty");
      }
    } else if (head == "features") {
      if (!(fields >> current.typical_nodes >> current.typical_runtime_s >>
            current.typical_mem)) {
        fail("bad features line");
      }
    } else if (head == "curve") {
      std::size_t n = 0;
      if (!(fields >> n) || n == 0) fail("bad curve length");
      std::vector<SensitivityCurve::Knot> knots(n);
      for (auto& k : knots) {
        if (!(fields >> k.pressure_gbs >> k.slowdown)) fail("short curve");
      }
      current.sensitivity = SensitivityCurve(std::move(knots));
    } else {
      fail("unknown field '" + head + "'");
    }
  }
  flush();
  return AppPool(std::move(apps));
}

AppPool read_app_pool_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open profile file: " + path);
  return read_app_pool(in);
}

}  // namespace dmsim::slowdown
