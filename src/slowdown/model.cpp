#include "slowdown/model.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace dmsim::slowdown {

SensitivityCurve::SensitivityCurve(std::vector<Knot> knots)
    : knots_(std::move(knots)) {
  DMSIM_ASSERT(!knots_.empty(), "sensitivity curve needs at least one knot");
  DMSIM_ASSERT(knots_.front().pressure_gbs == 0.0,
               "sensitivity curve must start at pressure 0");
  double prev_p = -1.0;
  double prev_s = 1.0;
  for (const auto& k : knots_) {
    DMSIM_ASSERT(k.pressure_gbs > prev_p, "curve pressures must increase");
    DMSIM_ASSERT(k.slowdown >= prev_s && k.slowdown >= 1.0,
                 "curve slowdown must be non-decreasing and >= 1");
    prev_p = k.pressure_gbs;
    prev_s = k.slowdown;
  }
}

double SensitivityCurve::at(double pressure_gbs) const noexcept {
  if (pressure_gbs <= knots_.front().pressure_gbs) {
    return knots_.front().slowdown;
  }
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (pressure_gbs <= knots_[i].pressure_gbs) {
      const auto& a = knots_[i - 1];
      const auto& b = knots_[i];
      const double t =
          (pressure_gbs - a.pressure_gbs) / (b.pressure_gbs - a.pressure_gbs);
      return a.slowdown + t * (b.slowdown - a.slowdown);
    }
  }
  return knots_.back().slowdown;
}

SensitivityCurve SensitivityCurve::flat() {
  return SensitivityCurve({Knot{0.0, 1.0}});
}

AppPool AppPool::synthetic(const util::Rng& rng, std::size_t count) {
  std::vector<AppProfile> apps;
  apps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng r = rng.child("app_pool", i);
    AppProfile app;
    app.name = "synthetic_app_" + std::to_string(i);
    // Contentiousness: lognormal around ~4 GB/s, clipped to [0.5, 20].
    app.bw_demand_gbs = std::clamp(r.lognormal(1.3, 0.7), 0.5, 20.0);
    // Latency exposure: memory-bound apps suffer more from remote accesses.
    // Correlate with bandwidth demand: heavier apps lean toward the top of
    // the [0.05, 0.6] range.
    const double intensity = app.bw_demand_gbs / 20.0;
    app.remote_penalty = 0.05 + 0.55 * std::clamp(
        0.5 * intensity + 0.5 * r.uniform(), 0.0, 1.0);
    // Sensitivity: slowdown 1 at zero pressure, rising to a per-app ceiling
    // in [1.1, 2.5] reached around 30-60 GB/s of lender pressure.
    const double ceiling = 1.1 + 1.4 * std::clamp(
        0.6 * intensity + 0.4 * r.uniform(), 0.0, 1.0);
    const double knee = r.uniform(10.0, 30.0);
    const double saturation = knee + r.uniform(15.0, 35.0);
    app.sensitivity = SensitivityCurve({
        {0.0, 1.0},
        {knee, 1.0 + 0.35 * (ceiling - 1.0)},
        {saturation, ceiling},
    });
    // Matching features: sizes are power-of-two-ish, runtimes lognormal.
    app.typical_nodes =
        std::pow(2.0, static_cast<double>(r.uniform_int(0, 7)));
    app.typical_runtime_s = std::clamp(r.lognormal(8.0, 1.2), 60.0, 7.0 * 86400.0);
    app.typical_mem = static_cast<MiB>(std::clamp(r.lognormal(9.0, 1.0),
                                                  256.0, 130000.0));
    apps.push_back(std::move(app));
  }
  return AppPool(std::move(apps));
}

const AppProfile& AppPool::app(int index) const {
  DMSIM_ASSERT(index >= 0 && static_cast<std::size_t>(index) < apps_.size(),
               "app profile index out of range");
  return apps_[static_cast<std::size_t>(index)];
}

namespace {
[[nodiscard]] double log_dist2(double a, double b) noexcept {
  const double d = std::log(std::max(a, 1e-9)) - std::log(std::max(b, 1e-9));
  return d * d;
}
}  // namespace

int AppPool::match(double nodes, double runtime_s) const noexcept {
  int best = -1;
  double best_d = 0.0;
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const double d = log_dist2(nodes, apps_[i].typical_nodes) +
                     log_dist2(runtime_s, apps_[i].typical_runtime_s);
    if (best < 0 || d < best_d) {
      best = static_cast<int>(i);
      best_d = d;
    }
  }
  return best;
}

int AppPool::match(double nodes, double runtime_s, MiB mem) const noexcept {
  int best = -1;
  double best_d = 0.0;
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const double d =
        log_dist2(nodes, apps_[i].typical_nodes) +
        log_dist2(runtime_s, apps_[i].typical_runtime_s) +
        log_dist2(static_cast<double>(mem),
                  static_cast<double>(apps_[i].typical_mem));
    if (best < 0 || d < best_d) {
      best = static_cast<int>(i);
      best_d = d;
    }
  }
  return best;
}

const AppProfile* ContentionModel::profile(int index) const noexcept {
  if (pool_ == nullptr || index < 0 ||
      static_cast<std::size_t>(index) >= pool_->size()) {
    return nullptr;
  }
  return &pool_->app(index);
}

void ContentionModel::add_pressure(const cluster::Cluster& cluster, JobId job,
                                   int app_profile,
                                   std::span<double> pressure) const {
  const AppProfile* app = profile(app_profile);
  const double bw = app != nullptr ? app->bw_demand_gbs : 0.0;
  if (bw <= 0.0) return;
  const bool tiered = cluster.tiered();
  for (const NodeId h : cluster.hosts_of(job)) {
    const cluster::AllocationSlot& slot = cluster.slot(job, h);
    const MiB total = slot.total();
    if (total <= 0) continue;
    for (const auto& [lender, amount] : slot.remote) {
      double term =
          bw * static_cast<double>(amount) / static_cast<double>(total);
      // A narrower tier congests faster: demand lands scaled by
      // reference-bandwidth / tier-bandwidth. Applied per term (not to the
      // lender's sum) so this path and lender_pressure() accumulate
      // bit-identical values in the same order.
      if (tiered) {
        term *= cluster.tier_bandwidth_factor(cluster.tier_of(lender));
      }
      pressure[lender.get()] += term;
    }
  }
}

double ContentionModel::lender_pressure(
    const cluster::Cluster& cluster,
    std::span<const cluster::Cluster::BorrowEdge> borrowers,
    const std::function<int(JobId)>& app_of) const {
  const bool tiered = cluster.tiered();
  double p = 0.0;
  for (const auto& e : borrowers) {
    const AppProfile* app = profile(app_of(e.job));
    const double bw = app != nullptr ? app->bw_demand_gbs : 0.0;
    if (bw <= 0.0) continue;
    const MiB total = cluster.slot(e.job, e.host).total();
    if (total <= 0) continue;
    double term =
        bw * static_cast<double>(e.amount) / static_cast<double>(total);
    if (tiered) term *= cluster.tier_bandwidth_factor(e.tier);
    p += term;
  }
  return p;
}

double ContentionModel::job_slowdown(const cluster::Cluster& cluster, JobId job,
                                     int app_profile,
                                     std::span<const double> pressure) const {
  const AppProfile* app = profile(app_profile);
  const bool tiered = cluster.tiered();
  double out = 1.0;
  for (const NodeId h : cluster.hosts_of(job)) {
    const cluster::AllocationSlot& slot = cluster.slot(job, h);
    double worst_pressure = 0.0;
    for (const auto& [lender, amount] : slot.remote) {
      (void)amount;
      worst_pressure = std::max(worst_pressure, pressure[lender.get()]);
    }
    const double sens =
        app != nullptr ? app->sensitivity.at(worst_pressure) : 1.0;
    const double penalty = app != nullptr ? app->remote_penalty : 0.0;
    // Latency exposure: on a flat topology this is the plain remote
    // fraction (the paper's model, preserved expression for expression).
    // On a tiered topology every remote MiB is weighted by its tier's
    // latency relative to the flat pool's reference point, so memory
    // promoted to a near tier hurts less and cross-rack memory hurts more.
    double exposure;
    if (!tiered) {
      exposure = slot.remote_fraction();
    } else {
      const MiB total = slot.total();
      double weighted = 0.0;
      for (const auto& [lender, amount] : slot.remote) {
        weighted += cluster.tier_latency_factor(cluster.tier_of(lender)) *
                    static_cast<double>(amount);
      }
      exposure =
          total == 0 ? 0.0 : weighted / static_cast<double>(total);
    }
    const double slot_slowdown = sens * (1.0 + penalty * exposure);
    out = std::max(out, slot_slowdown);
  }
  return out;
}

std::vector<double> ContentionModel::evaluate(
    const cluster::Cluster& cluster, std::span<const JobInput> jobs) const {
  // Pass 1: bandwidth pressure each lender node receives.
  std::vector<double> pressure(cluster.node_count(), 0.0);
  for (const auto& j : jobs) {
    add_pressure(cluster, j.job, j.app_profile, pressure);
  }
  // Pass 2: slowdown per job = max over its slots.
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) {
    out.push_back(job_slowdown(cluster, j.job, j.app_profile, pressure));
  }
  return out;
}

double ContentionModel::evaluate_one(const cluster::Cluster& cluster, JobId job,
                                     int app_profile) const {
  const JobInput in{job, app_profile};
  return evaluate(cluster, std::span<const JobInput>(&in, 1)).front();
}

// ---------------------------------------------------------------------------
// IncrementalSlowdowns
// ---------------------------------------------------------------------------

void IncrementalSlowdowns::refresh(const cluster::Cluster& cluster,
                                   std::span<const std::uint32_t> running_ids,
                                   const std::function<int(JobId)>& app_of,
                                   std::vector<Update>& out) {
  pressure_.resize(cluster.node_count(), 0.0);
  if (!primed_) {
    // Full rebuild in canonical (job id asc) order; every job gets an
    // Update so the caller starts from a consistent slate.
    std::fill(pressure_.begin(), pressure_.end(), 0.0);
    eval_ids_.assign(running_ids.begin(), running_ids.end());
    std::sort(eval_ids_.begin(), eval_ids_.end());
    for (const std::uint32_t id : eval_ids_) {
      model_->add_pressure(cluster, JobId{id}, app_of(JobId{id}), pressure_);
    }
    for (const std::uint32_t id : eval_ids_) {
      out.push_back(Update{
          JobId{id},
          model_->job_slowdown(cluster, JobId{id}, app_of(JobId{id}), pressure_)});
    }
    primed_ = true;
    return;
  }

  const std::span<const NodeId> dirty_lenders = cluster.dirty_lenders();
  const std::span<const JobId> dirty_jobs = cluster.dirty_jobs();
  if (dirty_lenders.empty() && dirty_jobs.empty()) return;

  // Recompute the pressure at every dirty lender from its (few) current
  // borrowers; those borrowers see a changed pressure, so they join the
  // re-evaluation set alongside the explicitly dirty jobs.
  eval_ids_.clear();
  for (const NodeId lender : dirty_lenders) {
    edges_.clear();
    cluster.borrowers_of(lender, edges_);
    pressure_[lender.get()] = model_->lender_pressure(cluster, edges_, app_of);
    for (const auto& e : edges_) eval_ids_.push_back(e.job.get());
  }
  for (const JobId j : dirty_jobs) eval_ids_.push_back(j.get());
  std::sort(eval_ids_.begin(), eval_ids_.end());
  eval_ids_.erase(std::unique(eval_ids_.begin(), eval_ids_.end()),
                  eval_ids_.end());
  for (const std::uint32_t id : eval_ids_) {
    const int app = app_of(JobId{id});
    if (app == kNotRunning) continue;  // finished since it was marked dirty
    out.push_back(
        Update{JobId{id}, model_->job_slowdown(cluster, JobId{id}, app, pressure_)});
  }
}

}  // namespace dmsim::slowdown
