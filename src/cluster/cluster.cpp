#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace dmsim::cluster {

ClusterConfig make_cluster_config(int normal_count, MiB normal_mib,
                                  int large_count, MiB large_mib, int cores) {
  DMSIM_ASSERT(normal_count >= 0 && large_count >= 0,
               "node counts must be non-negative");
  DMSIM_ASSERT(normal_count + large_count > 0, "cluster must have nodes");
  ClusterConfig cfg;
  cfg.nodes.reserve(static_cast<std::size_t>(normal_count + large_count));
  for (int i = 0; i < normal_count; ++i) {
    cfg.nodes.push_back(NodeConfig{cores, normal_mib, false});
  }
  for (int i = 0; i < large_count; ++i) {
    cfg.nodes.push_back(NodeConfig{cores, large_mib, true});
  }
  return cfg;
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  DMSIM_ASSERT(!config_.nodes.empty(), "cluster must have at least one node");
  nodes_.reserve(config_.nodes.size());
  std::uint32_t next = 0;
  for (const auto& nc : config_.nodes) {
    DMSIM_ASSERT(nc.capacity > 0, "node capacity must be positive");
    DMSIM_ASSERT(nc.cores > 0, "node cores must be positive");
    Node n;
    n.id = NodeId{next++};
    n.cores = nc.cores;
    n.capacity = nc.capacity;
    n.large = nc.large;
    total_capacity_ += nc.capacity;
    nodes_.push_back(n);
  }
}

void Cluster::set_observer(const obs::Observer* observer) {
  obs_ = observer;
  c_lend_ops_ = obs::counter_handle(observer, "ledger.lend_ops");
  c_lent_mib_ = obs::counter_handle(observer, "ledger.lent_mib_total");
  c_reclaim_ops_ = obs::counter_handle(observer, "ledger.reclaim_ops");
  c_reclaimed_mib_ = obs::counter_handle(observer, "ledger.reclaimed_mib_total");
  c_local_grow_mib_ = obs::counter_handle(observer, "ledger.local_grow_mib_total");
  c_local_shrink_mib_ =
      obs::counter_handle(observer, "ledger.local_shrink_mib_total");
  g_lent_ = obs::gauge_handle(observer, "ledger.lent_mib");
  g_allocated_ = obs::gauge_handle(observer, "ledger.allocated_mib");
}

const Node& Cluster::node(NodeId id) const {
  DMSIM_ASSERT(id.valid() && id.get() < nodes_.size(), "node id out of range");
  return nodes_[id.get()];
}

Node& Cluster::node_mut(NodeId id) {
  DMSIM_ASSERT(id.valid() && id.get() < nodes_.size(), "node id out of range");
  return nodes_[id.get()];
}

int Cluster::idle_hostable_nodes() const noexcept {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node.idle() && !node.memory_node()) ++n;
  }
  return n;
}

bool Cluster::can_host(NodeId id) const {
  const Node& n = node(id);
  return n.idle() && !n.memory_node();
}

void Cluster::assign_job(JobId job, std::span<const NodeId> hosts) {
  DMSIM_ASSERT(job.valid(), "cannot assign an invalid job");
  DMSIM_ASSERT(!hosts.empty(), "job needs at least one host");
  DMSIM_ASSERT(!job_hosts_.contains(job.get()), "job already assigned");
  for (NodeId h : hosts) {
    DMSIM_ASSERT(can_host(h), "host is busy or a memory node");
  }
  std::vector<NodeId> host_list(hosts.begin(), hosts.end());
  for (NodeId h : host_list) {
    node_mut(h).running_job = job;
    AllocationSlot slot;
    slot.job = job;
    slot.host = h;
    const auto [it, inserted] = slots_.emplace(key(job, h), std::move(slot));
    DMSIM_ASSERT(inserted, "duplicate host in job assignment");
    (void)it;
  }
  job_hosts_.emplace(job.get(), std::move(host_list));
}

void Cluster::finish_job(JobId job) {
  const auto hit = job_hosts_.find(job.get());
  DMSIM_ASSERT(hit != job_hosts_.end(), "finishing a job that is not assigned");
  for (NodeId h : hit->second) {
    const auto sit = slots_.find(key(job, h));
    DMSIM_ASSERT(sit != slots_.end(), "missing slot for assigned host");
    AllocationSlot& slot = sit->second;
    // Return all borrows.
    for (const auto& [lender, amount] : slot.remote) {
      Node& ln = node_mut(lender);
      DMSIM_ASSERT(ln.lent >= amount, "lender under-ledgered");
      ln.lent -= amount;
      total_allocated_ -= amount;
      total_lent_ -= amount;
    }
    // Release local share and the host itself.
    Node& hn = node_mut(h);
    DMSIM_ASSERT(hn.local_used >= slot.local, "host under-ledgered");
    hn.local_used -= slot.local;
    total_allocated_ -= slot.local;
    DMSIM_ASSERT(hn.running_job == job, "host running a different job");
    hn.running_job = JobId{};
    slots_.erase(sit);
  }
  job_hosts_.erase(hit);
  // The scheduler emits the job's terminal event; here only the aggregate
  // gauges move (all of the job's local + borrowed memory was returned).
  if (g_lent_) g_lent_->set(total_lent_);
  if (g_allocated_) g_allocated_->set(total_allocated_);
}

MiB Cluster::grow_local(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "grow_local amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  Node& n = node_mut(host);
  const MiB granted = std::min(amount, n.free());
  slot.local += granted;
  n.local_used += granted;
  total_allocated_ += granted;
  if (granted > 0) {
    obs::bump(c_local_grow_mib_, static_cast<std::uint64_t>(granted));
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::SlotGrow, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", granted));
    }
  }
  return granted;
}

MiB Cluster::shrink_local(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "shrink_local amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  Node& n = node_mut(host);
  const MiB released = std::min(amount, slot.local);
  slot.local -= released;
  n.local_used -= released;
  total_allocated_ -= released;
  if (released > 0) {
    obs::bump(c_local_shrink_mib_, static_cast<std::uint64_t>(released));
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::SlotShrink, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", released));
    }
  }
  return released;
}

std::vector<NodeId> Cluster::ordered_lenders(NodeId exclude) const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n.id != exclude && n.free() > 0) out.push_back(n.id);
  }
  const auto by_free_desc = [this](NodeId a, NodeId b) {
    const MiB fa = node(a).free();
    const MiB fb = node(b).free();
    if (fa != fb) return fa > fb;
    return a < b;  // deterministic tie-break
  };
  const auto by_free_asc = [this](NodeId a, NodeId b) {
    const MiB fa = node(a).free();
    const MiB fb = node(b).free();
    if (fa != fb) return fa < fb;
    return a < b;
  };
  switch (config_.lender_policy) {
    case LenderPolicy::MostFree:
      std::sort(out.begin(), out.end(), by_free_desc);
      break;
    case LenderPolicy::LeastFree:
      std::sort(out.begin(), out.end(), by_free_asc);
      break;
    case LenderPolicy::MemoryNodesFirst:
      std::sort(out.begin(), out.end(), [this, &by_free_desc](NodeId a, NodeId b) {
        const bool ma = node(a).memory_node();
        const bool mb = node(b).memory_node();
        if (ma != mb) return ma;  // memory nodes first
        return by_free_desc(a, b);
      });
      break;
  }
  return out;
}

MiB Cluster::grow_remote(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "grow_remote amount must be non-negative");
  if (amount == 0) return 0;
  AllocationSlot& slot = slot_mut(job, host);
  MiB remaining = amount;
  for (NodeId lender : ordered_lenders(host)) {
    if (remaining == 0) break;
    Node& ln = node_mut(lender);
    const MiB take = std::min(remaining, ln.free());
    if (take <= 0) continue;
    ln.lent += take;
    total_allocated_ += take;
    total_lent_ += take;
    remaining -= take;
    // Merge into an existing edge if present.
    auto edge = std::find_if(slot.remote.begin(), slot.remote.end(),
                             [lender](const auto& e) { return e.first == lender; });
    if (edge != slot.remote.end()) {
      edge->second += take;
    } else {
      slot.remote.emplace_back(lender, take);
    }
  }
  const MiB granted = amount - remaining;
  if (granted > 0) {
    obs::bump(c_lend_ops_);
    obs::bump(c_lent_mib_, static_cast<std::uint64_t>(granted));
    if (g_lent_) g_lent_->set(total_lent_);
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::MemLend, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", granted)
                           .with("lent_total", total_lent_));
    }
  }
  return granted;
}

MiB Cluster::shrink_remote(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "shrink_remote amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  MiB remaining = std::min(amount, slot.remote_total());
  const MiB released = remaining;
  // Return the largest borrows first: frees memory-node status soonest.
  std::sort(slot.remote.begin(), slot.remote.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (auto& [lender, borrowed] : slot.remote) {
    if (remaining == 0) break;
    const MiB give = std::min(remaining, borrowed);
    Node& ln = node_mut(lender);
    DMSIM_ASSERT(ln.lent >= give, "lender under-ledgered on shrink");
    ln.lent -= give;
    total_allocated_ -= give;
    total_lent_ -= give;
    borrowed -= give;
    remaining -= give;
  }
  std::erase_if(slot.remote, [](const auto& e) { return e.second == 0; });
  if (released > 0) {
    obs::bump(c_reclaim_ops_);
    obs::bump(c_reclaimed_mib_, static_cast<std::uint64_t>(released));
    if (g_lent_) g_lent_->set(total_lent_);
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::MemReclaim, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", released)
                           .with("lent_total", total_lent_));
    }
  }
  return released;
}

const AllocationSlot& Cluster::slot(JobId job, NodeId host) const {
  const auto it = slots_.find(key(job, host));
  DMSIM_ASSERT(it != slots_.end(), "no allocation slot for (job, host)");
  return it->second;
}

bool Cluster::has_slot(JobId job, NodeId host) const {
  return slots_.contains(key(job, host));
}

AllocationSlot& Cluster::slot_mut(JobId job, NodeId host) {
  const auto it = slots_.find(key(job, host));
  DMSIM_ASSERT(it != slots_.end(), "no allocation slot for (job, host)");
  return it->second;
}

std::vector<const AllocationSlot*> Cluster::job_slots(JobId job) const {
  std::vector<const AllocationSlot*> out;
  const auto hit = job_hosts_.find(job.get());
  if (hit == job_hosts_.end()) return out;
  out.reserve(hit->second.size());
  for (NodeId h : hit->second) out.push_back(&slot(job, h));
  return out;
}

std::vector<Cluster::BorrowEdge> Cluster::borrowers_of(NodeId lender) const {
  std::vector<BorrowEdge> out;
  for (const auto& [k, slot] : slots_) {
    (void)k;
    for (const auto& [from, amount] : slot.remote) {
      if (from == lender && amount > 0) {
        out.push_back(BorrowEdge{slot.job, slot.host, amount});
      }
    }
  }
  return out;
}

void Cluster::check_invariants() const {
  std::vector<MiB> local(nodes_.size(), 0);
  std::vector<MiB> lent(nodes_.size(), 0);
  MiB allocated = 0;
  for (const auto& [k, slot] : slots_) {
    (void)k;
    DMSIM_ASSERT(slot.local >= 0, "negative local share");
    local[slot.host.get()] += slot.local;
    allocated += slot.local;
    for (const auto& [lender, amount] : slot.remote) {
      DMSIM_ASSERT(amount > 0, "zero/negative borrow edge left in ledger");
      DMSIM_ASSERT(lender != slot.host, "self-borrow edge");
      lent[lender.get()] += amount;
      allocated += amount;
    }
    DMSIM_ASSERT(node(slot.host).running_job == slot.job,
                 "slot host not running the slot's job");
  }
  for (const auto& n : nodes_) {
    DMSIM_ASSERT(n.local_used == local[n.id.get()],
                 "node local_used disagrees with slots");
    DMSIM_ASSERT(n.lent == lent[n.id.get()], "node lent disagrees with edges");
    DMSIM_ASSERT(n.local_used + n.lent <= n.capacity, "node over-committed");
    DMSIM_ASSERT(n.local_used >= 0 && n.lent >= 0, "negative ledger entry");
  }
  DMSIM_ASSERT(allocated == total_allocated_,
               "aggregate allocation counter out of sync");
  MiB lent_total = 0;
  for (const auto& n : nodes_) lent_total += n.lent;
  DMSIM_ASSERT(lent_total == total_lent_, "aggregate lent counter out of sync");
}

}  // namespace dmsim::cluster
