#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/snapshot.hpp"
#include "util/error.hpp"

namespace dmsim::cluster {

ClusterConfig make_cluster_config(int normal_count, MiB normal_mib,
                                  int large_count, MiB large_mib, int cores) {
  DMSIM_ASSERT(normal_count >= 0 && large_count >= 0,
               "node counts must be non-negative");
  DMSIM_ASSERT(normal_count + large_count > 0, "cluster must have nodes");
  ClusterConfig cfg;
  cfg.nodes.reserve(static_cast<std::size_t>(normal_count + large_count));
  for (int i = 0; i < normal_count; ++i) {
    cfg.nodes.push_back(NodeConfig{cores, normal_mib, false});
  }
  for (int i = 0; i < large_count; ++i) {
    cfg.nodes.push_back(NodeConfig{cores, large_mib, true});
  }
  return cfg;
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  DMSIM_ASSERT(!config_.nodes.empty(), "cluster must have at least one node");
  nodes_.reserve(config_.nodes.size());
  std::uint32_t next = 0;
  for (const auto& nc : config_.nodes) {
    DMSIM_ASSERT(nc.capacity > 0, "node capacity must be positive");
    DMSIM_ASSERT(nc.cores > 0, "node cores must be positive");
    Node n;
    n.id = NodeId{next++};
    n.cores = nc.cores;
    n.capacity = nc.capacity;
    n.large = nc.large;
    total_capacity_ += nc.capacity;
    nodes_.push_back(n);
  }
  index_state_.resize(nodes_.size());
  borrower_index_.resize(nodes_.size());
  lender_dirty_flag_.assign(nodes_.size(), 0);
  for (const auto& n : nodes_) reindex_node(n);
  nodes_by_capacity_.reserve(nodes_.size());
  for (const auto& n : nodes_) nodes_by_capacity_.push_back(n.id);
  std::sort(nodes_by_capacity_.begin(), nodes_by_capacity_.end(),
            [this](NodeId a, NodeId b) {
              const MiB ca = nodes_[a.get()].capacity;
              const MiB cb = nodes_[b.get()].capacity;
              if (ca != cb) return ca < cb;
              return a < b;
            });
  capacities_sorted_.reserve(nodes_.size());
  for (NodeId id : nodes_by_capacity_) {
    capacities_sorted_.push_back(nodes_[id.get()].capacity);
  }
}

void Cluster::set_observer(const obs::Observer* observer) {
  obs_ = observer;
  c_lend_ops_ = obs::counter_handle(observer, "ledger.lend_ops");
  c_lent_mib_ = obs::counter_handle(observer, "ledger.lent_mib_total");
  c_reclaim_ops_ = obs::counter_handle(observer, "ledger.reclaim_ops");
  c_reclaimed_mib_ = obs::counter_handle(observer, "ledger.reclaimed_mib_total");
  c_local_grow_mib_ = obs::counter_handle(observer, "ledger.local_grow_mib_total");
  c_local_shrink_mib_ =
      obs::counter_handle(observer, "ledger.local_shrink_mib_total");
  g_lent_ = obs::gauge_handle(observer, "ledger.lent_mib");
  g_allocated_ = obs::gauge_handle(observer, "ledger.allocated_mib");
  s_lend_mib_ = obs::series_handle(observer, "ledger.lend_mib");
  s_reclaim_mib_ = obs::series_handle(observer, "ledger.reclaim_mib");
  s_edge_churn_ = obs::series_handle(observer, "ledger.edge_churn");
  h_lenders_per_grow_ = obs::histogram_handle(observer, "ledger.lenders_per_grow");
}

const Node& Cluster::node(NodeId id) const {
  DMSIM_ASSERT(id.valid() && id.get() < nodes_.size(), "node id out of range");
  return nodes_[id.get()];
}

Node& Cluster::node_mut(NodeId id) {
  DMSIM_ASSERT(id.valid() && id.get() < nodes_.size(), "node id out of range");
  return nodes_[id.get()];
}

bool Cluster::can_host(NodeId id) const {
  const Node& n = node(id);
  return n.idle() && !n.memory_node();
}

std::span<const NodeId> Cluster::nodes_by_capacity_at_least(
    MiB capacity) const noexcept {
  const auto it = std::lower_bound(capacities_sorted_.begin(),
                                   capacities_sorted_.end(), capacity);
  const auto offset =
      static_cast<std::size_t>(it - capacities_sorted_.begin());
  return std::span<const NodeId>(nodes_by_capacity_).subspan(offset);
}

// ---------------------------------------------------------------------------
// Index maintenance
// ---------------------------------------------------------------------------

void Cluster::reindex_node(const Node& n) {
  NodeIndexState& st = index_state_[n.id.get()];
  const MiB free = n.free();
  const bool host = n.idle() && !n.memory_node();
  const bool lendable = free > 0;
  const bool mem_free = n.memory_node() && free > 0;
  const FreeKey old_key{st.free, n.id.get()};
  const FreeKey new_key{free, n.id.get()};
  const bool moved = st.free != free;
  if (st.in_host && (!host || moved)) host_index_.erase(old_key);
  if (host && (!st.in_host || moved)) host_index_.insert(new_key);
  if (st.in_free && (!lendable || moved)) free_index_.erase(old_key);
  if (lendable && (!st.in_free || moved)) free_index_.insert(new_key);
  if (st.in_mem_free && (!mem_free || moved)) mem_free_index_.erase(old_key);
  if (mem_free && (!st.in_mem_free || moved)) mem_free_index_.insert(new_key);
  st = NodeIndexState{free, host, lendable, mem_free};
}

void Cluster::mark_lender_dirty(NodeId id) {
  std::uint8_t& flag = lender_dirty_flag_[id.get()];
  if (flag == 0) {
    flag = 1;
    dirty_lenders_.push_back(id);
  }
}

void Cluster::mark_slot_dirty(const AllocationSlot& slot) {
  mark_job_dirty(slot.job);
  for (const auto& [lender, amount] : slot.remote) {
    (void)amount;
    mark_lender_dirty(lender);
  }
}

void Cluster::clear_contention_dirty() {
  for (const NodeId id : dirty_lenders_) lender_dirty_flag_[id.get()] = 0;
  dirty_lenders_.clear();
  dirty_jobs_.clear();
}

// ---------------------------------------------------------------------------
// Job placement
// ---------------------------------------------------------------------------

void Cluster::assign_job(JobId job, std::span<const NodeId> hosts) {
  DMSIM_ASSERT(job.valid(), "cannot assign an invalid job");
  DMSIM_ASSERT(!hosts.empty(), "job needs at least one host");
  DMSIM_ASSERT(!job_hosts_.contains(job.get()), "job already assigned");
  for (NodeId h : hosts) {
    DMSIM_ASSERT(can_host(h), "host is busy or a memory node");
  }
  std::vector<NodeId> host_list(hosts.begin(), hosts.end());
  for (NodeId h : host_list) {
    Node& n = node_mut(h);
    n.running_job = job;
    reindex_node(n);
    AllocationSlot slot;
    slot.job = job;
    slot.host = h;
    const auto [it, inserted] = slots_.emplace(key(job, h), std::move(slot));
    DMSIM_ASSERT(inserted, "duplicate host in job assignment");
    (void)it;
  }
  job_hosts_.emplace(job.get(), std::move(host_list));
  ++change_epoch_;
}

void Cluster::finish_job(JobId job) {
  const auto hit = job_hosts_.find(job.get());
  DMSIM_ASSERT(hit != job_hosts_.end(), "finishing a job that is not assigned");
  for (NodeId h : hit->second) {
    const auto sit = slots_.find(key(job, h));
    DMSIM_ASSERT(sit != slots_.end(), "missing slot for assigned host");
    AllocationSlot& slot = sit->second;
    // Return all borrows.
    for (const auto& [lender, amount] : slot.remote) {
      Node& ln = node_mut(lender);
      DMSIM_ASSERT(ln.lent >= amount, "lender under-ledgered");
      ln.lent -= amount;
      total_allocated_ -= amount;
      total_lent_ -= amount;
      reindex_node(ln);
      mark_lender_dirty(lender);
      std::erase(borrower_index_[lender.get()], sit->first);
    }
    // Release local share and the host itself.
    Node& hn = node_mut(h);
    DMSIM_ASSERT(hn.local_used >= slot.local, "host under-ledgered");
    hn.local_used -= slot.local;
    total_allocated_ -= slot.local;
    DMSIM_ASSERT(hn.running_job == job, "host running a different job");
    hn.running_job = JobId{};
    reindex_node(hn);
    slots_.erase(sit);
  }
  job_hosts_.erase(hit);
  ++change_epoch_;
  // The scheduler emits the job's terminal event; here only the aggregate
  // gauges move (all of the job's local + borrowed memory was returned).
  if (g_lent_) g_lent_->set(total_lent_);
  if (g_allocated_) g_allocated_->set(total_allocated_);
}

// ---------------------------------------------------------------------------
// Memory operations
// ---------------------------------------------------------------------------

MiB Cluster::grow_local(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "grow_local amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  Node& n = node_mut(host);
  const MiB granted = std::min(amount, n.free());
  slot.local += granted;
  n.local_used += granted;
  total_allocated_ += granted;
  if (granted > 0) {
    reindex_node(n);
    ++change_epoch_;
    // Remote-borrowing slots see their amount/total pressure ratios shift.
    if (!slot.remote.empty()) mark_slot_dirty(slot);
    obs::bump(c_local_grow_mib_, static_cast<std::uint64_t>(granted));
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::SlotGrow, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", granted));
    }
  }
  return granted;
}

MiB Cluster::shrink_local(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "shrink_local amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  Node& n = node_mut(host);
  const MiB released = std::min(amount, slot.local);
  slot.local -= released;
  n.local_used -= released;
  total_allocated_ -= released;
  if (released > 0) {
    reindex_node(n);
    ++change_epoch_;
    if (!slot.remote.empty()) mark_slot_dirty(slot);
    obs::bump(c_local_shrink_mib_, static_cast<std::uint64_t>(released));
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::SlotShrink, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", released));
    }
  }
  return released;
}

NodeId Cluster::next_lender(NodeId exclude) const {
  // First admissible key in visit_desc order — the same (free desc, id asc)
  // walk the materialized ordering used, stopped at the first hit.
  const auto first_desc = [exclude](const FreeIndex& index,
                                    auto&& admit) -> NodeId {
    NodeId found{};
    visit_desc(index, index.end(), [&](const FreeKey& k) {
      if (k.second == exclude.get() || !admit(k)) return true;
      found = NodeId{k.second};
      return false;
    });
    return found;
  };
  const auto any = [](const FreeKey&) { return true; };
  switch (config_.lender_policy) {
    case LenderPolicy::MostFree:
      return first_desc(free_index_, any);
    case LenderPolicy::LeastFree:
      for (const FreeKey& k : free_index_) {
        if (k.second != exclude.get()) return NodeId{k.second};
      }
      return NodeId{};
    case LenderPolicy::MemoryNodesFirst: {
      // Memory nodes (free desc, id asc) before the rest in the same order —
      // the old sort's partition under its memory-nodes-first comparator.
      const NodeId mem = first_desc(mem_free_index_, any);
      if (mem.valid()) return mem;
      return first_desc(free_index_, [this](const FreeKey& k) {
        return !nodes_[k.second].memory_node();
      });
    }
  }
  return NodeId{};
}

MiB Cluster::grow_remote(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "grow_remote amount must be non-negative");
  if (amount == 0) return 0;
  AllocationSlot& slot = slot_mut(job, host);
  MiB remaining = amount;
  int lenders_touched = 0;
  std::int64_t edges_added = 0;
  // Lenders are picked one at a time straight from the indexes. Each pick is
  // either drained to free() == 0 — leaving every index before the next
  // lookup — or the grow is satisfied and the loop ends, so the sequence of
  // picks is identical to ranking all lenders by their state at the start of
  // the grow (the historical snapshot semantics), including memory-node
  // status flips: a flipped node has free() == 0 and is out of both indexes.
  while (remaining > 0) {
    const NodeId lender = next_lender(host);
    if (!lender.valid()) break;
    Node& ln = node_mut(lender);
    const MiB take = std::min(remaining, ln.free());
    DMSIM_ASSERT(take > 0, "free-index lender must have free memory");
    ln.lent += take;
    total_allocated_ += take;
    total_lent_ += take;
    remaining -= take;
    ++lenders_touched;
    reindex_node(ln);
    // Merge into an existing edge if present.
    auto edge = std::find_if(slot.remote.begin(), slot.remote.end(),
                             [lender](const auto& e) { return e.first == lender; });
    if (edge != slot.remote.end()) {
      edge->second += take;
    } else {
      slot.remote.emplace_back(lender, take);
      borrower_index_[lender.get()].push_back(key(job, host));
      ++edges_added;
    }
  }
  const MiB granted = amount - remaining;
  if (granted > 0) {
    ++change_epoch_;
    // The slot's total moved too, so every edge's pressure ratio changed.
    mark_slot_dirty(slot);
    obs::bump(c_lend_ops_);
    obs::bump(c_lent_mib_, static_cast<std::uint64_t>(granted));
    obs::record(h_lenders_per_grow_, lenders_touched);
    if (obs_ != nullptr) {
      const Seconds now = obs_->now();
      obs::record(s_lend_mib_, now, granted);
      if (edges_added > 0) obs::record(s_edge_churn_, now, edges_added);
    }
    if (g_lent_) g_lent_->set(total_lent_);
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::MemLend, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", granted)
                           .with("lent_total", total_lent_));
    }
  }
  return granted;
}

MiB Cluster::shrink_remote(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "shrink_remote amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  MiB remaining = std::min(amount, slot.remote_total());
  const MiB released = remaining;
  std::int64_t edges_removed = 0;
  // Return the largest borrows first: frees memory-node status soonest.
  std::sort(slot.remote.begin(), slot.remote.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (auto& [lender, borrowed] : slot.remote) {
    if (remaining == 0) break;
    const MiB give = std::min(remaining, borrowed);
    Node& ln = node_mut(lender);
    DMSIM_ASSERT(ln.lent >= give, "lender under-ledgered on shrink");
    ln.lent -= give;
    total_allocated_ -= give;
    total_lent_ -= give;
    borrowed -= give;
    remaining -= give;
    reindex_node(ln);
    // Mark here, not via mark_slot_dirty below: a fully-returned edge is
    // erased from the slot before that call, yet its lender's pressure
    // still changed.
    mark_lender_dirty(lender);
    if (borrowed == 0) {
      std::erase(borrower_index_[lender.get()], key(job, host));
      ++edges_removed;
    }
  }
  std::erase_if(slot.remote, [](const auto& e) { return e.second == 0; });
  if (released > 0) {
    ++change_epoch_;
    mark_slot_dirty(slot);
    obs::bump(c_reclaim_ops_);
    obs::bump(c_reclaimed_mib_, static_cast<std::uint64_t>(released));
    if (obs_ != nullptr) {
      const Seconds now = obs_->now();
      obs::record(s_reclaim_mib_, now, released);
      if (edges_removed > 0) obs::record(s_edge_churn_, now, edges_removed);
    }
    if (g_lent_) g_lent_->set(total_lent_);
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::MemReclaim, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", released)
                           .with("lent_total", total_lent_));
    }
  }
  return released;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

const AllocationSlot& Cluster::slot(JobId job, NodeId host) const {
  const auto it = slots_.find(key(job, host));
  DMSIM_ASSERT(it != slots_.end(), "no allocation slot for (job, host)");
  return it->second;
}

bool Cluster::has_slot(JobId job, NodeId host) const {
  return slots_.contains(key(job, host));
}

AllocationSlot& Cluster::slot_mut(JobId job, NodeId host) {
  const auto it = slots_.find(key(job, host));
  DMSIM_ASSERT(it != slots_.end(), "no allocation slot for (job, host)");
  return it->second;
}

std::span<const NodeId> Cluster::hosts_of(JobId job) const {
  const auto hit = job_hosts_.find(job.get());
  if (hit == job_hosts_.end()) return {};
  return hit->second;
}

std::vector<const AllocationSlot*> Cluster::job_slots(JobId job) const {
  std::vector<const AllocationSlot*> out;
  const auto hit = job_hosts_.find(job.get());
  if (hit == job_hosts_.end()) return out;
  out.reserve(hit->second.size());
  for (NodeId h : hit->second) out.push_back(&slot(job, h));
  return out;
}

void Cluster::borrowers_of(NodeId lender,
                           std::vector<BorrowEdge>& out) const {
  const std::size_t first = out.size();
  for (const SlotKey k : borrower_index_[lender.get()]) {
    const auto it = slots_.find(k);
    DMSIM_ASSERT(it != slots_.end(), "reverse index points at a dead slot");
    const AllocationSlot& slot = it->second;
    for (const auto& [from, amount] : slot.remote) {
      if (from == lender) {
        DMSIM_ASSERT(amount > 0, "reverse index holds a zero edge");
        out.push_back(BorrowEdge{slot.job, slot.host, amount});
        break;  // edges are merged: at most one per lender
      }
    }
  }
  // Canonical order: borrower job id ascending, then the host's position in
  // the job's assignment. This matches a job-id-ordered walk of each job's
  // slots, which the incremental contention refresh relies on for
  // reproducible pressure summation.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [this](const BorrowEdge& a, const BorrowEdge& b) {
              if (a.job != b.job) return a.job < b.job;
              const std::span<const NodeId> hosts = hosts_of(a.job);
              const auto pos = [&hosts](NodeId h) {
                return std::find(hosts.begin(), hosts.end(), h) - hosts.begin();
              };
              return pos(a.host) < pos(b.host);
            });
}

std::vector<Cluster::BorrowEdge> Cluster::borrowers_of(NodeId lender) const {
  std::vector<BorrowEdge> out;
  borrowers_of(lender, out);
  return out;
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

void Cluster::check_invariants() const {
  std::vector<MiB> local(nodes_.size(), 0);
  std::vector<MiB> lent(nodes_.size(), 0);
  std::vector<std::size_t> borrow_edges(nodes_.size(), 0);
  MiB allocated = 0;
  for (const auto& [k, slot] : slots_) {
    (void)k;
    DMSIM_ASSERT(slot.local >= 0, "negative local share");
    local[slot.host.get()] += slot.local;
    allocated += slot.local;
    for (const auto& [lender, amount] : slot.remote) {
      DMSIM_ASSERT(amount > 0, "zero/negative borrow edge left in ledger");
      DMSIM_ASSERT(lender != slot.host, "self-borrow edge");
      lent[lender.get()] += amount;
      allocated += amount;
      ++borrow_edges[lender.get()];
      // The reverse index must hold exactly this slot under the lender.
      const auto& rev = borrower_index_[lender.get()];
      DMSIM_ASSERT(std::count(rev.begin(), rev.end(), key(slot.job, slot.host)) == 1,
                   "borrow edge missing from (or duplicated in) reverse index");
    }
    DMSIM_ASSERT(node(slot.host).running_job == slot.job,
                 "slot host not running the slot's job");
  }
  std::size_t host_entries = 0;
  std::size_t free_entries = 0;
  std::size_t mem_free_entries = 0;
  for (const auto& n : nodes_) {
    DMSIM_ASSERT(n.local_used == local[n.id.get()],
                 "node local_used disagrees with slots");
    DMSIM_ASSERT(n.lent == lent[n.id.get()], "node lent disagrees with edges");
    DMSIM_ASSERT(n.local_used + n.lent <= n.capacity, "node over-committed");
    DMSIM_ASSERT(n.local_used >= 0 && n.lent >= 0, "negative ledger entry");
    DMSIM_ASSERT(borrower_index_[n.id.get()].size() == borrow_edges[n.id.get()],
                 "reverse index size disagrees with live edges");
    // Each free-memory index must hold the node iff its predicate holds,
    // keyed by the node's current free value.
    const NodeIndexState& st = index_state_[n.id.get()];
    DMSIM_ASSERT(st.free == n.free(), "cached index key out of date");
    const FreeKey k{n.free(), n.id.get()};
    const bool host = n.idle() && !n.memory_node();
    const bool lendable = n.free() > 0;
    const bool mem_free = n.memory_node() && n.free() > 0;
    DMSIM_ASSERT(st.in_host == host && host_index_.contains(k) == host,
                 "host index disagrees with node state");
    DMSIM_ASSERT(st.in_free == lendable && free_index_.contains(k) == lendable,
                 "free index disagrees with node state");
    DMSIM_ASSERT(
        st.in_mem_free == mem_free && mem_free_index_.contains(k) == mem_free,
        "memory-node free index disagrees with node state");
    host_entries += host ? 1 : 0;
    free_entries += lendable ? 1 : 0;
    mem_free_entries += mem_free ? 1 : 0;
  }
  DMSIM_ASSERT(host_index_.size() == host_entries,
               "host index holds stale entries");
  DMSIM_ASSERT(free_index_.size() == free_entries,
               "free index holds stale entries");
  DMSIM_ASSERT(mem_free_index_.size() == mem_free_entries,
               "memory-node free index holds stale entries");
  DMSIM_ASSERT(allocated == total_allocated_,
               "aggregate allocation counter out of sync");
  MiB lent_total = 0;
  for (const auto& n : nodes_) lent_total += n.lent;
  DMSIM_ASSERT(lent_total == total_lent_, "aggregate lent counter out of sync");
}

// ---------------------------------------------------------------------------
// Snapshot (checkpoint/restore)
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kClusterSection =
    snapshot::section_tag('C', 'L', 'U', 'S');
}  // namespace

void Cluster::save_state(snapshot::Writer& writer) const {
  writer.section(kClusterSection);
  writer.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    writer.u32(n.running_job.get());
    writer.i64(n.local_used);
    writer.i64(n.lent);
  }

  // Jobs in id order (unordered_map iteration order is not reproducible);
  // each job's hosts in assignment order, each slot's borrow edges in their
  // live merged order.
  std::vector<std::uint32_t> jobs;
  jobs.reserve(job_hosts_.size());
  for (const auto& [job, hosts] : job_hosts_) {
    (void)hosts;
    jobs.push_back(job);
  }
  std::sort(jobs.begin(), jobs.end());
  writer.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const std::uint32_t job : jobs) {
    const std::vector<NodeId>& hosts = job_hosts_.at(job);
    writer.u32(job);
    writer.u32(static_cast<std::uint32_t>(hosts.size()));
    for (const NodeId h : hosts) {
      const auto it = slots_.find(key(JobId{job}, h));
      DMSIM_ASSERT(it != slots_.end(), "missing slot for assigned host");
      const AllocationSlot& slot = it->second;
      writer.u32(h.get());
      writer.i64(slot.local);
      writer.u32(static_cast<std::uint32_t>(slot.remote.size()));
      for (const auto& [lender, amount] : slot.remote) {
        writer.u32(lender.get());
        writer.i64(amount);
      }
    }
  }

  writer.i64(total_allocated_);
  writer.i64(total_lent_);
  writer.u64(change_epoch_);
}

void Cluster::restore_state(snapshot::Reader& reader) {
  reader.expect_section(kClusterSection, "cluster");
  if (reader.u32() != nodes_.size()) {
    throw snapshot::SnapshotError(
        "snapshot: node count mismatch — different cluster configuration");
  }

  // Wipe all mutable state back to the empty ledger.
  slots_.clear();
  job_hosts_.clear();
  for (auto& edges : borrower_index_) edges.clear();
  host_index_.clear();
  free_index_.clear();
  mem_free_index_.clear();
  index_state_.assign(nodes_.size(), NodeIndexState{});
  dirty_lenders_.clear();
  dirty_jobs_.clear();
  lender_dirty_flag_.assign(nodes_.size(), 0);

  for (Node& n : nodes_) {
    n.running_job = JobId{reader.u32()};
    n.local_used = reader.i64();
    n.lent = reader.i64();
    if (n.local_used < 0 || n.lent < 0 ||
        n.local_used + n.lent > n.capacity) {
      throw snapshot::SnapshotError("snapshot: node ledger out of range");
    }
  }
  // index_state_ is zeroed and the indexes are empty, so reindexing from
  // scratch inserts exactly the memberships the restored state implies.
  for (const Node& n : nodes_) reindex_node(n);

  const std::uint32_t n_jobs = reader.u32();
  for (std::uint32_t j = 0; j < n_jobs; ++j) {
    const std::uint32_t job = reader.u32();
    const std::uint32_t n_hosts = reader.u32();
    if (n_hosts == 0) {
      throw snapshot::SnapshotError("snapshot: assigned job with no hosts");
    }
    std::vector<NodeId> hosts;
    hosts.reserve(n_hosts);
    for (std::uint32_t k_ = 0; k_ < n_hosts; ++k_) {
      const std::uint32_t host = reader.u32();
      if (host >= nodes_.size() || nodes_[host].running_job.get() != job) {
        throw snapshot::SnapshotError(
            "snapshot: slot host is not running the slot's job");
      }
      hosts.emplace_back(NodeId{host});
      AllocationSlot slot;
      slot.job = JobId{job};
      slot.host = NodeId{host};
      slot.local = reader.i64();
      if (slot.local < 0) {
        throw snapshot::SnapshotError("snapshot: negative local share");
      }
      const std::uint32_t n_edges = reader.u32();
      slot.remote.reserve(n_edges);
      for (std::uint32_t e = 0; e < n_edges; ++e) {
        const std::uint32_t lender = reader.u32();
        const MiB amount = reader.i64();
        if (lender >= nodes_.size() || lender == host || amount <= 0) {
          throw snapshot::SnapshotError("snapshot: invalid borrow edge");
        }
        slot.remote.emplace_back(NodeId{lender}, amount);
        borrower_index_[lender].push_back(key(JobId{job}, NodeId{host}));
      }
      if (!slots_.emplace(key(JobId{job}, NodeId{host}), std::move(slot))
               .second) {
        throw snapshot::SnapshotError("snapshot: duplicate allocation slot");
      }
    }
    if (!job_hosts_.emplace(job, std::move(hosts)).second) {
      throw snapshot::SnapshotError("snapshot: duplicate job assignment");
    }
  }

  total_allocated_ = reader.i64();
  total_lent_ = reader.i64();
  change_epoch_ = reader.u64();

  // Full validation: per-node sums vs slots, index memberships, reverse
  // index, aggregate counters. A snapshot that passes this is exactly a
  // state the mutation API could have produced.
  check_invariants();
}

}  // namespace dmsim::cluster
